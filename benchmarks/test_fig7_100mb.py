"""Fig. 7 — 100 MB extra files: thresholds 50/100/200 vs no policy.

Paper shape: a clear separation among thresholds; the best performance is
50 max streams, beating default Pegasus (~6.7% at 8 streams in the paper)
while a threshold of 200 is markedly worse (+28.8% vs 50 at 8 streams):
the greedy algorithm can over-allocate streams between the source and
destination.
"""

from benchmarks.figcommon import (
    figure_report,
    payload,
    run_threshold_figure,
    series_by_threshold,
)


def test_fig7(benchmark, archive, replicates, stream_sweep):
    series, nop = benchmark.pedantic(
        run_threshold_figure, args=(100, replicates, stream_sweep),
        rounds=1, iterations=1,
    )
    archive("fig7_100mb", payload(series, nop), figure_report(7, 100, series, nop))

    by_thr = series_by_threshold(series)

    # Ordering at 8 streams: 50 < 100 < 200.
    t50, t100, t200 = (by_thr[t].at(8)[0] for t in (50, 100, 200))
    assert t50 < t100 < t200

    # 200 markedly worse than 50 (paper: +28.8% at 8 streams).
    assert t200 / t50 > 1.15

    # 50 at least matches the no-policy point.  The paper's 6.7% margin
    # shows up as only ~0-3% in our model (no-policy's 80 streams sit just
    # past the knee) — see EXPERIMENTS.md "residual divergences" — so the
    # assertion tolerates replicate noise rather than demanding a strict win.
    assert t50 < nop.at(4)[0] * 1.03
