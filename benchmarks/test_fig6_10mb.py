"""Fig. 6 — 10 MB extra files: thresholds 50/100/200 vs no policy.

Paper shape: with small (10 MB) additional files there is not much
difference as the maximum streams increase; the policy performs slightly
better (at most ~6%) than default Pegasus at lower default streams, and
the 50-stream threshold is the best of the three.
"""

from benchmarks.figcommon import (
    figure_report,
    payload,
    run_threshold_figure,
    series_by_threshold,
)


def test_fig6(benchmark, archive, replicates, stream_sweep):
    series, nop = benchmark.pedantic(
        run_threshold_figure, args=(10, replicates, stream_sweep),
        rounds=1, iterations=1,
    )
    archive("fig6_10mb", payload(series, nop), figure_report(6, 10, series, nop))

    by_thr = series_by_threshold(series)
    nop_mean = nop.at(4)[0]

    # Small spread among thresholds (paper: "not much difference").
    for streams in stream_sweep:
        means = [by_thr[t].at(streams)[0] for t in (50, 100, 200)]
        assert max(means) / min(means) < 1.35

    # Threshold 50 is the best (or tied-best) of the three on average.
    def series_mean(s):
        return sum(s.means()) / len(s.means())

    best = min(by_thr.values(), key=series_mean)
    assert series_mean(by_thr[50]) <= series_mean(best) * 1.05

    # Policy at low default streams is comparable to no policy (within ~10%).
    assert by_thr[50].at(4)[0] <= nop_mean * 1.10
