"""A7 — rule-engine / policy-service decision throughput.

The paper's future work worries about "the scalability of the centralized
policy service when planning multiple complex workflows".  These benches
measure the service's decision latency as policy memory grows, and the
raw production-rule engine's firing rate.
"""

import pytest

from repro.policy import PolicyConfig, PolicyService
from repro.rules import Fact, Pattern, Rule, Session


def _spec(i):
    return {
        "lfn": f"f{i}",
        "src_url": f"gsiftp://src/d/f{i}",
        "dst_url": f"gsiftp://dst/s/f{i}",
        "nbytes": 1.0,
    }


def _preloaded_service(staged_files: int) -> PolicyService:
    service = PolicyService(PolicyConfig(policy="greedy", max_streams=1000))
    for i in range(staged_files):
        advice = service.submit_transfers("warmup", f"j{i}", [_spec(i)])
        service.complete_transfers(done=[advice[0].tid])
    return service


@pytest.mark.parametrize("staged", [0, 200, 1000])
def test_transfer_decision_latency(benchmark, staged):
    """One submit+complete round trip against a growing policy memory."""
    service = _preloaded_service(staged)
    counter = [staged]

    def round_trip():
        i = counter[0] = counter[0] + 1
        advice = service.submit_transfers("bench", f"job{i}", [_spec(i + 10_000)])
        service.complete_transfers(done=[advice[0].tid])

    benchmark(round_trip)


def test_rule_engine_firing_rate(benchmark):
    """Raw engine throughput: fire one simple rule over 500 facts."""

    class Token(Fact):
        def __init__(self, n):
            self.n = n
            self.seen = False

    rule = Rule(
        "mark",
        when=[Pattern(Token, "t", where=lambda t, b: not t.seen)],
        then=lambda ctx: ctx.update(ctx.t, seen=True),
    )

    def run():
        session = Session([rule])
        for i in range(500):
            session.insert(Token(i))
        fired = session.fire_all()
        assert fired == 500

    benchmark.pedantic(run, rounds=3, iterations=1)
