"""A2 — greedy vs balanced allocation under skewed arrivals.

The balanced algorithm's motivation (paper §III.b): reserve each cluster
a share of the stream budget so a cluster whose requests arrive late is
not starved by earlier ones.  We run two Montage instances over disjoint
datasets, the second starting mid-staging of the first, treating each
workflow as one cluster (``cluster_scope="workflow"``):

* under **greedy**, the first workflow's transfers have consumed the
  whole host-pair budget, so the late workflow's first transfers are
  allocated a single stream each;
* under **balanced**, half the budget was reserved for the second
  cluster, so its first transfers receive their full request.

Staging times are reported as context; the allocation behaviour is the
asserted contract (time outcomes depend on churn, which lets greedy
recover quickly on this workload).
"""

import numpy as np

from repro.experiments import ExperimentConfig
from repro.experiments.runner import run_concurrent_workflows
from repro.workflow.montage import MB, MontageConfig, augmented_montage

DEFAULT_STREAMS = 10
TOTAL_BUDGET = 40


def run_pair(policy: str, seed: int):
    cfg = ExperimentConfig(
        extra_file_mb=100,
        default_streams=DEFAULT_STREAMS,
        policy=policy,
        threshold=TOTAL_BUDGET,
        cluster_factor=2 if policy == "balanced" else None,
        cluster_threshold=TOTAL_BUDGET // 2 if policy == "balanced" else None,
        cluster_scope="workflow",
        n_images=30,
        seed=seed,
    )
    workflows = [
        augmented_montage(100 * MB, MontageConfig(n_images=30, name="mA", lfn_prefix="a_")),
        augmented_montage(100 * MB, MontageConfig(n_images=30, name="mB", lfn_prefix="b_")),
    ]
    return run_concurrent_workflows(cfg, workflows, stagger=60.0)


def first_wave_grants(metrics, n=6):
    """Stream grants of the late workflow's first WAN transfers."""
    return [g for g in metrics.stream_grants if g > 0][:n]


def test_balanced_reserves_late_cluster_share(benchmark, archive, replicates):
    def compare():
        rows = []
        for seed in range(replicates):
            greedy = run_pair("greedy", seed)
            balanced = run_pair("balanced", seed)
            rows.append(
                {
                    "greedy_first_grants": first_wave_grants(greedy[1]),
                    "balanced_first_grants": first_wave_grants(balanced[1]),
                    "greedy_wf2_staging": greedy[1].staging_time,
                    "balanced_wf2_staging": balanced[1].staging_time,
                }
            )
        return rows

    rows = benchmark.pedantic(compare, rounds=1, iterations=1)
    report_lines = [
        "A2 — late workflow's first transfer allocations (streams) and",
        f"staging time; two concurrent instances, budget {TOTAL_BUDGET}, "
        f"request {DEFAULT_STREAMS} streams/transfer:",
    ]
    for i, r in enumerate(rows):
        report_lines.append(
            f"  rep {i}: greedy first grants {r['greedy_first_grants']} "
            f"(staging {r['greedy_wf2_staging']:.0f}s) | "
            f"balanced first grants {r['balanced_first_grants']} "
            f"(staging {r['balanced_wf2_staging']:.0f}s)"
        )
    report = "\n".join(report_lines)
    archive("ablation_balanced", {"rows": rows}, report)

    for r in rows:
        # Greedy: budget exhausted by wf1 -> wf2's arrivals get starved
        # allocations (single streams dominate its first wave).
        assert np.mean(r["greedy_first_grants"]) < DEFAULT_STREAMS / 2
        # Balanced: reserved share -> wf2's first transfers get their full
        # requested streams.
        assert r["balanced_first_grants"][0] == DEFAULT_STREAMS
        assert np.mean(r["balanced_first_grants"]) > np.mean(r["greedy_first_grants"])
