#!/usr/bin/env python
"""Guard: disabled tracing must cost (near) nothing on the rule hot path.

Every instrumentation point in the service guards emission with
``tracer is not None and tracer.enabled``, so a run with no tracer — or a
disabled one — should be indistinguishable from the pre-instrumentation
hot path.  This benchmark measures the ``bench_rules``-style workload
(submit/complete transfer batches against a greedy service) in two
configurations, interleaved:

* **plain** — no tracer, no profiler attached (the default for every
  experiment run);
* **disabled** — a ``Tracer(enabled=False)`` attached to the service, so
  each potential event pays exactly the guard test.

It fails (exit 1) when the disabled-tracing median exceeds the plain
median by more than ``--threshold`` percent (default 2%).

Usage
-----
    PYTHONPATH=src python benchmarks/bench_trace_overhead.py [--quick]
        [--rounds N] [--threshold PCT] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import statistics
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


def _build_service(tracer):
    from repro.policy import PolicyConfig, PolicyService

    # decision_log off: this guard measures the cost of *disabled*
    # observability, and the decision log has its own on/off knob.
    return PolicyService(
        PolicyConfig(
            policy="greedy", default_streams=4, max_streams=4000,
            decision_log=False,
        ),
        tracer=tracer,
    )


def _specs(n: int, tag: str):
    return [
        {
            "lfn": f"{tag}{i}",
            "src_url": f"gsiftp://fg-vm/data/{tag}{i}",
            "dst_url": f"gsiftp://obelix/scratch/{tag}{i}",
            "nbytes": 1000.0,
        }
        for i in range(n)
    ]


def _run_round(service, batches: int, batch_size: int, tag: str) -> float:
    """One timed round: ``batches`` submit+complete cycles; returns seconds."""
    t0 = time.perf_counter()
    for b in range(batches):
        advice = service.submit_transfers(
            f"wf-{tag}", f"job-{b}", _specs(batch_size, f"{tag}{b}-")
        )
        service.complete_transfers(done=[a.tid for a in advice if a.tid is not None])
    return time.perf_counter() - t0


def measure(rounds: int, batches: int, batch_size: int) -> dict:
    from repro.obs import Tracer

    plain_times: list[float] = []
    disabled_times: list[float] = []
    # Interleave A/B so drift (thermal, GC pressure) hits both equally.
    for r in range(rounds):
        plain = _build_service(tracer=None)
        disabled = _build_service(tracer=Tracer(enabled=False))
        plain_times.append(_run_round(plain, batches, batch_size, f"p{r}"))
        disabled_times.append(_run_round(disabled, batches, batch_size, f"d{r}"))
    plain_median = statistics.median(plain_times)
    disabled_median = statistics.median(disabled_times)
    return {
        "rounds": rounds,
        "batches_per_round": batches,
        "batch_size": batch_size,
        "plain_s": plain_times,
        "disabled_s": disabled_times,
        "plain_median_s": plain_median,
        "disabled_median_s": disabled_median,
        "overhead_pct": (disabled_median / plain_median - 1.0) * 100.0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller workload for CI smoke runs")
    parser.add_argument("--rounds", type=int, default=None,
                        help="interleaved measurement rounds per config")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="max tolerated overhead percent (default 2)")
    parser.add_argument("--out", default=None, help="write the JSON report here")
    args = parser.parse_args(argv)

    quick = args.quick or os.environ.get("REPRO_QUICK") == "1"
    rounds = args.rounds if args.rounds is not None else (5 if quick else 9)
    batches = 20 if quick else 60
    batch_size = 25 if quick else 50

    # Warm-up: JIT-free Python still benefits (allocator, caches, imports).
    measure(1, max(2, batches // 10), batch_size)
    report = measure(rounds, batches, batch_size)
    report["python"] = platform.python_version()
    report["threshold_pct"] = args.threshold

    print(f"plain    median: {report['plain_median_s'] * 1e3:8.1f} ms")
    print(f"disabled median: {report['disabled_median_s'] * 1e3:8.1f} ms")
    print(f"overhead       : {report['overhead_pct']:+.2f}% "
          f"(threshold {args.threshold:.1f}%)")

    if args.out:
        pathlib.Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
        print(f"report written to {args.out}")

    if report["overhead_pct"] > args.threshold:
        print("FAIL: disabled tracing regresses the hot path", file=sys.stderr)
        return 1
    print("OK: disabled tracing is within the overhead budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
