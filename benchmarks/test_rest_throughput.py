"""A13 — RESTful frontend throughput (real HTTP on localhost).

The paper deploys the service behind Tomcat's REST interface; the
deployment question is how many advice round trips per second the
frontend sustains.  These benches measure a full submit->complete cycle
over real HTTP (serialization + socket + rule evaluation) and the status
endpoint.
"""

import itertools

import pytest

from repro.policy import PolicyConfig, PolicyService
from repro.policy.client import HTTPPolicyClient
from repro.policy.rest import PolicyRestServer


@pytest.fixture(scope="module")
def live_client():
    service = PolicyService(PolicyConfig(policy="greedy", max_streams=10_000))
    with PolicyRestServer(service) as server:
        yield HTTPPolicyClient(server.url)


def test_http_advice_round_trip(benchmark, live_client):
    counter = itertools.count()

    def round_trip():
        i = next(counter)
        advice = live_client.submit_transfers(
            "bench-wf",
            f"job{i}",
            [
                {
                    "lfn": f"f{i}",
                    "src_url": f"gsiftp://src/d/f{i}",
                    "dst_url": f"gsiftp://dst/s/f{i}",
                    "nbytes": 1000,
                }
            ],
        )
        live_client.complete_transfers(done=[advice[0].tid])

    benchmark(round_trip)


def test_http_status_endpoint(benchmark, live_client):
    benchmark(live_client.status)
