"""A10 — centralized Policy Service under multiple concurrent workflows.

The paper's future work asks about "the scalability of the centralized
policy service when planning multiple complex workflows".  We run 1-8
concurrent Montage instances (disjoint datasets, so no dedup masks load)
against one shared service and report the service call volume, policy
memory growth, cumulative rule firings, and the per-workflow slowdown.
"""

import numpy as np

from repro.experiments import ExperimentConfig
from repro.experiments.runner import run_concurrent_workflows
from repro.workflow.montage import MB, MontageConfig, augmented_montage

FLEETS = (1, 2, 4, 8)


def run_fleet(n_workflows: int, seed: int):
    cfg = ExperimentConfig(
        extra_file_mb=50,
        default_streams=4,
        policy="greedy",
        threshold=50,
        n_images=30,
        seed=seed,
    )
    workflows = [
        augmented_montage(
            50 * MB,
            MontageConfig(n_images=30, name=f"m{i}", lfn_prefix=f"w{i}_"),
        )
        for i in range(n_workflows)
    ]
    return run_concurrent_workflows(cfg, workflows, stagger=10.0)


def test_service_scales_with_concurrent_workflows(benchmark, archive):
    def sweep():
        rows = {}
        for n in FLEETS:
            results = run_fleet(n, seed=41)
            stats = results[0].policy_stats  # shared service: same dict
            rows[n] = {
                "mean_makespan": float(np.mean([m.makespan for m in results])),
                "max_makespan": float(max(m.makespan for m in results)),
                # policy_calls is the *shared* client's counter; every
                # workflow reports the same total, so take it once.
                "policy_calls": int(results[0].policy_calls),
                "rule_firings": int(stats["rule_firings"]),
                "transfers_approved": int(stats["transfers_approved"]),
            }
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    header = (
        f"{'workflows':>10s} {'mean mkspan':>12s} {'max mkspan':>11s} "
        f"{'svc calls':>10s} {'firings':>9s} {'approved':>9s}"
    )
    lines = ["A10 — one Policy Service, N concurrent Montage instances:", header]
    for n, r in rows.items():
        lines.append(
            f"{n:>10d} {r['mean_makespan']:12.1f} {r['max_makespan']:11.1f} "
            f"{r['policy_calls']:10d} {r['rule_firings']:9d} "
            f"{r['transfers_approved']:9d}"
        )
    report = "\n".join(lines)
    archive("ablation_scalability", {str(k): v for k, v in rows.items()}, report)

    # Every workflow of every fleet completed and was served.
    assert rows[8]["transfers_approved"] == 8 * rows[1]["transfers_approved"]
    # Rule firings grow roughly linearly with load (no quadratic blow-up):
    per_wf_1 = rows[1]["rule_firings"]
    per_wf_8 = rows[8]["rule_firings"] / 8
    assert per_wf_8 < per_wf_1 * 2.0
    # Makespans grow because 8 workflows share one WAN, but the service
    # itself does not collapse: slowdown is bounded by ~ the bandwidth
    # share factor.
    assert rows[8]["mean_makespan"] < rows[1]["mean_makespan"] * 8
