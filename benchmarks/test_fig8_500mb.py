"""Fig. 8 — 500 MB extra files: thresholds 50/100/200 vs no policy.

Paper shape: threshold 50 performs best with 100 also good; both beat
default Pegasus (50@8 was 14% faster in the paper).  A threshold of 200
performs acceptably at low default streams (its allocation is then only
80 total streams, same as no policy) but poorly at larger ones (160-203
streams overwhelm the path).
"""

from benchmarks.figcommon import (
    figure_report,
    payload,
    run_threshold_figure,
    series_by_threshold,
)


def test_fig8(benchmark, archive, replicates, stream_sweep):
    series, nop = benchmark.pedantic(
        run_threshold_figure, args=(500, replicates, stream_sweep),
        rounds=1, iterations=1,
    )
    archive("fig8_500mb", payload(series, nop), figure_report(8, 500, series, nop))

    by_thr = series_by_threshold(series)

    # 50 at least matches no policy (paper: 14% faster; our margin is
    # 0-4% — see EXPERIMENTS.md "residual divergences" — so tolerate
    # replicate noise rather than demanding a strict win).
    assert by_thr[50].at(8)[0] < nop.at(4)[0] * 1.03

    # 200 at 4 default streams allocates 80 total (same as no policy) and
    # performs comparably; at 8+ it degrades clearly.
    t200_4 = by_thr[200].at(4)[0]
    t200_8 = by_thr[200].at(8)[0]
    assert t200_4 <= nop.at(4)[0] * 1.10
    assert t200_8 > by_thr[50].at(8)[0] * 1.15

    # 50 is the best threshold at 8 streams.
    assert by_thr[50].at(8)[0] == min(by_thr[t].at(8)[0] for t in (50, 100, 200))
