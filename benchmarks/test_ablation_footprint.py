"""A8 — cleanup and the workflow data footprint.

The paper runs with cleanup enabled because storage at computational
sites is finite ("the workflow management system also needs to remove
data that are no longer needed").  This ablation quantifies the scratch
footprint with and without cleanup on the augmented Montage workload, and
shows how long a capacity-constrained scratch volume would have been
over-committed in each mode.
"""

from dataclasses import replace

import numpy as np

from repro.experiments import ExperimentConfig, TestbedParams
from repro.experiments.runner import run_replicates

GB = 1e9


def test_cleanup_footprint(benchmark, archive, replicates):
    capacity = 12 * GB  # a deliberately tight scratch volume

    def measure():
        rows = {}
        for cleanup in (True, False):
            cfg = ExperimentConfig(
                extra_file_mb=100,
                default_streams=4,
                policy="greedy",
                threshold=50,
                cleanup=cleanup,
                seed=31,
                testbed=replace(TestbedParams(), scratch_capacity=capacity),
            )
            metrics = run_replicates(cfg, replicates)
            rows["cleanup" if cleanup else "no-cleanup"] = {
                "peak_gb": float(np.mean([m.peak_footprint for m in metrics])) / GB,
                "final_gb": float(np.mean([m.final_footprint for m in metrics])) / GB,
                "over_capacity_s": float(
                    np.mean([m.over_capacity_time for m in metrics])
                ),
                "makespan": float(np.mean([m.makespan for m in metrics])),
            }
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    report_lines = [
        "A8 — scratch footprint, augmented Montage (100 MB extras), "
        f"capacity {capacity / GB:.0f} GB:",
        f"{'mode':12s} {'peak GB':>9s} {'final GB':>9s} {'over-cap s':>11s} {'makespan':>10s}",
    ]
    for mode, r in rows.items():
        report_lines.append(
            f"{mode:12s} {r['peak_gb']:9.2f} {r['final_gb']:9.2f} "
            f"{r['over_capacity_s']:11.1f} {r['makespan']:10.1f}"
        )
    report = "\n".join(report_lines)
    archive("ablation_footprint", rows, report)

    assert rows["cleanup"]["peak_gb"] < rows["no-cleanup"]["peak_gb"]
    assert rows["cleanup"]["final_gb"] < rows["no-cleanup"]["final_gb"] * 0.5
    # The tight volume is over-committed for less time with cleanup on.
    assert (
        rows["cleanup"]["over_capacity_s"]
        <= rows["no-cleanup"]["over_capacity_s"]
    )
