"""A1 — effect of the Pegasus clustering factor on data staging.

Paper Fig. 2 motivates clustering: grouping transfers eliminates the
initialization overhead between transfer jobs, at the price of less
staging parallelism.  We sweep the clustering factor for the 100 MB
augmented Montage workload (no clustering = the paper's evaluation
config, factor 1 = fully serialized staging).
"""

from repro.experiments import ExperimentConfig
from repro.experiments.runner import run_replicates
from repro.metrics import Series, format_series_table


def test_clustering_factor_sweep(benchmark, archive, replicates):
    factors = [None, 20, 10, 4, 1]

    def sweep():
        series = Series(label="makespan")
        staging = Series(label="staging time")
        for factor in factors:
            cfg = ExperimentConfig(
                extra_file_mb=100,
                default_streams=4,
                policy="greedy",
                threshold=50,
                cluster_factor=factor,
                seed=17,
            )
            metrics = run_replicates(cfg, replicates)
            label = "none" if factor is None else factor
            series.add(label, [m.makespan for m in metrics])
            staging.add(label, [m.staging_time for m in metrics])
        return series, staging

    series, staging = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report = format_series_table(
        "A1 — clustering factor vs execution/staging time (100 MB extras)",
        "cluster factor",
        [series, staging],
    )
    archive(
        "ablation_clustering",
        {"makespan": series.to_dict(), "staging": staging.to_dict()},
        report,
    )

    # Serializing all staging into one clustered job is clearly worse than
    # the paper's 20-wide staging.
    assert series.at(1)[0] > series.at("none")[0] * 1.3
    # A clustering factor equal to the job limit performs comparably to
    # no clustering (same staging concurrency, fewer session setups).
    assert abs(series.at(20)[0] - series.at("none")[0]) / series.at("none")[0] < 0.15
