"""A5 — policy service call overhead vs benefit.

The paper notes that consulting an external service "incurs overheads for
the service calls".  We sweep the per-call latency and find where the
policy's stream-management benefit is eaten by its own overhead, compared
against the no-policy baseline.
"""

from dataclasses import replace

from repro.experiments import ExperimentConfig, TestbedParams
from repro.experiments.runner import run_replicates
from repro.metrics import Series, format_series_table

LATENCIES = (0.0, 0.15, 1.0, 5.0)


def test_service_latency_sweep(benchmark, archive, replicates):
    def sweep():
        series = Series(label="greedy@50 makespan")
        calls = Series(label="policy overhead (s)")
        for latency in LATENCIES:
            cfg = ExperimentConfig(
                extra_file_mb=100,
                default_streams=8,
                policy="greedy",
                threshold=50,
                seed=29,
                testbed=replace(TestbedParams(), policy_latency=latency),
            )
            metrics = run_replicates(cfg, replicates)
            series.add(latency, [m.makespan for m in metrics])
            calls.add(latency, [m.policy_overhead for m in metrics])
        nop_cfg = ExperimentConfig(
            extra_file_mb=100, default_streams=4, policy=None, seed=29
        )
        nop = [m.makespan for m in run_replicates(nop_cfg, replicates)]
        return series, calls, nop

    series, calls, nop = benchmark.pedantic(sweep, rounds=1, iterations=1)
    nop_mean = sum(nop) / len(nop)
    report = format_series_table(
        "A5 — policy-service call latency vs workflow time (100 MB extras)",
        "latency (s)",
        [series, calls],
    )
    report += f"\n\nno-policy baseline: {nop_mean:.1f} s"
    archive(
        "ablation_overhead",
        {"series": series.to_dict(), "overhead": calls.to_dict(), "no_policy": nop},
        report,
    )

    # Latency monotonically costs time...
    means = series.means()
    assert means[0] <= means[-1]
    # ...and at the paper-like latency (0.15 s) the policy still wins.
    assert series.at(0.15)[0] < nop_mean
    # At an absurd 5 s per call the advantage is gone.
    assert series.at(5.0)[0] > series.at(0.15)[0]
