#!/usr/bin/env python
"""Guard: the staged-data catalog must actually save bytes.

Two measurements over a shared-dataset, two-tenant ensemble (both
workflows read the SAME input set):

* **replica selection / retention** — total bytes staged with the
  catalog on vs off.  The catalog retains shared inputs across workflow
  boundaries, so the second tenant stages from the cache; the run fails
  (exit 1) unless the catalog saves at least ``--threshold`` percent
  (default 25, the paper-level acceptance bar).
* **eviction policies** — the same overflow scenario at three site
  capacities under ``lru`` and ``size`` eviction, reporting victims and
  bytes shed per policy (informational: documents the trade-off).

Usage
-----
    PYTHONPATH=src python benchmarks/bench_catalog.py [--quick]
        [--threshold PCT] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


def _shared_ensemble(catalog, n_images: int):
    from repro.experiments import ExperimentConfig, run_tenant_ensemble
    from repro.tenancy import AdmissionConfig
    from repro.workflow.montage import MB, MontageConfig, augmented_montage

    submissions = []
    for tenant, name in (("astro", "astro-wf"), ("climate", "climate-wf")):
        wf = augmented_montage(
            10.0 * MB,
            MontageConfig(n_images=n_images, name=name, lfn_prefix=""),
        )
        submissions.append((tenant, wf))
    cfg = ExperimentConfig(
        extra_file_mb=10.0, n_images=n_images, policy="greedy",
        catalog=catalog, seed=7,
    )
    t0 = time.perf_counter()
    result = run_tenant_ensemble(
        cfg,
        tenants=[{"tenant": "astro"}, {"tenant": "climate"}],
        submissions=submissions,
        admission=AdmissionConfig(max_concurrent=1),
        scheduler="fifo",
    )
    elapsed = time.perf_counter() - t0
    assert all(m.success for m in result.metrics)
    return sum(m.bytes_staged for m in result.metrics), elapsed


def measure_savings(n_images: int) -> dict:
    from repro.datacatalog.model import CatalogConfig

    bytes_off, t_off = _shared_ensemble(None, n_images)
    bytes_on, t_on = _shared_ensemble(
        CatalogConfig(default_capacity=50e9), n_images
    )
    return {
        "images": n_images,
        "bytes_staged_without_catalog": bytes_off,
        "bytes_staged_with_catalog": bytes_on,
        "savings_pct": (1.0 - bytes_on / bytes_off) * 100.0,
        "run_seconds_without": t_off,
        "run_seconds_with": t_on,
    }


def measure_eviction(capacities) -> list[dict]:
    """LRU vs size-aware eviction on one overflow scenario per capacity."""
    from repro.datacatalog.model import CatalogConfig
    from repro.policy import PolicyConfig, PolicyService

    rows = []
    for capacity in capacities:
        for policy in ("lru", "size"):
            clock = {"now": 0.0}
            service = PolicyService(
                PolicyConfig(
                    policy="greedy", default_streams=4, max_streams=50,
                    catalog=CatalogConfig(
                        site_capacity={"obelix": capacity},
                        eviction_policy=policy,
                    ),
                ),
                clock=lambda: clock["now"],
            )
            # Fill with a spread of sizes, release, then overflow.
            sizes = [400.0, 900.0, 1600.0, 700.0, 1100.0]
            for i, nbytes in enumerate(sizes):
                advice = service.submit_transfers(
                    "warm", f"j{i}",
                    [{
                        "lfn": f"f{i}",
                        "src_url": f"gsiftp://fg-vm/data/f{i}",
                        "dst_url": f"gsiftp://obelix/scratch/f{i}",
                        "nbytes": nbytes,
                    }],
                )
                service.complete_transfers(
                    done=[a.tid for a in advice if a.action == "transfer"]
                )
                clock["now"] += 10.0
            service.unregister_workflow("warm")
            advice = service.submit_transfers(
                "hot", "jx",
                [{
                    "lfn": "hot",
                    "src_url": "gsiftp://fg-vm/data/hot",
                    "dst_url": "gsiftp://obelix/scratch/hot",
                    "nbytes": 500.0,
                }],
            )
            response = service.complete_transfers(done=[advice[0].tid])
            victims = response["evicted"]
            rows.append({
                "capacity_bytes": capacity,
                "eviction_policy": policy,
                "victims": [v["lfn"] for v in victims],
                "bytes_shed": sum(v["nbytes"] for v in victims),
                "used_bytes_after": service.catalog_census()["sites"][0][
                    "used_bytes"
                ],
            })
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller workload for CI smoke runs")
    parser.add_argument("--threshold", type=float, default=25.0,
                        help="minimum required savings percent (default 25)")
    parser.add_argument("--out", default=None, help="write the JSON report here")
    args = parser.parse_args(argv)

    quick = args.quick or os.environ.get("REPRO_QUICK") == "1"
    n_images = 6 if quick else 10

    report = {
        "python": platform.python_version(),
        "threshold_pct": args.threshold,
        "savings": measure_savings(n_images),
        "eviction": measure_eviction([2000.0, 3500.0, 6000.0]),
    }

    savings = report["savings"]
    print(f"bytes without catalog: {savings['bytes_staged_without_catalog']:,.0f}")
    print(f"bytes with catalog   : {savings['bytes_staged_with_catalog']:,.0f}")
    print(f"savings              : {savings['savings_pct']:.1f}% "
          f"(threshold {args.threshold:.1f}%)")
    for row in report["eviction"]:
        print(f"capacity {row['capacity_bytes']:7,.0f}  "
              f"{row['eviction_policy']:<4}  victims={row['victims']}  "
              f"shed={row['bytes_shed']:,.0f}B")

    if args.out:
        pathlib.Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
        print(f"report written to {args.out}")

    if savings["savings_pct"] < args.threshold:
        print("FAIL: the catalog does not meet the bytes-saved bar",
              file=sys.stderr)
        return 1
    print("OK: catalog meets the bytes-saved bar")
    return 0


if __name__ == "__main__":
    sys.exit(main())
