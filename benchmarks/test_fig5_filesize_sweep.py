"""Fig. 5 — workflow execution time vs default streams per transfer,
one series per extra-staged-file size (0 / 10 / 100 / 500 / 1000 MB),
greedy threshold fixed at 50.

Paper shape: the additional file size has a significant effect above
100 MB, while increasing the default number of streams per transfer has
relatively little impact.
"""

from repro.experiments import ExperimentConfig
from repro.experiments.figures import fig5_series
from repro.metrics import ascii_series_plot, format_series_table


def test_fig5(benchmark, archive, replicates, stream_sweep, quick):
    sizes = (0, 100, 1000) if quick else (0, 10, 100, 500, 1000)

    def sweep():
        return fig5_series(
            base=ExperimentConfig(),
            sizes_mb=sizes,
            defaults=stream_sweep,
            replicates=replicates,
        )

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report = format_series_table(
        "Fig. 5 — execution time (s) vs default streams, greedy threshold 50",
        "streams",
        series,
    )
    report += "\n\n" + ascii_series_plot("Fig. 5", series)
    archive("fig5", {"series": [s.to_dict() for s in series]}, report)

    by_size = {s.label: s for s in series}
    baseline = by_size[f"{0} MB extra"]
    big = by_size[f"{1000} MB extra"]
    mid = by_size[f"{100} MB extra"]

    # Shape 1: time grows strongly with extra-file size >= 100 MB.
    for streams in stream_sweep:
        assert big.at(streams)[0] > 2.0 * baseline.at(streams)[0]
        assert mid.at(streams)[0] > 1.2 * baseline.at(streams)[0]

    # Shape 2: default streams per transfer have comparatively little
    # impact — each series varies < 20% across the whole sweep.
    for s in series:
        means = s.means()
        assert max(means) / min(means) < 1.2, s.label
