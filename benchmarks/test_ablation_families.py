"""A11 — does the policy's benefit generalize beyond Montage?

The paper evaluates only the (augmented) Montage workflow; its
introduction argues the approach serves data-intensive applications in
general.  We test that claim on two other classic Pegasus workload
shapes — an Epigenomics-like pipeline-parallel workflow and a
CyberShake-like two-stage fan-out — with their full datasets staged over
the WAN, comparing greedy@50 against an over-allocating greedy@200.
"""

import numpy as np

from repro.experiments import ExperimentConfig
from repro.experiments.environment import build_testbed
from repro.experiments.runner import run_workflow
from repro.workflow import cybershake_workflow, epigenomics_workflow

MB = 1_000_000

FAMILIES = {
    # 20 lanes x 400 MB reads: staging-dominated pipeline ingest.
    "epigenomics": lambda: epigenomics_workflow(
        lanes=20, chunks=2, read_size=400 * MB
    ),
    # 12 rupture sites x 2 SGT files of 350 MB: fan-out over shared inputs.
    "cybershake": lambda: cybershake_workflow(
        rupture_sites=12, variations=4, sgt_size=350 * MB
    ),
}


def run_family(build, threshold, streams, seed):
    cfg = ExperimentConfig(
        extra_file_mb=0,
        default_streams=streams,
        policy="greedy",
        threshold=threshold,
        remote_inputs=True,
        seed=seed,
    )
    bed = build_testbed(cfg.testbed, seed=seed)
    return run_workflow(cfg, build(), bed=bed)


def test_policy_benefit_across_workflow_families(benchmark, archive, replicates):
    def sweep():
        rows = {}
        for family, build in FAMILIES.items():
            t50 = [
                run_family(build, 50, 10, seed).makespan for seed in range(replicates)
            ]
            t200 = [
                run_family(build, 200, 10, seed).makespan for seed in range(replicates)
            ]
            rows[family] = {
                "thr50": float(np.mean(t50)),
                "thr200": float(np.mean(t200)),
            }
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "A11 — greedy@50 vs greedy@200 (10 streams/transfer), full datasets",
        "over the WAN, non-Montage workflow families:",
        f"{'family':14s} {'thr50 (s)':>10s} {'thr200 (s)':>11s} {'penalty':>9s}",
    ]
    for family, r in rows.items():
        penalty = r["thr200"] / r["thr50"] - 1
        lines.append(
            f"{family:14s} {r['thr50']:10.1f} {r['thr200']:11.1f} {penalty:+9.1%}"
        )
    report = "\n".join(lines)
    archive("ablation_families", rows, report)

    # Capping stream over-allocation helps every staging-heavy family.
    for family, r in rows.items():
        assert r["thr50"] < r["thr200"], family
