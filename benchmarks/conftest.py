"""Shared benchmark infrastructure.

Every benchmark regenerates one of the paper's evaluation artifacts
(Table IV, Figs 5-9) or an ablation, prints the series the paper reports,
and archives them under ``benchmarks/results/``.

Environment knobs:

``REPRO_REPLICATES``
    Runs per cell (default 3; the paper used >= 5).
``REPRO_QUICK``
    Set to 1 to shrink sweeps (smoke mode) — grids lose interior points
    but keep their endpoints so shape assertions still apply.
"""

import json
import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def replicates() -> int:
    return int(os.environ.get("REPRO_REPLICATES", "3"))


@pytest.fixture(scope="session")
def quick() -> bool:
    return os.environ.get("REPRO_QUICK", "0") == "1"


@pytest.fixture(scope="session")
def stream_sweep(quick):
    return (4, 8, 12) if quick else (4, 6, 8, 10, 12)


@pytest.fixture
def archive():
    """Persist a benchmark's series + report text under results/."""

    def _archive(name: str, payload: dict, report: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.json").write_text(json.dumps(payload, indent=2))
        (RESULTS_DIR / f"{name}.txt").write_text(report + "\n")
        print()
        print(report)

    return _archive
