"""Fig. 9 — 1 GB extra files: thresholds 50/100/200 vs no policy.

Paper shape: no clear advantage to using any of the greedy threshold
values over default Pegasus — these large, long-running transfers use all
available resources between source and destination regardless of policy.

In our reproduction the "policy vs no policy" part of that claim holds
(threshold 50 sits within a few percent of default Pegasus, inside the
run-to-run noise); the residual divergence — threshold 200 still pays its
congestion penalty at 1 GB in our steady-state model — is discussed in
EXPERIMENTS.md.
"""

from benchmarks.figcommon import (
    figure_report,
    payload,
    run_threshold_figure,
    series_by_threshold,
)


def test_fig9(benchmark, archive, replicates, stream_sweep):
    series, nop = benchmark.pedantic(
        run_threshold_figure, args=(1000, replicates, stream_sweep),
        rounds=1, iterations=1,
    )
    archive("fig9_1gb", payload(series, nop), figure_report(9, 1000, series, nop))

    by_thr = series_by_threshold(series)
    nop_mean = nop.at(4)[0]

    # No clear advantage of the policy over default Pegasus at 1 GB:
    # threshold 50 is within ~8% of the no-policy point in either direction.
    t50 = by_thr[50].at(4)[0]
    assert abs(t50 - nop_mean) / nop_mean < 0.08

    # Residual divergence (documented in EXPERIMENTS.md): our congestion
    # model is steady-state, so threshold 200 keeps paying its penalty at
    # 1 GB instead of washing out as in the paper's Fig. 9.  Bound it so a
    # regression toward catastrophic divergence is still caught.
    for streams in stream_sweep:
        assert by_thr[200].at(streams)[0] / by_thr[50].at(streams)[0] < 1.65
