"""A3 — structure-based staging priorities (paper §III.c, future work).

Compares the four priority algorithms (BFS, DFS, direct-dependent-based,
dependent-based) against unprioritized staging on the augmented Montage
workload with a tight staging throttle, where release order matters.
"""

from repro.experiments import ExperimentConfig
from repro.experiments.runner import run_replicates
from repro.metrics import Series, format_series_table

ALGORITHMS = [None, "bfs", "dfs", "direct-dependent", "dependent"]


def test_priority_algorithms(benchmark, archive, replicates):
    def sweep():
        series = Series(label="makespan")
        for algorithm in ALGORITHMS:
            cfg = ExperimentConfig(
                extra_file_mb=100,
                default_streams=4,
                policy="greedy",
                threshold=50,
                priority_algorithm=algorithm,
                order_by="priority" if algorithm else "urls",
                job_limit=5,   # tight throttle: release order matters
                seed=23,
            )
            metrics = run_replicates(cfg, replicates)
            series.add(algorithm or "none", [m.makespan for m in metrics])
        return series

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report = format_series_table(
        "A3 — structure-based priority algorithms (job limit 5, 100 MB extras)",
        "algorithm",
        [series],
    )
    archive("ablation_priorities", {"series": series.to_dict()}, report)

    # All algorithms complete; none is pathologically worse than baseline.
    baseline = series.at("none")[0]
    for algorithm in ALGORITHMS[1:]:
        assert series.at(algorithm)[0] < baseline * 1.25
