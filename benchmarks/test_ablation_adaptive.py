"""A9 — runtime-adaptive thresholds from recent transfer performance.

The paper's service gives advice based on "recent data transfer
performance" and proposes learning the best threshold.  We run a steady
staging campaign (continuous large-file arrivals — the big-data scenario
the paper motivates) with the threshold deliberately misconfigured at 200
and let the adaptive controller search at runtime.  It should converge
near the WAN's congestion knee (70 streams) and recover a substantial part
of the gap between the misconfigured and the well-tuned fixed threshold.
"""

import numpy as np

from repro.experiments.campaign import CampaignConfig, run_staging_campaign


def run_mode(seed, **kw):
    return run_staging_campaign(
        CampaignConfig(n_transfers=200, transfer_mb=200, seed=seed, **kw)
    )


def test_adaptive_recovers_from_misconfiguration(benchmark, archive, replicates):
    def compare():
        rows = []
        for seed in range(replicates):
            fixed50 = run_mode(seed, threshold=50)
            fixed200 = run_mode(seed, threshold=200)
            adaptive = run_mode(seed, threshold=200, adaptive=True)
            rows.append(
                {
                    "fixed50": fixed50.duration,
                    "fixed200": fixed200.duration,
                    "adaptive": adaptive.duration,
                    "final_threshold": adaptive.final_threshold,
                    "trajectory": [h[1] for h in adaptive.threshold_history],
                }
            )
        return rows

    rows = benchmark.pedantic(compare, rounds=1, iterations=1)
    f50 = float(np.mean([r["fixed50"] for r in rows]))
    f200 = float(np.mean([r["fixed200"] for r in rows]))
    adapt = float(np.mean([r["adaptive"] for r in rows]))
    recovered = (f200 - adapt) / (f200 - f50)
    report_lines = [
        "A9 — steady staging campaign (200 x 200 MB), threshold misconfigured",
        "at 200 vs the runtime-adaptive controller:",
        f"  fixed threshold 50 (well tuned):  {f50:8.1f} s",
        f"  fixed threshold 200 (misconfig):  {f200:8.1f} s",
        f"  adaptive (starting at 200):       {adapt:8.1f} s "
        f"({recovered:.0%} of the gap recovered)",
    ]
    for i, r in enumerate(rows):
        report_lines.append(
            f"  rep {i}: final threshold {r['final_threshold']}, "
            f"trajectory {r['trajectory']}"
        )
    report = "\n".join(report_lines)
    archive("ablation_adaptive", {"rows": rows}, report)

    # Adaptive clearly beats the misconfiguration...
    assert adapt < f200 * 0.95
    # ...and converges into the knee's neighbourhood.
    for r in rows:
        assert r["final_threshold"] < 120
