#!/usr/bin/env python
"""Guard: fair-share scheduling must cost (near) nothing per admission.

The fair-share scheduler does more work per ``select`` than FIFO — a
registry lookup and a stride division per queued candidate — but
admissions are rare next to the simulated transfers, jobs, and rule
firings they unleash, so an ensemble run under ``fair`` must be
indistinguishable from one under ``fifo``.

To isolate the scheduler (and not measure a different simulated
schedule), the workload uses a single tenant: with one tenant every
queued submission carries the same virtual pass, ties fall back to
arrival order, and ``fair`` reproduces FIFO's admission order exactly —
identical simulated work, different bookkeeping.  The run asserts this.

It fails (exit 1) when the fair-share median exceeds the FIFO median by
more than ``--threshold`` percent (default 2%).

Usage
-----
    PYTHONPATH=src python benchmarks/bench_ensemble.py [--quick]
        [--rounds N] [--threshold PCT] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import statistics
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


def _run_once(scheduler: str, n_workflows: int, n_images: int) -> tuple[float, list]:
    from repro.experiments import ExperimentConfig, run_tenant_ensemble
    from repro.tenancy import AdmissionConfig, TenantSpec
    from repro.workflow.montage import MB, MontageConfig, augmented_montage

    cfg = ExperimentConfig(extra_file_mb=5, n_images=n_images, seed=3)
    submissions = [
        (
            "default",
            augmented_montage(
                5 * MB,
                MontageConfig(n_images=n_images, name=f"wf{i}",
                              lfn_prefix=f"wf{i}_"),
            ),
        )
        for i in range(n_workflows)
    ]
    t0 = time.perf_counter()
    result = run_tenant_ensemble(
        cfg,
        tenants=[TenantSpec("default")],
        submissions=submissions,
        admission=AdmissionConfig(max_concurrent=2),
        scheduler=scheduler,
    )
    elapsed = time.perf_counter() - t0
    assert all(m.success for m in result.metrics)
    return elapsed, result.admission_order


def measure(rounds: int, n_workflows: int, n_images: int) -> dict:
    fifo_times: list[float] = []
    fair_times: list[float] = []
    # Interleave A/B so drift (thermal, GC pressure) hits both equally.
    for _ in range(rounds):
        fifo_s, fifo_order = _run_once("fifo", n_workflows, n_images)
        fair_s, fair_order = _run_once("fair", n_workflows, n_images)
        assert fifo_order == fair_order, "schedulers diverged: not comparable"
        fifo_times.append(fifo_s)
        fair_times.append(fair_s)
    fifo_median = statistics.median(fifo_times)
    fair_median = statistics.median(fair_times)
    return {
        "rounds": rounds,
        "workflows": n_workflows,
        "images": n_images,
        "fifo_s": fifo_times,
        "fair_s": fair_times,
        "fifo_median_s": fifo_median,
        "fair_median_s": fair_median,
        "overhead_pct": (fair_median / fifo_median - 1.0) * 100.0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller workload for CI smoke runs")
    parser.add_argument("--rounds", type=int, default=None,
                        help="interleaved measurement rounds per scheduler")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="max tolerated overhead percent (default 2)")
    parser.add_argument("--out", default=None, help="write the JSON report here")
    args = parser.parse_args(argv)

    quick = args.quick or os.environ.get("REPRO_QUICK") == "1"
    rounds = args.rounds if args.rounds is not None else (5 if quick else 9)
    n_workflows = 4 if quick else 8
    n_images = 6 if quick else 12

    # Warm-up (allocator, caches, imports).
    measure(1, 2, 4)
    report = measure(rounds, n_workflows, n_images)
    report["python"] = platform.python_version()
    report["threshold_pct"] = args.threshold

    print(f"fifo median: {report['fifo_median_s'] * 1e3:8.1f} ms")
    print(f"fair median: {report['fair_median_s'] * 1e3:8.1f} ms")
    print(f"overhead   : {report['overhead_pct']:+.2f}% "
          f"(threshold {args.threshold:.1f}%)")

    if args.out:
        pathlib.Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
        print(f"report written to {args.out}")

    if report["overhead_pct"] > args.threshold:
        print("FAIL: fair-share scheduling regresses ensemble runs",
              file=sys.stderr)
        return 1
    print("OK: fair-share scheduling is within the overhead budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
