"""A4 — cross-workflow sharing of staged files.

Two Montage instances over the *same* dataset run concurrently.  With a
shared Policy Service the second workflow's stage-ins are de-duplicated
(skips for staged files, waits for in-flight ones) and cleanup of shared
files is protected; with separate services every byte is staged twice.
"""

import numpy as np

from repro.experiments import ExperimentConfig
from repro.experiments.runner import run_concurrent_workflows
from repro.workflow.montage import MB, MontageConfig, augmented_montage


def run_pair(shared: bool, seed: int):
    cfg = ExperimentConfig(
        extra_file_mb=100,
        default_streams=4,
        policy="greedy",
        threshold=50,
        n_images=30,
        seed=seed,
    )
    workflows = [
        augmented_montage(100 * MB, MontageConfig(n_images=30, name="shared-data"))
        for _ in range(2)
    ]
    return run_concurrent_workflows(cfg, workflows, stagger=30.0, share_policy=shared)


def test_shared_service_halves_staged_bytes(benchmark, archive, replicates):
    def compare():
        rows = []
        for seed in range(replicates):
            shared = run_pair(True, seed)
            separate = run_pair(False, seed + 1000)
            rows.append(
                {
                    "shared_bytes": sum(m.bytes_staged for m in shared),
                    "separate_bytes": sum(m.bytes_staged for m in separate),
                    "shared_wf2_makespan": shared[1].makespan,
                    "separate_wf2_makespan": separate[1].makespan,
                    "wf2_skipped": shared[1].transfers_skipped,
                    "wf2_waited": shared[1].transfers_waited,
                }
            )
        return rows

    rows = benchmark.pedantic(compare, rounds=1, iterations=1)
    shared_bytes = float(np.mean([r["shared_bytes"] for r in rows]))
    separate_bytes = float(np.mean([r["separate_bytes"] for r in rows]))
    report = (
        "A4 — two concurrent Montage instances over the same dataset:\n"
        f"  bytes staged, shared policy service:   {shared_bytes / 1e9:8.2f} GB\n"
        f"  bytes staged, separate policy state:   {separate_bytes / 1e9:8.2f} GB\n"
        f"  wf2 skips (already staged): {np.mean([r['wf2_skipped'] for r in rows]):.1f}\n"
        f"  wf2 waits (in-flight):      {np.mean([r['wf2_waited'] for r in rows]):.1f}\n"
    )
    archive("ablation_multiworkflow", {"rows": rows}, report)

    # Sharing saves close to half the bytes (wf2 restages almost nothing).
    assert shared_bytes < separate_bytes * 0.65
    # And the second workflow actually skipped/waited instead of staging.
    assert all(r["wf2_skipped"] + r["wf2_waited"] > 0 for r in rows)
