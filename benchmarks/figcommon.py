"""Shared driver for Figs. 6-9 (threshold comparison at a fixed size)."""

from repro.experiments import ExperimentConfig
from repro.experiments.figures import fig_threshold_series, no_policy_point
from repro.metrics import ascii_series_plot, format_series_table

THRESHOLDS = (50, 100, 200)


def run_threshold_figure(size_mb, replicates, stream_sweep):
    """All series for one of Figs. 6-9: thresholds + the no-policy point."""
    series = fig_threshold_series(
        size_mb,
        base=ExperimentConfig(),
        thresholds=THRESHOLDS,
        defaults=stream_sweep,
        replicates=replicates,
    )
    nop = no_policy_point(size_mb, base=ExperimentConfig(), replicates=replicates)
    return series, nop


def figure_report(fig_no, size_mb, series, nop):
    title = (
        f"Fig. {fig_no} — execution time (s) with additional {size_mb} MB files, "
        f"greedy thresholds vs no policy"
    )
    report = format_series_table(title, "streams", series)
    mean, std = nop.at(4)
    report += (
        f"\n\nno policy (default Pegasus, 4 streams/transfer): "
        f"{mean:.1f} ± {std:.1f} s"
    )
    report += "\n\n" + ascii_series_plot(f"Fig. {fig_no}", series)
    return report


def payload(series, nop):
    return {"series": [s.to_dict() for s in series], "no_policy": nop.to_dict()}


def series_by_threshold(series):
    return {
        int(s.label.rsplit(" ", 1)[-1]): s
        for s in series
    }
