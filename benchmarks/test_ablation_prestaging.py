"""A12 — prestaging vs on-demand staging.

The paper's earlier work ([13] Chervenak et al. 2007) prestaged input
data near expected computation sites and measured the improvement when
the workflow later accessed prestaged data.  We reproduce that scenario:
the big extra files are staged to the execution site *before* the
workflow runs (e.g. overnight), so the planner finds local replicas and
emits no WAN transfers.

The comparison separates two questions the literature often conflates:
workflow *latency* (prestaging wins — staging is off the critical path)
and *total* data-movement cost (identical bytes move either way; on-demand
staging overlaps them with computation).
"""

import numpy as np

from repro.experiments import ExperimentConfig
from repro.experiments.campaign import CampaignConfig, run_staging_campaign
from repro.experiments.environment import build_testbed
from repro.experiments.runner import run_workflow
from repro.workflow.montage import MB, EXTRA_FILE_PREFIX, MontageConfig, augmented_montage

EXTRA_MB = 100
N_IMAGES = 89


def on_demand(seed):
    cfg = ExperimentConfig(
        extra_file_mb=EXTRA_MB, default_streams=8, policy="greedy",
        threshold=50, n_images=N_IMAGES, seed=seed,
    )
    bed = build_testbed(cfg.testbed, seed=seed)
    wf = augmented_montage(EXTRA_MB * MB, MontageConfig(n_images=N_IMAGES, name="m"))
    return run_workflow(cfg, wf, bed=bed)


def prestaged(seed):
    cfg = ExperimentConfig(
        extra_file_mb=EXTRA_MB, default_streams=8, policy="greedy",
        threshold=50, n_images=N_IMAGES, seed=seed,
    )
    bed = build_testbed(cfg.testbed, seed=seed)
    wf = augmented_montage(EXTRA_MB * MB, MontageConfig(n_images=N_IMAGES, name="m"))
    # The extras already sit on the execution site's scratch (prestaged
    # earlier): the planner will find the local replicas and skip the WAN.
    site = bed.sites.get("isi")
    for f in wf.input_files():
        if EXTRA_FILE_PREFIX in f.lfn:
            bed.replicas.register(f.lfn, "isi", site.url_for(f.lfn))
    return run_workflow(cfg, wf, bed=bed)


def prestage_cost(seed):
    """What the earlier prestaging campaign itself cost (same bytes)."""
    result = run_staging_campaign(
        CampaignConfig(
            n_transfers=N_IMAGES, transfer_mb=EXTRA_MB, workers=20,
            default_streams=8, threshold=50, seed=seed,
        )
    )
    return result.duration


def test_prestaging(benchmark, archive, replicates):
    def compare():
        rows = []
        for seed in range(replicates):
            rows.append(
                {
                    "on_demand_makespan": on_demand(seed).makespan,
                    "prestaged_makespan": prestaged(seed).makespan,
                    "prestage_campaign": prestage_cost(seed),
                }
            )
        return rows

    rows = benchmark.pedantic(compare, rounds=1, iterations=1)
    od = float(np.mean([r["on_demand_makespan"] for r in rows]))
    ps = float(np.mean([r["prestaged_makespan"] for r in rows]))
    pc = float(np.mean([r["prestage_campaign"] for r in rows]))
    report = (
        "A12 — prestaging vs on-demand staging (89 x 100 MB extras):\n"
        f"  on-demand workflow makespan:         {od:8.1f} s\n"
        f"  prestaged workflow makespan:         {ps:8.1f} s "
        f"({(od - ps) / od:.0%} faster)\n"
        f"  earlier prestaging campaign cost:    {pc:8.1f} s\n"
        f"  prestage total (campaign+workflow):  {pc + ps:8.1f} s\n"
        "Prestaging removes staging from the workflow's critical path; the\n"
        "bytes still cross the WAN, so ahead-of-time capacity is what buys\n"
        "the latency win."
    )
    archive("ablation_prestaging", {"rows": rows}, report)

    assert ps < od * 0.85            # prestaged workflow is clearly faster
    assert pc + ps > od * 0.9        # but total movement work is not free
