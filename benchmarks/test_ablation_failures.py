"""A15 — failure resilience: policy memory avoids restaging on retries.

Pegasus retries a failed staging job wholesale (the paper's runs use five
retries).  Without the Policy Service the retry re-transfers every file of
the job; with it, the transfers that had already completed are recognized
("file already staged") and skipped, so only the genuinely missing bytes
cross the WAN again.

The effect is amplified by clustering: a clustered staging job carries
many transfers, so a single mid-list failure invalidates a lot of
completed work.  We run with clustering factor 5 (6 images + 6 extras per
clustered job) and sweep the injected per-transfer failure rate.
"""

from dataclasses import replace

import numpy as np

from repro.experiments import ExperimentConfig, TestbedParams
from repro.experiments.runner import run_replicates
from repro.metrics import Series, format_series_table

FAILURE_RATES = (0.0, 0.05, 0.1)
# Total useful bytes: 30 staging jobs x (2 MB image + 100 MB extra) + header.
USEFUL_BYTES = 30 * 102e6 + 1e3


def run_mode(policy, rate, replicates):
    cfg = ExperimentConfig(
        extra_file_mb=100,
        default_streams=4,
        policy=policy,
        threshold=50,
        n_images=30,
        cluster_factor=5,  # many transfers per staging job: waste amplifier
        retries=30,  # generous so every run finishes even under failures
        seed=61,
        testbed=replace(TestbedParams(), failure_rate=rate),
    )
    return run_replicates(cfg, replicates)


def test_policy_reduces_restaging_waste(benchmark, archive, replicates):
    def sweep():
        makespans = {"greedy": Series(label="greedy@50 makespan"),
                     "none": Series(label="no-policy makespan")}
        waste = {"greedy": Series(label="greedy@50 wasted GB"),
                 "none": Series(label="no-policy wasted GB")}
        for rate in FAILURE_RATES:
            for key, policy in (("greedy", "greedy"), ("none", None)):
                metrics = run_mode(policy, rate, replicates)
                makespans[key].add(rate, [m.makespan for m in metrics])
                waste[key].add(
                    rate,
                    [max(0.0, m.bytes_staged - USEFUL_BYTES) / 1e9 for m in metrics],
                )
        return makespans, waste

    makespans, waste = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report = format_series_table(
        "A15 — transfer failure rate vs makespan and wasted (restaged) GB, "
        "30 x 100 MB extras",
        "failure rate",
        [makespans["greedy"], makespans["none"], waste["greedy"], waste["none"]],
    )
    archive(
        "ablation_failures",
        {
            "makespan_greedy": makespans["greedy"].to_dict(),
            "makespan_none": makespans["none"].to_dict(),
            "waste_greedy": waste["greedy"].to_dict(),
            "waste_none": waste["none"].to_dict(),
        },
        report,
    )

    # Without failures neither mode wastes bytes.
    assert waste["greedy"].at(0.0)[0] == 0.0
    assert waste["none"].at(0.0)[0] == 0.0
    # Under failures, the policy's staged-file memory wastes clearly fewer
    # bytes than wholesale job retries.
    for rate in FAILURE_RATES[1:]:
        assert waste["greedy"].at(rate)[0] < waste["none"].at(rate)[0]
    # At the highest rate the savings are substantial (>= 4x less waste)
    # and show up in wall time as well.
    assert waste["greedy"].at(0.1)[0] < waste["none"].at(0.1)[0] * 0.25
    assert makespans["greedy"].at(0.1)[0] < makespans["none"].at(0.1)[0]
