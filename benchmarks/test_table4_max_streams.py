"""Table IV — maximum streams for simultaneous transfers.

Regenerates the paper's Table IV analytically (the greedy allocator with
20 concurrent staging jobs) and cross-checks it against (a) the rule
engine's operational allocations and (b) the peak streams observed on the
simulated WAN during a real workflow run.
"""

import pytest

from repro.experiments import ExperimentConfig, run_cell
from repro.policy import PolicyConfig, PolicyService
from repro.policy.allocation import (
    TABLE4_DEFAULTS,
    TABLE4_THRESHOLDS,
    format_table4,
    greedy_allocation_trace,
    max_streams_table,
)

#: The paper's Table IV, verbatim.
PAPER_TABLE4 = {
    50: {4: 57, 6: 61, 8: 63, 10: 65, 12: 65},
    100: {4: 80, 6: 103, 8: 107, 10: 110, 12: 111},
    200: {4: 80, 6: 120, 8: 160, 10: 200, 12: 203},
}


def test_table4_analytic(benchmark, archive):
    table = benchmark(max_streams_table)
    report = "Table IV — maximum streams for simultaneous transfers\n"
    report += format_table4(table)
    archive("table4_analytic", table_to_json(table), report)
    assert table["no_policy"] == 80
    for threshold, row in PAPER_TABLE4.items():
        for default, expected in row.items():
            assert table["greedy"][threshold][default] == expected


def test_table4_rule_engine_agreement(benchmark):
    """The Drools-like rule packs produce the same allocations."""

    def engine_table():
        out = {}
        for threshold in TABLE4_THRESHOLDS:
            row = {}
            for default in TABLE4_DEFAULTS:
                service = PolicyService(
                    PolicyConfig(
                        policy="greedy", default_streams=default, max_streams=threshold
                    )
                )
                grants = [
                    service.submit_transfers(
                        "wf",
                        f"j{i}",
                        [
                            {
                                "lfn": f"f{i}",
                                "src_url": f"gsiftp://src/d/f{i}",
                                "dst_url": f"gsiftp://dst/s/f{i}",
                                "nbytes": 1.0,
                            }
                        ],
                    )[0].streams
                    for i in range(20)
                ]
                row[default] = sum(grants)
            out[threshold] = row
        return out

    table = benchmark.pedantic(engine_table, rounds=1, iterations=1)
    for threshold, row in PAPER_TABLE4.items():
        assert table[threshold] == row


def test_table4_observed_on_simulated_wan(benchmark, archive):
    """Peak WAN streams in a live run never exceed the analytic maximum
    and reach it while the staging queue is saturated."""

    def observe():
        peaks = {}
        for threshold in (50, 200):
            cfg = ExperimentConfig(
                extra_file_mb=100,
                default_streams=8,
                policy="greedy",
                threshold=threshold,
                seed=0,
            )
            peaks[threshold] = run_cell(cfg).peak_streams.get("wan", 0)
        return peaks

    peaks = benchmark.pedantic(observe, rounds=1, iterations=1)
    report = "Peak WAN streams observed in simulation (default streams = 8):\n"
    for threshold, peak in peaks.items():
        analytic = sum(greedy_allocation_trace(20, 8, threshold))
        report += f"  greedy threshold {threshold}: observed {peak}, analytic max {analytic}\n"
        assert peak <= analytic
        assert peak >= 0.9 * analytic  # saturated queue reaches the bound
    archive("table4_observed", {str(k): v for k, v in peaks.items()}, report)


def table_to_json(table: dict) -> dict:
    return {
        "no_policy": table["no_policy"],
        "greedy": {
            str(t): {str(d): v for d, v in row.items()}
            for t, row in table["greedy"].items()
        },
    }
