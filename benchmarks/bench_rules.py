#!/usr/bin/env python
"""Rule-engine microbenchmark: compiled vs indexed vs seed policy engine.

Measures the policy service's decision hot path under the regime the
paper's future work worries about — a long-lived Policy Memory serving
large transfer batches — and emits ``BENCH_rules.json`` so the repo's
perf trajectory has a committed baseline per PR.

Scenarios
---------
``calibration``
    A scale small enough that the seed (full re-scan) engine finishes,
    giving a *measured* speedup for all three engines.
``batch``
    The acceptance scenario: one 1,000-transfer batch against a memory
    pre-loaded with 10,000 staged-file facts.  The seed engine is run in
    a subprocess under a timeout budget; when it times out the reported
    speedup is a **lower bound** (budget / indexed time).  The compiled
    engine (join network + memoized partial matches) must beat the
    indexed engine by >= 10x here, with byte-identical advice.
``long_lived``
    Repeated workflow lifetimes against one service (indexed *and*
    compiled): per-batch latency must stay flat and the fact census
    empty, demonstrating the bounded-retention fixes (no leak-driven
    slowdown, no residual per-workflow facts).
``rest_concurrency``
    The same concurrent REST workload driven against the thread-per-
    request frontend and the asyncio frontend, plus a single-connection
    pipelined burst only the asyncio frontend can serve.  Reported for
    trend-watching; no pass/fail guard (HTTP timing is noisy in CI).
``sharded``
    Batch-advice throughput through the shard router with every shard a
    separate :class:`~repro.policy.sharding.ProcessShardBackend` worker
    process, 1 shard vs 4.  Pairs are spread over 16 source sites so the
    consistent-hash ring splits each batch across the fleet and the
    per-shard rule evaluations overlap.  On hosts with >= 4 cores the
    shards run concurrently and wall-clock throughput is the metric; on
    starved CI hosts the dispatch falls back to serial, each shard's RPC
    is timed individually, and the metric is the measured **critical
    path** (router overhead + slowest shard per batch — the wall time
    the same run takes once each shard has a core).  Full runs must show
    >= 1.6x critical-path throughput at 4 shards vs 1.

Usage
-----
    PYTHONPATH=src python benchmarks/bench_rules.py [--quick] [--out PATH]

``--quick`` (or ``REPRO_QUICK=1``) shrinks every scenario for CI smoke
runs.  Each engine measurement runs in a fresh subprocess so the
engines never share interpreter state and the seed run can be killed.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import pathlib
import platform
import subprocess
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

SEED_TIMEOUT = 120.0  # seconds granted to the seed engine per scenario

# The compiled engine's acceptance bar against indexed on the ``batch``
# scenario.  Quick mode runs a ~10x smaller problem where fixed per-batch
# overheads dominate, so the bar is lower there.
COMPILED_SPEEDUP_FULL = 10.0
COMPILED_SPEEDUP_QUICK = 1.5


def _build_service(engine: str, staged: int):
    from repro.policy import PolicyConfig, PolicyService
    from repro.policy.model import StagedFileFact

    service = PolicyService(
        PolicyConfig(policy="greedy", default_streams=4, max_streams=4000),
        engine=engine,
    )
    for i in range(staged):
        fact = StagedFileFact(
            lfn=f"pre{i}",
            dst_url=f"gsiftp://obelix/pre/{i}",
            owner_tid=-1,
            workflow="wfpre",
        )
        fact.status = "staged"
        service.memory.insert(fact)
    return service


def _specs(n: int, tag: str = "f"):
    return [
        {
            "lfn": f"{tag}{i}",
            "src_url": f"gsiftp://fg-vm/data/{tag}{i}",
            "dst_url": f"gsiftp://obelix/scratch/{tag}{i}",
            "nbytes": 1000.0,
        }
        for i in range(n)
    ]


def run_batch(engine: str, staged: int, transfers: int) -> dict:
    """One submit_transfers batch; the measured hot path."""
    service = _build_service(engine, staged)
    specs = _specs(transfers)
    t0 = time.perf_counter()
    advice = service.submit_transfers("bench", "stage", specs)
    elapsed = time.perf_counter() - t0
    approved = sum(1 for a in advice if a.action == "transfer")
    digest = hashlib.sha256(
        json.dumps([a.to_dict() for a in advice], sort_keys=True).encode()
    ).hexdigest()
    return {
        "elapsed_s": elapsed,
        "approved": approved,
        "advice": len(advice),
        "advice_sha256": digest,
    }


def run_long_lived(engine: str, lifetimes: int, per_batch: int) -> dict:
    """Repeated workflow lifetimes on one service."""
    service = _build_service(engine, staged=0)
    latencies = []
    for life in range(lifetimes):
        wf = f"wf{life}"
        t0 = time.perf_counter()
        advice = service.submit_transfers(
            wf, "stage", _specs(per_batch, tag=f"{wf}-")
        )
        latencies.append(time.perf_counter() - t0)
        service.complete_transfers(done=[a.tid for a in advice])
        service.unregister_workflow(wf)
    census = service.snapshot()["memory"]
    head = latencies[: max(1, lifetimes // 3)]
    tail = latencies[-max(1, lifetimes // 3):]
    return {
        "engine": engine,
        "lifetimes": lifetimes,
        "per_batch": per_batch,
        "mean_first_third_s": sum(head) / len(head),
        "mean_last_third_s": sum(tail) / len(tail),
        "residual_facts": census,
    }


# -- REST frontend throughput ------------------------------------------------
def _drive_clients(url: str, clients: int, requests_each: int) -> float:
    """Concurrent keep-alive clients, each issuing sequential POSTs."""
    import http.client
    import threading
    import urllib.parse

    parsed = urllib.parse.urlsplit(url)
    errors: list = []

    def worker(cid: int) -> None:
        conn = http.client.HTTPConnection(parsed.hostname, parsed.port)
        try:
            for i in range(requests_each):
                doc = {
                    "workflow": f"wf{cid}",
                    "job": "stage",
                    "transfers": _specs(1, tag=f"c{cid}r{i}-"),
                }
                conn.request(
                    "POST", "/policy/transfers",
                    json.dumps(doc).encode(),
                    {"Content-Type": "application/json"},
                )
                resp = conn.getresponse()
                body = resp.read()
                if resp.status != 200:
                    errors.append((cid, i, resp.status, body[:200]))
                    return
        except Exception as exc:  # noqa: BLE001 - report, don't hang the bench
            errors.append((cid, "exception", repr(exc)))
        finally:
            conn.close()

    threads = [
        threading.Thread(target=worker, args=(cid,)) for cid in range(clients)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t0
    if errors:
        raise RuntimeError(f"REST clients failed: {errors[:3]}")
    return elapsed


def _pipelined_burst(url: str, total: int) -> float:
    """One connection, every request written before any response is read."""
    import socket
    import urllib.parse

    parsed = urllib.parse.urlsplit(url)

    def request_bytes(i: int) -> bytes:
        doc = {
            "workflow": "wfpipe",
            "job": "stage",
            "transfers": _specs(1, tag=f"p{i}-"),
        }
        body = json.dumps(doc).encode()
        head = (
            f"POST /policy/transfers HTTP/1.1\r\n"
            f"Host: {parsed.hostname}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        ).encode()
        return head + body

    payload = b"".join(request_bytes(i) for i in range(total))
    sock = socket.create_connection((parsed.hostname, parsed.port), timeout=60)
    try:
        t0 = time.perf_counter()
        sock.sendall(payload)
        fp = sock.makefile("rb")
        for i in range(total):
            status = fp.readline().decode()
            if " 200 " not in status:
                raise RuntimeError(f"pipelined request {i} got {status!r}")
            length = 0
            while True:
                line = fp.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode().partition(":")
                if name.strip().lower() == "content-length":
                    length = int(value.strip())
            fp.read(length)
        return time.perf_counter() - t0
    finally:
        sock.close()


def run_rest_concurrency(clients: int, requests_each: int) -> dict:
    """Threaded vs asyncio REST frontend under the same concurrent load."""
    from repro.policy import (
        AsyncPolicyRestServer,
        PolicyConfig,
        PolicyRestServer,
        PolicyService,
    )

    total = clients * requests_each
    results: dict = {"clients": clients, "requests_per_client": requests_each}
    for name, frontend in (
        ("threaded", PolicyRestServer),
        ("async", AsyncPolicyRestServer),
    ):
        service = PolicyService(
            PolicyConfig(policy="greedy", default_streams=4, max_streams=4000),
            engine="compiled",
        )
        server = frontend(service).start()
        try:
            elapsed = _drive_clients(server.url, clients, requests_each)
        finally:
            server.stop()
        results[name] = {
            "requests": total,
            "elapsed_s": elapsed,
            "req_per_s": total / elapsed,
        }

    service = PolicyService(
        PolicyConfig(policy="greedy", default_streams=4, max_streams=4000),
        engine="compiled",
    )
    server = AsyncPolicyRestServer(service).start()
    try:
        elapsed = _pipelined_burst(server.url, total)
    finally:
        server.stop()
    results["async_pipelined"] = {
        "requests": total,
        "elapsed_s": elapsed,
        "req_per_s": total / elapsed,
    }
    results["async_vs_threaded"] = (
        results["async"]["req_per_s"] / results["threaded"]["req_per_s"]
    )
    return results


# -- sharded batch-advice scaling --------------------------------------------
SHARDED_SPEEDUP_FULL = 1.6  # 4-shard throughput bar vs 1 shard


def _sharded_specs(batch: int, batch_size: int, sites: int):
    """One batch whose (src, dst) pairs spread across ``sites`` sources."""
    specs = []
    for i in range(batch_size):
        site = f"site{i % sites}"
        lfn = f"b{batch}f{i}"
        specs.append({
            "lfn": lfn,
            "src_url": f"gsiftp://{site}/data/{lfn}",
            "dst_url": f"gsiftp://obelix/scratch/{lfn}",
            "nbytes": 1000.0,
        })
    return specs


class _TimedBackend:
    """Shard-backend shim that records the wall time of every RPC."""

    def __init__(self, inner):
        self.inner = inner
        self.calls: list[float] = []

    def invoke(self, name, *args, **kwargs):
        t0 = time.perf_counter()
        try:
            return self.inner.invoke(name, *args, **kwargs)
        finally:
            self.calls.append(time.perf_counter() - t0)

    def metrics_text(self):
        return self.inner.metrics_text()

    def crash(self):
        self.inner.crash()

    def recover(self):
        self.inner.recover()

    def close(self):
        self.inner.close()


def run_sharded(num_shards: int, batches: int, batch_size: int,
                sites: int = 16) -> dict:
    """Drive submit_transfers batches through an N-process shard fleet.

    Both arms (1 shard and 4) go through the router with process-backed
    shards, so the pipe-RPC overhead cancels and the ratio isolates the
    parallel rule evaluation.  When the host has fewer cores than
    shards, dispatch runs serially (concurrent workers would only
    contend) and the **critical path** is derived per batch from the
    individually-timed shard RPCs: router overhead plus the slowest
    shard — the wall time of the identical run on an unstarved host.
    With enough cores the dispatch is concurrent and the critical path
    IS the measured wall time.
    """
    from repro.policy import PolicyConfig
    from repro.policy.sharding import ProcessShardBackend, ShardedPolicyService

    cpus = len(os.sched_getaffinity(0))
    concurrent = cpus >= num_shards
    config = PolicyConfig(policy="greedy", default_streams=4, max_streams=4000)
    backends = [
        _TimedBackend(ProcessShardBackend(config, engine="compiled"))
        for _ in range(num_shards)
    ]
    router = ShardedPolicyService(
        config, num_shards=num_shards, engine="compiled", backends=backends,
        concurrent=concurrent,
    )
    try:
        # Warm up: fork the workers' rule sessions before the clock starts.
        router.submit_transfers("bench", "warmup",
                                _sharded_specs(-1, batch_size, sites))
        total = 0
        wall = 0.0
        critical = 0.0
        for b in range(batches):
            for backend in backends:
                backend.calls.clear()
            t0 = time.perf_counter()
            advice = router.submit_transfers(
                "bench", f"job{b}", _sharded_specs(b, batch_size, sites))
            elapsed = time.perf_counter() - t0
            wall += elapsed
            total += len(advice)
            shard_times = [sum(backend.calls) for backend in backends]
            if concurrent:
                # Shards overlapped — the wall time already is the path.
                critical += elapsed
            else:
                # Serial dispatch: replace the summed shard time with the
                # slowest shard to get the unstarved-host wall time.
                critical += elapsed - sum(shard_times) + max(shard_times)
    finally:
        router.close()
    return {
        "shards": num_shards,
        "batches": batches,
        "batch_size": batch_size,
        "sites": sites,
        "cpus": cpus,
        "concurrent": concurrent,
        "advice": total,
        "elapsed_s": wall,
        "advice_per_s": total / wall,
        "critical_path_s": critical,
        "critical_path_advice_per_s": total / critical,
    }


def run_sharded_scaling(batches: int, batch_size: int) -> dict:
    results = {}
    for shards in (1, 4):
        results[str(shards)] = run_sharded(shards, batches, batch_size)
        r = results[str(shards)]
        print(f"  {shards} shard(s): {r['advice_per_s']:.0f} advice/s wall, "
              f"{r['critical_path_advice_per_s']:.0f} advice/s critical-path "
              f"({'concurrent' if r['concurrent'] else 'serial'}, "
              f"{r['cpus']} cpus)", flush=True)
    results["speedup_4_vs_1"] = (
        results["4"]["advice_per_s"] / results["1"]["advice_per_s"]
    )
    results["critical_path_speedup_4_vs_1"] = (
        results["4"]["critical_path_advice_per_s"]
        / results["1"]["critical_path_advice_per_s"]
    )
    return results


# -- subprocess driver -------------------------------------------------------
def _worker_main(engine: str, staged: int, transfers: int) -> None:
    print(json.dumps(run_batch(engine, staged, transfers)))


def _measure(engine: str, staged: int, transfers: int, timeout: float) -> dict:
    """Run one batch measurement in a fresh interpreter."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    cmd = [
        sys.executable, str(pathlib.Path(__file__).resolve()),
        "--worker", engine, str(staged), str(transfers),
    ]
    try:
        proc = subprocess.run(
            cmd, env=env, capture_output=True, text=True, timeout=timeout
        )
    except subprocess.TimeoutExpired:
        return {"engine": engine, "timed_out": True, "timeout_s": timeout}
    if proc.returncode != 0:
        raise RuntimeError(f"{engine} worker failed:\n{proc.stderr}")
    result = json.loads(proc.stdout.strip().splitlines()[-1])
    result.update({"engine": engine, "timed_out": False})
    return result


def _scenario(name: str, staged: int, transfers: int, timeout: float) -> dict:
    print(f"[{name}] staged={staged} transfers={transfers}", flush=True)
    indexed = _measure("indexed", staged, transfers, timeout)
    print(f"  indexed: {indexed['elapsed_s']:.3f}s", flush=True)
    compiled = _measure("compiled", staged, transfers, timeout)
    compiled_speedup = indexed["elapsed_s"] / compiled["elapsed_s"]
    print(f"  compiled: {compiled['elapsed_s']:.3f}s "
          f"-> {compiled_speedup:.1f}x vs indexed", flush=True)
    if compiled["advice_sha256"] != indexed["advice_sha256"]:
        raise RuntimeError(
            "compiled and indexed engines produced different advice")
    seed = _measure("seed", staged, transfers, timeout)
    if seed["timed_out"]:
        speedup = timeout / indexed["elapsed_s"]
        kind = "lower_bound"
        print(f"  seed: timed out after {timeout:.0f}s -> speedup >= {speedup:.1f}x",
              flush=True)
    else:
        speedup = seed["elapsed_s"] / indexed["elapsed_s"]
        kind = "measured"
        print(f"  seed: {seed['elapsed_s']:.3f}s -> speedup {speedup:.1f}x",
              flush=True)
        if seed["advice_sha256"] != indexed["advice_sha256"]:
            raise RuntimeError(
                "seed and indexed engines produced different advice")
    return {
        "staged_files": staged,
        "transfer_batch": transfers,
        "indexed": indexed,
        "compiled": compiled,
        "seed": seed,
        "speedup": speedup,
        "speedup_kind": kind,
        "compiled_speedup_vs_indexed": compiled_speedup,
        "advice_identical": True,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_rules.json"))
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke scale (also via REPRO_QUICK=1)")
    parser.add_argument("--seed-timeout", type=float, default=SEED_TIMEOUT)
    parser.add_argument("--worker", nargs=3, metavar=("ENGINE", "STAGED", "N"),
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.worker:
        engine, staged, transfers = args.worker
        _worker_main(engine, int(staged), int(transfers))
        return 0

    quick = args.quick or os.environ.get("REPRO_QUICK", "0") == "1"
    if quick:
        calibration = (200, 20)
        batch = (1000, 100)
        lifetimes, per_batch = (10, 10)
        clients, requests_each = (4, 10)
    else:
        calibration = (500, 50)
        batch = (10_000, 1000)
        lifetimes, per_batch = (30, 20)
        clients, requests_each = (8, 25)

    report = {
        "benchmark": "bench_rules",
        "quick": quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "seed_timeout_s": args.seed_timeout,
        "scenarios": {
            "calibration": _scenario("calibration", *calibration,
                                     timeout=args.seed_timeout),
            "batch": _scenario("batch", *batch, timeout=args.seed_timeout),
        },
    }
    print("[long_lived]", flush=True)
    report["scenarios"]["long_lived"] = {}
    for engine in ("indexed", "compiled"):
        ll = run_long_lived(engine, lifetimes, per_batch)
        report["scenarios"]["long_lived"][engine] = ll
        print(f"  {engine}: first third {ll['mean_first_third_s'] * 1e3:.1f}ms/batch, "
              f"last third {ll['mean_last_third_s'] * 1e3:.1f}ms/batch, "
              f"residual facts: {ll['residual_facts'] or '{}'}", flush=True)

    print("[sharded]", flush=True)
    sharded_batches, sharded_size = (4, 64) if quick else (12, 128)
    report["scenarios"]["sharded"] = run_sharded_scaling(
        sharded_batches, sharded_size)
    print(f"  4-vs-1 shard speedup: "
          f"{report['scenarios']['sharded']['speedup_4_vs_1']:.2f}x wall, "
          f"{report['scenarios']['sharded']['critical_path_speedup_4_vs_1']:.2f}x "
          f"critical-path", flush=True)

    print("[rest_concurrency]", flush=True)
    rest = run_rest_concurrency(clients, requests_each)
    report["scenarios"]["rest_concurrency"] = rest
    print(f"  threaded: {rest['threaded']['req_per_s']:.0f} req/s, "
          f"async: {rest['async']['req_per_s']:.0f} req/s "
          f"({rest['async_vs_threaded']:.2f}x), "
          f"async pipelined: {rest['async_pipelined']['req_per_s']:.0f} req/s",
          flush=True)

    out = pathlib.Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")

    failures = []
    for name in ("calibration", "batch"):
        if report["scenarios"][name]["speedup"] < 5.0:
            failures.append(f"{name}: indexed-vs-seed speedup below 5x")
    compiled_bar = COMPILED_SPEEDUP_QUICK if quick else COMPILED_SPEEDUP_FULL
    batch_compiled = report["scenarios"]["batch"]["compiled_speedup_vs_indexed"]
    if batch_compiled < compiled_bar:
        failures.append(
            f"batch: compiled-vs-indexed speedup {batch_compiled:.1f}x "
            f"below {compiled_bar:.0f}x")
    for engine, ll in report["scenarios"]["long_lived"].items():
        if ll["residual_facts"]:
            failures.append(
                f"long_lived[{engine}]: residual facts {ll['residual_facts']}")
    sharded_speedup = report["scenarios"]["sharded"][
        "critical_path_speedup_4_vs_1"]
    if not quick and sharded_speedup < SHARDED_SPEEDUP_FULL:
        failures.append(
            f"sharded: 4-vs-1 critical-path speedup {sharded_speedup:.2f}x "
            f"below {SHARDED_SPEEDUP_FULL:.1f}x")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(f"PASS: >=5x vs seed, >={compiled_bar:.0f}x compiled vs indexed, "
          "no residual facts"
          + ("" if quick else
             f", >={SHARDED_SPEEDUP_FULL:.1f}x sharded 4-vs-1"))
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(SRC))
    raise SystemExit(main())
