#!/usr/bin/env python
"""Rule-engine microbenchmark: indexed vs seed policy engine.

Measures the policy service's decision hot path under the regime the
paper's future work worries about — a long-lived Policy Memory serving
large transfer batches — and emits ``BENCH_rules.json`` so the repo's
perf trajectory has a committed baseline per PR.

Scenarios
---------
``calibration``
    A scale small enough that the seed (full re-scan) engine finishes,
    giving a *measured* speedup.
``batch``
    The acceptance scenario: one 1,000-transfer batch against a memory
    pre-loaded with 10,000 staged-file facts.  The seed engine is run in
    a subprocess under a timeout budget; when it times out the reported
    speedup is a **lower bound** (budget / indexed time).  Extrapolating
    from the calibration scale, the seed engine would need hours here.
``long_lived``
    Repeated workflow lifetimes against one indexed service: per-batch
    latency must stay flat and the fact census empty, demonstrating the
    bounded-retention fixes (no leak-driven slowdown).

Usage
-----
    PYTHONPATH=src python benchmarks/bench_rules.py [--quick] [--out PATH]

``--quick`` (or ``REPRO_QUICK=1``) shrinks every scenario for CI smoke
runs.  Each engine measurement runs in a fresh subprocess so the two
engines never share interpreter state and the seed run can be killed.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import subprocess
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

SEED_TIMEOUT = 120.0  # seconds granted to the seed engine per scenario


def _build_service(engine: str, staged: int):
    from repro.policy import PolicyConfig, PolicyService
    from repro.policy.model import StagedFileFact

    service = PolicyService(
        PolicyConfig(policy="greedy", default_streams=4, max_streams=4000),
        engine=engine,
    )
    for i in range(staged):
        fact = StagedFileFact(
            lfn=f"pre{i}",
            dst_url=f"gsiftp://obelix/pre/{i}",
            owner_tid=-1,
            workflow="wfpre",
        )
        fact.status = "staged"
        service.memory.insert(fact)
    return service


def _specs(n: int, tag: str = "f"):
    return [
        {
            "lfn": f"{tag}{i}",
            "src_url": f"gsiftp://fg-vm/data/{tag}{i}",
            "dst_url": f"gsiftp://obelix/scratch/{tag}{i}",
            "nbytes": 1000.0,
        }
        for i in range(n)
    ]


def run_batch(engine: str, staged: int, transfers: int) -> dict:
    """One submit_transfers batch; the measured hot path."""
    service = _build_service(engine, staged)
    specs = _specs(transfers)
    t0 = time.perf_counter()
    advice = service.submit_transfers("bench", "stage", specs)
    elapsed = time.perf_counter() - t0
    approved = sum(1 for a in advice if a.action == "transfer")
    return {"elapsed_s": elapsed, "approved": approved, "advice": len(advice)}


def run_long_lived(lifetimes: int, per_batch: int) -> dict:
    """Repeated workflow lifetimes on one indexed service."""
    service = _build_service("indexed", staged=0)
    latencies = []
    for life in range(lifetimes):
        wf = f"wf{life}"
        t0 = time.perf_counter()
        advice = service.submit_transfers(
            wf, "stage", _specs(per_batch, tag=f"{wf}-")
        )
        latencies.append(time.perf_counter() - t0)
        service.complete_transfers(done=[a.tid for a in advice])
        service.unregister_workflow(wf)
    census = service.snapshot()["memory"]
    head = latencies[: max(1, lifetimes // 3)]
    tail = latencies[-max(1, lifetimes // 3):]
    return {
        "lifetimes": lifetimes,
        "per_batch": per_batch,
        "mean_first_third_s": sum(head) / len(head),
        "mean_last_third_s": sum(tail) / len(tail),
        "residual_facts": census,
    }


# -- subprocess driver -------------------------------------------------------
def _worker_main(engine: str, staged: int, transfers: int) -> None:
    print(json.dumps(run_batch(engine, staged, transfers)))


def _measure(engine: str, staged: int, transfers: int, timeout: float) -> dict:
    """Run one batch measurement in a fresh interpreter."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    cmd = [
        sys.executable, str(pathlib.Path(__file__).resolve()),
        "--worker", engine, str(staged), str(transfers),
    ]
    try:
        proc = subprocess.run(
            cmd, env=env, capture_output=True, text=True, timeout=timeout
        )
    except subprocess.TimeoutExpired:
        return {"engine": engine, "timed_out": True, "timeout_s": timeout}
    if proc.returncode != 0:
        raise RuntimeError(f"{engine} worker failed:\n{proc.stderr}")
    result = json.loads(proc.stdout.strip().splitlines()[-1])
    result.update({"engine": engine, "timed_out": False})
    return result


def _scenario(name: str, staged: int, transfers: int, timeout: float) -> dict:
    print(f"[{name}] staged={staged} transfers={transfers}", flush=True)
    indexed = _measure("indexed", staged, transfers, timeout)
    print(f"  indexed: {indexed['elapsed_s']:.3f}s", flush=True)
    seed = _measure("seed", staged, transfers, timeout)
    if seed["timed_out"]:
        speedup = timeout / indexed["elapsed_s"]
        kind = "lower_bound"
        print(f"  seed: timed out after {timeout:.0f}s -> speedup >= {speedup:.1f}x",
              flush=True)
    else:
        speedup = seed["elapsed_s"] / indexed["elapsed_s"]
        kind = "measured"
        print(f"  seed: {seed['elapsed_s']:.3f}s -> speedup {speedup:.1f}x",
              flush=True)
        if indexed["approved"] != seed["approved"]:
            raise RuntimeError("engines disagreed on approvals")
    return {
        "staged_files": staged,
        "transfer_batch": transfers,
        "indexed": indexed,
        "seed": seed,
        "speedup": speedup,
        "speedup_kind": kind,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_rules.json"))
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke scale (also via REPRO_QUICK=1)")
    parser.add_argument("--seed-timeout", type=float, default=SEED_TIMEOUT)
    parser.add_argument("--worker", nargs=3, metavar=("ENGINE", "STAGED", "N"),
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.worker:
        engine, staged, transfers = args.worker
        _worker_main(engine, int(staged), int(transfers))
        return 0

    quick = args.quick or os.environ.get("REPRO_QUICK", "0") == "1"
    if quick:
        calibration = (200, 20)
        batch = (1000, 100)
        lifetimes, per_batch = (10, 10)
    else:
        calibration = (500, 50)
        batch = (10_000, 1000)
        lifetimes, per_batch = (30, 20)

    report = {
        "benchmark": "bench_rules",
        "quick": quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "seed_timeout_s": args.seed_timeout,
        "scenarios": {
            "calibration": _scenario("calibration", *calibration,
                                     timeout=args.seed_timeout),
            "batch": _scenario("batch", *batch, timeout=args.seed_timeout),
        },
    }
    print("[long_lived]", flush=True)
    report["scenarios"]["long_lived"] = run_long_lived(lifetimes, per_batch)
    ll = report["scenarios"]["long_lived"]
    print(f"  first third {ll['mean_first_third_s'] * 1e3:.1f}ms/batch, "
          f"last third {ll['mean_last_third_s'] * 1e3:.1f}ms/batch, "
          f"residual facts: {ll['residual_facts'] or '{}'}", flush=True)

    out = pathlib.Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")

    ok = all(
        s["speedup"] >= 5.0 for s in
        (report["scenarios"]["calibration"], report["scenarios"]["batch"])
    )
    print("PASS: >=5x speedup in every scenario" if ok
          else "FAIL: speedup below 5x")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.path.insert(0, str(SRC))
    raise SystemExit(main())
