"""A14 — storage-constrained staging: footprint vs makespan trade-off.

The ref [15] scenario: the execution site's scratch cannot hold the full
input set.  We sweep the staging byte budget on the augmented Montage
workload and report the measured peak footprint (feasibility) against the
makespan cost of the serialization the constraint forces.
"""

import numpy as np

from repro.experiments import ExperimentConfig
from repro.experiments.runner import run_replicates
from repro.metrics import Series, format_series_table

GB = 1e9
BUDGETS_GB = (None, 6.0, 3.0, 1.5)  # None = unconstrained


def test_storage_budget_sweep(benchmark, archive, replicates):
    def sweep():
        makespans = Series(label="makespan (s)")
        peaks = Series(label="peak footprint (GB)")
        for budget in BUDGETS_GB:
            cfg = ExperimentConfig(
                extra_file_mb=100,
                default_streams=8,
                policy="greedy",
                threshold=50,
                max_staging_bytes=budget * GB if budget else None,
                seed=51,
            )
            metrics = run_replicates(cfg, replicates)
            label = "none" if budget is None else budget
            makespans.add(label, [m.makespan for m in metrics])
            peaks.add(label, [m.peak_footprint / GB for m in metrics])
        return makespans, peaks

    makespans, peaks = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report = format_series_table(
        "A14 — staging byte budget (GB) vs makespan and measured peak "
        "footprint (89 x 100 MB extras + images)",
        "budget",
        [makespans, peaks],
    )
    archive(
        "ablation_storage_constrained",
        {"makespan": makespans.to_dict(), "peak": peaks.to_dict()},
        report,
    )

    # Note: with cleanup enabled and fast compute, the *observed*
    # unconstrained peak is already well below the worst case (files are
    # consumed and deleted quickly), so loose budgets change the plan's
    # worst-case guarantee more than the measured peak.  The measurable
    # contract: every run stays within budget + the intermediates' share,
    # and the tightest budget visibly shrinks the peak.
    unconstrained_peak = peaks.at("none")[0]
    for budget in BUDGETS_GB[1:]:
        assert peaks.at(budget)[0] < budget + 1.0
    assert peaks.at(1.5)[0] < unconstrained_peak * 0.75
    # Feasibility costs time: the tightest budget is slowest.
    assert makespans.at(1.5)[0] >= makespans.at("none")[0]
