"""A6 — threshold auto-tuning (paper future work).

The paper proposes learning the most beneficial transfer settings (e.g.
the stream threshold).  The epsilon-greedy tuner runs full workflow
simulations as its reward signal and should converge near the best fixed
threshold for the environment (around 50-80 total streams on our WAN,
which has its congestion knee at 70).
"""

import numpy as np

from repro.experiments import ExperimentConfig, run_cell
from repro.policy.tuning import ThresholdTuner

CANDIDATES = (30, 50, 80, 130, 200)


def test_tuner_converges_near_knee(benchmark, archive):
    def tune():
        tuner = ThresholdTuner(CANDIDATES, epsilon=0.2, rng=np.random.default_rng(5))
        history = []
        for step in range(20):
            threshold = tuner.suggest()
            cfg = ExperimentConfig(
                extra_file_mb=100,
                default_streams=8,
                policy="greedy",
                threshold=threshold,
                n_images=45,  # smaller workload: more tuning iterations
                seed=step,
            )
            makespan = run_cell(cfg).makespan
            tuner.observe(threshold, makespan)
            history.append((threshold, makespan))
        return tuner, history

    tuner, history = benchmark.pedantic(tune, rounds=1, iterations=1)
    lines = ["A6 — threshold auto-tuning trace (threshold -> makespan s):"]
    lines += [f"  step {i:2d}: {t:>4} -> {m:8.1f}" for i, (t, m) in enumerate(history)]
    lines.append(f"best arm: {tuner.best()}   samples: {tuner.observations()}")
    report = "\n".join(lines)
    archive(
        "ablation_tuning",
        {"history": history, "best": tuner.best(), "observations": tuner.observations()},
        report,
    )

    # Converges to a threshold at or below the congestion knee.
    assert tuner.best() in (30, 50, 80)
    # The worst arm (200) was sampled but not favoured.
    assert tuner.observations()[200] < max(tuner.observations().values())
