#!/usr/bin/env python
"""Structure-based staging priorities (paper §III.c).

Computes the four priority algorithms the paper describes — BFS, DFS,
direct-dependent-based (fan-out), dependent-based (descendant count) — on
a small workflow, shows how each orders the jobs, then runs the augmented
Montage workload with dependent-based priorities driving the order in
which the Policy Service tells the transfer tool to stage data.

Run:  python examples/priority_staging.py
"""

from repro import ExperimentConfig, run_cell
from repro.workflow import File, Job, Workflow
from repro.workflow.priorities import PRIORITY_ALGORITHMS


def build_analysis_pipeline() -> Workflow:
    """A small pipeline with asymmetric fan-out (priorities differ)."""
    wf = Workflow("analysis")
    raw = File("raw.dat", 100)
    calib = File("calib.dat", 10)
    frames = [File(f"frame_{i}.dat", 50) for i in range(3)]
    stats = File("stats.dat", 5)
    report = File("report.pdf", 1)
    wf.add_job(Job("ingest", "split", inputs=(raw,), outputs=tuple(frames)))
    wf.add_job(Job("calibrate", "process", inputs=(calib,), outputs=(stats,)))
    for i, frame in enumerate(frames):
        wf.add_job(Job(f"analyze_{i}", "process", inputs=(frame, stats)))
    wf.add_job(Job("publish", "join", inputs=(stats,), outputs=(report,)))
    wf.validate()
    return wf


def main() -> None:
    wf = build_analysis_pipeline()
    print(f"Workflow {wf.name!r}: {len(wf)} jobs, roots {wf.roots()}\n")
    print(f"{'job':12s}" + "".join(f"{name:>20s}" for name in PRIORITY_ALGORITHMS))
    for job_id in wf.topological_order():
        row = f"{job_id:12s}"
        for algorithm in PRIORITY_ALGORITHMS.values():
            row += f"{algorithm(wf)[job_id]:>20d}"
        print(row)
    print("\n'calibrate' feeds every analyze job: dependent-based ranks it")
    print("high, so its input data would be staged first.\n")

    print("Running augmented Montage with dependent-based staging priorities")
    print("(tight staging throttle of 5 so release order matters)...")
    for algorithm in (None, "dependent"):
        metrics = run_cell(
            ExperimentConfig(
                extra_file_mb=100,
                default_streams=4,
                policy="greedy",
                threshold=50,
                priority_algorithm=algorithm,
                order_by="priority" if algorithm else "urls",
                job_limit=5,
                n_images=30,
                seed=11,
            )
        )
        label = algorithm or "unprioritized"
        print(f"   {label:16s}: makespan {metrics.makespan:7.1f} s "
              f"(staging {metrics.staging_time:.1f} s)")


if __name__ == "__main__":
    main()
