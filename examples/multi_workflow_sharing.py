#!/usr/bin/env python
"""Two concurrent workflows safely sharing staged files.

The Policy Service's cross-workflow features (paper §II.B):

* duplicate transfer requests from a second workflow are *skipped* when
  the file is already staged, or turned into *waits* when another
  workflow's transfer is still in flight;
* staged files are reference-counted, so cleanup by one workflow cannot
  delete data the other still needs.

We launch two identical Montage instances 30 s apart against one shared
Policy Service, then repeat with isolated policy state for contrast.

Run:  python examples/multi_workflow_sharing.py
"""

from repro.experiments import ExperimentConfig
from repro.experiments.runner import run_concurrent_workflows
from repro.workflow.montage import MB, MontageConfig, augmented_montage


def launch(shared: bool):
    cfg = ExperimentConfig(
        extra_file_mb=50,
        default_streams=4,
        policy="greedy",
        threshold=50,
        n_images=30,
        seed=7,
    )
    workflows = [
        augmented_montage(50 * MB, MontageConfig(n_images=30, name="survey-tile-7"))
        for _ in range(2)
    ]
    return run_concurrent_workflows(cfg, workflows, stagger=30.0, share_policy=shared)


def describe(label, results):
    total_bytes = sum(m.bytes_staged for m in results)
    print(f"\n== {label}")
    for i, m in enumerate(results, 1):
        print(
            f"   workflow {i}: makespan {m.makespan:7.1f} s, "
            f"transfers executed {m.transfers_executed:3d}, "
            f"skipped {m.transfers_skipped:3d}, waited {m.transfers_waited:3d}"
        )
    print(f"   total bytes staged over the WAN+LAN: {total_bytes / 1e9:.2f} GB")
    return total_bytes


def main() -> None:
    print("Two Montage instances over the SAME input dataset, 30 s apart.")
    shared = describe("shared Policy Service (the paper's deployment)", launch(True))
    separate = describe("isolated policy state (no sharing possible)", launch(False))
    saved = 1 - shared / separate
    print(f"\nThe shared service avoided restaging: {saved:.0%} of bytes saved.")
    print("Workflow 2's stage-ins became skips (already staged) and waits")
    print("(first workflow's transfer still in flight) instead of transfers.")


if __name__ == "__main__":
    main()
