#!/usr/bin/env python
"""Learning the best stream threshold (paper future work, implemented).

The paper closes by proposing machine-learning the most beneficial
transfer settings.  Here an epsilon-greedy bandit picks stream thresholds
for successive (simulated) Montage campaigns and converges toward the
environment's sweet spot — just under the WAN's congestion knee.

Run:  python examples/threshold_tuning.py
"""

import numpy as np

from repro import ExperimentConfig, run_cell
from repro.policy.tuning import ThresholdTuner


def main() -> None:
    candidates = (30, 50, 80, 130, 200)
    tuner = ThresholdTuner(candidates, epsilon=0.2, rng=np.random.default_rng(3))
    print(f"candidate thresholds: {candidates}")
    print("running 18 tuning iterations (one simulated campaign each)...\n")

    for step in range(18):
        threshold = tuner.suggest()
        metrics = run_cell(
            ExperimentConfig(
                extra_file_mb=100,
                default_streams=8,
                policy="greedy",
                threshold=threshold,
                n_images=45,
                seed=step,
            )
        )
        tuner.observe(threshold, metrics.makespan)
        print(f"  step {step:2d}: threshold {threshold:>3d} "
              f"-> {metrics.makespan:7.1f} s")

    print("\nmean execution time per threshold:")
    for threshold in candidates:
        mean = tuner.mean_time(threshold)
        samples = tuner.observations()[threshold]
        bar = "#" * int((mean or 0) / 10)
        print(f"  {threshold:>4d}: {mean:7.1f} s  (n={samples})  {bar}")
    print(f"\ntuner's choice: {tuner.best()} streams "
          f"(the simulated WAN's congestion knee sits at 70 total streams)")


if __name__ == "__main__":
    main()
