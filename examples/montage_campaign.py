#!/usr/bin/env python
"""The paper's headline experiment in miniature.

Runs the augmented Montage workflow (one extra 100 MB file per data
staging job, as in Fig. 7) on the simulated ISI/FutureGrid testbed under:

* default Pegasus (no policy, 4 streams per transfer),
* the greedy allocation policy with thresholds 50, 100, and 200.

Prints the comparison the paper reports: execution time per configuration
and the peak number of simultaneous WAN streams (Table IV's quantity).

Run:  python examples/montage_campaign.py          (~1 minute)
      python examples/montage_campaign.py --quick  (smaller workflow)
"""

import sys

from repro import ExperimentConfig, run_cell


def main(quick: bool = False) -> None:
    n_images = 30 if quick else 89
    replicate_seeds = (1, 2) if quick else (1, 2, 3)
    extra_mb = 100

    configs = [("no policy (default Pegasus)", None, 50, 4)]
    configs += [
        (f"greedy, threshold {threshold}", "greedy", threshold, 8)
        for threshold in (50, 100, 200)
    ]

    print(f"Augmented Montage: {n_images} staging jobs, one extra "
          f"{extra_mb} MB file each, staged over the simulated WAN\n")
    print(f"{'configuration':32s} {'time (s)':>12s} {'peak WAN streams':>18s}")
    print("-" * 66)

    results = {}
    for label, policy, threshold, streams in configs:
        makespans, peaks = [], []
        for seed in replicate_seeds:
            metrics = run_cell(
                ExperimentConfig(
                    extra_file_mb=extra_mb,
                    default_streams=streams,
                    policy=policy,
                    threshold=threshold,
                    n_images=n_images,
                    seed=seed,
                )
            )
            makespans.append(metrics.makespan)
            peaks.append(metrics.peak_streams.get("wan", 0))
        mean = sum(makespans) / len(makespans)
        results[label] = mean
        print(f"{label:32s} {mean:12.1f} {max(peaks):18d}")

    best = min(results, key=results.get)
    print(f"\nBest configuration: {best}")
    t50 = results["greedy, threshold 50"]
    t200 = results["greedy, threshold 200"]
    print(f"threshold 200 is {100 * (t200 / t50 - 1):.1f}% slower than 50 "
          f"(the paper measured +28.8% at 8 streams) — over-allocating\n"
          f"streams past the congestion knee hurts; capping them helps.")


if __name__ == "__main__":
    main(quick="--quick" in sys.argv)
