#!/usr/bin/env python
"""The Policy Service behind its RESTful web interface (paper Fig. 1).

Starts the HTTP/JSON frontend on localhost (standing in for the paper's
Apache Tomcat deployment), then drives the full protocol over real HTTP
with :class:`HTTPPolicyClient`: transfer advice, completion reports,
staging-state queries, cleanup advice, and the status endpoint.

Run:  python examples/rest_service_demo.py
"""

from repro import HTTPPolicyClient, PolicyConfig, PolicyRestServer, PolicyService


def main() -> None:
    service = PolicyService(
        PolicyConfig(policy="greedy", default_streams=8, max_streams=50)
    )
    with PolicyRestServer(service) as server:
        print(f"Policy Service listening on {server.url}\n")
        client = HTTPPolicyClient(server.url)

        print("== POST /policy/transfers")
        advice = client.submit_transfers(
            "wf-rest-demo",
            "stage_in_0",
            [
                {
                    "lfn": "survey.dat",
                    "src_url": "gsiftp://fg-vm/data/survey.dat",
                    "dst_url": "gsiftp://obelix/scratch/survey.dat",
                    "nbytes": 500_000_000,
                }
            ],
        )
        item = advice[0]
        print(f"   advice: action={item.action} streams={item.streams} "
              f"group={item.group_id} tid={item.tid}")

        print("== GET /policy/transfers/<tid>")
        print(f"   state: {client.transfer_state(item.tid)}")

        print("== POST /policy/transfers/complete")
        print(f"   {client.complete_transfers(done=[item.tid])}")
        print(f"   staging state now: "
              f"{client.staging_state('survey.dat', item.dst_url)}")

        print("== duplicate request from another workflow")
        again = client.submit_transfers(
            "wf-other", "stage_in_0",
            [
                {
                    "lfn": "survey.dat",
                    "src_url": "gsiftp://fg-vm/data/survey.dat",
                    "dst_url": "gsiftp://obelix/scratch/survey.dat",
                    "nbytes": 500_000_000,
                }
            ],
        )
        print(f"   advice: action={again[0].action} ({again[0].reason})")

        print("== POST /policy/cleanups (file still shared -> protected)")
        cleanups = client.submit_cleanups(
            "wf-rest-demo", "cleanup_0", [("survey.dat", item.dst_url)]
        )
        print(f"   advice: action={cleanups[0].action} ({cleanups[0].reason})")

        print("== GET /policy/status")
        status = client.status()
        print(f"   policy={status['policy']} memory={status['memory']}")
        print(f"   host pairs: {status['host_pairs']}")
    print("\nserver stopped.")


if __name__ == "__main__":
    main()
