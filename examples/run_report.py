#!/usr/bin/env python
"""Provenance records and execution timelines.

Runs a small augmented Montage campaign and prints what a production
deployment would archive: the JSON provenance record (config, staging and
storage accounting, per-kind job statistics) and an ASCII Gantt view of
where staging sat relative to computation and cleanup.

Run:  python examples/run_report.py
"""

import json

from repro.experiments import ExperimentConfig
from repro.experiments.environment import build_testbed
from repro.experiments.runner import WorkflowExecution, build_policy_client
from repro.metrics import ascii_timeline, run_provenance
from repro.workflow.montage import MB, MontageConfig, augmented_montage


def main() -> None:
    cfg = ExperimentConfig(
        extra_file_mb=50, default_streams=8, policy="greedy",
        threshold=50, n_images=20, seed=8,
    )
    bed = build_testbed(cfg.testbed, seed=8)
    workflow = augmented_montage(50 * MB, MontageConfig(n_images=20, name="report-demo"))
    execution = WorkflowExecution(cfg, workflow, bed, build_policy_client(cfg, bed))
    bed.env.run(until=execution.start())

    metrics = execution.metrics()
    provenance = run_provenance(metrics, execution.result, cfg)

    print("== provenance record (excerpt)")
    excerpt = {
        key: provenance[key]
        for key in ("workflow_id", "success", "makespan_s", "staging", "storage")
    }
    print(json.dumps(excerpt, indent=2, default=str)[:1200])

    print("\n== per-kind job statistics")
    for kind, stats in provenance["job_durations"].items():
        if stats.get("count"):
            print(f"   {kind:10s} n={stats['count']:4d} "
                  f"mean={stats['mean']:6.1f}s p95={stats['p95']:6.1f}s")

    print("\n== execution timeline")
    print(ascii_timeline(execution.result))


if __name__ == "__main__":
    main()
