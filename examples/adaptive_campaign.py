#!/usr/bin/env python
"""Self-tuning stream thresholds during a big-data staging campaign.

The Policy Service advises "based on ... recent data transfer
performance" (paper abstract).  Here the greedy threshold starts badly
misconfigured at 200 streams — deep past the WAN's congestion knee — and
the adaptive controller searches at runtime: every ~2 GB of completed
transfers it compares achieved aggregate throughput and moves the
threshold toward whatever worked better, preferring fewer streams on
ties.

Run:  python examples/adaptive_campaign.py
"""

from repro.experiments.campaign import CampaignConfig, run_staging_campaign


def main() -> None:
    base = dict(n_transfers=200, transfer_mb=200, workers=20,
                default_streams=8, seed=4)

    print("Steady campaign: 200 files x 200 MB over the simulated WAN")
    print("(congestion knee at 70 total streams)\n")

    fixed50 = run_staging_campaign(CampaignConfig(threshold=50, **base))
    fixed200 = run_staging_campaign(CampaignConfig(threshold=200, **base))
    adaptive = run_staging_campaign(
        CampaignConfig(threshold=200, adaptive=True, **base)
    )

    print(f"{'configuration':28s} {'duration':>10s} {'throughput':>12s}")
    print("-" * 54)
    for label, result in [
        ("fixed threshold 50 (tuned)", fixed50),
        ("fixed threshold 200 (bad)", fixed200),
        ("adaptive, starting at 200", adaptive),
    ]:
        print(f"{label:28s} {result.duration:9.1f}s "
              f"{result.aggregate_throughput / 1e6:9.1f} MB/s")

    gap = fixed200.duration - fixed50.duration
    recovered = (fixed200.duration - adaptive.duration) / gap
    print(f"\nadaptive recovered {recovered:.0%} of the misconfiguration gap.")
    print("\nthreshold trajectory (one decision per ~2 GB completed):")
    trajectory = [h[1] for h in adaptive.threshold_history]
    print(f"  200 -> {' -> '.join(str(t) for t in trajectory)}")
    print(f"final threshold: {adaptive.final_threshold} "
          f"(knee sits at 70)")


if __name__ == "__main__":
    main()
