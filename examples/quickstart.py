#!/usr/bin/env python
"""Quickstart: the Policy Service advising data staging.

Shows the core request/advice loop from the paper:

1. a workflow submits a batch of transfer requests;
2. the service de-duplicates, groups by host pair, and allocates parallel
   streams with the greedy algorithm (Table II);
3. completions free streams;
4. a second workflow sharing the same file is told to skip it;
5. cleanup of the shared file is protected until every user releases it.

Run:  python examples/quickstart.py
"""

from repro import PolicyConfig, PolicyService


def main() -> None:
    service = PolicyService(
        PolicyConfig(policy="greedy", default_streams=8, max_streams=50)
    )

    def request(lfn, nbytes):
        return {
            "lfn": lfn,
            "src_url": f"gsiftp://fg-vm/data/{lfn}",
            "dst_url": f"gsiftp://obelix/scratch/{lfn}",
            "nbytes": nbytes,
        }

    print("== 1. A staging job submits seven transfers (8 streams each wanted)")
    advice = service.submit_transfers(
        "montage-run-1", "stage_in_mProjectPP_0",
        [request(f"raw_{i}.fits", 2_000_000) for i in range(7)],
    )
    for item in advice:
        print(f"   {item.lfn}: {item.action:8s} streams={item.streams} "
              f"group={item.group_id} {item.reason}")
    print("   (greedy: 6 x 8 streams = 48, the 7th gets the 2 left under 50)")

    print("\n== 2. Completions free the allocated streams")
    service.complete_transfers(done=[a.tid for a in advice])
    pair = service.snapshot()["host_pairs"]["fg-vm->obelix"]
    print(f"   fg-vm->obelix allocation after completion: {pair['allocated']}")

    print("\n== 3. A second workflow asks for an already-staged file")
    again = service.submit_transfers(
        "montage-run-2", "stage_in_mProjectPP_0", [request("raw_0.fits", 2_000_000)]
    )
    print(f"   raw_0.fits: {again[0].action} — {again[0].reason}")

    print("\n== 4. Cleanup is protected while another workflow uses the file")
    cleanup = service.submit_cleanups(
        "montage-run-1", "cleanup_raw_0",
        [("raw_0.fits", "gsiftp://obelix/scratch/raw_0.fits")],
    )
    print(f"   workflow 1 cleanup: {cleanup[0].action} — {cleanup[0].reason}")
    cleanup2 = service.submit_cleanups(
        "montage-run-2", "cleanup_raw_0",
        [("raw_0.fits", "gsiftp://obelix/scratch/raw_0.fits")],
    )
    print(f"   workflow 2 cleanup: {cleanup2[0].action} (last user released it)")

    print("\n== 5. Service status")
    status = service.snapshot()
    print(f"   policy={status['policy']} memory={status['memory']}")
    print(f"   stats: approved={status['stats']['transfers_approved']} "
          f"skipped={status['stats']['transfers_skipped']} "
          f"rule firings={status['stats']['rule_firings']}")


if __name__ == "__main__":
    main()
