#!/usr/bin/env python
"""A three-tenant ensemble with fair-share admission and budgets.

Three tenants share one testbed and one Policy Service:

* ``bronze`` (weight 1) — best-effort backfill;
* ``silver`` (weight 2) — a production pipeline;
* ``gold``   (weight 4) — the flagship survey.

Each submits four identical Montage instances.  The fair-share
scheduler (stride over bytes staged) admits them so that, while every
tenant has backlog, staged bytes track the 1:2:4 weights; the shared
Policy Service additionally meters each tenant's aggregate TCP-stream
budget across all of its running workflows.

Run:  python examples/tenant_ensemble.py
"""

from repro.experiments import ExperimentConfig, run_tenant_ensemble
from repro.tenancy import AdmissionConfig, TenantSpec
from repro.workflow.montage import MB, MontageConfig, augmented_montage

TENANTS = [
    TenantSpec("bronze", weight=1),
    TenantSpec("silver", weight=2, max_streams=24),
    TenantSpec("gold", weight=4),
]


def montage(name: str):
    return augmented_montage(
        10 * MB, MontageConfig(n_images=8, name=name, lfn_prefix=f"{name}_")
    )


def submissions(per_tenant: int):
    return [
        (spec.tenant, montage(f"{spec.tenant}-{i}"))
        for i in range(per_tenant)
        for spec in TENANTS
    ]


def main() -> None:
    result = run_tenant_ensemble(
        ExperimentConfig(extra_file_mb=10, n_images=8, seed=7),
        TENANTS,
        submissions(per_tenant=4),
        admission=AdmissionConfig(max_concurrent=7),
        scheduler="fair",
    )

    print("Admission order (first 7 = the contended round):")
    print("  " + ", ".join(result.admission_order[:7]))
    print("  " + ", ".join(result.admission_order[7:]))

    contended = result.admission_order[:7]
    by_name = {m.workflow_id.split("#")[0]: m for m in result.metrics}
    contended_bytes = {spec.tenant: 0.0 for spec in TENANTS}
    for name in contended:
        contended_bytes[result.tenant_of[name]] += by_name[name].bytes_staged
    grand = sum(contended_bytes.values())

    print("\nBytes staged during the contended round vs fair share:")
    for spec in TENANTS:
        fraction = contended_bytes[spec.tenant] / grand
        share = result.tenant_shares[spec.tenant]
        print(
            f"  {spec.tenant:<8s} weight {spec.weight:.0f}: "
            f"{fraction:6.1%} of bytes (fair share {share:.1%})"
        )

    print("\nFinal totals (queues drained — the leftover slots go to")
    print("whoever still has work, so totals equalize):")
    for spec in TENANTS:
        print(f"  {spec.tenant:<8s} {result.tenant_bytes[spec.tenant] / 1e9:6.2f} GB")

    ok = all(m.success for m in result.metrics)
    print(f"\nAll {len(result.metrics)} workflows succeeded: {ok}")


if __name__ == "__main__":
    main()
