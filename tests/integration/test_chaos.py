"""Chaos Montage: the workflow survives a mid-run Policy Service crash.

The acceptance bar from the robustness work: with journaling, leases, and
a degrading client, a Montage run that loses its Policy Service mid-flight
finishes with the **byte-identical staged file set** of a clean run, and
policy memory holds no leaked in-progress facts afterwards.
"""

from repro.des.faults import FaultPlan, GridFTPStorm, RpcDropWindow
from repro.experiments.chaos import compare_with_faultless, run_chaos_montage
from repro.experiments.runner import ExperimentConfig


def chaos_config(**overrides):
    defaults = dict(
        policy="greedy",
        n_images=10,
        threshold=20,
        lease_seconds=600.0,
        retries=5,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def test_clean_run_baseline():
    result = run_chaos_montage(chaos_config())
    assert result.metrics.success
    assert result.staged_files  # something was staged
    assert result.degraded_transfers == 0
    assert result.leaked_in_progress == 0
    assert result.fault_log == []


def test_crash_and_journal_restart_preserves_staged_set(tmp_path):
    plan = FaultPlan.single_crash(at=60.0, duration=120.0)
    outcome = compare_with_faultless(
        chaos_config(), plan, journal_dir=tmp_path / "journal"
    )
    assert outcome["both_succeeded"]
    assert outcome["staged_sets_equal"]
    chaotic = outcome["chaotic"]
    assert chaotic.leaked_in_progress == 0
    assert chaotic.journal_commits > 0
    assert any("crashed" in msg for _, msg in chaotic.fault_log)
    assert any("recovered" in msg for _, msg in chaotic.fault_log)


def test_early_crash_forces_degraded_mode_then_reconciles(tmp_path):
    # Crash almost immediately, before most staging begins: the tool must
    # stage policy-free and adopt the files once the service is back.
    plan = FaultPlan.single_crash(at=5.0, duration=120.0)
    outcome = compare_with_faultless(
        chaos_config(), plan, journal_dir=tmp_path / "journal"
    )
    assert outcome["both_succeeded"]
    assert outcome["staged_sets_equal"]
    assert outcome["chaotic"].leaked_in_progress == 0


def test_outage_without_journal_still_completes():
    # No journal: the outage models a hang; the same process resumes with
    # memory intact. The run must still complete and stay leak-free.
    plan = FaultPlan.single_crash(at=60.0, duration=90.0)
    result = run_chaos_montage(chaos_config(), plan=plan)
    assert result.metrics.success
    assert result.leaked_in_progress == 0
    assert result.journal_commits == 0


def test_rpc_drops_and_storm_with_backoff():
    plan = FaultPlan(
        rpc_drops=(RpcDropWindow(at=30.0, duration=30.0, rate=0.5),),
        storms=(GridFTPStorm(at=20.0, duration=60.0, failure_rate=0.3),),
    )
    result = run_chaos_montage(
        chaos_config(retry_backoff=2.0), plan=plan
    )
    assert result.metrics.success
    assert result.leaked_in_progress == 0


def test_balanced_policy_survives_crash(tmp_path):
    cfg = chaos_config(policy="balanced", cluster_factor=2)
    plan = FaultPlan.single_crash(at=60.0, duration=120.0)
    outcome = compare_with_faultless(cfg, plan, journal_dir=tmp_path / "journal")
    assert outcome["both_succeeded"]
    assert outcome["staged_sets_equal"]
    assert outcome["chaotic"].leaked_in_progress == 0


def test_decision_records_survive_crash_recovery(tmp_path):
    """The journal-recovered service still explains its decisions: every
    retained record re-verifies its digest after replay, and the explain
    API answers for transfers granted both before and after the outage."""
    from repro.policy.provenance import decision_digest

    plan = FaultPlan.single_crash(at=60.0, duration=120.0)
    result = run_chaos_montage(
        chaos_config(), plan=plan, journal_dir=tmp_path / "journal"
    )
    assert result.metrics.success
    assert result.journal_commits > 0
    assert result.decisions, "post-recovery service holds no decision records"
    for record in result.decisions:
        assert record["digest"] == decision_digest(record)
    # Policy-derived records carry their causal chain through recovery.
    policied = [r for r in result.decisions if not r.get("policy_free")]
    assert policied and all(r["firings"] for r in policied)
