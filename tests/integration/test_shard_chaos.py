"""Shard-level chaos acceptance: a 2-shard Montage run with a mid-run
shard crash + journal replay must stage the byte-identical file set of a
clean single-service run, leak no in-progress grants, and keep the
surviving shard serving exact policy advice throughout.

This is the CI shard-chaos smoke suite (see ``shard-chaos-smoke`` in
``.github/workflows/ci.yml``).
"""

import pytest

from repro.des.faults import FaultPlan, ShardCrash, ShardSlowdown
from repro.experiments.chaos import (
    compare_sharded_with_single,
    run_shard_chaos_montage,
)
from repro.experiments.runner import ExperimentConfig


def _cfg(**kw):
    base = dict(n_images=12, lease_seconds=600.0, seed=3)
    base.update(kw)
    return ExperimentConfig(**base)


# The crash window is tuned so the replay happens mid-run: the Montage
# makespan at this scale is ~190s sim time, so a crash at t=60 with a
# 45s outage replays at t=105 while transfers are still flowing.
_PLAN = FaultPlan.single_shard_crash(at=60.0, shard=0, down_for=45.0)


@pytest.mark.parametrize("engine", ["indexed", "compiled"])
def test_mid_run_shard_crash_stages_identical_set(tmp_path, engine):
    out = compare_sharded_with_single(
        _cfg(engine=engine), _PLAN, num_shards=2, journal_root=tmp_path,
    )
    chaotic = out["chaotic"]
    assert out["both_succeeded"]
    assert out["staged_sets_equal"], (
        f"staged sets diverge: clean={len(out['clean'].staged_files)} "
        f"chaotic={len(chaotic.staged_files)}"
    )
    assert out["leaked_in_progress"] == 0
    assert not chaotic.recovery_errors

    # The crash actually happened and actually replayed mid-run.
    events = [entry for (_t, entry) in chaotic.fault_log]
    assert any("shard 0 crashed" in e for e in events), events
    assert any("replayed from journal" in e for e in events), events
    replay_time = next(
        t for (t, e) in chaotic.fault_log if "replayed" in e)
    assert replay_time < chaotic.metrics.makespan

    # The victim came back; the survivor never went down.
    health = {h["shard"]: h for h in chaotic.shard_health}
    assert health[0]["healthy"] and health[0]["recoveries"] == 1
    assert health[1]["healthy"] and health[1]["crashes"] == 0

    # Something was actually served degraded during the outage —
    # otherwise this test proves nothing about degraded mode.
    assert chaotic.router_degraded > 0
    # And the shard journals were doing real work.
    assert chaotic.journal_commits > 0


def test_shard_slowdown_trips_breaker_and_recovers(tmp_path):
    plan = FaultPlan(
        shard_slowdowns=(
            ShardSlowdown(at=60.0, duration=30.0, shard=0, timeout_rate=1.0),
        ),
        shard_crashes=(),
    )
    result = run_shard_chaos_montage(
        _cfg(), plan=plan, num_shards=2, journal_root=tmp_path,
        breaker_threshold=2,
    )
    assert result.metrics.success
    assert result.leaked_in_progress == 0
    # The storm tripped the breaker at least once.
    health = {h["shard"]: h for h in result.shard_health}
    assert health[0]["breaker"]["transitions"].get("closed->open", 0) >= 1


def test_clean_sharded_run_matches_without_faults(tmp_path):
    out = compare_sharded_with_single(
        _cfg(), FaultPlan(), num_shards=2, journal_root=tmp_path,
    )
    assert out["staged_sets_equal"] and out["both_succeeded"]
    assert out["chaotic"].router_degraded == 0


def test_shard_crash_validation():
    with pytest.raises(ValueError):
        ShardCrash(at=-1.0, shard=0, down_for=10.0)
    with pytest.raises(ValueError):
        ShardCrash(at=1.0, shard=-1, down_for=10.0)
    with pytest.raises(ValueError):
        ShardSlowdown(at=1.0, duration=5.0, shard=0, timeout_rate=2.0)


def test_shard_outage_leaves_synthetic_decision_records(tmp_path):
    """Advice served while a shard was down is witnessed by router-minted
    policy-free records; everything else keeps its causal chain."""
    result = run_shard_chaos_montage(
        _cfg(), plan=_PLAN, num_shards=2, journal_root=tmp_path,
    )
    assert result.metrics.success
    assert result.decisions
    synthetic = [r for r in result.decisions if r.get("policy_free")]
    policied = [r for r in result.decisions if not r.get("policy_free")]
    assert result.router_degraded == 0 or synthetic, (
        "degraded advice was served but never witnessed"
    )
    assert policied and all(r["firings"] for r in policied)
