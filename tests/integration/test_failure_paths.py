"""Targeted robustness tests: failures interacting with waits/sharing."""

import numpy as np
from repro.des import Environment
from repro.engine import PegasusTransferTool
from repro.net import FlowNetwork, GridFTPClient, Link, Network, StreamModel, TransferError
from repro.planner.executable import ExecutableJob, JobKind, TransferSpec
from repro.policy import InProcessPolicyClient, PolicyConfig, PolicyService


def make_world():
    env = Environment()
    net = Network()
    s = net.add_site("s")
    src = net.add_host("fg-vm", s)
    dst = net.add_host("obelix", s)
    net.add_link(Link("wan", capacity=100.0))
    net.add_route(src, dst, [net.links["wan"]])
    fabric = FlowNetwork(env, net, StreamModel(0.5, 0, 0))
    service = PolicyService(PolicyConfig(policy="greedy", default_streams=4, max_streams=50))
    client = InProcessPolicyClient(service, env, latency=0.0)
    return env, fabric, service, client


def staging_job(job_id, lfn, nbytes=1000.0):
    return ExecutableJob(
        id=job_id,
        kind=JobKind.STAGE_IN,
        site="s",
        transfers=[
            TransferSpec(
                lfn=lfn,
                src_url=f"gsiftp://fg-vm/data/{lfn}",
                dst_url=f"gsiftp://obelix/scratch/{lfn}",
                nbytes=nbytes,
            )
        ],
    )


def test_waiter_restages_when_inflight_transfer_fails():
    """wf2 waits on wf1's in-flight transfer; wf1's transfer fails; wf2
    must detect the staged-state going 'unknown' and restage itself."""
    env, fabric, service, client = make_world()
    # wf1's GridFTP always fails; wf2's always succeeds.
    bad_gridftp = GridFTPClient(fabric, rng=np.random.default_rng(1), failure_rate=0.999)
    good_gridftp = GridFTPClient(fabric, rng=np.random.default_rng(2))
    ptt1 = PegasusTransferTool(bad_gridftp, policy=client, poll_interval=0.5)
    ptt2 = PegasusTransferTool(good_gridftp, policy=client, poll_interval=0.5)
    outcome = {}

    def wf1():
        try:
            yield from ptt1.execute("wf1", staging_job("j1", "big", nbytes=5000.0))
        except TransferError:
            outcome["wf1"] = "failed"
            # wf1 gives up (no retry): the file never lands.

    def wf2():
        yield env.timeout(1.0)  # arrive while wf1's transfer is in flight
        record = yield from ptt2.execute("wf2", staging_job("j2", "big", nbytes=5000.0))
        outcome["wf2"] = record

    env.process(wf1())
    env.process(wf2())
    env.run()
    assert outcome["wf1"] == "failed"
    record = outcome["wf2"]
    assert record.waited == 1      # first told to wait on wf1's transfer
    assert record.executed == 1    # then restaged the file itself
    assert service.staging_state("big", "gsiftp://obelix/scratch/big") == "staged"


def test_waiter_times_out_eventually():
    """A waiter with a tight deadline raises instead of hanging forever."""
    env, fabric, service, client = make_world()
    gridftp = GridFTPClient(fabric, rng=np.random.default_rng(3))
    # A very slow first transfer holds the 'staging' state.
    slow_ptt = PegasusTransferTool(gridftp, policy=client)
    fast_ptt = PegasusTransferTool(
        gridftp, policy=client, poll_interval=0.5, max_wait=5.0
    )

    def wf1():
        yield from slow_ptt.execute("wf1", staging_job("j1", "huge", nbytes=1e6))

    failures = []

    def wf2():
        yield env.timeout(1.0)
        try:
            yield from fast_ptt.execute("wf2", staging_job("j2", "huge", nbytes=1e6))
        except TransferError as exc:
            failures.append(str(exc))

    env.process(wf1())
    env.process(wf2())
    env.run()
    assert failures and "timed out waiting" in failures[0]


def test_streams_fully_released_after_mixed_outcomes():
    """After successes, failures, and waits, no streams stay allocated."""
    env, fabric, service, client = make_world()
    flaky = GridFTPClient(fabric, rng=np.random.default_rng(5), failure_rate=0.3)
    ptt = PegasusTransferTool(flaky, policy=client, poll_interval=0.5)
    done = []

    def job(i):
        attempts = 0
        while attempts < 10:
            attempts += 1
            try:
                yield from ptt.execute("wf", staging_job(f"j{i}", f"f{i}"))
                done.append(i)
                return
            except TransferError:
                continue

    for i in range(10):
        env.process(job(i))
    env.run()
    assert sorted(done) == list(range(10))
    snapshot = service.snapshot()
    assert snapshot["host_pairs"]["fg-vm->obelix"]["allocated"] == 0
    assert snapshot["memory"].get("TransferFact") is None
