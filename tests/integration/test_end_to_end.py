"""End-to-end integration: plan -> policy -> transfer -> compute -> cleanup.

Uses a reduced Montage (16 images) on the full simulated paper testbed so
each test runs in well under a second of wall time.
"""

import pytest

from repro.experiments import ExperimentConfig, run_cell
from repro.experiments.runner import run_workflow
from repro.workflow import diamond_workflow, fork_join_workflow


def small(**overrides):
    defaults = dict(extra_file_mb=10, n_images=16, seed=3)
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def test_greedy_run_completes_and_moves_all_bytes():
    cfg = small(policy="greedy", threshold=50, default_streams=4)
    metrics = run_cell(cfg)
    assert metrics.success
    # 16 images x (2 MB image + 10 MB extra) + 1 KB header, with <= 2%
    # protocol overhead jitter on top.
    expected = 16 * (2e6 + 10e6) + 1e3
    assert metrics.bytes_staged == pytest.approx(expected, rel=0.001)
    assert metrics.transfers_executed == 33
    assert metrics.transfers_skipped == 0


def test_no_policy_run_completes():
    metrics = run_cell(small(policy=None))
    assert metrics.success
    assert metrics.policy_calls == 0
    assert metrics.policy_stats == {}


def test_policy_enforces_wan_stream_threshold():
    cfg = small(policy="greedy", threshold=20, default_streams=8)
    metrics = run_cell(cfg)
    assert metrics.success
    # The simulated WAN never carries more streams than greedy allocates:
    # 2 full grants of 8 + 1 partial of 4 + 13 singles = 33... but only
    # 16 staging jobs run, so: 2x8 + 4 + 13x1 = 33 total analytic; the
    # observed peak must respect the analytic bound for 16 jobs.
    from repro.policy.allocation import greedy_allocation_trace

    bound = sum(greedy_allocation_trace(16, 8, 20))
    assert metrics.peak_streams["wan"] <= bound


def test_no_policy_peak_matches_job_limit_times_default():
    cfg = small(policy=None, default_streams=4, n_images=30, job_limit=10)
    metrics = run_cell(cfg)
    assert metrics.peak_streams["wan"] <= 10 * 4


def test_policy_overhead_accounted():
    metrics = run_cell(small(policy="greedy"))
    assert metrics.policy_calls > 0
    assert metrics.policy_overhead == pytest.approx(
        metrics.policy_calls * 0.15, rel=1e-6
    )


def test_balanced_policy_runs():
    cfg = small(policy="balanced", cluster_factor=4, threshold=40)
    metrics = run_cell(cfg)
    assert metrics.success


def test_priority_algorithm_runs():
    cfg = small(policy="greedy", priority_algorithm="dependent", order_by="priority")
    metrics = run_cell(cfg)
    assert metrics.success


def test_clustered_staging_runs():
    cfg = small(cluster_factor=4)
    metrics = run_cell(cfg)
    assert metrics.success
    # 16 stage-in jobs collapse into 4 clustered jobs; all bytes still move.
    expected = 16 * (2e6 + 10e6) + 1e3
    assert metrics.bytes_staged == pytest.approx(expected, rel=0.001)


def test_cleanup_disabled_still_completes():
    metrics = run_cell(small(cleanup=False))
    assert metrics.success


def test_deterministic_given_seed():
    a = run_cell(small(seed=42))
    b = run_cell(small(seed=42))
    assert a.makespan == b.makespan
    assert a.bytes_staged == b.bytes_staged


def test_different_seeds_jitter():
    a = run_cell(small(seed=1))
    b = run_cell(small(seed=2))
    assert a.makespan != b.makespan


def test_failure_injection_with_retries_succeeds():
    from repro.experiments.environment import TestbedParams

    cfg = small(testbed=TestbedParams(failure_rate=0.08), seed=7)
    metrics = run_cell(cfg)
    assert metrics.success  # retries absorb the injected failures


def test_generic_workflows_run_on_testbed():
    from repro.experiments.environment import build_testbed

    for wf in (diamond_workflow(), fork_join_workflow(width=5)):
        cfg = ExperimentConfig(extra_file_mb=0, seed=5)
        bed = build_testbed(cfg.testbed, seed=5)
        metrics = run_workflow(cfg, wf, bed=bed)
        assert metrics.success


def test_staging_time_within_makespan():
    metrics = run_cell(small())
    assert 0 < metrics.staging_time <= metrics.makespan
    assert metrics.compute_time > 0


def test_stage_out_to_archive_site():
    """Final outputs are shipped to a separate archive site (stage-out)."""
    metrics = run_cell(small(output_site="archive"))
    assert metrics.success
    # The mosaic JPEG crossed the archive LAN and was registered there.
    from repro.experiments.environment import build_testbed  # noqa: F401

    assert metrics.job_durations["stage-out"], "a stage-out job must have run"
    assert len(metrics.job_durations["stage-out"]) == 1


def test_fifo_policy_runs_end_to_end():
    metrics = run_cell(small(policy="fifo"))
    assert metrics.success
    # fifo applies Table I (dedup/groups) but never caps streams.
    assert metrics.policy_stats["transfers_approved"] > 0
