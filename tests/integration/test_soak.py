"""Soak test: randomized multi-workflow load with failure injection.

Runs several concurrent workflows over shared and disjoint datasets with
transfer failures enabled, then asserts the global invariants that must
hold no matter what interleaving occurred:

* every workflow completes (retries absorb injected failures);
* the policy service ends with no pending transfer state and zero
  allocated streams on every host pair;
* each distinct (lfn, destination) crossed the network at least once and
  every workflow's inputs were satisfied;
* observed WAN streams never exceeded the greedy threshold's analytic
  bound.
"""

from dataclasses import replace

import pytest

from repro.experiments import ExperimentConfig, TestbedParams
from repro.experiments.runner import run_concurrent_workflows
from repro.policy.allocation import greedy_allocation_trace
from repro.policy.model import TransferFact
from repro.workflow.montage import MB, MontageConfig, augmented_montage


@pytest.mark.parametrize("seed", [101, 202, 303])
def test_soak_concurrent_workflows_with_failures(seed):
    cfg = ExperimentConfig(
        extra_file_mb=20,
        default_streams=6,
        policy="greedy",
        threshold=30,
        n_images=10,
        job_limit=8,
        seed=seed,
        testbed=replace(TestbedParams(), failure_rate=0.06),
    )
    workflows = [
        # Two instances share dataset "common"; one has its own dataset.
        augmented_montage(20 * MB, MontageConfig(n_images=10, name="common")),
        augmented_montage(20 * MB, MontageConfig(n_images=10, name="common2",
                                                 lfn_prefix="")),
        augmented_montage(20 * MB, MontageConfig(n_images=10, name="solo",
                                                 lfn_prefix="solo_")),
    ]
    results = run_concurrent_workflows(cfg, workflows, stagger=15.0)

    # 1. Everything completed despite injected failures.
    assert all(m.success for m in results)

    # 2. Policy memory is quiescent: no transfers left, no streams held.
    stats = results[0].policy_stats
    assert stats["transfers_approved"] > 0
    peak = max(m.peak_streams.get("wan", 0) for m in results)
    bound = sum(greedy_allocation_trace(3 * 8, 6, 30))  # 3 wfs x job limit
    assert peak <= bound

    # 3. Service-level invariants need the shared service; re-derive it via
    #    a fresh snapshot check through any metrics' stats is not enough,
    #    so assert through the advice arithmetic instead: every submission
    #    was answered.
    submitted = stats["transfers_submitted"]
    answered = (
        stats["transfers_approved"]
        + stats["transfers_skipped"]
        + stats["transfers_waited"]
        + stats["transfers_denied"]
    )
    assert submitted == answered

    # 4. Sharing actually happened for the duplicated dataset.
    total_skip_wait = sum(m.transfers_skipped + m.transfers_waited for m in results)
    assert total_skip_wait > 0


def test_soak_service_memory_quiescent_after_runs():
    """Direct service introspection after a failure-heavy concurrent run."""
    from repro.experiments.environment import build_testbed
    from repro.experiments.runner import WorkflowExecution, build_policy_client

    cfg = ExperimentConfig(
        extra_file_mb=20,
        default_streams=6,
        policy="greedy",
        threshold=30,
        n_images=10,
        seed=77,
        testbed=replace(TestbedParams(), failure_rate=0.08),
    )
    bed = build_testbed(cfg.testbed, seed=77)
    policy = build_policy_client(cfg, bed)
    executions = [
        WorkflowExecution(
            cfg,
            augmented_montage(20 * MB, MontageConfig(n_images=10, name=f"w{i}",
                                                     lfn_prefix=f"w{i}_")),
            bed,
            policy,
        )
        for i in range(2)
    ]
    processes = [ex.start(delay=i * 10.0) for i, ex in enumerate(executions)]
    bed.env.run(until=bed.env.all_of(processes))
    assert all(ex.result.success for ex in executions)

    service = policy.service
    # No transfer is still in flight and every host pair's allocation is 0.
    assert service.memory.facts_of(TransferFact) == []
    for pair_state in service.snapshot()["host_pairs"].values():
        assert pair_state["allocated"] == 0
