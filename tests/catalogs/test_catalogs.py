"""Unit tests for the replica, site, and transformation catalogs."""

import numpy as np
import pytest

from repro.catalogs import (
    Replica,
    ReplicaCatalog,
    RuntimeModel,
    SiteCatalog,
    SiteEntry,
    TransformationCatalog,
)


# ------------------------------------------------------------- replicas
def test_replica_validation():
    with pytest.raises(ValueError):
        Replica("", "site", "url")
    with pytest.raises(ValueError):
        Replica("f", "", "url")
    with pytest.raises(ValueError):
        Replica("f", "site", "")


def test_register_and_lookup():
    rc = ReplicaCatalog()
    rc.register("f.dat", "isi", "gsiftp://obelix/scratch/f.dat")
    rc.register("f.dat", "tacc", "gsiftp://fg-vm/data/f.dat")
    assert len(rc.lookup("f.dat")) == 2
    assert [r.site for r in rc.lookup("f.dat", site="isi")] == ["isi"]
    assert rc.has("f.dat")
    assert rc.has("f.dat", site="tacc")
    assert not rc.has("f.dat", site="mars")
    assert not rc.has("ghost.dat")


def test_register_idempotent():
    rc = ReplicaCatalog()
    rc.register("f", "s", "u")
    rc.register("f", "s", "u")
    assert len(rc) == 1


def test_unregister():
    rc = ReplicaCatalog()
    rc.register("f", "isi", "u1")
    rc.register("f", "tacc", "u2")
    assert rc.unregister("f", site="isi") == 1
    assert rc.has("f", site="tacc")
    assert rc.unregister("f") == 1
    assert not rc.has("f")
    assert rc.unregister("f") == 0


def test_lfns_iteration():
    rc = ReplicaCatalog()
    rc.register("a", "s", "u")
    rc.register("b", "s", "u")
    assert sorted(rc.lfns()) == ["a", "b"]


# ------------------------------------------------------------- sites
def test_site_entry_validation():
    with pytest.raises(ValueError):
        SiteEntry(name="", storage_host="h")
    with pytest.raises(ValueError):
        SiteEntry(name="s", storage_host="")
    with pytest.raises(ValueError):
        SiteEntry(name="s", storage_host="h", nodes=-1)
    with pytest.raises(ValueError):
        SiteEntry(name="s", storage_host="h", cores_per_node=0)


def test_site_slots_and_urls():
    obelix = SiteEntry(name="isi", storage_host="obelix", scratch_dir="/nfs/scratch",
                       nodes=9, cores_per_node=6)
    assert obelix.slots == 54
    assert obelix.url_for("f.fits") == "gsiftp://obelix/nfs/scratch/f.fits"


def test_site_catalog():
    sc = SiteCatalog()
    sc.add(SiteEntry(name="isi", storage_host="obelix", nodes=9, cores_per_node=6))
    sc.add(SiteEntry(name="futuregrid", storage_host="fg-vm"))
    assert "isi" in sc
    assert sc.get("isi").slots == 54
    assert sc.get("futuregrid").slots == 0
    assert len(sc) == 2
    with pytest.raises(ValueError):
        sc.add(SiteEntry(name="isi", storage_host="x"))
    with pytest.raises(KeyError):
        sc.get("nope")


# ------------------------------------------------------- transformations
def test_runtime_model_validation():
    with pytest.raises(ValueError):
        RuntimeModel("", 1.0)
    with pytest.raises(ValueError):
        RuntimeModel("t", -1.0)
    with pytest.raises(ValueError):
        RuntimeModel("t", 1.0, std=-1)


def test_runtime_sampling_deterministic_and_truncated():
    model = RuntimeModel("t", mean=1.0, std=10.0, min_runtime=0.5)
    draws1 = [model.sample(np.random.default_rng(3)) for _ in range(1)]
    draws2 = [model.sample(np.random.default_rng(3)) for _ in range(1)]
    assert draws1 == draws2
    rng = np.random.default_rng(0)
    assert all(model.sample(rng) >= 0.5 for _ in range(200))


def test_zero_std_is_constant():
    model = RuntimeModel("t", mean=4.2)
    rng = np.random.default_rng(0)
    assert model.sample(rng) == 4.2


def test_transformation_catalog():
    tc = TransformationCatalog()
    tc.add("mProjectPP", 6.0, 1.0)
    assert "mProjectPP" in tc
    assert tc.get("mProjectPP").mean == 6.0
    assert len(tc) == 1
    with pytest.raises(ValueError):
        tc.add("mProjectPP", 1.0)
    with pytest.raises(KeyError):
        tc.get("nope")


def test_lookup_order_is_insertion_and_hash_seed_independent():
    """Source selection reads ``lookup``'s order; it must be a pure
    function of the replica set — not of insertion history or of
    PYTHONHASHSEED (regression for the dict-ordered implementation)."""
    import itertools
    import subprocess
    import sys

    entries = [
        ("f", "zeta", "gsiftp://zeta/2/f"),
        ("f", "zeta", "gsiftp://zeta/1/f"),
        ("f", "alpha", "gsiftp://alpha/1/f"),
        ("f", "mid", "gsiftp://mid/1/f"),
    ]
    expected = [
        ("alpha", "gsiftp://alpha/1/f"),
        ("mid", "gsiftp://mid/1/f"),
        ("zeta", "gsiftp://zeta/1/f"),
        ("zeta", "gsiftp://zeta/2/f"),
    ]
    for perm in itertools.permutations(entries):
        rc = ReplicaCatalog()
        for lfn, site, url in perm:
            rc.register(lfn, site, url)
        assert [(r.site, r.url) for r in rc.lookup("f")] == expected

    script = (
        "from repro.catalogs import ReplicaCatalog\n"
        f"entries = {entries!r}\n"
        "rc = ReplicaCatalog()\n"
        "for lfn, site, url in entries:\n"
        "    rc.register(lfn, site, url)\n"
        "print([(r.site, r.url) for r in rc.lookup('f')])\n"
    )
    outputs = set()
    for seed in ("0", "1", "31337"):
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src", "PYTHONHASHSEED": seed},
            cwd=str(__import__("pathlib").Path(__file__).parents[2]),
            check=True,
        )
        outputs.add(proc.stdout.strip())
    assert outputs == {repr(expected)}
