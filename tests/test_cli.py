"""Tests of the command-line interface."""

import io
import urllib.request
import json

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def test_table4_command():
    code, text = run_cli("table4")
    assert code == 0
    assert "Table IV" in text
    assert "57" in text and "203" in text
    assert "No policy case" in text


def test_run_command_greedy():
    code, text = run_cli(
        "run", "--extra-mb", "10", "--images", "12", "--streams", "4", "--seed", "3"
    )
    assert code == 0
    assert "success       : True" in text
    assert "makespan" in text
    assert "policy calls" in text


def test_run_command_no_policy():
    code, text = run_cli("run", "--extra-mb", "0", "--images", "8", "--policy", "none")
    assert code == 0
    assert "policy calls" not in text


def test_run_command_balanced():
    code, text = run_cli(
        "run", "--extra-mb", "10", "--images", "8", "--policy", "balanced"
    )
    assert code == 0
    assert "success       : True" in text


def test_campaign_command():
    code, text = run_cli(
        "campaign", "--transfers", "20", "--mb", "20", "--workers", "4"
    )
    assert code == 0
    assert "transfers    : 20" in text
    assert "throughput" in text


def test_campaign_adaptive_prints_trajectory():
    code, text = run_cli(
        "campaign", "--transfers", "60", "--mb", "200", "--threshold", "200",
        "--adaptive",
    )
    assert code == 0
    assert "adaptive     : final threshold" in text


def test_figure_quick():
    code, text = run_cli("figure", "7", "--replicates", "1", "--quick")
    assert code == 0
    assert "Fig. 7" in text
    assert "no policy" in text


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["nope"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_serve_command_over_http():
    """Start the server in a thread, hit /policy/status, then stop it."""
    from repro.policy import PolicyConfig, PolicyService
    from repro.policy.rest import PolicyRestServer

    # Exercise the same wiring `repro serve` uses, without blocking forever.
    server = PolicyRestServer(
        PolicyService(PolicyConfig(policy="greedy", max_streams=77))
    ).start()
    try:
        with urllib.request.urlopen(f"{server.url}/policy/status", timeout=5) as r:
            doc = json.loads(r.read())
        assert doc["max_streams"] == 77
    finally:
        server.stop()


def test_public_api_exports_resolve():
    import repro

    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_run_with_storage_budget_and_output_site():
    code, text = run_cli(
        "run", "--extra-mb", "10", "--images", "8",
        "--max-staging-gb", "0.06", "--output-site", "archive",
    )
    assert code == 0
    assert "success       : True" in text


def test_figure_5_quick():
    code, text = run_cli("figure", "5", "--replicates", "1", "--quick")
    assert code == 0
    assert "Fig. 5" in text
    assert "1000 MB extra" in text


def test_lint_requires_a_target():
    code, text = run_cli("lint")
    assert code == 2
    assert "nothing to lint" in text


def test_lint_rejects_unknown_rule_set():
    code, text = run_cli("lint", "--rules", "bogus")
    assert code == 2
    assert "unknown rule set" in text


def test_lint_single_rule_set_text():
    code, text = run_cli("lint", "--rules", "greedy", "--trials", "5")
    assert code == 0
    assert "rules:greedy" in text
    assert "0 error(s)" in text


def test_lint_all_is_clean_and_json_renders():
    code, text = run_cli("lint", "--all", "--trials", "5", "--images", "6",
                         "--format", "json")
    assert code == 0
    docs = json.loads(text)
    targets = {doc["target"] for doc in docs}
    assert {"rules:greedy", "rules:balanced", "plan:montage-1deg"} <= targets
    assert all(doc["counts"]["error"] == 0 for doc in docs)


def test_lint_plan_only():
    code, text = run_cli("lint", "--plan", "montage", "--images", "5")
    assert code == 0
    assert "plan:montage-1deg" in text


def test_lint_suppression_is_reported():
    code, text = run_cli("lint", "--rules", "fifo", "--trials", "3",
                         "--suppress", "R007")
    assert code == 0
    assert "suppressed" in text and "R007" in text
