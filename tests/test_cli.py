"""Tests of the command-line interface."""

import io
import urllib.request
import json

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def test_table4_command():
    code, text = run_cli("table4")
    assert code == 0
    assert "Table IV" in text
    assert "57" in text and "203" in text
    assert "No policy case" in text


def test_run_command_greedy():
    code, text = run_cli(
        "run", "--extra-mb", "10", "--images", "12", "--streams", "4", "--seed", "3"
    )
    assert code == 0
    assert "success       : True" in text
    assert "makespan" in text
    assert "policy calls" in text


def test_run_command_no_policy():
    code, text = run_cli("run", "--extra-mb", "0", "--images", "8", "--policy", "none")
    assert code == 0
    assert "policy calls" not in text


def test_run_command_balanced():
    code, text = run_cli(
        "run", "--extra-mb", "10", "--images", "8", "--policy", "balanced"
    )
    assert code == 0
    assert "success       : True" in text


def test_campaign_command():
    code, text = run_cli(
        "campaign", "--transfers", "20", "--mb", "20", "--workers", "4"
    )
    assert code == 0
    assert "transfers    : 20" in text
    assert "throughput" in text


def test_campaign_adaptive_prints_trajectory():
    code, text = run_cli(
        "campaign", "--transfers", "60", "--mb", "200", "--threshold", "200",
        "--adaptive",
    )
    assert code == 0
    assert "adaptive     : final threshold" in text


def test_figure_quick():
    code, text = run_cli("figure", "7", "--replicates", "1", "--quick")
    assert code == 0
    assert "Fig. 7" in text
    assert "no policy" in text


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["nope"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_serve_command_over_http():
    """Start the server in a thread, hit /policy/status, then stop it."""
    from repro.policy import PolicyConfig, PolicyService
    from repro.policy.rest import PolicyRestServer

    # Exercise the same wiring `repro serve` uses, without blocking forever.
    server = PolicyRestServer(
        PolicyService(PolicyConfig(policy="greedy", max_streams=77))
    ).start()
    try:
        with urllib.request.urlopen(f"{server.url}/policy/status", timeout=5) as r:
            doc = json.loads(r.read())
        assert doc["max_streams"] == 77
    finally:
        server.stop()


def test_public_api_exports_resolve():
    import repro

    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_run_with_storage_budget_and_output_site():
    code, text = run_cli(
        "run", "--extra-mb", "10", "--images", "8",
        "--max-staging-gb", "0.06", "--output-site", "archive",
    )
    assert code == 0
    assert "success       : True" in text


def test_figure_5_quick():
    code, text = run_cli("figure", "5", "--replicates", "1", "--quick")
    assert code == 0
    assert "Fig. 5" in text
    assert "1000 MB extra" in text


def test_lint_requires_a_target():
    code, text = run_cli("lint")
    assert code == 2
    assert "nothing to lint" in text


def test_lint_rejects_unknown_rule_set():
    code, text = run_cli("lint", "--rules", "bogus")
    assert code == 2
    assert "unknown rule set" in text


def test_lint_single_rule_set_text():
    code, text = run_cli("lint", "--rules", "greedy", "--trials", "5")
    assert code == 0
    assert "rules:greedy" in text
    assert "0 error(s)" in text


def test_lint_all_is_clean_and_json_renders():
    code, text = run_cli("lint", "--all", "--trials", "5", "--images", "6",
                         "--format", "json")
    assert code == 0
    docs = json.loads(text)
    targets = {doc["target"] for doc in docs}
    assert {"rules:greedy", "rules:balanced", "plan:montage-1deg"} <= targets
    assert all(doc["counts"]["error"] == 0 for doc in docs)


def test_lint_plan_only():
    code, text = run_cli("lint", "--plan", "montage", "--images", "5")
    assert code == 0
    assert "plan:montage-1deg" in text


def test_lint_suppression_is_reported():
    code, text = run_cli("lint", "--rules", "fifo", "--trials", "3",
                         "--suppress", "R007")
    assert code == 0
    assert "suppressed" in text and "R007" in text


def test_lint_verify_single_composition():
    code, text = run_cli("lint", "--verify", "--rules", "greedy",
                         "--trials", "3")
    assert code == 0
    assert "verify:greedy" in text
    assert "0 error(s)" in text


def test_lint_verify_rejects_unknown_engine():
    code, text = run_cli("lint", "--verify", "--engines", "indexed,bogus")
    assert code == 2
    assert "unknown engine" in text


def test_lint_sarif_output():
    code, text = run_cli("lint", "--rules", "fifo", "--trials", "3",
                         "--format", "sarif")
    assert code == 0
    doc = json.loads(text)
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    assert "rules:fifo" in run["properties"]["targets"]


def test_lint_dead_suppression_is_flagged_s001():
    code, text = run_cli("lint", "--rules", "fifo", "--trials", "3",
                         "--suppress", "R042:never matches")
    assert code == 0
    assert "S001" in text and "dead" in text


def test_trace_command_writes_artifacts(tmp_path):
    outdir = tmp_path / "trace-out"
    code, text = run_cli(
        "trace", "examples-montage", "--out", str(outdir),
        "--images", "4", "--extra-mb", "2", "--seed", "3",
    )
    assert code == 0
    assert "success  : True" in text
    assert "rule" in text and "fires" in text  # profile report printed
    doc = json.loads((outdir / "trace.json").read_text())
    assert doc["traceEvents"]
    lines = (outdir / "events.jsonl").read_text().splitlines()
    assert lines and all(json.loads(line) for line in lines)
    assert "# TYPE" in (outdir / "metrics.prom").read_text()
    assert "firings" in (outdir / "rule_profile.txt").read_text()
    assert json.loads((outdir / "provenance.json").read_text())["trace"]["events"] > 0


def test_trace_command_chaos_scenario(tmp_path):
    outdir = tmp_path / "chaos-out"
    code, text = run_cli(
        "trace", "chaos-montage", "--out", str(outdir),
        "--images", "4", "--extra-mb", "2",
    )
    assert code == 0
    lines = (outdir / "events.jsonl").read_text().splitlines()
    names = {json.loads(line)["name"] for line in lines}
    assert "fault.outage.begin" in names


def test_serve_sharded_command_over_http():
    """`repro serve --shards N` wiring: a sharded fleet behind REST."""
    from repro.policy import PolicyConfig, ShardedPolicyService
    from repro.policy.rest import PolicyRestServer

    router = ShardedPolicyService(
        PolicyConfig(policy="greedy", max_streams=77), num_shards=2
    )
    server = PolicyRestServer(router).start()
    try:
        with urllib.request.urlopen(f"{server.url}/policy/status", timeout=5) as r:
            doc = json.loads(r.read())
        assert doc["max_streams"] == 77
        assert doc["shards"] == 2
        assert all(h["healthy"] for h in doc["shard_health"])
    finally:
        server.stop()
        router.close()


def test_serve_parser_accepts_shards():
    args = build_parser().parse_args(
        ["serve", "--shards", "4", "--journal-root", "/tmp/j"])
    assert args.shards == 4 and args.journal_root == "/tmp/j"


def test_trace_command_engines_agree(tmp_path):
    run_cli("trace", "--out", str(tmp_path / "a"), "--images", "4",
            "--extra-mb", "2", "--engine", "indexed")
    run_cli("trace", "--out", str(tmp_path / "b"), "--images", "4",
            "--extra-mb", "2", "--engine", "seed")
    assert (tmp_path / "a" / "events.jsonl").read_bytes() == \
        (tmp_path / "b" / "events.jsonl").read_bytes()


def test_trace_deterministic_across_processes(tmp_path):
    """Byte-identical JSONL even across hash-randomized interpreters.

    The in-process engine comparison above cannot catch ordering that
    leaks from set/dict iteration (PYTHONHASHSEED), so run the CLI in
    two subprocesses with different hash seeds and compare bytes.
    """
    import os
    import subprocess
    import sys

    env = {**os.environ, "PYTHONPATH": "src"}
    for tag, hashseed in (("a", "1"), ("b", "31337")):
        subprocess.run(
            [sys.executable, "-m", "repro", "trace", "examples-montage",
             "--images", "4", "--extra-mb", "2",
             "--out", str(tmp_path / tag)],
            env={**env, "PYTHONHASHSEED": hashseed},
            check=True, capture_output=True, timeout=300,
        )
    assert (tmp_path / "a" / "events.jsonl").read_bytes() == \
        (tmp_path / "b" / "events.jsonl").read_bytes()


def test_trace_chaos_rejects_policy_none(tmp_path):
    code, text = run_cli("trace", "chaos-montage", "--policy", "none",
                         "--out", str(tmp_path))
    assert code == 2
    assert "needs a policy" in text


def test_ensemble_command_demo():
    code, text = run_cli("ensemble", "--seed", "5")
    assert code == 0
    assert "scheduler      : fair (max 2 concurrent)" in text
    assert "success        : True" in text
    # gold carries priority_class=1 in the demo: it runs first.
    assert "in order gold-wf0-extra10MB, gold-wf1-extra10MB" in text
    for tenant in ("bronze", "silver", "gold"):
        assert tenant in text
    assert "fair share 57%" in text  # gold: 4/7


def test_ensemble_command_custom_config(tmp_path):
    config = tmp_path / "ensemble.json"
    config.write_text(json.dumps({
        "tenants": [
            {"tenant": "acme", "weight": 2},
            {"tenant": "capped", "weight": 1, "max_bytes": 1.0},
        ],
        "submissions": [
            {"tenant": "acme", "count": 1, "images": 4, "extra_mb": 2},
            {"tenant": "capped", "count": 1, "images": 4, "extra_mb": 2},
        ],
        "scheduler": "fair",
        "max_concurrent": 2,
    }))
    code, text = run_cli("ensemble", "--config", str(config))
    assert code == 0  # the rejection is reported, the rest still succeeds
    assert "rejected       : capped-wf0-extra2MB (capped)" in text
    assert "byte quota exhausted" in text
    assert "success        : True" in text


def test_ensemble_command_scheduler_override():
    code, text = run_cli("ensemble", "--scheduler", "fifo",
                         "--max-concurrent", "1")
    assert code == 0
    assert "scheduler      : fifo (max 1 concurrent)" in text
    # FIFO ignores priority classes: submission order wins.
    assert "in order bronze-wf0-extra10MB" in text


def test_trace_tenant_ensemble_artifacts(tmp_path):
    code, text = run_cli("trace", "tenant-ensemble", "--out", str(tmp_path))
    assert code == 0
    assert "success  : True" in text
    assert "tenant events" in text
    for artifact in ("trace.json", "events.jsonl", "metrics.prom",
                     "provenance.json"):
        assert (tmp_path / artifact).exists()
    provenance = json.loads((tmp_path / "provenance.json").read_text())
    assert provenance["kind"] == "tenant-ensemble"
    assert provenance["admission_order"][0] == "gold-wf0-extra10MB"
    lines = (tmp_path / "events.jsonl").read_text().splitlines()
    assert any('"tenant.admit"' in line for line in lines)


def test_ensemble_trace_deterministic_across_processes(tmp_path):
    """The tenant-ensemble trace must stay byte-identical across
    hash-randomized interpreters: admission decisions route through
    dicts (ledgers, registries), so this is the regression net for
    iteration-order leaks in the tenancy layer."""
    import os
    import subprocess
    import sys

    env = {**os.environ, "PYTHONPATH": "src"}
    for tag, hashseed in (("a", "1"), ("b", "31337")):
        subprocess.run(
            [sys.executable, "-m", "repro", "trace", "tenant-ensemble",
             "--out", str(tmp_path / tag)],
            env={**env, "PYTHONHASHSEED": hashseed},
            check=True, capture_output=True, timeout=300,
        )
    assert (tmp_path / "a" / "events.jsonl").read_bytes() == \
        (tmp_path / "b" / "events.jsonl").read_bytes()


def test_explain_command_text():
    code, text = run_cli("explain", "2", "--images", "6")
    assert code == 0
    assert "transfer 2:" in text
    assert "causal chain" in text
    assert "digest" in text


def test_explain_command_json_digest_invariant_across_engines_and_shards():
    digests = set()
    for extra in (["--engine", "seed"], ["--engine", "compiled"],
                  ["--shards", "2"], []):
        code, text = run_cli("explain", "3", "--images", "6",
                             "--format", "json", *extra)
        assert code == 0
        record = json.loads(text)
        assert record["tid"] == 3
        digests.add(record["digest"])
    assert len(digests) == 1, "explain digests diverged across engines/shards"


def test_explain_command_unknown_tid():
    code, text = run_cli("explain", "424242", "--images", "6")
    assert code == 1
    assert "no decision record" in text
