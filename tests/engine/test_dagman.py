"""Unit tests for the DAGMan-like executor."""

import pytest

from repro.des import Environment
from repro.engine import DAGMan
from repro.planner.executable import ExecutableJob, ExecutableWorkflow, JobKind


def make_plan(edges, kinds=None):
    plan = ExecutableWorkflow("w", "w#1")
    nodes = {n for e in edges for n in e} if edges else set()
    for node in sorted(nodes):
        kind = (kinds or {}).get(node, JobKind.COMPUTE)
        plan.add_job(ExecutableJob(id=node, kind=kind, transform="t"))
    for parent, child in edges:
        plan.add_edge(parent, child)
    return plan


def timed_runner(env, durations, trace=None):
    def runner(workflow_id, job):
        if trace is not None:
            trace.append((env.now, job.id, "start"))
        yield env.timeout(durations.get(job.id, 1.0))
        if trace is not None:
            trace.append((env.now, job.id, "end"))

    return runner


def run_dagman(env, dagman):
    p = env.process(dagman.run())
    return env.run(until=p)


def test_dependency_order_respected():
    env = Environment()
    trace = []
    plan = make_plan([("a", "b"), ("b", "c"), ("a", "c")])
    runner = timed_runner(env, {"a": 5, "b": 3, "c": 1}, trace)
    result = run_dagman(env, DAGMan(env, plan, {JobKind.COMPUTE: runner}))
    assert result.success
    starts = {j: t for t, j, e in trace if e == "start"}
    assert starts["a"] == 0
    assert starts["b"] == 5
    assert starts["c"] == 8
    assert result.makespan == 9


def test_parallel_jobs_run_concurrently():
    env = Environment()
    plan = ExecutableWorkflow("w", "w#1")
    for i in range(5):
        plan.add_job(ExecutableJob(id=f"j{i}", kind=JobKind.COMPUTE, transform="t"))
    runner = timed_runner(env, {})
    result = run_dagman(env, DAGMan(env, plan, {JobKind.COMPUTE: runner}))
    assert result.makespan == pytest.approx(1.0)


def test_throttle_limits_category_concurrency():
    env = Environment()
    plan = ExecutableWorkflow("w", "w#1")
    for i in range(6):
        plan.add_job(ExecutableJob(id=f"s{i}", kind=JobKind.STAGE_IN))
    runner = timed_runner(env, {})
    dagman = DAGMan(
        env, plan, {JobKind.STAGE_IN: runner}, throttles={JobKind.STAGE_IN: 2}
    )
    result = run_dagman(env, dagman)
    assert result.makespan == pytest.approx(3.0)  # 6 jobs, 2 at a time, 1s each


def test_throttle_applies_only_to_its_kind():
    env = Environment()
    plan = ExecutableWorkflow("w", "w#1")
    for i in range(3):
        plan.add_job(ExecutableJob(id=f"s{i}", kind=JobKind.STAGE_IN))
        plan.add_job(ExecutableJob(id=f"c{i}", kind=JobKind.COMPUTE, transform="t"))
    runner = timed_runner(env, {})
    dagman = DAGMan(
        env,
        plan,
        {JobKind.STAGE_IN: runner, JobKind.COMPUTE: runner},
        throttles={JobKind.STAGE_IN: 1},
    )
    result = run_dagman(env, dagman)
    assert result.makespan == pytest.approx(3.0)
    computes = result.by_kind(JobKind.COMPUTE)
    assert all(r.t_start == 0 for r in computes)  # computes unthrottled


def test_priority_breaks_throttle_queue_ties():
    env = Environment()
    plan = ExecutableWorkflow("w", "w#1")
    plan.add_job(ExecutableJob(id="low", kind=JobKind.STAGE_IN, priority=1))
    plan.add_job(ExecutableJob(id="high", kind=JobKind.STAGE_IN, priority=9))
    order = []

    def runner(workflow_id, job):
        order.append(job.id)
        yield env.timeout(1.0)

    dagman = DAGMan(env, plan, {JobKind.STAGE_IN: runner}, throttles={JobKind.STAGE_IN: 1})
    run_dagman(env, dagman)
    assert order == ["high", "low"]


def test_retries_then_success():
    env = Environment()
    plan = make_plan([("a", "b")])
    attempts = {"a": 0}

    def runner(workflow_id, job):
        yield env.timeout(1.0)
        if job.id == "a":
            attempts["a"] += 1
            if attempts["a"] <= 2:
                raise RuntimeError("flaky")

    result = run_dagman(env, DAGMan(env, plan, {JobKind.COMPUTE: runner}, retries=5))
    assert result.success
    assert result.records["a"].attempts == 3
    assert result.records["b"].state == "done"


def test_retries_exhausted_fails_workflow():
    env = Environment()
    plan = make_plan([("a", "b")])

    def runner(workflow_id, job):
        yield env.timeout(1.0)
        if job.id == "a":
            raise RuntimeError("always broken")

    result = run_dagman(env, DAGMan(env, plan, {JobKind.COMPUTE: runner}, retries=2))
    assert not result.success
    assert "always broken" in result.failure
    assert result.records["a"].state == "failed"
    assert result.records["a"].attempts == 3  # 1 try + 2 retries
    assert result.records["b"].state == "pending"  # never released


def test_job_records_timing():
    env = Environment()
    plan = make_plan([("a", "b")])
    runner = timed_runner(env, {"a": 4, "b": 2})
    result = run_dagman(env, DAGMan(env, plan, {JobKind.COMPUTE: runner}))
    rec_b = result.records["b"]
    assert rec_b.t_ready == 4
    assert rec_b.t_start == 4
    assert rec_b.t_end == 6
    assert rec_b.duration == 2
    assert rec_b.queue_delay == 0


def test_validation():
    env = Environment()
    plan = make_plan([("a", "b")])
    with pytest.raises(ValueError, match="no runner"):
        DAGMan(env, plan, {})
    runner = timed_runner(env, {})
    with pytest.raises(ValueError):
        DAGMan(env, plan, {JobKind.COMPUTE: runner}, retries=-1)
    with pytest.raises(ValueError):
        DAGMan(env, plan, {JobKind.COMPUTE: runner}, throttles={JobKind.COMPUTE: 0})


def test_retry_backoff_spaces_out_attempts():
    env = Environment()
    plan = make_plan([("a", "b")])
    starts = []

    def runner(workflow_id, job):
        if job.id == "a":
            starts.append(env.now)
        yield env.timeout(1.0)
        if job.id == "a" and len(starts) <= 2:
            raise RuntimeError("flaky")

    dagman = DAGMan(
        env, plan, {JobKind.COMPUTE: runner}, retries=5, retry_backoff=10.0, rng=None
    )
    result = run_dagman(env, dagman)
    assert result.success
    # Attempt 1 at t=0 fails at t=1, waits 10; attempt 2 at t=11 fails at
    # t=12, waits 20; attempt 3 at t=32 succeeds.
    assert starts == [0.0, 11.0, 32.0]
    assert result.records["b"].t_start == 33.0


def test_retry_backoff_is_capped():
    env = Environment()
    plan = make_plan([("a", "b")])
    starts = []

    def runner(workflow_id, job):
        if job.id == "a":
            starts.append(env.now)
        yield env.timeout(1.0)
        if job.id == "a" and len(starts) <= 3:
            raise RuntimeError("flaky")

    dagman = DAGMan(
        env,
        plan,
        {JobKind.COMPUTE: runner},
        retries=5,
        retry_backoff=10.0,
        retry_backoff_max=15.0,
        rng=None,
    )
    result = run_dagman(env, dagman)
    assert result.success
    # Delays: 10, 15 (capped from 20), 15 (capped from 40).
    assert starts == [0.0, 11.0, 27.0, 43.0]


def test_retry_jitter_inflates_delay():
    import random

    env = Environment()
    plan = make_plan([("a", "b")])
    starts = []

    def runner(workflow_id, job):
        if job.id == "a":
            starts.append(env.now)
        yield env.timeout(1.0)
        if job.id == "a" and len(starts) == 1:
            raise RuntimeError("flaky")

    dagman = DAGMan(
        env,
        plan,
        {JobKind.COMPUTE: runner},
        retries=5,
        retry_backoff=10.0,
        retry_jitter=0.5,
        rng=random.Random(3),
    )
    result = run_dagman(env, dagman)
    assert result.success
    delay = starts[1] - 1.0
    assert 10.0 <= delay <= 15.0
    assert delay != 10.0  # jitter actually moved it


def test_zero_backoff_retries_immediately():
    env = Environment()
    plan = make_plan([("a", "b")])
    starts = []

    def runner(workflow_id, job):
        if job.id == "a":
            starts.append(env.now)
        yield env.timeout(1.0)
        if job.id == "a" and len(starts) == 1:
            raise RuntimeError("flaky")

    result = run_dagman(env, DAGMan(env, plan, {JobKind.COMPUTE: runner}, retries=5))
    assert result.success
    assert starts == [0.0, 1.0]  # default keeps the seed's immediate-retry behavior


def test_backoff_validation():
    env = Environment()
    plan = make_plan([("a", "b")])
    runner = timed_runner(env, {})
    with pytest.raises(ValueError):
        DAGMan(env, plan, {JobKind.COMPUTE: runner}, retry_backoff=-1.0)
    with pytest.raises(ValueError):
        DAGMan(env, plan, {JobKind.COMPUTE: runner}, retry_jitter=2.0)
