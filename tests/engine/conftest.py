"""Shared fixtures for engine tests: a small two-site fabric."""

import numpy as np
import pytest

from repro.des import Environment
from repro.net import FlowNetwork, GridFTPClient, Link, Network, StreamModel


@pytest.fixture
def fabric_env():
    env = Environment()
    net = Network()
    remote = net.add_site("remote")
    local = net.add_site("local")
    src = net.add_host("fg-vm", remote)
    web = net.add_host("web", local)
    dst = net.add_host("obelix", local)
    wan = net.add_link(Link("wan", capacity=100.0))
    lan = net.add_link(Link("lan", capacity=1000.0))
    net.add_route(src, dst, [wan])
    net.add_route(web, dst, [lan])
    fabric = FlowNetwork(env, net, StreamModel(session_setup=1.0, stream_setup=0.0, ramp_time=0.0))
    client = GridFTPClient(fabric, rng=np.random.default_rng(0))
    return env, fabric, client
