"""Unit tests for the cluster scheduler."""

import pytest

from repro.des import Environment
from repro.engine import ClusterScheduler


def test_validation():
    env = Environment()
    with pytest.raises(ValueError):
        ClusterScheduler(env, slots=0)
    with pytest.raises(ValueError):
        ClusterScheduler(env, slots=1, submit_overhead=-1)
    sched = ClusterScheduler(env, slots=1)

    def bad():
        yield from sched.run_job(-1)

    p = env.process(bad())
    with pytest.raises(ValueError):
        env.run(until=p)


def test_slots_limit_concurrency():
    env = Environment()
    sched = ClusterScheduler(env, slots=2, submit_overhead=0.0)
    ends = []

    def job(i):
        yield from sched.run_job(10.0)
        ends.append((i, env.now))

    for i in range(4):
        env.process(job(i))
    env.run()
    assert [t for _, t in ends] == [10.0, 10.0, 20.0, 20.0]


def test_submit_overhead_charged():
    env = Environment()
    sched = ClusterScheduler(env, slots=1, submit_overhead=0.5)

    def job():
        yield from sched.run_job(2.0)

    env.process(job())
    env.run()
    assert env.now == 2.5


def test_priority_order_under_contention():
    env = Environment()
    sched = ClusterScheduler(env, slots=1, submit_overhead=0.0)
    order = []

    def hold():
        yield from sched.run_job(5.0)

    def job(tag, prio):
        yield env.timeout(1.0)
        yield from sched.run_job(1.0, priority=prio)
        order.append(tag)

    env.process(hold())
    env.process(job("low", 0))
    env.process(job("high", 10))
    env.run()
    assert order == ["high", "low"]


def test_counters():
    env = Environment()
    sched = ClusterScheduler(env, slots=2, submit_overhead=0.0)

    def job():
        yield from sched.run_job(3.0)

    env.process(job())
    env.process(job())
    env.run()
    assert sched.jobs_run == 2
    assert sched.busy_time == pytest.approx(6.0)
    assert sched.in_use == 0
