"""Unit tests for the Pegasus Transfer Tool (policy integration point)."""

import numpy as np
import pytest

from repro.catalogs import ReplicaCatalog
from repro.engine import PegasusTransferTool
from repro.net import GridFTPClient, TransferError
from repro.planner.executable import ExecutableJob, JobKind, TransferSpec
from repro.policy import InProcessPolicyClient, PolicyConfig, PolicyService


def staging_job(job_id="stage_in_j1", lfns=("a", "b"), nbytes=100.0):
    return ExecutableJob(
        id=job_id,
        kind=JobKind.STAGE_IN,
        site="local",
        transfers=[
            TransferSpec(
                lfn=lfn,
                src_url=f"gsiftp://fg-vm/data/{lfn}",
                dst_url=f"gsiftp://obelix/scratch/{lfn}",
                nbytes=nbytes,
            )
            for lfn in lfns
        ],
    )


def make_policy(env, policy="greedy", default=4, threshold=50, latency=0.0):
    service = PolicyService(
        PolicyConfig(policy=policy, default_streams=default, max_streams=threshold)
    )
    return InProcessPolicyClient(service, env, latency=latency)


def run_job(env, ptt, job, workflow="wf1"):
    result = {}

    def proc():
        result["record"] = yield from ptt.execute(workflow, job)

    p = env.process(proc())
    env.run(until=p)
    return result["record"]


def test_default_mode_executes_all_serially(fabric_env):
    env, fabric, client = fabric_env
    ptt = PegasusTransferTool(client, policy=None, default_streams=4)
    record = run_job(env, ptt, staging_job())
    assert record.executed == 2
    assert record.skipped == 0
    assert record.bytes_moved == pytest.approx(200.0)
    # Serial: two session setups (1s each) + 1s data each at 100 B/s.
    assert env.now == pytest.approx(4.0, rel=0.05)


def test_policy_mode_uses_advised_streams(fabric_env):
    env, fabric, client = fabric_env
    policy = make_policy(env, default=4, threshold=6)
    ptt = PegasusTransferTool(client, policy=policy, default_streams=4)
    record = run_job(env, ptt, staging_job())
    assert record.executed == 2
    assert record.streams_used == [4, 2]  # greedy trimmed the second


def test_policy_mode_groups_share_session(fabric_env):
    env, fabric, client = fabric_env
    policy = make_policy(env)
    ptt = PegasusTransferTool(client, policy=policy, default_streams=4)
    run_job(env, ptt, staging_job())
    # Same host pair: one group; the second transfer skips session setup.
    # Timing: 1s session + 1s data + 0s session + 1s data = 3s.
    assert env.now == pytest.approx(3.0, rel=0.05)


def test_policy_mode_reports_completions(fabric_env):
    env, fabric, client = fabric_env
    policy = make_policy(env)
    ptt = PegasusTransferTool(client, policy=policy, default_streams=4)
    run_job(env, ptt, staging_job())
    snap = policy.service.snapshot()
    assert snap["memory"].get("TransferFact") is None  # all completed/removed
    assert snap["host_pairs"]["fg-vm->obelix"]["allocated"] == 0


def test_duplicate_across_jobs_skipped(fabric_env):
    env, fabric, client = fabric_env
    policy = make_policy(env)
    ptt = PegasusTransferTool(client, policy=policy, default_streams=4)
    run_job(env, ptt, staging_job("j1", lfns=("shared",)))
    record = run_job(env, ptt, staging_job("j2", lfns=("shared",)), workflow="wf2")
    assert record.executed == 0
    assert record.skipped == 1


def test_concurrent_duplicate_waits_for_inflight(fabric_env):
    env, fabric, client = fabric_env
    policy = make_policy(env)
    ptt = PegasusTransferTool(client, policy=policy, default_streams=4, poll_interval=0.5)
    records = {}

    def first():
        records["a"] = yield from ptt.execute("wf1", staging_job("j1", lfns=("big",), nbytes=1000.0))

    def second():
        yield env.timeout(1.5)  # first transfer in flight
        records["b"] = yield from ptt.execute("wf2", staging_job("j2", lfns=("big",), nbytes=1000.0))

    env.process(first())
    env.process(second())
    env.run()
    assert records["a"].executed == 1
    assert records["b"].executed == 0
    assert records["b"].waited == 1
    # The waiter finished no earlier than the original transfer.
    assert records["b"].t_end >= records["a"].t_end
    assert fabric.bytes_moved == pytest.approx(1000.0)  # staged only once


def test_failure_reports_and_raises(fabric_env):
    env, fabric, client = fabric_env
    failing = GridFTPClient(fabric, rng=np.random.default_rng(3), failure_rate=0.999)
    policy = make_policy(env)
    ptt = PegasusTransferTool(failing, policy=policy, default_streams=4)

    def proc():
        yield from ptt.execute("wf1", staging_job())

    p = env.process(proc())
    with pytest.raises(TransferError):
        env.run(until=p)
    # Streams were released for the failed and abandoned transfers.
    snap = policy.service.snapshot()
    assert snap["host_pairs"]["fg-vm->obelix"]["allocated"] == 0


def test_retry_after_failure_can_restage(fabric_env):
    env, fabric, client = fabric_env
    policy = make_policy(env)
    # First attempt fails, second succeeds (failure_rate hits once).
    flaky = GridFTPClient(fabric, rng=np.random.default_rng(12), failure_rate=0.5)
    ptt = PegasusTransferTool(flaky, policy=policy, default_streams=4)
    attempts = {"n": 0}
    record = {}

    def proc():
        while True:
            attempts["n"] += 1
            try:
                record["r"] = yield from ptt.execute("wf1", staging_job("j1", lfns=("x",)))
                return
            except TransferError:
                continue

    p = env.process(proc())
    env.run(until=p)
    assert record["r"].executed == 1
    assert attempts["n"] >= 1


def test_replica_registration(fabric_env):
    env, fabric, client = fabric_env
    rc = ReplicaCatalog()
    ptt = PegasusTransferTool(
        client, policy=None, replicas=rc, host_site={"obelix": "local-site"}
    )
    run_job(env, ptt, staging_job())
    assert rc.has("a", site="local-site")
    assert rc.has("b", site="local-site")


def test_policy_latency_charged(fabric_env):
    env, fabric, client = fabric_env
    policy = make_policy(env, latency=0.5)
    ptt = PegasusTransferTool(client, policy=policy, default_streams=4)
    run_job(env, ptt, staging_job(lfns=("a",)))
    # submit + one completion = 2 calls x 0.5s on top of 1s setup + 1s data.
    assert env.now == pytest.approx(3.0, rel=0.05)
    assert policy.calls == 2
    assert policy.time_in_calls == pytest.approx(1.0)


def test_validation(fabric_env):
    env, fabric, client = fabric_env
    with pytest.raises(ValueError):
        PegasusTransferTool(client, default_streams=0)
    with pytest.raises(ValueError):
        PegasusTransferTool(client, poll_interval=0)


class _StubPolicy:
    """Minimal policy client: acknowledges completions, no advice."""

    def complete_transfers(self, done=(), failed=()):
        yield from ()
        return {"acknowledged": len(list(done)) + len(list(failed))}


def _advice(tid, lfn, group_id, streams=1, nbytes=100.0):
    from repro.policy.model import TransferAdvice

    return TransferAdvice(
        tid=tid,
        lfn=lfn,
        src_url=f"gsiftp://fg-vm/data/{lfn}",
        dst_url=f"gsiftp://obelix/scratch/{lfn}",
        nbytes=nbytes,
        action="transfer",
        streams=streams,
        group_id=group_id,
    )


def _run_items(env, ptt, items):
    from repro.engine.transfer_tool import StagingRecord

    record = StagingRecord(job_id="j", t_start=env.now)

    def proc():
        yield from ptt._run_approved(items, record)

    p = env.process(proc())
    env.run(until=p)
    return record


def test_grouped_items_share_one_session(fabric_env):
    env, fabric, client = fabric_env
    ptt = PegasusTransferTool(client, policy=_StubPolicy(), default_streams=1)
    _run_items(env, ptt, [_advice(1, "a", group_id=7), _advice(2, "b", group_id=7)])
    # One session setup (1s) + 1s data, then reuse: 0s setup + 1s data.
    assert env.now == pytest.approx(3.0, rel=0.05)


def test_group_zero_never_reuses_a_session(fabric_env):
    # group_id == 0 is the "ungrouped" fallback, not a real group:
    # consecutive 0s must each pay control-channel setup.
    env, fabric, client = fabric_env
    ptt = PegasusTransferTool(client, policy=_StubPolicy(), default_streams=1)
    _run_items(env, ptt, [_advice(1, "a", group_id=0), _advice(2, "b", group_id=0)])
    # Two full session setups: (1+1) + (1+1) = 4s.
    assert env.now == pytest.approx(4.0, rel=0.05)


def test_eviction_victims_are_applied_to_replicas_and_storage(fabric_env):
    """When a completion report returns eviction victims, the tool drops
    them from its replica view and scratch accounting — the simulation
    analogue of actually deleting the file."""
    from repro.datacatalog.model import CatalogConfig
    from repro.engine.storage import StorageTracker

    env, fabric, client = fabric_env
    service = PolicyService(
        PolicyConfig(
            policy="greedy",
            default_streams=4,
            max_streams=50,
            catalog=CatalogConfig(
                site_capacity={"local": 150.0},
                host_site={"obelix": "local"},
            ),
        ),
        clock=lambda: env.now,
    )
    policy = InProcessPolicyClient(service, env)
    rc = ReplicaCatalog()
    storage = StorageTracker(env, "local")
    ptt = PegasusTransferTool(
        client,
        policy=policy,
        replicas=rc,
        host_site={"obelix": "local"},
        storage=storage,
    )

    run_job(env, ptt, staging_job("si1", lfns=("a",)), workflow="wf1")
    assert rc.has("a", site="local")
    assert storage.used == pytest.approx(100.0)

    def release():
        yield from policy.unregister_workflow("wf1")

    p = env.process(release())
    env.run(until=p)

    # wf2's stage-in overflows the 150-byte budget: 'a' is evicted and
    # the tool applies the victim to both catalog and scratch.
    run_job(env, ptt, staging_job("si2", lfns=("b",)), workflow="wf2")
    assert ptt.evicted_log == [("a", "gsiftp://obelix/scratch/a")]
    assert not rc.has("a")
    assert rc.has("b", site="local")
    assert storage.used == pytest.approx(100.0)  # b only
