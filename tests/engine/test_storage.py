"""Unit tests for scratch-storage accounting."""

import pytest

from repro.des import Environment
from repro.engine import StorageTracker
from repro.experiments import ExperimentConfig, run_cell


def test_add_remove_and_peak():
    env = Environment()
    tracker = StorageTracker(env, site="isi")
    tracker.add("a", 100)
    tracker.add("b", 50)
    assert tracker.used == 150
    assert tracker.peak == 150
    assert tracker.holds("a")
    assert tracker.remove("a") == 100
    assert tracker.used == 50
    assert tracker.peak == 150  # peak sticks
    assert tracker.file_count == 1


def test_duplicate_add_is_idempotent():
    env = Environment()
    tracker = StorageTracker(env, site="isi")
    tracker.add("a", 100)
    tracker.add("a", 100)  # restage of an existing file
    assert tracker.used == 100


def test_remove_unknown_is_zero():
    env = Environment()
    tracker = StorageTracker(env, site="isi")
    assert tracker.remove("ghost") == 0
    assert tracker.used == 0


def test_validation():
    env = Environment()
    with pytest.raises(ValueError):
        StorageTracker(env, site="isi", capacity=0)
    tracker = StorageTracker(env, site="isi")
    with pytest.raises(ValueError):
        tracker.add("a", -1)


def test_over_capacity_time_tracked():
    env = Environment()
    tracker = StorageTracker(env, site="isi", capacity=100)

    def scenario():
        tracker.add("a", 80)
        yield env.timeout(5)
        tracker.add("b", 50)   # over capacity at t=5
        yield env.timeout(10)
        tracker.remove("b")    # back under at t=15
        yield env.timeout(3)

    env.process(scenario())
    env.run()
    tracker.finish()
    assert tracker.over_capacity_time == pytest.approx(10.0)


def test_over_capacity_open_interval_closed_by_finish():
    env = Environment()
    tracker = StorageTracker(env, site="isi", capacity=10)

    def scenario():
        tracker.add("a", 20)
        yield env.timeout(7)

    env.process(scenario())
    env.run()
    tracker.finish()
    assert tracker.over_capacity_time == pytest.approx(7.0)


def test_timeline_recorded():
    env = Environment()
    tracker = StorageTracker(env, site="isi")
    tracker.add("a", 10)
    tracker.remove("a")
    assert tracker.timeline == [(0.0, 0.0), (0.0, 10.0), (0.0, 0.0)]


# ------------------------------------------------------- end-to-end footprint
def test_cleanup_reduces_peak_footprint():
    """The paper's cleanup motivation: smaller data footprint on scratch."""
    base = dict(extra_file_mb=10, n_images=16, seed=5, policy="greedy")
    with_cleanup = run_cell(ExperimentConfig(**base, cleanup=True))
    without = run_cell(ExperimentConfig(**base, cleanup=False))
    assert with_cleanup.peak_footprint < without.peak_footprint
    # Without cleanup, nothing is ever deleted from scratch.
    assert without.final_footprint == pytest.approx(without.peak_footprint)
    # With cleanup, the end-of-run footprint is a small remainder.
    assert with_cleanup.final_footprint < 0.5 * without.final_footprint
