"""Unit tests for the cleanup tool."""

import pytest

from repro.catalogs import ReplicaCatalog
from repro.des import Environment
from repro.engine import CleanupTool
from repro.planner.executable import ExecutableJob, JobKind
from repro.policy import InProcessPolicyClient, PolicyConfig, PolicyService


def cleanup_job(job_id="cleanup_f", files=(("f", "gsiftp://obelix/scratch/f"),)):
    return ExecutableJob(
        id=job_id, kind=JobKind.CLEANUP, site="isi", cleanup_files=list(files)
    )


def run(env, tool, job, workflow="wf1"):
    out = {}

    def proc():
        out["r"] = yield from tool.execute(workflow, job)

    p = env.process(proc())
    env.run(until=p)
    return out["r"]


def test_without_policy_deletes_everything():
    env = Environment()
    tool = CleanupTool(env, per_file_latency=0.1)
    record = run(
        env, tool,
        cleanup_job(files=[("a", "gsiftp://h/a"), ("b", "gsiftp://h/b")]),
    )
    assert record.deleted == 2
    assert env.now == pytest.approx(0.2)


def test_policy_protects_shared_file():
    env = Environment()
    service = PolicyService(PolicyConfig(policy="greedy"))
    client = InProcessPolicyClient(service, env, latency=0.0)
    # Stage a file used by two workflows.
    advice = service.submit_transfers(
        "wf1", "j",
        [{"lfn": "f", "src_url": "gsiftp://s/f", "dst_url": "gsiftp://obelix/scratch/f",
          "nbytes": 1}],
    )
    service.complete_transfers(done=[advice[0].tid])
    service.submit_transfers(
        "wf2", "j",
        [{"lfn": "f", "src_url": "gsiftp://s/f", "dst_url": "gsiftp://obelix/scratch/f",
          "nbytes": 1}],
    )
    tool = CleanupTool(env, policy=client, per_file_latency=0.0)
    record = run(env, tool, cleanup_job())
    assert record.deleted == 0
    assert record.skipped == 1
    # Once wf2 releases the file, cleanup proceeds.
    record2 = run(env, tool, cleanup_job(job_id="cleanup_f2"), workflow="wf2")
    assert record2.deleted == 1


def test_policy_cleanup_completion_reported():
    env = Environment()
    service = PolicyService(PolicyConfig(policy="greedy"))
    client = InProcessPolicyClient(service, env, latency=0.0)
    tool = CleanupTool(env, policy=client)
    run(env, tool, cleanup_job())
    assert service.memory.snapshot().get("CleanupFact") is None


def test_replica_unregistered_on_delete():
    env = Environment()
    rc = ReplicaCatalog()
    rc.register("f", "isi", "gsiftp://obelix/scratch/f")
    tool = CleanupTool(env, replicas=rc, host_site={"obelix": "isi"})
    run(env, tool, cleanup_job())
    assert not rc.has("f")


def test_validation():
    env = Environment()
    with pytest.raises(ValueError):
        CleanupTool(env, per_file_latency=-1)
