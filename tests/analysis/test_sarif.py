"""SARIF 2.1.0 export of analysis reports."""

import json

from repro.analysis import Severity, render_sarif, to_sarif
from repro.analysis.findings import Report
from repro.analysis.sarif import CHECK_DESCRIPTIONS


def _sample_reports():
    lint = Report("rules:greedy")
    lint.add("R003", Severity.WARNING, "rule a", "ambiguous tie",
             location="/src/pack.py:12")
    lint.add("R007", Severity.INFO, "rule b", "dependency cycle")
    lint.suppress(["R006"])
    verify = Report("verify:greedy")
    verify.add("V001", Severity.ERROR, "pack:greedy", "not confluent",
               counterexample={"kind": "confluence", "soup": []})
    return [lint, verify]


def test_sarif_document_shape():
    doc = to_sarif(_sample_reports())
    assert doc["version"] == "2.1.0"
    assert "sarif-2.1.0" in doc["$schema"]
    (run,) = doc["runs"]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    assert [r["id"] for r in run["tool"]["driver"]["rules"]] == [
        "R003", "R007", "V001"
    ]
    assert run["properties"]["targets"] == ["rules:greedy", "verify:greedy"]
    assert run["properties"]["suppressed"] == {"R006": 0}


def test_sarif_results_map_severities_and_locations():
    doc = to_sarif(_sample_reports())
    results = {r["ruleId"]: r for r in doc["runs"][0]["results"]}
    assert results["V001"]["level"] == "error"
    assert results["R003"]["level"] == "warning"
    assert results["R007"]["level"] == "note"
    location = results["R003"]["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "/src/pack.py"
    assert location["region"]["startLine"] == 12
    assert "locations" not in results["R007"]


def test_sarif_preserves_counterexample_detail():
    doc = to_sarif(_sample_reports())
    results = {r["ruleId"]: r for r in doc["runs"][0]["results"]}
    detail = results["V001"]["properties"]["detail"]
    assert detail["counterexample"]["kind"] == "confluence"


def test_render_sarif_is_valid_json():
    doc = json.loads(render_sarif(_sample_reports()))
    assert doc["runs"][0]["results"]


def test_every_emitted_check_id_has_a_description():
    # every analyzer check id referenced anywhere in the suite's fixtures
    for check in ("R001", "R005", "P003", "V001", "V005", "S001"):
        assert check in CHECK_DESCRIPTIONS
