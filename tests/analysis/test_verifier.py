"""Semantic verifier: live compositions come back clean, seeded defects
are caught, and every dynamic error replays in a real session."""

import json

import pytest

from repro.analysis import (
    Severity,
    VerifyOptions,
    flag_dead_suppressions,
    replay_counterexample,
    verify_pack,
)
from repro.analysis.verifier import VERIFY_SUPPRESSIONS, verify_compositions

from tests.analysis import defect_fixtures as defects


def _verify(builders, **overrides):
    options = VerifyOptions(
        seed=0, universes=6, ledger_trials=4, apply_suppressions=False,
        **overrides,
    )
    return verify_pack("defect", builders, {}, options)


def _errors(report, check):
    return [
        f for f in report.findings
        if f.check == check and f.severity == Severity.ERROR
    ]


# -- seeded defects ---------------------------------------------------------
def test_non_confluent_pack_triggers_v001_with_replayed_counterexample():
    report = _verify([defects.non_confluent_rules])
    hits = _errors(report, "V001")
    assert hits, "equal-salience writers of the same attribute must split"
    doc = hits[0].detail["counterexample"]
    result = replay_counterexample(doc)
    assert result["reproduced"]
    # the divergence needs exactly one contested probe fact
    assert len(doc["facts"]) == 1


def test_unbalanced_reserve_triggers_v002_error_on_failed_terminal():
    report = _verify([defects.unbalanced_reserve_rules])
    hits = _errors(report, "V002")
    assert hits, "failed grants leak their pool reservation"
    finding = hits[0]
    assert finding.detail["terminal"] == "failed"
    assert "PoolFact.reserved" in finding.subject
    result = replay_counterexample(finding.detail["counterexample"])
    assert result["reproduced"]
    assert result["leaks"]


def test_cross_pack_conflict_appears_only_when_composed():
    alone_a = _verify([defects.approving_pack])
    alone_b = _verify([defects.denying_pack])
    assert not _errors(alone_a, "V001")
    assert not _errors(alone_b, "V001")
    composed = _verify([defects.approving_pack, defects.denying_pack])
    hits = _errors(composed, "V001")
    assert hits, "approve vs deny at equal salience is order-dependent"
    assert replay_counterexample(hits[0].detail["counterexample"])["reproduced"]


def test_stale_reads_triggers_static_v005_and_dynamic_v004():
    report = _verify([defects.stale_reads_rules])
    v005 = _errors(report, "V005")
    assert v005, "the Absent gate's reads declaration omits 'status'"
    assert "status" in v005[0].detail["missing"]
    v004 = _errors(report, "V004")
    assert v004, "compiled change-gating must diverge from re-enumeration"
    result = replay_counterexample(v004[0].detail["counterexample"])
    assert result["reproduced"]
    states = {tuple(s) for s in result["states"].values()}
    assert len(states) > 1


def test_counterexample_documents_are_plain_json():
    report = _verify([defects.non_confluent_rules])
    doc = _errors(report, "V001")[0].detail["counterexample"]
    rebuilt = json.loads(json.dumps(doc))
    assert replay_counterexample(rebuilt)["reproduced"]


def test_engine_subset_still_detects_stale_reads_split():
    report = _verify(
        [defects.stale_reads_rules], engines=("indexed", "compiled")
    )
    hits = _errors(report, "V004")
    assert hits
    assert set(hits[0].detail["engines"]) == {"indexed", "compiled"}


# -- live compositions ------------------------------------------------------
@pytest.mark.parametrize("name", sorted(verify_compositions()))
def test_live_composition_verifies_clean(name):
    _rules, session_globals, builders = verify_compositions()[name]
    options = VerifyOptions(seed=0, universes=3, ledger_trials=3)
    report = verify_pack(name, builders, session_globals, options)
    assert report.errors() == []
    assert report.by_severity(Severity.WARNING) == []


def test_lease_suppression_is_justified_and_alive():
    # raw: the designed lease-expiry retract shows up as a V003 warning
    _rules, session_globals, builders = verify_compositions()["greedy_leases"]
    raw = verify_pack(
        "greedy_leases", builders, session_globals,
        VerifyOptions(seed=0, universes=2, ledger_trials=2,
                      apply_suppressions=False),
    )
    warned = [f for f in raw.by_severity(Severity.WARNING) if f.check == "V003"]
    assert any("lease deadline" in f.subject for f in warned)
    # suppressed: the shipped spec consumes it, so it is not dead
    clean = verify_pack(
        "greedy_leases", builders, session_globals,
        VerifyOptions(seed=0, universes=2, ledger_trials=2),
    )
    spec = "V003:Expire a cleanup whose lease deadline has passed"
    assert spec in VERIFY_SUPPRESSIONS
    assert clean.suppressed[spec] >= 1
    assert not flag_dead_suppressions([clean]).findings


# -- dead suppressions ------------------------------------------------------
def test_dead_suppression_flagged_as_s001():
    from repro.analysis.findings import Report

    alive = Report("a")
    alive.add("V003", Severity.WARNING, "some rule", "msg")
    alive.suppress(["V003", "V009:never"])
    dead = flag_dead_suppressions([alive])
    assert [f.check for f in dead.findings] == ["S001"]
    assert dead.findings[0].subject == "V009:never"
    assert dead.findings[0].severity == Severity.WARNING


def test_spec_alive_in_any_report_is_not_flagged():
    from repro.analysis.findings import Report

    first, second = Report("a"), Report("b")
    first.add("V003", Severity.WARNING, "rule", "msg")
    first.suppress(["V003"])
    second.suppress(["V003"])  # consumes nothing here
    assert not flag_dead_suppressions([first, second]).findings
