"""Rule-set linter: shipped sets come back clean, seeded defects are caught."""

import pytest

from repro.analysis import Severity, lint_rule_set, lint_rules, shipped_rule_sets
from repro.analysis.findings import Finding, Report

from tests.analysis import defect_fixtures as defects


def _checks(report):
    return {f.check for f in report.findings}


def _lint_defect(rules):
    return lint_rules("defect", rules, seed=0, trials=10)


# -- shipped rule sets ------------------------------------------------------
@pytest.mark.parametrize("name", sorted(shipped_rule_sets()))
def test_shipped_rule_set_has_no_errors_or_warnings(name):
    report = lint_rule_set(name, seed=0, trials=15)
    assert report.errors() == []
    assert report.by_severity(Severity.WARNING) == []


def test_unknown_rule_set_is_rejected():
    with pytest.raises(ValueError, match="unknown rule set"):
        lint_rule_set("nope")


# -- seeded defects ---------------------------------------------------------
def test_bad_key_hint_triggers_r001():
    report = _lint_defect(defects.bad_key_hint_rules())
    hits = [f for f in report.findings if f.check == "R001"]
    assert hits and all(f.severity == Severity.ERROR for f in hits)
    assert "silently lost" in hits[0].message


def test_unknown_attribute_triggers_r002():
    report = _lint_defect(defects.unknown_attribute_rules())
    hits = [f for f in report.findings if f.check == "R002"]
    assert hits and hits[0].severity == Severity.ERROR
    assert "statuss" in hits[0].message


def test_unknown_key_attribute_triggers_r002():
    from repro.rules import Pattern, Rule

    rules = [
        Rule(
            "Keyed on a phantom attribute",
            when=[Pattern(defects.ProbeFact, "t",
                          keys={"nonexistent": lambda b: 1})],
            then=lambda ctx: None,
        )
    ]
    report = _lint_defect(rules)
    assert any(
        f.check == "R002" and "nonexistent" in f.message for f in report.findings
    )


def test_salience_tie_triggers_r003():
    report = _lint_defect(defects.salience_tie_rules())
    hits = [f for f in report.findings if f.check == "R003"]
    assert hits and hits[0].severity == Severity.WARNING


def test_shadowing_triggers_r004():
    report = _lint_defect(defects.shadowing_rules())
    hits = [f for f in report.findings if f.check == "R004"]
    assert hits and hits[0].subject == "Starved low-salience probe"


def test_divergent_update_triggers_r005():
    report = _lint_defect(defects.divergent_rules())
    hits = [f for f in report.findings if f.check == "R005"]
    assert hits and hits[0].severity == Severity.ERROR


def test_no_loop_suppresses_r005():
    from repro.rules import Pattern, Rule

    def _bump(ctx):
        ctx.update(ctx.c, value=ctx.c.value + 1)

    rules = [
        Rule(
            "Increment once per external change",
            when=[Pattern(defects.CounterFact, "c",
                          where=lambda c, b: c.value >= 0)],
            then=_bump,
            no_loop=True,
        )
    ]
    report = _lint_defect(rules)
    assert not any(f.check == "R005" for f in report.findings)


def test_unreachable_rule_triggers_r006():
    report = _lint_defect(defects.unreachable_rules())
    hits = [f for f in report.findings if f.check == "R006"]
    assert hits and "OrphanFact" in hits[0].message


def test_dependency_cycle_triggers_r007():
    report = _lint_defect(defects.dependency_cycle_rules())
    hits = [f for f in report.findings if f.check == "R007"]
    assert hits and hits[0].severity == Severity.INFO
    assert set(hits[0].detail["rules"]) == {"Ping", "Pong"}


def test_magic_salience_triggers_r008():
    report = _lint_defect(defects.magic_salience_rules())
    hits = [f for f in report.findings if f.check == "R008"]
    assert hits and "magic number" in hits[0].message


def test_duplicate_rule_name_triggers_r010():
    report = _lint_defect(defects.duplicate_name_rules())
    hits = [f for f in report.findings if f.check == "R010"]
    assert hits and hits[0].severity == Severity.ERROR
    assert hits[0].subject == "Grant the probe"
    assert "more than once" in hits[0].message


def test_unique_rule_names_do_not_trigger_r010():
    report = _lint_defect(defects.shadowing_rules())
    assert not any(f.check == "R010" for f in report.findings)


def test_unkeyed_join_last_position_triggers_r009():
    report = _lint_defect(defects.unkeyed_join_rules())
    hits = [f for f in report.findings if f.check == "R009"]
    assert hits and hits[0].severity == Severity.WARNING
    assert "lazy probe" in hits[0].message


def test_delta_fallback_is_r009_info():
    report = _lint_defect(defects.shadowing_rules() + defects.unreachable_rules())
    # shadowing_rules are single-pattern (no R009); the Absent-gated
    # unreachable rule is multi-condition but single-Pattern — also no
    # R009.  Build an explicit two-pattern Absent rule instead.
    from repro.rules import Absent, Pattern, Rule

    rules = [
        Rule(
            "Gated pair",
            when=[
                Pattern(defects.ProbeFact, "t"),
                Pattern(defects.CounterFact, "c"),
                Absent(defects.OrphanFact),
            ],
            then=lambda ctx: None,
        )
    ]
    report = _lint_defect(rules)
    hits = [f for f in report.findings if f.check == "R009"]
    assert hits and hits[0].severity == Severity.INFO
    assert "delta plan" in hits[0].message
    assert "Absent" in hits[0].message


def test_probing_is_deterministic():
    first = _lint_defect(defects.bad_key_hint_rules())
    second = _lint_defect(defects.bad_key_hint_rules())
    assert [f.to_dict() for f in first.sorted_findings()] == [
        f.to_dict() for f in second.sorted_findings()
    ]


# -- findings / report machinery -------------------------------------------
def test_finding_rejects_unknown_severity():
    with pytest.raises(ValueError, match="unknown severity"):
        Finding("R999", "fatal", "subject", "message")


def test_report_suppression_by_check_and_substring():
    report = Report("t")
    report.add("R003", Severity.WARNING, "rule one", "tie")
    report.add("R003", Severity.WARNING, "rule two", "tie")
    report.add("R001", Severity.ERROR, "rule one", "keys")
    report.suppress(["R003:rule one", "R006"])
    assert [f.subject for f in report.findings if f.check == "R003"] == ["rule two"]
    assert report.suppressed == {"R003:rule one": 1, "R006": 0}
    assert len(report.errors()) == 1


def test_report_render_and_json_round_trip():
    import json

    report = Report("t")
    report.add("R001", Severity.ERROR, "r", "broken", location="f.py:3")
    text = report.render_text()
    assert "1 error(s)" in text and "f.py:3" in text
    doc = json.loads(report.to_json())
    assert doc["findings"][0]["check"] == "R001"
    assert doc["counts"]["error"] == 1


def test_salience_ordering_invariants_hold_and_detect_breakage():
    from repro.policy import salience

    salience.validate_ordering()  # shipped tiers must pass
    broken = dict(salience.TIERS)
    broken["ACK"] = broken["COMPLETION"] + 1
    with pytest.raises(ValueError, match="ordering invariants"):
        salience.validate_ordering(broken)
