"""Seeded-defect fixtures: rule sets and plans that each checker must flag.

Every builder returns an artifact carrying exactly one planted defect, so
the analyzer tests can assert each check fires on its target and stays
quiet otherwise.
"""

from repro.planner.executable import (
    ExecutableJob,
    ExecutableWorkflow,
    JobKind,
    TransferSpec,
)
from repro.rules import Absent, Fact, Pattern, Rule


class ProbeFact(Fact):
    """A small fact with the attribute shapes the factory understands."""

    def __init__(self, tid: int, status: str, lfn: str):
        self.tid = tid
        self.status = status
        self.lfn = lfn


class CounterFact(Fact):
    def __init__(self, value: int):
        self.value = value


class OrphanFact(Fact):
    """Never inserted by any action or service entry point."""

    def __init__(self, tid: int):
        self.tid = tid


class PingFact(Fact):
    def __init__(self, tid: int):
        self.tid = tid


class PongFact(Fact):
    def __init__(self, tid: int):
        self.tid = tid


def _noop(ctx):
    pass


# -- rule-set defects -------------------------------------------------------
def bad_key_hint_rules():
    """R001: the keys hint filters on 'submitted' while the guard accepts
    'new' — every keyed lookup silently misses the guard's matches."""
    return [
        Rule(
            "Probe new transfers with a stale key hint",
            when=[
                Pattern(
                    ProbeFact,
                    "t",
                    where=lambda t, b: t.status == "new",
                    keys={"status": lambda b: "submitted"},
                )
            ],
            then=_noop,
        )
    ]


def unknown_attribute_rules():
    """R002: the guard probes an attribute ProbeFact does not define."""
    return [
        Rule(
            "Probe a misspelled status attribute",
            when=[Pattern(ProbeFact, "t", where=lambda t, b: t.statuss == "new")],
            then=_noop,
        )
    ]


def salience_tie_rules():
    """R003: two equal-salience rules activate on the same facts."""
    return [
        Rule("First unguarded probe", when=[Pattern(ProbeFact, "t")], then=_noop,
             salience=10),
        Rule("Second unguarded probe", when=[Pattern(ProbeFact, "t")], then=_noop,
             salience=10),
    ]


def shadowing_rules():
    """R004: the high-salience rule retracts every fact the low one needs."""

    def _consume(ctx):
        ctx.retract(ctx.t)

    return [
        Rule("Consume every probe fact", when=[Pattern(ProbeFact, "t")],
             then=_consume, salience=20),
        Rule("Starved low-salience probe", when=[Pattern(ProbeFact, "t")],
             then=_noop, salience=5),
    ]


def divergent_rules():
    """R005: updates its own matched fact without no_loop and with a guard
    its action never falsifies — classic max_firings divergence."""

    def _bump(ctx):
        ctx.update(ctx.c, value=ctx.c.value + 1)

    return [
        Rule(
            "Increment a counter forever",
            when=[Pattern(CounterFact, "c", where=lambda c, b: c.value >= 0)],
            then=_bump,
        )
    ]


def unreachable_rules():
    """R006: OrphanFact is never inserted by anything."""
    return [
        Rule("Wait for a fact that never arrives",
             when=[Pattern(OrphanFact, "o")], then=_noop)
    ]


def dependency_cycle_rules():
    """R007: ping inserts pong, pong inserts ping."""

    def _ping(ctx):
        ctx.retract(ctx.p)
        ctx.insert(PongFact(ctx.p.tid))

    def _pong(ctx):
        ctx.retract(ctx.q)
        ctx.insert(PingFact(ctx.q.tid + 1))

    return [
        Rule("Ping", when=[Pattern(PingFact, "p")], then=_ping),
        Rule("Pong", when=[Pattern(PongFact, "q")], then=_pong),
    ]


def magic_salience_rules():
    """R008: salience 77 is not a named tier in repro.policy.salience."""
    return [
        Rule("Fires at an unregistered tier", when=[Pattern(ProbeFact, "t")],
             then=_noop, salience=77)
    ]


def duplicate_name_rules():
    """R010: the same rule name appears in two loaded packs."""
    pack_a = [
        Rule("Grant the probe", when=[Pattern(ProbeFact, "t")], then=_noop)
    ]
    pack_b = [
        Rule("Grant the probe", when=[Pattern(CounterFact, "c")], then=_noop)
    ]
    return pack_a + pack_b


def unkeyed_join_rules():
    """R009: a join-plan rule whose last pattern declares no keys."""
    return [
        Rule(
            "Join with an unkeyed last position",
            when=[
                Pattern(ProbeFact, "t", where=lambda t, b: t.status == "new",
                        keys={"status": lambda b: "new"}),
                Pattern(CounterFact, "c",
                        where=lambda c, b: c.value >= 0),
            ],
            then=_noop,
        )
    ]


# -- verifier defects (V001/V002/V004/V005) ---------------------------------
class GrantFact(Fact):
    """Lifecycle subject: enters 'submitted', is driven to done/failed."""

    def __init__(self, tid: int, status: str = "submitted"):
        self.tid = tid
        self.status = status


class PoolFact(Fact):
    """Carries a reserve-shaped ledger the defect pack fails to unwind."""

    def __init__(self, pool: str):
        self.pool = pool
        self.reserved = 0


def non_confluent_rules():
    """V001: both rules claim the same 'new' probe at equal salience and
    steer it to different states — whichever fires first wins, so the
    final memory depends on the agenda tie-break."""

    def _route_a(ctx):
        ctx.update(ctx.t, status="path-a")

    def _route_b(ctx):
        ctx.update(ctx.t, status="path-b")

    return [
        Rule(
            "Route new probes through path A",
            when=[Pattern(ProbeFact, "t", where=lambda t, b: t.status == "new")],
            then=_route_a,
            salience=10,
        ),
        Rule(
            "Route new probes through path B",
            when=[Pattern(ProbeFact, "t", where=lambda t, b: t.status == "new")],
            then=_route_b,
            salience=10,
        ),
    ]


def unbalanced_reserve_rules():
    """V002: admission charges PoolFact.reserved, but only the 'done'
    terminal releases it — failed grants leak their reservation."""

    def _reserve(ctx):
        ctx.update(ctx.g, status="held")
        ctx.update(ctx.p, reserved=ctx.p.reserved + 1)

    def _release_done(ctx):
        ctx.update(ctx.p, reserved=ctx.p.reserved - 1)
        ctx.retract(ctx.g)

    return [
        Rule(
            "Reserve a pool slot for a submitted grant",
            when=[
                Pattern(GrantFact, "g", where=lambda g, b: g.status == "submitted"),
                Pattern(PoolFact, "p"),
            ],
            then=_reserve,
            salience=40,
        ),
        Rule(
            "Release the pool slot of a completed grant",
            when=[
                Pattern(GrantFact, "g", where=lambda g, b: g.status == "done"),
                Pattern(PoolFact, "p"),
            ],
            then=_release_done,
            salience=90,
        ),
        # no release path for status == "failed": the planted defect
    ]


def approving_pack():
    """Half of the V001 cross-pack conflict: approves pending probes.
    Clean alone — the conflict only exists composed with denying_pack."""

    def _approve(ctx):
        ctx.update(ctx.t, status="approved")

    return [
        Rule(
            "Approve pending probes",
            when=[Pattern(ProbeFact, "t", where=lambda t, b: t.status == "pending")],
            then=_approve,
            salience=50,
        )
    ]


def denying_pack():
    """Other half of the cross-pack conflict: denies the same probes."""

    def _deny(ctx):
        ctx.update(ctx.t, status="denied")

    return [
        Rule(
            "Deny pending probes",
            when=[Pattern(ProbeFact, "t", where=lambda t, b: t.status == "pending")],
            then=_deny,
            salience=50,
        )
    ]


def stale_reads_rules():
    """V005 (static) and V004 (dynamic): the Absent gate declares
    ``reads=("lfn",)`` although its guard tests ``status``.  When the
    upstream rule moves the blocking probe out of 'submitted', the
    compiled engine's change-gating sees a mutation disjoint from the
    declared reads, skips re-checking the gate, and never activates the
    downstream rule — while the re-enumerating engines fire it."""

    def _promote(ctx):
        ctx.update(ctx.t, status="new")

    def _mark(ctx):
        if ctx.c.value != 99:
            ctx.update(ctx.c, value=99)

    return [
        Rule(
            "Promote submitted probes",
            when=[Pattern(ProbeFact, "t", where=lambda t, b: t.status == "submitted")],
            then=_promote,
            salience=20,
        ),
        Rule(
            "Mark the counter once no probe is still submitted",
            when=[
                Pattern(CounterFact, "c"),
                Absent(
                    ProbeFact,
                    where=lambda p, b: p.status == "submitted",
                    reads=("lfn",),
                ),
            ],
            then=_mark,
            salience=10,
        ),
    ]


# -- plan defects -----------------------------------------------------------
def _stage_in(job_id: str, lfn: str) -> ExecutableJob:
    return ExecutableJob(
        id=job_id,
        kind=JobKind.STAGE_IN,
        site="isi",
        transfers=[TransferSpec(lfn, f"http://src/{lfn}", f"gsiftp://isi/{lfn}", 1.0)],
    )


def _compute(job_id: str, inputs=(), outputs=()) -> ExecutableJob:
    return ExecutableJob(
        id=job_id,
        kind=JobKind.COMPUTE,
        transform="process",
        site="isi",
        input_files=[(lfn, 1.0) for lfn in inputs],
        output_files=[(lfn, 1.0) for lfn in outputs],
    )


def cyclic_plan() -> ExecutableWorkflow:
    """P001: a -> b -> a."""
    plan = ExecutableWorkflow("defect-cycle", "defect-cycle#1")
    plan.add_job(_compute("a"))
    plan.add_job(_compute("b"))
    plan.add_edge("a", "b")
    plan.add_edge("b", "a")
    return plan


def unconsumed_stage_in_plan() -> ExecutableWorkflow:
    """P002: stages 'extra.dat' which no compute job reads."""
    plan = ExecutableWorkflow("defect-unconsumed", "defect-unconsumed#1")
    plan.add_job(_stage_in("stage_in_a", "raw.dat"))
    plan.add_job(_stage_in("stage_in_extra", "extra.dat"))
    plan.add_job(_compute("a", inputs=["raw.dat"], outputs=["out.dat"]))
    plan.add_edge("stage_in_a", "a")
    plan.add_edge("stage_in_extra", "a")
    return plan


def premature_cleanup_plan() -> ExecutableWorkflow:
    """P003: cleanup of 'raw.dat' is not ordered after consumer 'b'."""
    plan = ExecutableWorkflow("defect-early-cleanup", "defect-early-cleanup#1")
    plan.add_job(_stage_in("stage_in_a", "raw.dat"))
    plan.add_job(_compute("a", inputs=["raw.dat"], outputs=["mid.dat"]))
    plan.add_job(_compute("b", inputs=["raw.dat", "mid.dat"], outputs=["out.dat"]))
    plan.add_job(
        ExecutableJob(
            id="cleanup_raw.dat",
            kind=JobKind.CLEANUP,
            site="isi",
            cleanup_files=[("raw.dat", "gsiftp://isi/raw.dat")],
        )
    )
    plan.add_edge("stage_in_a", "a")
    plan.add_edge("a", "b")
    plan.add_edge("a", "cleanup_raw.dat")  # b still needs raw.dat
    return plan


def unproduced_input_plan() -> ExecutableWorkflow:
    """P004: 'ghost.dat' is consumed but never staged nor produced."""
    plan = ExecutableWorkflow("defect-ghost", "defect-ghost#1")
    plan.add_job(_compute("a", inputs=["ghost.dat"], outputs=["out.dat"]))
    return plan


def clean_plan() -> ExecutableWorkflow:
    """A small defect-free plan (stage-in -> compute chain -> cleanup)."""
    plan = ExecutableWorkflow("clean", "clean#1")
    plan.add_job(_stage_in("stage_in_a", "raw.dat"))
    plan.add_job(_compute("a", inputs=["raw.dat"], outputs=["mid.dat"]))
    plan.add_job(_compute("b", inputs=["mid.dat"], outputs=["out.dat"]))
    plan.add_job(
        ExecutableJob(
            id="cleanup_raw.dat",
            kind=JobKind.CLEANUP,
            site="isi",
            cleanup_files=[("raw.dat", "gsiftp://isi/raw.dat")],
        )
    )
    plan.add_edge("stage_in_a", "a")
    plan.add_edge("a", "b")
    plan.add_edge("a", "cleanup_raw.dat")
    return plan
