"""Re-use the planner fixtures (catalog trio) for plan-lint tests."""

from tests.planner.conftest import (  # noqa: F401
    planner,
    replicas,
    sites,
    transformations,
)
