"""Plan validator: planner output is clean, seeded plan defects are caught."""

import pytest

from repro.analysis import Severity, lint_plan
from repro.planner import PlanOptions
from repro.planner.executable import JobKind
from repro.workflow.montage import MontageConfig, montage_workflow

from tests.analysis import defect_fixtures as defects
from tests.planner.conftest import register_montage_inputs


def _checks(report):
    return {f.check for f in report.findings}


def test_clean_plan_has_no_findings():
    assert lint_plan(defects.clean_plan()).findings == []


def test_cycle_triggers_p001_and_skips_other_checks():
    report = lint_plan(defects.cyclic_plan())
    assert _checks(report) == {"P001"}
    assert report.errors()


def test_unconsumed_stage_in_triggers_p002():
    report = lint_plan(defects.unconsumed_stage_in_plan())
    hits = [f for f in report.findings if f.check == "P002"]
    assert hits and hits[0].severity == Severity.WARNING
    assert hits[0].subject == "stage_in_extra"
    assert hits[0].detail["files"] == ["extra.dat"]


def test_premature_cleanup_triggers_p003():
    report = lint_plan(defects.premature_cleanup_plan())
    hits = [f for f in report.findings if f.check == "P003"]
    assert hits and hits[0].severity == Severity.ERROR
    assert hits[0].detail["unordered_consumers"] == ["b"]


def test_unproduced_input_triggers_p004():
    report = lint_plan(defects.unproduced_input_plan())
    hits = [f for f in report.findings if f.check == "P004"]
    assert hits and "ghost.dat" in hits[0].message


@pytest.mark.parametrize(
    "options",
    [
        PlanOptions(),
        PlanOptions(output_site="archive"),
        PlanOptions(cluster_factor=3),
        PlanOptions(cleanup=False),
    ],
    ids=["default", "stage-out", "clustered", "no-cleanup"],
)
def test_planned_montage_is_clean(planner, replicas, options):
    workflow = montage_workflow(MontageConfig(n_images=12))
    register_montage_inputs(replicas, workflow)
    plan = planner.plan(workflow, "isi", options)
    report = lint_plan(plan)
    assert report.findings == []


def test_planner_fills_compute_input_files(planner, replicas):
    workflow = montage_workflow(MontageConfig(n_images=6))
    register_montage_inputs(replicas, workflow)
    plan = planner.plan(workflow, "isi")
    computes = plan.by_kind(JobKind.COMPUTE)
    assert computes
    # Every compute input is either staged in or produced by another job.
    produced = {
        lfn
        for job in plan.jobs.values()
        for lfn, _ in job.output_files
    } | {
        t.lfn
        for job in plan.by_kind(JobKind.STAGE_IN)
        for t in job.transfers
    }
    consumed = {lfn for job in computes for lfn, _ in job.input_files}
    assert consumed and consumed <= produced


def test_local_replica_inputs_are_not_listed_as_scratch_reads(planner, replicas):
    workflow = montage_workflow(MontageConfig(n_images=4))
    # Register every input as already present on the execution site.
    for f in workflow.input_files():
        replicas.register(f.lfn, "isi", f"gsiftp://obelix/nfs/scratch/{f.lfn}")
    plan = planner.plan(workflow, "isi")
    workflow_inputs = {f.lfn for f in workflow.input_files()}
    for job in plan.by_kind(JobKind.COMPUTE):
        assert not workflow_inputs & {lfn for lfn, _ in job.input_files}
    assert not plan.by_kind(JobKind.STAGE_IN)
    report = lint_plan(plan)
    assert report.findings == []
