"""Unit tests for DES resources (Resource, PriorityResource, Store, Container)."""

import pytest

from repro.des import Container, Environment, PriorityResource, Resource, Store


# ---------------------------------------------------------------- Resource
def test_resource_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    holders = []

    def user(i):
        req = res.request()
        yield req
        holders.append((env.now, i))
        yield env.timeout(10)
        res.release(req)

    for i in range(4):
        env.process(user(i))
    env.run()
    # Users 0,1 start at t=0; 2,3 wait until a slot frees at t=10.
    assert holders == [(0.0, 0), (0.0, 1), (10.0, 2), (10.0, 3)]


def test_resource_fifo_order():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def user(i):
        with (yield res.request()) as _req:  # noqa: F841
            order.append(i)
            yield env.timeout(1)

    # Stagger arrival so queue order is deterministic by arrival.
    def spawner():
        for i in range(5):
            env.process(user(i))
            yield env.timeout(0)

    env.process(spawner())
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_resource_context_manager_releases():
    env = Environment()
    res = Resource(env, capacity=1)

    def user():
        with (yield res.request()):
            yield env.timeout(5)

    env.process(user())
    env.run()
    assert res.count == 0
    assert res.queued == 0


def test_resource_counts():
    env = Environment()
    res = Resource(env, capacity=2)

    def holder():
        yield res.request()
        yield env.timeout(100)

    for _ in range(3):
        env.process(holder())
    env.run(until=1)
    assert res.count == 2
    assert res.queued == 1


def test_resource_cancel_waiting_request():
    env = Environment()
    res = Resource(env, capacity=1)
    got = []

    def holder():
        req = res.request()
        yield req
        yield env.timeout(50)
        res.release(req)

    def impatient():
        req = res.request()
        yield env.timeout(5)  # still waiting
        assert not req.triggered
        req.cancel()
        got.append("gave-up")

    def patient():
        yield env.timeout(1)
        yield res.request()
        got.append(("served", env.now))

    env.process(holder())
    env.process(impatient())
    env.process(patient())
    env.run()
    assert "gave-up" in got
    assert ("served", 50.0) in got


def test_resource_resize_grows_grants_waiters():
    env = Environment()
    res = Resource(env, capacity=1)
    started = []

    def user(i):
        yield res.request()
        started.append((env.now, i))
        yield env.timeout(100)

    env.process(user(0))
    env.process(user(1))

    def grow():
        yield env.timeout(10)
        res.resize(2)

    env.process(grow())
    env.run(until=20)
    assert started == [(0.0, 0), (10.0, 1)]


def test_priority_resource_serves_low_priority_value_first():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder():
        req = res.request()
        yield req
        yield env.timeout(10)
        res.release(req)

    def user(tag, prio):
        yield env.timeout(1)
        req = res.request(priority=prio)
        yield req
        order.append(tag)
        res.release(req)

    env.process(holder())
    env.process(user("low-urgency", 5))
    env.process(user("high-urgency", 1))
    env.process(user("mid-urgency", 3))
    env.run(until=100)
    assert order == ["high-urgency", "mid-urgency", "low-urgency"]


# ---------------------------------------------------------------- Store
def test_store_put_get_fifo():
    env = Environment()
    store = Store(env)
    got = []

    def producer():
        for i in range(3):
            yield store.put(i)
            yield env.timeout(1)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append((env.now, item))

    env.process(producer())
    env.process(consumer())
    env.run()
    assert [item for _, item in got] == [0, 1, 2]


def test_store_get_blocks_until_item():
    env = Environment()
    store = Store(env)
    got = []

    def consumer():
        item = yield store.get()
        got.append((env.now, item))

    def producer():
        yield env.timeout(7)
        yield store.put("x")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == [(7.0, "x")]


def test_store_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    trace = []

    def producer():
        yield store.put("a")
        trace.append(("put-a", env.now))
        yield store.put("b")
        trace.append(("put-b", env.now))

    def consumer():
        yield env.timeout(5)
        item = yield store.get()
        trace.append(("got", item, env.now))

    env.process(producer())
    env.process(consumer())
    env.run()
    assert ("put-a", 0.0) in trace
    assert ("put-b", 5.0) in trace


def test_store_filtered_get():
    env = Environment()
    store = Store(env)
    got = []

    def run():
        yield store.put({"kind": "red"})
        yield store.put({"kind": "blue"})
        item = yield store.get(filter=lambda it: it["kind"] == "blue")
        got.append(item["kind"])
        item = yield store.get()
        got.append(item["kind"])

    env.process(run())
    env.run()
    assert got == ["blue", "red"]


def test_store_len():
    env = Environment()
    store = Store(env)

    def run():
        yield store.put(1)
        yield store.put(2)

    env.process(run())
    env.run()
    assert len(store) == 2


def test_store_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Store(env, capacity=0)


# ---------------------------------------------------------------- Container
def test_container_get_blocks_until_level():
    env = Environment()
    tank = Container(env, capacity=100, init=0)
    got = []

    def consumer():
        yield tank.get(30)
        got.append(env.now)

    def producer():
        yield env.timeout(3)
        yield tank.put(10)
        yield env.timeout(3)
        yield tank.put(25)

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == [6.0]
    assert tank.level == 5.0


def test_container_put_blocks_at_capacity():
    env = Environment()
    tank = Container(env, capacity=10, init=8)
    trace = []

    def producer():
        yield tank.put(5)
        trace.append(env.now)

    def consumer():
        yield env.timeout(4)
        yield tank.get(6)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert trace == [4.0]
    assert tank.level == 7.0


def test_container_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Container(env, capacity=0)
    with pytest.raises(ValueError):
        Container(env, capacity=5, init=9)
    tank = Container(env, capacity=5)
    with pytest.raises(ValueError):
        tank.put(-1)
    with pytest.raises(ValueError):
        tank.get(-1)
