"""Unit tests for the DES kernel core (Environment, Event, Process)."""

import pytest

from repro.des import AllOf, AnyOf, Environment, Interrupt, SimulationError


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_custom_start():
    env = Environment(initial_time=42.5)
    assert env.now == 42.5


def test_timeout_advances_clock():
    env = Environment()
    trace = []

    def proc():
        yield env.timeout(5)
        trace.append(env.now)
        yield env.timeout(2.5)
        trace.append(env.now)

    env.process(proc())
    env.run()
    assert trace == [5.0, 7.5]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_timeout_value_passthrough():
    env = Environment()
    got = []

    def proc():
        value = yield env.timeout(1, value="payload")
        got.append(value)

    env.process(proc())
    env.run()
    assert got == ["payload"]


def test_process_return_value():
    env = Environment()

    def proc():
        yield env.timeout(3)
        return "done"

    p = env.process(proc())
    result = env.run(until=p)
    assert result == "done"
    assert env.now == 3


def test_same_time_events_fifo_order():
    env = Environment()
    order = []

    def proc(tag):
        yield env.timeout(10)
        order.append(tag)

    for tag in range(5):
        env.process(proc(tag))
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def proc():
        while True:
            yield env.timeout(3)

    env.process(proc())
    env.run(until=100)
    assert env.now == 100


def test_run_until_past_raises():
    env = Environment()
    env.run(until=10)
    with pytest.raises(ValueError):
        env.run(until=5)


def test_run_empty_schedule_returns():
    env = Environment()
    env.run()  # no events: returns immediately
    assert env.now == 0.0


def test_step_on_empty_schedule_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(7)
    assert env.peek() == 7


def test_event_succeed_wakes_waiter():
    env = Environment()
    gate = env.event()
    woke = []

    def waiter():
        value = yield gate
        woke.append((env.now, value))

    def trigger():
        yield env.timeout(4)
        gate.succeed("go")

    env.process(waiter())
    env.process(trigger())
    env.run()
    assert woke == [(4.0, "go")]


def test_event_double_trigger_raises():
    env = Environment()
    ev = env.event()
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()


def test_event_fail_propagates_into_waiter():
    env = Environment()
    gate = env.event()
    caught = []

    def waiter():
        try:
            yield gate
        except RuntimeError as exc:
            caught.append(str(exc))

    def trigger():
        yield env.timeout(1)
        gate.fail(RuntimeError("boom"))

    env.process(waiter())
    env.process(trigger())
    env.run()
    assert caught == ["boom"]


def test_fail_requires_exception_instance():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")  # type: ignore[arg-type]


def test_unhandled_process_failure_raises_from_run():
    env = Environment()

    def bad():
        yield env.timeout(1)
        raise ValueError("unhandled")

    env.process(bad())
    with pytest.raises(ValueError, match="unhandled"):
        env.run()


def test_run_until_failing_process_reraises():
    env = Environment()

    def bad():
        yield env.timeout(1)
        raise KeyError("k")

    p = env.process(bad())
    with pytest.raises(KeyError):
        env.run(until=p)


def test_waiting_on_already_fired_event():
    env = Environment()
    results = []

    def early():
        yield env.timeout(1)
        return "early-result"

    def late(target):
        yield env.timeout(10)
        value = yield target
        results.append((env.now, value))

    p = env.process(early())
    env.process(late(p))
    env.run()
    assert results == [(10.0, "early-result")]


def test_process_chain_waits_for_subprocess():
    env = Environment()
    trace = []

    def child():
        yield env.timeout(5)
        trace.append(("child", env.now))
        return 99

    def parent():
        value = yield env.process(child())
        trace.append(("parent", env.now, value))

    env.process(parent())
    env.run()
    assert trace == [("child", 5.0), ("parent", 5.0, 99)]


def test_yield_non_event_raises():
    env = Environment()

    def bad():
        yield 42

    env.process(bad())
    with pytest.raises(SimulationError, match="must yield Event"):
        env.run()


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(SimulationError):
        env.process(lambda: None)  # type: ignore[arg-type]


def test_interrupt_is_catchable_and_carries_cause():
    env = Environment()
    trace = []

    def victim():
        try:
            yield env.timeout(100)
        except Interrupt as intr:
            trace.append((env.now, intr.cause))

    def attacker(target):
        yield env.timeout(3)
        target.interrupt(cause="preempted")

    v = env.process(victim())
    env.process(attacker(v))
    env.run()
    assert trace == [(3.0, "preempted")]


def test_interrupt_finished_process_raises():
    env = Environment()

    def quick():
        yield env.timeout(1)

    p = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_interrupted_process_can_continue():
    env = Environment()
    trace = []

    def victim():
        try:
            yield env.timeout(100)
        except Interrupt:
            pass
        yield env.timeout(5)
        trace.append(env.now)

    def attacker(target):
        yield env.timeout(10)
        target.interrupt()

    v = env.process(victim())
    env.process(attacker(v))
    env.run()
    assert trace == [15.0]


def test_all_of_waits_for_every_event():
    env = Environment()
    done = []

    def proc():
        t1, t2, t3 = env.timeout(1, "a"), env.timeout(5, "b"), env.timeout(3, "c")
        results = yield AllOf(env, [t1, t2, t3])
        done.append((env.now, sorted(results.values())))

    env.process(proc())
    env.run()
    assert done == [(5.0, ["a", "b", "c"])]


def test_any_of_fires_on_first():
    env = Environment()
    done = []

    def proc():
        t1, t2 = env.timeout(9, "slow"), env.timeout(2, "fast")
        results = yield AnyOf(env, [t1, t2])
        done.append((env.now, list(results.values())))

    env.process(proc())
    env.run(until=20)
    assert done == [(2.0, ["fast"])]


def test_all_of_empty_fires_immediately():
    env = Environment()
    done = []

    def proc():
        results = yield AllOf(env, [])
        done.append((env.now, results))

    env.process(proc())
    env.run()
    assert done == [(0.0, {})]


def test_all_of_fails_fast():
    env = Environment()
    caught = []

    def failer():
        yield env.timeout(1)
        raise RuntimeError("child failed")

    def proc():
        try:
            yield AllOf(env, [env.process(failer()), env.timeout(100)])
        except RuntimeError as exc:
            caught.append((env.now, str(exc)))

    env.process(proc())
    env.run(until=200)
    assert caught == [(1.0, "child failed")]


def test_condition_rejects_cross_environment_events():
    env1, env2 = Environment(), Environment()
    with pytest.raises(SimulationError):
        AllOf(env1, [env2.timeout(1)])


def test_active_process_visible_during_resume():
    env = Environment()
    seen = []

    def proc():
        yield env.timeout(1)
        seen.append(env.active_process)

    p = env.process(proc())
    env.run()
    assert seen == [p]
    assert env.active_process is None


def test_deterministic_replay():
    """Two identical simulations produce identical traces."""

    def build():
        env = Environment()
        trace = []

        def worker(i):
            for step in range(3):
                yield env.timeout(i + step)
                trace.append((env.now, i, step))

        for i in range(4):
            env.process(worker(i))
        env.run()
        return trace

    assert build() == build()
