"""Unit tests for deterministic named RNG streams."""

from repro.des import RngRegistry


def test_same_seed_same_stream():
    a = RngRegistry(seed=7).stream("net").random(5)
    b = RngRegistry(seed=7).stream("net").random(5)
    assert (a == b).all()


def test_different_names_differ():
    reg = RngRegistry(seed=7)
    a = reg.stream("net").random(5)
    b = reg.stream("compute").random(5)
    assert not (a == b).all()


def test_different_seeds_differ():
    a = RngRegistry(seed=1).stream("net").random(5)
    b = RngRegistry(seed=2).stream("net").random(5)
    assert not (a == b).all()


def test_stream_cached_not_restarted():
    reg = RngRegistry(seed=3)
    first = reg.stream("x").random()
    second = reg.stream("x").random()
    assert first != second  # continuing the same stream, not restarting


def test_creation_order_does_not_matter():
    reg1 = RngRegistry(seed=11)
    reg1.stream("a")
    draw1 = reg1.stream("b").random(3)

    reg2 = RngRegistry(seed=11)
    draw2 = reg2.stream("b").random(3)  # "a" never created here
    assert (draw1 == draw2).all()


def test_spawn_is_deterministic_and_distinct():
    root = RngRegistry(seed=5)
    child1 = root.spawn("rep-1")
    child1_again = RngRegistry(seed=5).spawn("rep-1")
    assert child1.seed == child1_again.seed
    assert child1.seed != root.seed
    assert root.spawn("rep-2").seed != child1.seed
