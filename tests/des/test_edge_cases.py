"""Edge-case tests for the DES kernel beyond the core happy paths."""

import pytest

from repro.des import AllOf, AnyOf, Environment, Interrupt, SimulationError


def test_any_of_failure_propagates():
    env = Environment()
    caught = []

    def failer():
        yield env.timeout(1)
        raise RuntimeError("first to finish fails")

    def waiter():
        try:
            yield AnyOf(env, [env.process(failer()), env.timeout(100)])
        except RuntimeError as exc:
            caught.append(str(exc))

    env.process(waiter())
    env.run(until=50)
    assert caught == ["first to finish fails"]


def test_interrupting_process_waiting_on_process():
    env = Environment()
    trace = []

    def child():
        yield env.timeout(100)
        return "never"

    def parent():
        try:
            yield env.process(child())
        except Interrupt as intr:
            trace.append(("interrupted", env.now, intr.cause))

    def attacker(target):
        yield env.timeout(5)
        target.interrupt(cause="stop")

    p = env.process(parent())
    env.process(attacker(p))
    env.run(until=10)
    assert trace == [("interrupted", 5.0, "stop")]


def test_run_until_event_already_processed():
    env = Environment()

    def quick():
        yield env.timeout(1)
        return "done"

    p = env.process(quick())
    env.run()
    assert env.run(until=p) == "done"  # already processed: returns value


def test_run_until_event_that_can_never_fire():
    env = Environment()
    orphan = env.event()
    env.timeout(5)
    with pytest.raises(SimulationError, match="drained"):
        env.run(until=orphan)


def test_event_fail_then_defuse_via_waiter():
    env = Environment()
    gate = env.event()
    gate.defuse()
    gate.fail(RuntimeError("handled"))
    env.run()  # defused failure does not crash the run


def test_all_of_value_mapping_preserves_event_identity():
    env = Environment()
    seen = {}

    def proc():
        t1 = env.timeout(1, "one")
        t2 = env.timeout(2, "two")
        results = yield AllOf(env, [t1, t2])
        seen["t1"] = results[t1]
        seen["t2"] = results[t2]

    env.process(proc())
    env.run()
    assert seen == {"t1": "one", "t2": "two"}


def test_timeout_zero_fires_this_instant_in_order():
    env = Environment()
    order = []

    def a():
        yield env.timeout(0)
        order.append("a")

    def b():
        yield env.timeout(0)
        order.append("b")

    env.process(a())
    env.process(b())
    env.run()
    assert env.now == 0.0
    assert order == ["a", "b"]


def test_nested_process_failure_propagates_two_levels():
    env = Environment()

    def inner():
        yield env.timeout(1)
        raise ValueError("deep failure")

    def middle():
        yield env.process(inner())

    def outer():
        yield env.process(middle())

    p = env.process(outer())
    with pytest.raises(ValueError, match="deep failure"):
        env.run(until=p)
