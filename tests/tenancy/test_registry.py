"""Tests of the tenant registry and spec validation."""

import math

import pytest

from repro.tenancy import TenantRegistry, TenantSpec


def test_spec_defaults():
    spec = TenantSpec("acme")
    assert spec.weight == 1.0
    assert spec.priority_class == 0
    assert spec.max_bytes is None
    assert spec.max_streams is None
    assert spec.max_concurrent is None


@pytest.mark.parametrize("weight", [0, -1, float("nan"), float("inf"), True, "2"])
def test_spec_rejects_bad_weight(weight):
    with pytest.raises(ValueError):
        TenantSpec("acme", weight=weight)


@pytest.mark.parametrize("max_bytes", [-1, float("nan"), float("inf"), True, "10"])
def test_spec_rejects_non_finite_byte_quota(max_bytes):
    # NaN < 0 is False, so a naive range check would admit a poisoned quota.
    with pytest.raises(ValueError):
        TenantSpec("acme", max_bytes=max_bytes)


@pytest.mark.parametrize("field", ["max_streams", "max_concurrent"])
@pytest.mark.parametrize("value", [0, -3, 1.5, True])
def test_spec_rejects_bad_counts(field, value):
    with pytest.raises(ValueError):
        TenantSpec("acme", **{field: value})


def test_spec_rejects_empty_name():
    with pytest.raises(ValueError):
        TenantSpec("")


def test_register_and_share():
    reg = TenantRegistry()
    reg.register("bronze", weight=1)
    reg.register("silver", weight=2)
    reg.register(TenantSpec("gold", weight=4, priority_class=1))
    assert len(reg) == 3
    assert reg.names() == ["bronze", "gold", "silver"]
    assert reg.total_weight() == 7
    assert math.isclose(reg.share("gold"), 4 / 7)
    assert math.isclose(sum(reg.share(s.tenant) for s in reg), 1.0)


def test_register_replaces():
    reg = TenantRegistry()
    reg.register("acme", weight=1)
    reg.register("acme", weight=5)
    assert reg.get("acme").weight == 5
    assert len(reg) == 1


def test_register_spec_with_kwargs_is_an_error():
    reg = TenantRegistry()
    with pytest.raises(TypeError):
        reg.register(TenantSpec("acme"), weight=2)


def test_remove_and_unknown():
    reg = TenantRegistry()
    reg.register("acme")
    assert reg.remove("acme") is True
    assert reg.remove("acme") is False
    assert "acme" not in reg
    with pytest.raises(KeyError):
        reg.get("acme")


def test_share_of_empty_registry_is_zero():
    reg = TenantRegistry()
    reg.register("solo", weight=3)
    reg.remove("solo")
    reg.register("solo", weight=3)
    assert reg.share("solo") == 1.0
