"""Tests of the ensemble scheduling policies."""

import pytest

from repro.tenancy import (
    FairShareScheduler,
    FifoScheduler,
    StrictPriorityScheduler,
    TenantQuotaError,
    TenantRegistry,
    TenantSpec,
    make_scheduler,
)


def registry():
    reg = TenantRegistry()
    reg.register("bronze", weight=1)
    reg.register("silver", weight=2)
    reg.register("gold", weight=4)
    return reg


def drain(sched, eligible=None):
    order = []
    while len(sched):
        sub = sched.select(eligible)
        if sub is None:
            break
        order.append(sub.name)
        sched.charge(sub.tenant, sub.est_bytes)
    return order


def test_fifo_ignores_tenants():
    sched = FifoScheduler(registry())
    for i, tenant in enumerate(["gold", "bronze", "silver", "gold"]):
        sched.submit(tenant, f"wf{i}", est_bytes=100)
    assert drain(sched) == ["wf0", "wf1", "wf2", "wf3"]


def test_strict_priority_orders_by_class_then_arrival():
    reg = registry()
    reg.register("gold", weight=4, priority_class=2)
    reg.register("silver", weight=2, priority_class=1)
    sched = StrictPriorityScheduler(reg)
    sched.submit("bronze", "b0")
    sched.submit("silver", "s0")
    sched.submit("gold", "g0")
    sched.submit("gold", "g1")
    assert drain(sched) == ["g0", "g1", "s0", "b0"]


def test_fair_share_interleaves_by_weight():
    sched = FairShareScheduler(registry())
    for tenant in ("bronze", "silver", "gold"):
        for i in range(4):
            sched.submit(tenant, f"{tenant[0]}{i}", est_bytes=100)
    order = drain(sched)
    # While every tenant has backlog (first 7 = one weight round), counts
    # follow the 1:2:4 weights exactly.
    first_round = order[:7]
    assert sum(n.startswith("b") for n in first_round) == 1
    assert sum(n.startswith("s") for n in first_round) == 2
    assert sum(n.startswith("g") for n in first_round) == 4


def test_fair_share_priority_class_dominates_pass():
    reg = registry()
    reg.register("bronze", weight=1, priority_class=5)
    sched = FairShareScheduler(reg)
    sched.charge("bronze", 1_000_000)  # huge pass value...
    sched.submit("gold", "g0")
    sched.submit("bronze", "b0")
    assert sched.select().name == "b0"  # ...but the class still wins


def test_fair_share_ties_fall_back_to_arrival_order():
    sched = FairShareScheduler(registry())
    sched.submit("gold", "g0")
    sched.submit("gold", "g1")
    assert [sched.select().name, sched.select().name] == ["g0", "g1"]


def test_charge_reconciliation_floors_at_zero():
    sched = FairShareScheduler(registry())
    assert sched.charge("gold", 100) == 100
    assert sched.charge("gold", -250) == 0.0


def test_seed_charges_reproduces_decisions():
    """A scheduler seeded with a snapshot continues the same order."""
    full = FairShareScheduler(registry())
    for tenant in ("bronze", "silver", "gold"):
        for i in range(4):
            full.submit(tenant, f"{tenant[0]}{i}", est_bytes=100)
    prefix = []
    for _ in range(5):
        sub = full.select()
        prefix.append(sub.name)
        full.charge(sub.tenant, sub.est_bytes)
    snapshot = dict(full.charged)
    remaining = sorted(full.peek_queue(), key=lambda s: s.seq)

    resumed = FairShareScheduler(registry())
    resumed.seed_charges(snapshot)
    for sub in remaining:  # re-queue in original arrival order
        resumed.submit(sub.tenant, sub.name, est_bytes=100)
    assert drain(resumed) == drain(full)


def test_byte_quota_rejects_at_submit():
    reg = registry()
    reg.register("bronze", weight=1, max_bytes=150)
    sched = FairShareScheduler(reg)
    sched.submit("bronze", "ok", est_bytes=100)
    with pytest.raises(TenantQuotaError):
        sched.submit("bronze", "blown", est_bytes=100)
    assert len(sched) == 1  # the rejected submission never queued


def test_submit_rejects_unknown_tenant_and_bad_bytes():
    sched = FifoScheduler(registry())
    with pytest.raises(KeyError):
        sched.submit("nobody", "wf")
    with pytest.raises(ValueError):
        sched.submit("gold", "wf", est_bytes=float("nan"))
    with pytest.raises(ValueError):
        sched.submit("gold", "wf", est_bytes=-1)


def test_eligibility_filter_skips_capped_tenants():
    sched = FifoScheduler(registry())
    sched.submit("gold", "g0")
    sched.submit("bronze", "b0")
    sub = sched.select(lambda s: s.tenant != "gold")
    assert sub.name == "b0"
    assert len(sched) == 1  # g0 stays queued


def test_make_scheduler():
    reg = registry()
    assert isinstance(make_scheduler("fifo", reg), FifoScheduler)
    assert isinstance(make_scheduler("priority", reg), StrictPriorityScheduler)
    assert isinstance(make_scheduler("fair", reg), FairShareScheduler)
    with pytest.raises(ValueError):
        make_scheduler("lottery", reg)
