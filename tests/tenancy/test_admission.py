"""Tests of the admission controller as a DES process."""

import pytest

from repro.des.core import Environment
from repro.obs import Tracer
from repro.tenancy import (
    AdmissionConfig,
    AdmissionController,
    FairShareScheduler,
    FifoScheduler,
    TenantRegistry,
    TenantSpec,
)


def registry(**overrides):
    reg = TenantRegistry()
    reg.register(TenantSpec("bronze", weight=1, **overrides.get("bronze", {})))
    reg.register(TenantSpec("silver", weight=2, **overrides.get("silver", {})))
    reg.register(TenantSpec("gold", weight=4, **overrides.get("gold", {})))
    return reg


def make_starter(env, duration, nbytes, built=None):
    """A starter that runs for ``duration`` and stages ``nbytes``."""

    def starter(sub):
        if built is not None:
            built.append(sub.name)
        yield env.timeout(duration)
        return nbytes

    return starter


def test_config_validation():
    with pytest.raises(ValueError):
        AdmissionConfig(max_concurrent=0)
    with pytest.raises(ValueError):
        AdmissionConfig(backpressure_high=10.0)  # missing low
    with pytest.raises(ValueError):
        AdmissionConfig(backpressure_high=5.0, backpressure_low=9.0)
    with pytest.raises(ValueError):
        AdmissionConfig(poll_interval=0)


def test_respects_global_slot_count():
    env = Environment()
    controller = AdmissionController(
        env, FifoScheduler(registry()), AdmissionConfig(max_concurrent=2)
    )
    peak = []

    def starter(sub):
        peak.append(controller._inflight)
        yield env.timeout(10)
        return 0.0

    for i in range(5):
        controller.submit("gold", f"wf{i}", starter)
    env.run(until=controller.run())
    assert len(controller.completed) == 5
    assert max(peak) <= 2


def test_per_tenant_cap_does_not_block_others():
    env = Environment()
    reg = registry(gold={"max_concurrent": 1})
    controller = AdmissionController(
        env, FifoScheduler(reg), AdmissionConfig(max_concurrent=3)
    )
    controller.submit("gold", "g0", make_starter(env, 10, 0))
    controller.submit("gold", "g1", make_starter(env, 10, 0))
    controller.submit("bronze", "b0", make_starter(env, 1, 0))
    env.run(until=controller.run())
    # gold's second workflow waits for its cap, so bronze overtakes it.
    assert controller.admission_order == ["g0", "b0", "g1"]


def test_starters_run_lazily_at_admission():
    """Queued submissions hold no resources: the starter (which builds the
    policy client in the experiment runner) runs only when a slot opens."""
    env = Environment()
    built = []
    controller = AdmissionController(
        env, FifoScheduler(registry()), AdmissionConfig(max_concurrent=1)
    )
    for i in range(3):
        controller.submit("gold", f"wf{i}", make_starter(env, 5, 0, built))
    assert built == []  # nothing constructed at submission time
    process = controller.run()
    env.run(until=env.timeout(6))
    assert built == ["wf0", "wf1"]  # second admitted only after the first ends
    env.run(until=process)
    assert built == ["wf0", "wf1", "wf2"]


def test_quota_rejection_recorded_and_run_continues():
    env = Environment()
    reg = registry(bronze={"max_bytes": 50.0})
    controller = AdmissionController(env, FairShareScheduler(reg))
    assert controller.submit("bronze", "big", make_starter(env, 1, 0),
                             est_bytes=100) is None
    assert controller.submit("bronze", "small", make_starter(env, 1, 40),
                             est_bytes=40) is not None
    env.run(until=controller.run())
    assert [r[1] for r in controller.rejected] == ["big"]
    assert controller.completed == ["small"]


def test_fair_share_charges_estimates_at_admission():
    """A burst of free slots spreads across tenants immediately — the
    estimate is charged when admitted, not when the workflow finishes."""
    env = Environment()
    controller = AdmissionController(
        env, FairShareScheduler(registry()), AdmissionConfig(max_concurrent=7)
    )
    for tenant in ("bronze", "silver", "gold"):
        for i in range(4):
            controller.submit(tenant, f"{tenant[0]}{i}",
                              make_starter(env, 10, 100), est_bytes=100)
    env.run(until=controller.run())
    first_round = controller.admission_order[:7]
    assert sum(n.startswith("b") for n in first_round) == 1
    assert sum(n.startswith("s") for n in first_round) == 2
    assert sum(n.startswith("g") for n in first_round) == 4


def test_backpressure_pauses_until_low_watermark():
    env = Environment()
    pressure = {"value": 0.0}
    controller = AdmissionController(
        env,
        FifoScheduler(registry()),
        AdmissionConfig(max_concurrent=2, backpressure_high=10.0,
                        backpressure_low=2.0, poll_interval=1.0),
        pressure_probe=lambda: pressure["value"],
    )

    def starter(sub):
        pressure["value"] += 8.0  # each running workflow adds pressure
        yield env.timeout(20)
        pressure["value"] -= 8.0
        return 0.0

    for i in range(3):
        controller.submit("gold", f"wf{i}", starter)
    process = controller.run()
    env.run(until=env.timeout(5))
    # Two admitted (pressure 16 > high) — the third waits even though a
    # slot is free.
    assert controller.admission_order == ["wf0", "wf1"]
    env.run(until=process)
    assert controller.admission_order == ["wf0", "wf1", "wf2"]


def test_backpressure_deadlock_guard_admits_when_idle():
    """With nothing running, waiting cannot relieve pressure — admit anyway."""
    env = Environment()
    controller = AdmissionController(
        env,
        FifoScheduler(registry()),
        AdmissionConfig(max_concurrent=1, backpressure_high=1.0,
                        backpressure_low=0.5, poll_interval=1.0),
        pressure_probe=lambda: 100.0,  # permanently above the watermark
    )
    controller.submit("gold", "wf0", make_starter(env, 2, 0))
    env.run(until=controller.run())
    assert controller.completed == ["wf0"]


def test_tracer_event_stream():
    env_tracer = Tracer()
    env = Environment(tracer=env_tracer)
    reg = registry(bronze={"max_bytes": 10.0})
    controller = AdmissionController(
        env, FairShareScheduler(reg), tracer=env_tracer
    )
    controller.submit("bronze", "big", make_starter(env, 1, 0), est_bytes=50)
    controller.submit("gold", "g0", make_starter(env, 3, 123.0))
    env.run(until=controller.run())
    names = [e["name"] for e in env_tracer.by_category("tenant")]
    assert "tenant.reject" in names
    assert "tenant.submit" in names
    assert "tenant.admit" in names
    assert "tenant.queue" in names
    spans = [e for e in env_tracer.by_category("tenant") if e["ph"] == "X"]
    assert len(spans) == 1
    assert spans[0]["name"] == "tenant.run"
    assert spans[0]["track"] == "tenant:gold"
    assert spans[0]["args"]["bytes_staged"] == 123.0
    assert spans[0]["dur"] == 3.0
