"""Tests of the RuleProfiler and its integration with rule sessions."""

from repro.obs import RuleProfiler
from repro.rules import Fact, Pattern, Rule, Session


def test_register_keeps_zero_rows_and_counts_sessions():
    profiler = RuleProfiler()
    profiler.register(["a", "b"])
    profiler.register(["a"])
    assert profiler.sessions == 2
    assert {row.name for row in profiler.rows()} == {"a", "b"}
    assert all(row.fires == 0 for row in profiler.rows())


def test_record_match_fire_and_agenda():
    profiler = RuleProfiler()
    profiler.record_match("r", new_activations=3, elapsed_s=0.25)
    profiler.record_fire("r", elapsed_s=0.5)
    profiler.record_fire("r", elapsed_s=0.5)
    profiler.sample_agenda(4)
    profiler.sample_agenda(2)
    row = profiler.stats["r"]
    assert row.activations == 3
    assert row.fires == 2
    assert row.match_s == 0.25
    assert row.action_s == 1.0
    assert row.total_s == 1.25
    assert profiler.total_firings == 2
    doc = profiler.to_dict()
    assert doc["agenda"] == {"samples": 2, "max": 4, "mean": 3.0}
    assert doc["rules"][0]["rule"] == "r"


def test_rows_sorted_hottest_first():
    profiler = RuleProfiler()
    profiler.record_fire("cold", 0.1)
    profiler.record_fire("hot", 5.0)
    assert [row.name for row in profiler.rows()] == ["hot", "cold"]


def test_report_lists_every_rule():
    profiler = RuleProfiler()
    profiler.register(["never fired", "fired"])
    profiler.record_fire("fired", 0.01)
    text = profiler.report()
    assert "never fired" in text
    assert "fired" in text
    assert "1 firings across 1 sessions" in text


class _Tick:
    """Deterministic fake perf counter: each call advances 1 ms."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        self.t += 0.001
        return self.t


class Item(Fact):
    def __init__(self, n):
        self.n = n
        self.seen = False


def _mark_rule():
    return Rule(
        "mark items",
        when=[Pattern(Item, binding="it", where=lambda it, b: not it.seen)],
        then=lambda ctx: ctx.update(ctx.it, seen=True),
        no_loop=True,
    )


def _run_profiled_session(incremental: bool) -> RuleProfiler:
    profiler = RuleProfiler(time_fn=_Tick())
    session = Session([_mark_rule()], incremental=incremental, profiler=profiler)
    session.insert(Item(1))
    session.insert(Item(2))
    session.fire_all()
    return profiler


def test_session_feeds_profiler_both_engines():
    for incremental in (False, True):
        profiler = _run_profiled_session(incremental)
        row = profiler.stats["mark items"]
        assert row.fires == 2, f"incremental={incremental}"
        assert row.activations >= 2
        assert row.match_s > 0
        assert row.action_s > 0
        assert profiler.sessions == 1
        assert len(profiler.agenda_samples) == 2


def test_unprofiled_session_never_touches_clock():
    session = Session([_mark_rule()])
    assert session.profiler is None
    session.insert(Item(1))
    assert session.fire_all() == 1  # no profiler calls anywhere
