"""Tests of the MetricsRegistry and its Prometheus rendering."""

import pytest

from repro.obs import MetricsRegistry


def test_counter_inc_and_value():
    reg = MetricsRegistry()
    c = reg.counter("repro_things_total", "Things.")
    c.inc()
    c.inc(2.5)
    assert c.value() == 3.5


def test_counter_rejects_negative_increment():
    c = MetricsRegistry().counter("repro_x_total")
    with pytest.raises(ValueError):
        c.inc(-1)


def test_labelled_counter_children_are_independent():
    reg = MetricsRegistry()
    c = reg.counter("repro_events_total", "Events.", labelnames=("event",))
    c.labels(event="approved").inc(3)
    c.labels(event="denied").inc()
    assert c.value(event="approved") == 3
    assert c.value(event="denied") == 1
    assert c.value(event="never_used") == 0


def test_wrong_label_set_raises():
    reg = MetricsRegistry()
    c = reg.counter("repro_e_total", labelnames=("event",))
    with pytest.raises(ValueError):
        c.labels(kind="x")
    with pytest.raises(ValueError):
        c.inc()  # unlabelled use of a labelled family


def test_gauge_set_inc_dec():
    g = MetricsRegistry().gauge("repro_depth")
    g.set(5)
    g.inc(2)
    g.dec()
    assert g.value() == 6


def test_registration_is_idempotent_but_kind_mismatch_raises():
    reg = MetricsRegistry()
    a = reg.counter("repro_n_total", "N.", labelnames=("k",))
    b = reg.counter("repro_n_total", "other help", labelnames=("k",))
    assert a is b
    with pytest.raises(ValueError):
        reg.gauge("repro_n_total")
    with pytest.raises(ValueError):
        reg.counter("repro_n_total", labelnames=("other",))


def test_invalid_metric_name_rejected():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.counter("9starts_with_digit")
    with pytest.raises(ValueError):
        reg.counter("has space")


def test_histogram_buckets_are_cumulative():
    reg = MetricsRegistry()
    h = reg.histogram("repro_latency_seconds", buckets=(0.1, 1.0, 10.0))
    for v in (0.05, 0.5, 0.5, 5.0, 50.0):
        h.observe(v)
    text = reg.render()
    assert 'repro_latency_seconds_bucket{le="0.1"} 1' in text
    assert 'repro_latency_seconds_bucket{le="1"} 3' in text
    assert 'repro_latency_seconds_bucket{le="10"} 4' in text
    assert 'repro_latency_seconds_bucket{le="+Inf"} 5' in text
    assert "repro_latency_seconds_count 5" in text
    assert "repro_latency_seconds_sum 56.05" in text


def test_render_has_help_and_type_headers_sorted_families():
    reg = MetricsRegistry()
    reg.counter("repro_b_total", "B things.").inc()
    reg.gauge("repro_a", "A level.").set(2)
    text = reg.render()
    assert text.index("# HELP repro_a A level.") < text.index("# HELP repro_b_total")
    assert "# TYPE repro_a gauge" in text
    assert "# TYPE repro_b_total counter" in text
    assert text.endswith("\n")


def test_label_values_escaped_in_render():
    reg = MetricsRegistry()
    c = reg.counter("repro_paths_total", labelnames=("path",))
    c.labels(path='a"b\\c\nd').inc()
    assert 'path="a\\"b\\\\c\\nd"' in reg.render()


def test_integer_values_render_bare():
    reg = MetricsRegistry()
    reg.counter("repro_i_total").inc(3)
    assert "repro_i_total 3\n" in reg.render()


def test_to_dict_census():
    reg = MetricsRegistry()
    c = reg.counter("repro_e_total", labelnames=("event",))
    c.labels(event="ok").inc(2)
    doc = reg.to_dict()
    assert doc == {"repro_e_total": {'repro_e_total{event="ok"}': 2.0}}
