"""Tests of the Chrome/JSONL/Prometheus/profile exporters."""

import io
import json

from repro.obs import (
    MetricsRegistry,
    RuleProfiler,
    Tracer,
    chrome_trace_doc,
    jsonl_lines,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
    write_rule_profile,
)


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


def traced():
    clock = FakeClock(1.0)
    tracer = Tracer(clock=clock)
    handle = tracer.begin("policy", "policy.submit_transfers", track="policy", batch=3)
    clock.t = 1.5
    tracer.end(handle, advice=3)
    tracer.instant("fault", "fault.outage.begin", track="fault", duration=30)
    tracer.counter("net", "streams:wan", track="net", streams=8)
    return tracer


def test_chrome_doc_schema():
    doc = chrome_trace_doc(traced())
    assert doc["displayTimeUnit"] == "ms"
    events = doc["traceEvents"]
    assert isinstance(events, list)
    for event in events:
        assert {"ph", "pid", "tid", "name"} <= set(event)
    phases = [e["ph"] for e in events]
    assert phases.count("M") == 4  # process_name + 3 thread_name records
    assert "X" in phases and "i" in phases and "C" in phases


def test_chrome_doc_metadata_names_tracks():
    doc = chrome_trace_doc(traced())
    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    assert meta[0]["name"] == "process_name"
    assert meta[0]["args"]["name"] == "repro"
    thread_names = {e["args"]["name"] for e in meta if e["name"] == "thread_name"}
    assert thread_names == {"policy", "fault", "net"}


def test_chrome_doc_converts_seconds_to_microseconds():
    doc = chrome_trace_doc(traced())
    span = next(e for e in doc["traceEvents"] if e["ph"] == "X")
    assert span["ts"] == 1.0 * 1e6
    assert span["dur"] == 0.5 * 1e6
    instant = next(e for e in doc["traceEvents"] if e["ph"] == "i")
    assert instant["s"] == "g"


def test_write_chrome_trace_roundtrips_through_json(tmp_path):
    path = tmp_path / "trace.json"
    write_chrome_trace(traced(), path)
    doc = json.loads(path.read_text())
    assert doc["traceEvents"]


def test_jsonl_is_canonical_and_parseable():
    lines = jsonl_lines(traced())
    assert len(lines) == 3
    for line in lines:
        record = json.loads(line)
        # canonical: re-encoding with sorted keys reproduces the line
        assert json.dumps(record, sort_keys=True, separators=(",", ":")) == line
        assert "\n" not in line


def test_write_jsonl_to_file_and_buffer(tmp_path):
    tracer = traced()
    path = tmp_path / "events.jsonl"
    write_jsonl(tracer, path)
    buffer = io.StringIO()
    write_jsonl(tracer, buffer)
    assert path.read_text() == buffer.getvalue()
    assert path.read_text().endswith("\n")


def test_write_jsonl_empty_tracer(tmp_path):
    path = tmp_path / "empty.jsonl"
    write_jsonl(Tracer(), path)
    assert path.read_text() == ""


def test_write_prometheus(tmp_path):
    registry = MetricsRegistry()
    registry.counter("repro_x_total", "X.").inc(2)
    path = tmp_path / "metrics.prom"
    write_prometheus(registry, path)
    text = path.read_text()
    assert "# TYPE repro_x_total counter" in text
    assert "repro_x_total 2" in text


def test_write_rule_profile(tmp_path):
    profiler = RuleProfiler()
    profiler.register(["quiet rule"])
    profiler.record_fire("busy rule", 0.002)
    path = tmp_path / "rule_profile.txt"
    write_rule_profile(profiler, path)
    text = path.read_text()
    assert "busy rule" in text
    assert "quiet rule" in text
