"""Tests of the Tracer: emission, spans, disabled mode, determinism basics."""

import pytest

from repro.obs import Tracer


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


def test_instant_records_clock_category_and_args():
    clock = FakeClock(5.0)
    tracer = Tracer(clock=clock)
    tracer.instant("policy", "policy.lease_reap", track="policy", transfers=3)
    assert len(tracer) == 1
    event = tracer.events[0]
    assert event["ph"] == "i"
    assert event["ts"] == 5.0
    assert event["cat"] == "policy"
    assert event["name"] == "policy.lease_reap"
    assert event["track"] == "policy"
    assert event["args"] == {"transfers": 3}
    assert event["seq"] == 1


def test_span_covers_begin_to_end_with_merged_args():
    clock = FakeClock(10.0)
    tracer = Tracer(clock=clock)
    handle = tracer.begin("dagman", "job:j1", track="dagman:w1", kind="compute")
    clock.t = 17.5
    tracer.end(handle, state="done", attempts=1)
    (event,) = tracer.spans()
    assert event["ph"] == "X"
    assert event["ts"] == 10.0
    assert event["dur"] == 7.5
    assert event["args"] == {"kind": "compute", "state": "done", "attempts": 1}


def test_double_end_emits_once():
    tracer = Tracer(clock=FakeClock())
    handle = tracer.begin("c", "n")
    tracer.end(handle)
    tracer.end(handle, extra=1)
    assert len(tracer) == 1


def test_span_context_manager_records_errors():
    tracer = Tracer(clock=FakeClock())
    with pytest.raises(RuntimeError):
        with tracer.span("rpc", "rpc:submit"):
            raise RuntimeError("boom")
    (event,) = tracer.spans()
    assert event["args"]["error"] == "RuntimeError"


def test_counter_event():
    tracer = Tracer(clock=FakeClock(2.0))
    tracer.counter("net", "streams:wan", track="net", streams=12)
    event = tracer.events[0]
    assert event["ph"] == "C"
    assert event["args"] == {"streams": 12}


def test_disabled_tracer_emits_nothing_and_begin_returns_none():
    tracer = Tracer(clock=FakeClock(), enabled=False)
    tracer.instant("c", "i")
    tracer.counter("c", "k", v=1)
    handle = tracer.begin("c", "s")
    assert handle is None
    tracer.end(handle)
    with tracer.span("c", "s2"):
        pass
    assert len(tracer) == 0


def test_end_none_is_noop_on_enabled_tracer():
    tracer = Tracer(clock=FakeClock())
    tracer.end(None, status=200)
    assert len(tracer) == 0


def test_unbound_tracer_stamps_zero():
    tracer = Tracer()
    tracer.instant("c", "n")
    assert tracer.events[0]["ts"] == 0.0


def test_track_ids_are_stable_insertion_ordered_small_ints():
    tracer = Tracer()
    assert tracer.track_id("policy") == 1
    assert tracer.track_id("net") == 2
    assert tracer.track_id("policy") == 1


def test_sequence_numbers_are_monotonic():
    tracer = Tracer(clock=FakeClock())
    for i in range(5):
        tracer.instant("c", f"e{i}")
    assert [e["seq"] for e in tracer.events] == [1, 2, 3, 4, 5]


def test_summary_counts_events_spans_and_categories():
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    tracer.instant("fault", "fault.outage.begin")
    with tracer.span("policy", "policy.submit_transfers"):
        clock.t = 1.0
    summary = tracer.summary()
    assert summary == {
        "events": 2,
        "spans": 1,
        "categories": {"fault": 1, "policy": 1},
    }


def test_by_category_filters():
    tracer = Tracer(clock=FakeClock())
    tracer.instant("a", "x")
    tracer.instant("b", "y")
    assert [e["name"] for e in tracer.by_category("b")] == ["y"]


def test_environment_binds_tracer_to_sim_clock():
    from repro.des import Environment

    tracer = Tracer()
    env = Environment(tracer=tracer)

    def proc():
        yield env.timeout(4.0)
        tracer.instant("test", "tick")

    env.process(proc())
    env.run()
    assert env.tracer is tracer
    assert tracer.events[0]["ts"] == 4.0


def test_null_tracer_absorbs_all_emission():
    from repro.obs.tracer import NULL_TRACER, NullTracer, as_tracer

    null = NullTracer()
    assert null.enabled is False
    span = null.begin("cat", "name", args={"k": 1})
    null.end(span)
    null.instant("cat", "mark")
    with null.span("cat", "scoped"):
        pass
    assert null.events == []
    assert null.summary()["events"] == 0
    with pytest.raises(ValueError):
        null.enabled = True
    null.enabled = False  # explicit re-disable stays legal


def test_as_tracer_substitutes_the_shared_null_object():
    from repro.obs.tracer import NULL_TRACER, Tracer, as_tracer

    assert as_tracer(None) is NULL_TRACER
    real = Tracer()
    assert as_tracer(real) is real
