"""Unit tests for rule matching, agenda ordering, refraction, no_loop."""

import pytest

from repro.rules import (
    Absent,
    Collect,
    Fact,
    Pattern,
    Rule,
    RuleEngineError,
    Session,
    Test,
)


class Ticket(Fact):
    def __init__(self, seat, price, sold=False):
        self.seat = seat
        self.price = price
        self.sold = sold


class Alarm(Fact):
    def __init__(self, level=0):
        self.level = level


def test_simple_rule_fires_per_matching_fact():
    hits = []
    rule = Rule(
        "expensive",
        when=[Pattern(Ticket, binding="t", where=lambda t, b: t.price > 100)],
        then=lambda ctx: hits.append(ctx.t.seat),
    )
    s = Session([rule])
    s.insert(Ticket("A1", 50))
    s.insert(Ticket("A2", 150))
    s.insert(Ticket("A3", 200))
    assert s.fire_all() == 2
    assert sorted(hits) == ["A2", "A3"]


def test_refraction_activation_fires_once():
    hits = []
    rule = Rule(
        "any-ticket",
        when=[Pattern(Ticket, binding="t")],
        then=lambda ctx: hits.append(ctx.t.seat),
    )
    s = Session([rule])
    s.insert(Ticket("A1", 50))
    s.fire_all()
    s.fire_all()  # no new facts: nothing to fire
    assert hits == ["A1"]


def test_update_reactivates():
    hits = []
    rule = Rule(
        "watch",
        when=[Pattern(Ticket, binding="t")],
        then=lambda ctx: hits.append((ctx.t.seat, ctx.t.price)),
    )
    s = Session([rule])
    t = s.insert(Ticket("A1", 50))
    s.fire_all()
    s.update(t, price=75)
    s.fire_all()
    assert hits == [("A1", 50), ("A1", 75)]


def test_salience_order():
    order = []
    low = Rule(
        "low",
        salience=1,
        when=[Pattern(Ticket)],
        then=lambda ctx: order.append("low"),
    )
    high = Rule(
        "high",
        salience=10,
        when=[Pattern(Ticket)],
        then=lambda ctx: order.append("high"),
    )
    s = Session([low, high])
    s.insert(Ticket("A1", 10))
    s.fire_all()
    assert order == ["high", "low"]


def test_definition_order_breaks_salience_ties():
    order = []
    r1 = Rule("first", when=[Pattern(Ticket)], then=lambda ctx: order.append(1))
    r2 = Rule("second", when=[Pattern(Ticket)], then=lambda ctx: order.append(2))
    s = Session([r1, r2])
    s.insert(Ticket("A1", 10))
    s.fire_all()
    assert order == [1, 2]


def test_chaining_insert_from_action():
    fired = []

    def raise_alarm(ctx):
        ctx.insert(Alarm(level=1))

    watch = Rule(
        "watch",
        when=[Pattern(Ticket, where=lambda t, b: t.price > 500)],
        then=raise_alarm,
    )
    react = Rule(
        "react",
        when=[Pattern(Alarm, binding="a")],
        then=lambda ctx: fired.append(ctx.a.level),
    )
    s = Session([watch, react])
    s.insert(Ticket("VIP", 1000))
    s.fire_all()
    assert fired == [1]


def test_retract_from_action_stops_downstream_matches():
    survivors = []

    def drop(ctx):
        ctx.retract(ctx.t)

    cull = Rule(
        "cull-cheap",
        salience=10,
        when=[Pattern(Ticket, binding="t", where=lambda t, b: t.price < 100)],
        then=drop,
    )
    count = Rule(
        "count",
        when=[Pattern(Ticket, binding="t")],
        then=lambda ctx: survivors.append(ctx.t.seat),
    )
    s = Session([cull, count])
    s.insert(Ticket("cheap", 10))
    s.insert(Ticket("fine", 150))
    s.fire_all()
    assert survivors == ["fine"]


def test_join_two_patterns():
    pairs = []
    rule = Rule(
        "same-price-pair",
        when=[
            Pattern(Ticket, binding="a"),
            Pattern(
                Ticket,
                binding="b",
                where=lambda b, ctx: b.price == ctx["a"].price and b.seat > ctx["a"].seat,
            ),
        ],
        then=lambda ctx: pairs.append((ctx.a.seat, ctx.b.seat)),
    )
    s = Session([rule])
    s.insert(Ticket("A1", 100))
    s.insert(Ticket("A2", 100))
    s.insert(Ticket("A3", 50))
    s.fire_all()
    assert pairs == [("A1", "A2")]


def test_absent_negation():
    hits = []
    rule = Rule(
        "no-alarm",
        when=[Pattern(Ticket, binding="t"), Absent(Alarm)],
        then=lambda ctx: hits.append(ctx.t.seat),
    )
    s = Session([rule])
    s.insert(Ticket("A1", 10))
    s.insert(Alarm())
    assert s.fire_all() == 0

    s2 = Session([rule])
    s2.insert(Ticket("A1", 10))
    assert s2.fire_all() == 1


def test_collect_binds_all_matches():
    seen = []
    rule = Rule(
        "sum-sold",
        when=[Collect(Ticket, binding="sold", where=lambda t, b: t.sold)],
        then=lambda ctx: seen.append(sum(t.price for t in ctx.sold)),
    )
    s = Session([rule])
    s.insert(Ticket("A1", 100, sold=True))
    s.insert(Ticket("A2", 50, sold=True))
    s.insert(Ticket("A3", 999, sold=False))
    s.fire_all()
    assert seen == [150]


def test_collect_min_count_blocks():
    hits = []
    rule = Rule(
        "needs-three",
        when=[Collect(Ticket, binding="ts", min_count=3)],
        then=lambda ctx: hits.append(len(ctx.ts)),
    )
    s = Session([rule])
    s.insert(Ticket("A1", 1))
    s.insert(Ticket("A2", 1))
    assert s.fire_all() == 0
    s.insert(Ticket("A3", 1))
    assert s.fire_all() == 1
    assert hits == [3]


def test_test_element_guards_bindings():
    hits = []
    rule = Rule(
        "pair-total-over-200",
        when=[
            Pattern(Ticket, binding="a"),
            Pattern(Ticket, binding="b", where=lambda b, ctx: b.seat > ctx["a"].seat),
            Test(lambda b: b["a"].price + b["b"].price > 200),
        ],
        then=lambda ctx: hits.append((ctx.a.seat, ctx.b.seat)),
    )
    s = Session([rule])
    s.insert(Ticket("A1", 150))
    s.insert(Ticket("A2", 100))
    s.insert(Ticket("A3", 10))
    s.fire_all()
    assert hits == [("A1", "A2")]


def test_no_loop_prevents_self_retrigger():
    def bump(ctx):
        ctx.update(ctx.a, level=ctx.a.level + 1)

    rule = Rule(
        "bump",
        when=[Pattern(Alarm, binding="a")],
        then=bump,
        no_loop=True,
    )
    s = Session([rule])
    a = s.insert(Alarm(level=0))
    fired = s.fire_all()
    assert fired == 1
    assert a.level == 1


def test_no_loop_still_reacts_to_other_rules_updates():
    trace = []

    def bump(ctx):
        trace.append("bump")
        ctx.update(ctx.a, level=ctx.a.level + 1)

    bump_rule = Rule(
        "bump", when=[Pattern(Alarm, binding="a")], then=bump, no_loop=True
    )

    def escalate(ctx):
        trace.append("escalate")
        ctx.update(ctx.a, level=100)

    escalate_rule = Rule(
        "escalate",
        salience=-1,  # runs after bump
        when=[Pattern(Alarm, binding="a", where=lambda a, b: a.level == 1)],
        then=escalate,
        no_loop=True,
    )
    s = Session([bump_rule, escalate_rule])
    a = s.insert(Alarm(level=0))
    s.fire_all()
    # bump(0->1), escalate(1->100), bump re-activated by escalate's change (100->101)
    assert trace == ["bump", "escalate", "bump"]
    assert a.level == 101


def test_divergence_guard():
    def bump(ctx):
        ctx.update(ctx.a, level=ctx.a.level + 1)

    runaway = Rule("runaway", when=[Pattern(Alarm, binding="a")], then=bump)
    s = Session([runaway], max_firings=50)
    s.insert(Alarm())
    with pytest.raises(RuleEngineError, match="exceeded"):
        s.fire_all()


def test_halt_stops_firing():
    hits = []

    def first(ctx):
        hits.append("first")
        ctx.halt()

    r1 = Rule("r1", salience=10, when=[Pattern(Ticket)], then=first)
    r2 = Rule("r2", when=[Pattern(Ticket)], then=lambda ctx: hits.append("second"))
    s = Session([r1, r2])
    s.insert(Ticket("A1", 1))
    s.fire_all()
    assert hits == ["first"]
    # A later fire_all resumes with the remaining activation.
    s.fire_all()
    assert hits == ["first", "second"]


def test_duplicate_rule_names_rejected():
    r = Rule("same", when=[Pattern(Ticket)], then=lambda ctx: None)
    r2 = Rule("same", when=[Pattern(Ticket)], then=lambda ctx: None)
    with pytest.raises(RuleEngineError):
        Session([r, r2])


def test_rule_validation():
    with pytest.raises(ValueError):
        Rule("", when=[Pattern(Ticket)], then=lambda ctx: None)
    with pytest.raises(ValueError):
        Rule("empty", when=[], then=lambda ctx: None)
    with pytest.raises(TypeError):
        Rule("bad-cond", when=["nope"], then=lambda ctx: None)  # type: ignore[list-item]
    with pytest.raises(TypeError):
        Rule("bad-action", when=[Pattern(Ticket)], then="nope")  # type: ignore[arg-type]


def test_pattern_validation():
    with pytest.raises(TypeError):
        Pattern(int)  # type: ignore[arg-type]
    with pytest.raises(TypeError):
        Absent(str)  # type: ignore[arg-type]
    with pytest.raises(ValueError):
        Collect(Ticket, binding="")
    with pytest.raises(TypeError):
        Test("nope")  # type: ignore[arg-type]


def test_missing_binding_attribute_error():
    rule = Rule(
        "r", when=[Pattern(Ticket, binding="t")], then=lambda ctx: ctx.nonexistent
    )
    s = Session([rule])
    s.insert(Ticket("A1", 1))
    with pytest.raises(AttributeError, match="no binding"):
        s.fire_all()


def test_guard_attribute_error_treated_as_no_match():
    class Special(Ticket):
        def __init__(self, seat, price, vip):
            super().__init__(seat, price)
            self.vip = vip

    hits = []
    rule = Rule(
        "vip-only",
        when=[Pattern(Ticket, binding="t", where=lambda t, b: t.vip)],
        then=lambda ctx: hits.append(ctx.t.seat),
    )
    s = Session([rule])
    s.insert(Ticket("plain", 1))  # has no .vip -> no match, no crash
    s.insert(Special("vip", 1, vip=True))
    s.fire_all()
    assert hits == ["vip"]


def test_globals_visible_to_actions():
    seen = []
    rule = Rule(
        "use-global",
        when=[Pattern(Ticket, binding="t")],
        then=lambda ctx: seen.append(ctx.globals["threshold"]),
    )
    s = Session([rule], globals={"threshold": 50})
    s.insert(Ticket("A1", 1))
    s.fire_all()
    assert seen == [50]


def test_trace_records_firings():
    rule = Rule("traced", when=[Pattern(Ticket, binding="t")], then=lambda ctx: None)
    s = Session([rule])
    s.trace_enabled = True
    s.insert(Ticket("A1", 5))
    s.fire_all()
    assert len(s.trace) == 1
    assert "traced" in s.trace[0]


def test_shared_memory_across_sessions():
    """The policy service keeps one memory across many request sessions."""
    from repro.rules import WorkingMemory

    wm = WorkingMemory()
    counted = []
    count_rule = Rule(
        "count",
        when=[Collect(Ticket, binding="ts", min_count=1)],
        then=lambda ctx: counted.append(len(ctx.ts)),
    )
    s1 = Session([count_rule], memory=wm)
    s1.insert(Ticket("A1", 1))
    s1.fire_all()
    s2 = Session([count_rule], memory=wm)
    s2.insert(Ticket("A2", 1))
    s2.fire_all()
    assert counted == [1, 2]


def test_exists_fires_once_regardless_of_count():
    from repro.rules import Exists

    hits = []
    rule = Rule(
        "any-expensive",
        when=[Exists(Ticket, where=lambda t, b: t.price > 100)],
        then=lambda ctx: hits.append("fired"),
    )
    s = Session([rule])
    s.insert(Ticket("A1", 200))
    s.insert(Ticket("A2", 300))
    s.insert(Ticket("A3", 400))
    assert s.fire_all() == 1  # one activation despite three matches
    assert hits == ["fired"]


def test_exists_blocks_until_match():
    from repro.rules import Exists

    hits = []
    rule = Rule(
        "alarm-present",
        when=[Pattern(Ticket, "t"), Exists(Alarm)],
        then=lambda ctx: hits.append(ctx.t.seat),
    )
    s = Session([rule])
    s.insert(Ticket("A1", 10))
    assert s.fire_all() == 0
    s.insert(Alarm())
    assert s.fire_all() == 1
    assert hits == ["A1"]


def test_exists_validation():
    from repro.rules import Exists

    with pytest.raises(TypeError):
        Exists(int)  # type: ignore[arg-type]


@pytest.mark.parametrize("incremental", [False, True])
def test_tie_break_hook_permutes_equal_salience_order(incremental):
    """The default within-tier rank is (fact-id tuple, definition order);
    a tie_break hook can invert the definition-order component, which is
    what the confluence verifier uses to probe agenda sensitivity."""
    fired = []

    def claim(label):
        return lambda ctx: fired.append(label)

    def rules():
        return [
            Rule("first claimer", when=[Pattern(Ticket, "t")], then=claim("a")),
            Rule("second claimer", when=[Pattern(Ticket, "t")], then=claim("b")),
        ]

    default = Session(rules(), incremental=incremental)
    default.insert(Ticket("A1", 10))
    default.fire_all()
    assert fired == ["a", "b"]

    fired.clear()
    inverted = Session(
        rules(),
        incremental=incremental,
        tie_break=lambda rule, order, key: (key[1], -order),
    )
    inverted.insert(Ticket("A1", 10))
    inverted.fire_all()
    assert fired == ["b", "a"]
