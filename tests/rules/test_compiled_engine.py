"""Compiled join-network equivalence vs the interpreted engines.

``CompiledSession`` (join-network plans, memoized partial matches, lazy
probes) must produce the exact same firing sequence as the seed engine's
full re-match and the incremental dirty-set agenda — same rules, same
binding tuples, same order — across salience tiers, refraction,
``no_loop``, ``halt``, updates, retracts, negations and keyed patterns.
Every scenario runs in all three modes and the traces are compared; a
hypothesis property does the same over randomized fact soups.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rules import (
    Absent,
    Collect,
    CompiledSession,
    Exists,
    Fact,
    Pattern,
    Rule,
    Session,
    Test,
    WorkingMemory,
    compile_rules,
    fast_path_report,
)


class Order(Fact):
    def __init__(self, oid, item, qty, status="new"):
        self.oid = oid
        self.item = item
        self.qty = qty
        self.status = status


class Stock(Fact):
    def __init__(self, item, level):
        self.item = item
        self.level = level


class Audit(Fact):
    def __init__(self, note):
        self.note = note


def _make_session(mode, rules):
    if mode == "compiled":
        return CompiledSession(rules, memory=WorkingMemory(indexed=True))
    incremental = mode == "incremental"
    return Session(
        rules, memory=WorkingMemory(indexed=incremental), incremental=incremental
    )


def run_all(make_rules, scenario):
    """Run ``scenario(session, trace)`` in all three engines; compare."""
    traces = {}
    for mode in ("seed", "incremental", "compiled"):
        trace = []
        scenario(_make_session(mode, make_rules(trace)), trace)
        traces[mode] = trace
    assert traces["seed"] == traces["incremental"] == traces["compiled"]
    return traces["seed"]


# --------------------------------------------------------------- scenarios
def test_join_rules_salience_and_fifo_order_match():
    def make_rules(trace):
        def fill(ctx):
            trace.append(("fill", ctx.o.oid, ctx.s.item))
            ctx.update(ctx.s, level=ctx.s.level - ctx.o.qty)
            ctx.update(ctx.o, status="filled")

        return [
            Rule(
                "audit",
                salience=1,
                when=[
                    Pattern(Order, "o",
                            where=lambda o, b: o.status == "filled",
                            keys={"status": lambda b: "filled"}),
                    Pattern(Stock, "s", where=lambda s, b: s.item == b["o"].item,
                            keys={"item": lambda b: b["o"].item}),
                ],
                then=lambda ctx: trace.append(("audit", ctx.o.oid, ctx.s.level)),
            ),
            Rule(
                "fill",
                salience=5,
                when=[
                    Pattern(Order, "o", where=lambda o, b: o.status == "new",
                            keys={"status": lambda b: "new"}),
                    Pattern(Stock, "s",
                            where=lambda s, b: s.item == b["o"].item
                            and s.level >= b["o"].qty,
                            keys={"item": lambda b: b["o"].item}),
                ],
                then=fill,
            ),
        ]

    def scenario(s, trace):
        s.insert(Stock("disk", 6))
        s.insert(Stock("cpu", 3))
        for i in range(5):
            s.insert(Order(i, "disk" if i % 2 else "cpu", 2))
        trace.append(("fired", s.fire_all()))
        s.insert(Order(10, "disk", 1))
        s.insert(Stock("ram", 9))
        trace.append(("fired2", s.fire_all()))

    trace = run_all(make_rules, scenario)
    assert ("fill", 0, "cpu") in trace


def test_mixed_join_and_gate_rules_match():
    def make_rules(trace):
        return [
            Rule(
                "pair",
                salience=5,
                when=[
                    Pattern(Order, "o", where=lambda o, b: o.status == "new"),
                    Pattern(Stock, "s", where=lambda s, b: s.item == b["o"].item),
                ],
                then=lambda ctx: (
                    trace.append(("pair", ctx.o.oid)),
                    ctx.update(ctx.o, status="seen"),
                ),
            ),
            Rule(
                "alarm",
                salience=1,
                no_loop=True,
                when=[
                    Pattern(Stock, "s", where=lambda s, b: s.level < 3),
                    Absent(Audit, where=lambda a, b: a.note == f"low:{b['s'].item}"),
                ],
                then=lambda ctx: (
                    trace.append(("alarm", ctx.s.item)),
                    ctx.insert(Audit(f"low:{ctx.s.item}")),
                ),
            ),
            Rule(
                "census",
                salience=0,
                when=[
                    Exists(Audit),
                    Collect(Audit, "all", min_count=1),
                    Test(lambda b: len(b["all"]) >= 1),
                ],
                then=lambda ctx: (
                    trace.append(("census", len(ctx.all))),
                    ctx.halt(),
                ),
            ),
        ]

    def scenario(s, trace):
        s.insert(Stock("disk", 2))
        s.insert(Stock("cpu", 1))
        s.insert(Order(1, "disk", 1))
        trace.append(("fired", s.fire_all()))
        s.retract(s.memory.facts_of(Order)[0])
        s.insert(Order(2, "cpu", 1))
        trace.append(("fired2", s.fire_all()))

    run_all(make_rules, scenario)


def test_retract_during_firing_matches():
    def make_rules(trace):
        def consume(ctx):
            trace.append(("consume", ctx.o.oid))
            ctx.retract(ctx.o)

        return [
            Rule(
                "consume",
                when=[
                    Pattern(Order, "o"),
                    Pattern(Stock, "s", where=lambda s, b: s.item == b["o"].item),
                ],
                then=consume,
            ),
        ]

    def scenario(s, trace):
        s.insert(Stock("disk", 5))
        for i in range(4):
            s.insert(Order(i, "disk", 1))
        trace.append(("fired", s.fire_all()))

    trace = run_all(make_rules, scenario)
    assert trace == [("consume", 0), ("consume", 1), ("consume", 2),
                     ("consume", 3), ("fired", 4)]


def test_reads_declaration_preserves_equivalence():
    """A gate with a ``reads`` declaration lets the compiled engine skip
    rebuilds for unrelated updates — without changing a single firing."""
    def make_rules(trace):
        return [
            Rule(
                "churn",
                salience=5,
                when=[Pattern(Stock, "s", where=lambda s, b: s.level > 0)],
                no_loop=True,
                then=lambda ctx: (
                    trace.append(("churn", ctx.s.item)),
                    ctx.update(ctx.s, level=ctx.s.level),  # no-op update
                ),
            ),
            Rule(
                "gated",
                salience=1,
                when=[
                    Pattern(Order, "o", where=lambda o, b: o.status == "new"),
                    Absent(Stock,
                           where=lambda s, b: s.item == b["o"].item,
                           reads=("item",)),
                ],
                then=lambda ctx: (
                    trace.append(("gated", ctx.o.oid)),
                    ctx.update(ctx.o, status="handled"),
                ),
            ),
        ]

    def scenario(s, trace):
        s.insert(Stock("disk", 3))
        s.insert(Order(1, "disk", 1))
        s.insert(Order(2, "ram", 1))
        trace.append(("fired", s.fire_all()))
        s.insert(Stock("ram", 1))  # now blocks future "ram" orders
        s.insert(Order(3, "ram", 1))
        trace.append(("fired2", s.fire_all()))

    trace = run_all(make_rules, scenario)
    assert ("gated", 2) in trace
    assert ("gated", 3) not in trace


def test_compiled_session_over_scan_memory_composes():
    # Like incremental=True over a scan memory, the compiled network only
    # needs the change log — an unindexed memory is legal, just slower.
    hits = []
    rules = [Rule("any", when=[Pattern(Order, "o")],
                  then=lambda ctx: hits.append(ctx.o.oid))]
    s = CompiledSession(rules, memory=WorkingMemory(indexed=False))
    s.insert(Order(1, "disk", 1))
    assert s.fire_all() == 1
    assert hits == [1]


def test_foreign_ruleset_rejected():
    rules = [Rule("r", when=[Pattern(Order, "o")], then=lambda ctx: None)]
    other = compile_rules(
        [Rule("q", when=[Pattern(Stock, "s")], then=lambda ctx: None)]
    )
    with pytest.raises(ValueError):
        CompiledSession(rules, memory=WorkingMemory(indexed=True), ruleset=other)


def test_shared_ruleset_across_sessions():
    """Many sessions reuse one compiled ruleset (the Policy Service
    pattern: compile once, evaluate per request)."""
    fired = []
    rules = [
        Rule(
            "join",
            when=[
                Pattern(Order, "o", where=lambda o, b: o.status == "new"),
                Pattern(Stock, "s", where=lambda s, b: s.item == b["o"].item),
            ],
            then=lambda ctx: (
                fired.append(ctx.o.oid),
                ctx.update(ctx.o, status="filled"),
            ),
        )
    ]
    ruleset = compile_rules(rules)
    memory = WorkingMemory(indexed=True)
    memory.insert(Stock("disk", 1))
    for i in range(3):
        session = CompiledSession(rules, memory=memory, ruleset=ruleset)
        memory.insert(Order(i, "disk", 1))
        session.fire_all()
    assert fired == [0, 1, 2]


def test_fast_path_report_classifies_plans():
    rules = [
        Rule("join", when=[
            Pattern(Order, "o"),
            Pattern(Stock, "s", keys={"item": lambda b: b["o"].item}),
        ], then=lambda ctx: None),
        Rule("gated", when=[
            Pattern(Order, "o"),
            Absent(Audit),
        ], then=lambda ctx: None),
        Rule("single", when=[Pattern(Order, "o")], then=lambda ctx: None),
        Rule("unbound", when=[
            Pattern(Order, "o"),
            Pattern(Stock),
        ], then=lambda ctx: None),
    ]
    rows = {r["rule"]: r for r in fast_path_report(rules)}
    assert rows["join"]["plan"] == "join"
    assert rows["join"]["last_position_keyed"] is True
    assert rows["gated"]["plan"] == "delta"
    assert "Absent" in rows["gated"]["reason"]
    assert rows["single"]["plan"] == "delta"
    assert rows["unbound"]["plan"] == "delta"
    assert "unbound" in rows["unbound"]["reason"]


# ------------------------------------------------- randomized fact soups
_ITEMS = ("disk", "cpu", "ram")

_op = st.one_of(
    st.tuples(st.just("order"), st.sampled_from(_ITEMS), st.integers(1, 3)),
    st.tuples(st.just("stock"), st.sampled_from(_ITEMS), st.integers(0, 6)),
    st.tuples(st.just("restock"), st.sampled_from(_ITEMS), st.integers(0, 6)),
    st.tuples(st.just("cancel"), st.integers(0, 9)),
    st.tuples(st.just("fire"),),
)


def _soup_rules(trace):
    def fill(ctx):
        trace.append(("fill", ctx.o.oid, ctx.s.level))
        ctx.update(ctx.s, level=ctx.s.level - ctx.o.qty)
        ctx.update(ctx.o, status="filled")

    return [
        Rule(
            "fill",
            salience=5,
            when=[
                Pattern(Order, "o", where=lambda o, b: o.status == "new",
                        keys={"status": lambda b: "new"}),
                Pattern(Stock, "s",
                        where=lambda s, b: s.item == b["o"].item
                        and s.level >= b["o"].qty,
                        keys={"item": lambda b: b["o"].item}),
            ],
            then=fill,
        ),
        Rule(
            "starved",
            salience=1,
            no_loop=True,
            when=[
                Pattern(Order, "o", where=lambda o, b: o.status == "new"),
                Absent(Stock,
                       where=lambda s, b: s.item == b["o"].item
                       and s.level >= b["o"].qty,
                       reads=("item", "level")),
            ],
            then=lambda ctx: trace.append(("starved", ctx.o.oid)),
        ),
    ]


def _run_soup(mode, ops):
    trace = []
    session = _make_session(mode, _soup_rules(trace))
    oid = 0
    for op in ops:
        if op[0] == "order":
            session.insert(Order(oid, op[1], op[2]))
            oid += 1
        elif op[0] == "stock":
            session.insert(Stock(op[1], op[2]))
        elif op[0] == "restock":
            for fact in session.memory.facts_of(Stock):
                if fact.item == op[1]:
                    session.update(fact, level=op[2])
                    break
        elif op[0] == "cancel":
            orders = session.memory.facts_of(Order)
            if orders:
                session.retract(orders[op[1] % len(orders)])
        else:
            trace.append(("fired", session.fire_all()))
    trace.append(("fired", session.fire_all()))
    return trace


@settings(max_examples=60, deadline=None)
@given(st.lists(_op, max_size=30))
def test_compiled_matches_naive_on_random_fact_soups(ops):
    """Property: on any interleaving of inserts / updates / retracts /
    firings, the compiled join network fires exactly what the naive
    full-rescan matcher fires, in the same order."""
    assert _run_soup("compiled", ops) == _run_soup("seed", ops)
