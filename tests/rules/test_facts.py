"""Unit tests for working memory."""

import pytest

from repro.rules import Fact, WorkingMemory


class Animal(Fact):
    def __init__(self, name, legs=4):
        self.name = name
        self.legs = legs


class Dog(Animal):
    pass


def test_insert_and_lookup_by_type():
    wm = WorkingMemory()
    rex = wm.insert(Dog("rex"))
    cat = wm.insert(Animal("cat"))
    assert wm.facts_of(Dog) == [rex]
    assert wm.facts_of(Animal) == [rex, cat]  # subclass visible via base


def test_insert_rejects_non_fact():
    wm = WorkingMemory()
    with pytest.raises(TypeError):
        wm.insert("not a fact")  # type: ignore[arg-type]


def test_double_insert_rejected():
    wm = WorkingMemory()
    a = Animal("cat")
    wm.insert(a)
    with pytest.raises(ValueError):
        wm.insert(a)


def test_update_bumps_version_and_applies_changes():
    wm = WorkingMemory()
    a = wm.insert(Animal("cat"))
    assert wm.version_of(a) == 0
    wm.update(a, legs=3)
    assert a.legs == 3
    assert wm.version_of(a) == 1


def test_update_unknown_attribute_rejected():
    wm = WorkingMemory()
    a = wm.insert(Animal("cat"))
    with pytest.raises(AttributeError):
        wm.update(a, wings=2)


def test_update_requires_membership():
    wm = WorkingMemory()
    with pytest.raises(KeyError):
        wm.update(Animal("ghost"), legs=1)


def test_retract_removes_from_all_indexes():
    wm = WorkingMemory()
    rex = wm.insert(Dog("rex"))
    wm.retract(rex)
    assert wm.facts_of(Dog) == []
    assert wm.facts_of(Animal) == []
    assert not wm.contains(rex)
    with pytest.raises(KeyError):
        wm.retract(rex)


def test_single():
    wm = WorkingMemory()
    assert wm.single(Animal) is None
    a = wm.insert(Animal("one"))
    assert wm.single(Animal) is a
    wm.insert(Animal("two"))
    with pytest.raises(ValueError):
        wm.single(Animal)


def test_fids_monotonic_in_insertion_order():
    wm = WorkingMemory()
    a, b = wm.insert(Animal("a")), wm.insert(Animal("b"))
    assert wm.fid_of(a) < wm.fid_of(b)


def test_modifier_tracking():
    wm = WorkingMemory()
    a = wm.insert(Animal("a"), modifier="rule-x")
    assert wm.modifier_of(a) == "rule-x"
    wm.update(a, modifier="rule-y", legs=2)
    assert wm.modifier_of(a) == "rule-y"


def test_len_iter_snapshot():
    wm = WorkingMemory()
    wm.insert(Animal("a"))
    wm.insert(Dog("d"))
    assert len(wm) == 2
    assert {type(f).__name__ for f in wm} == {"Animal", "Dog"}
    assert wm.snapshot() == {"Animal": 1, "Dog": 1}
