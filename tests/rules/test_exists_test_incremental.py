"""Exists/Test under the incremental agenda: trace-equivalence vs full
re-match.

The engine docstring promises that dirty facts of a type referenced by
``Exists`` (a hard gate) force a full re-match of the rule, and that
``Test`` guards re-evaluate over fresh bindings.  These scenarios lock the
promise in: every one runs under ``incremental=True`` and
``incremental=False`` and must produce identical firing traces.
"""

import random

from repro.rules import Absent, Exists, Fact, Pattern, Rule, Session, Test, WorkingMemory


class Order(Fact):
    def __init__(self, oid, item, qty, status="new"):
        self.oid = oid
        self.item = item
        self.qty = qty
        self.status = status


class Stock(Fact):
    def __init__(self, item, level):
        self.item = item
        self.level = level


class Alarm(Fact):
    def __init__(self, kind):
        self.kind = kind


def run_both(make_rules, scenario):
    traces = []
    for incremental in (False, True):
        trace = []
        memory = WorkingMemory(indexed=incremental)
        session = Session(make_rules(trace), memory=memory, incremental=incremental)
        scenario(session, trace)
        traces.append(trace)
    assert traces[0] == traces[1]
    return traces[0]


def test_exists_gate_opens_on_insert():
    """An Exists gate satisfied mid-run must enable activations that bind
    none of the dirty facts — the full-re-match path."""

    def make_rules(trace):
        return [
            Rule(
                "alarmed order",
                when=[
                    Pattern(Order, "o", where=lambda o, b: o.status == "new"),
                    Exists(Alarm, where=lambda a, b: a.kind == "stockout"),
                ],
                then=lambda ctx: trace.append(("alarmed", ctx.o.oid)),
            )
        ]

    def scenario(s, trace):
        for i in range(3):
            s.insert(Order(i, "disk", 1))
        trace.append(("first", s.fire_all()))  # gate closed: nothing fires
        s.insert(Alarm("stockout"))
        trace.append(("second", s.fire_all()))  # gate open: all three fire

    trace = run_both(make_rules, scenario)
    assert ("first", 0) in trace
    assert [t for t in trace if t[0] == "alarmed"] == [
        ("alarmed", 0), ("alarmed", 1), ("alarmed", 2)
    ]


def test_exists_gate_closes_on_retract():
    def make_rules(trace):
        def note(ctx):
            trace.append(("fired", ctx.o.oid))

        return [
            Rule(
                "gated",
                when=[Pattern(Order, "o"), Exists(Alarm)],
                then=note,
            )
        ]

    def scenario(s, trace):
        alarm = s.insert(Alarm("stockout"))
        s.insert(Order(0, "disk", 1))
        trace.append(("first", s.fire_all()))
        s.retract(alarm)
        s.insert(Order(1, "disk", 1))  # gate now closed: must not fire
        trace.append(("second", s.fire_all()))
        s.insert(Alarm("re-raised"))  # reopens for the unfired order
        trace.append(("third", s.fire_all()))

    trace = run_both(make_rules, scenario)
    assert ("second", 0) in trace
    assert [t for t in trace if t[0] == "fired"] == [("fired", 0), ("fired", 1)]


def test_keyed_exists_stays_sound_across_updates():
    """Exists with a keys hint: updating the gating fact's keyed attribute
    must flip the gate identically in both modes."""

    def make_rules(trace):
        return [
            Rule(
                "has stock",
                when=[
                    Pattern(Order, "o", where=lambda o, b: o.status == "new"),
                    Exists(
                        Stock,
                        where=lambda st, b: st.item == b["o"].item and st.level > 0,
                        keys={"item": lambda b: b["o"].item},
                    ),
                ],
                then=lambda ctx: trace.append(("stocked", ctx.o.oid)),
            )
        ]

    def scenario(s, trace):
        stock = s.insert(Stock("disk", 0))
        s.insert(Order(0, "disk", 1))
        trace.append(("first", s.fire_all()))  # level 0: gate closed
        s.update(stock, level=5)
        trace.append(("second", s.fire_all()))  # gate opens via update

    trace = run_both(make_rules, scenario)
    assert [t for t in trace if t[0] == "stocked"] == [("stocked", 0)]


def test_test_predicate_sees_updated_bindings():
    """A Test guard over two bindings must re-evaluate when either side's
    fact is updated (version bump → new activation key)."""

    def make_rules(trace):
        def fill(ctx):
            trace.append(("fill", ctx.o.oid, ctx.st.level))

        return [
            Rule(
                "fillable",
                when=[
                    Pattern(Order, "o", where=lambda o, b: o.status == "new"),
                    Pattern(Stock, "st", where=lambda st, b: st.item == b["o"].item),
                    Test(lambda b: b["st"].level >= b["o"].qty),
                ],
                then=fill,
            )
        ]

    def scenario(s, trace):
        stock = s.insert(Stock("disk", 1))
        s.insert(Order(0, "disk", 3))
        trace.append(("first", s.fire_all()))  # 1 < 3: Test fails
        s.update(stock, level=4)
        trace.append(("second", s.fire_all()))  # 4 >= 3: fires

    trace = run_both(make_rules, scenario)
    assert [t for t in trace if t[0] == "fill"] == [("fill", 0, 4)]


def test_exists_absent_test_combination():
    def make_rules(trace):
        return [
            Rule(
                "escalate",
                when=[
                    Pattern(Order, "o", where=lambda o, b: o.status == "new"),
                    Exists(Stock, where=lambda st, b: st.item == b["o"].item),
                    Absent(Alarm, where=lambda a, b: a.kind == "muted"),
                    Test(lambda b: b["o"].qty > 1),
                ],
                then=lambda ctx: trace.append(("escalate", ctx.o.oid)),
            )
        ]

    def scenario(s, trace):
        s.insert(Stock("disk", 9))
        s.insert(Order(0, "disk", 2))
        s.insert(Order(1, "disk", 1))  # Test fails (qty 1)
        mute = s.insert(Alarm("muted"))
        trace.append(("first", s.fire_all()))  # Absent blocks everything
        s.retract(mute)
        trace.append(("second", s.fire_all()))  # only order 0 passes Test

    trace = run_both(make_rules, scenario)
    assert [t for t in trace if t[0] == "escalate"] == [("escalate", 0)]


def test_randomized_op_sequences_stay_trace_equivalent():
    """Fuzz: random insert/update/retract interleavings with Exists and
    Test rules fire identically in both modes (fixed seed)."""

    def make_rules(trace):
        def consume(ctx):
            trace.append(("consume", ctx.o.oid))
            ctx.update(ctx.o, status="done")

        return [
            Rule(
                "consume stocked orders",
                salience=5,
                when=[
                    Pattern(Order, "o", where=lambda o, b: o.status == "new"),
                    Exists(
                        Stock,
                        where=lambda st, b: st.item == b["o"].item and st.level > 0,
                    ),
                ],
                then=consume,
            ),
            Rule(
                "big order audit",
                when=[
                    Pattern(Order, "o"),
                    Test(lambda b: b["o"].qty >= 4),
                ],
                then=lambda ctx: trace.append(("audit", ctx.o.oid)),
            ),
        ]

    for seed in range(6):
        rng_template = random.Random(seed)
        ops = []
        for step in range(30):
            ops.append(rng_template.randint(0, 3))

        def scenario(s, trace, ops=tuple(ops), seed=seed):
            rng = random.Random(1000 + seed)
            orders = []
            next_oid = 0
            for op in ops:
                if op == 0:
                    o = s.insert(Order(next_oid, rng.choice("ab"), rng.randint(1, 5)))
                    orders.append(o)
                    next_oid += 1
                elif op == 1:
                    s.insert(Stock(rng.choice("ab"), rng.randint(0, 3)))
                elif op == 2 and orders:
                    victim = orders.pop(rng.randrange(len(orders)))
                    if s.memory.contains(victim):
                        s.retract(victim)
                elif op == 3:
                    trace.append(("fired", s.fire_all()))
            trace.append(("final", s.fire_all()))

        run_both(make_rules, scenario)
