"""Unit tests for the hash-indexed working memory (lookup + change log)."""

import pytest

from repro.rules import Fact, WorkingMemory
from repro.rules.facts import _CHANGELOG_CAP


class Transfer(Fact):
    def __init__(self, lfn, dst, status="new"):
        self.lfn = lfn
        self.dst = dst
        self.status = status


class Priority(Transfer):
    pass


class Bare(Fact):
    pass


@pytest.fixture(params=[True, False], ids=["indexed", "scan"])
def wm(request):
    return WorkingMemory(indexed=request.param)


# ------------------------------------------------------------------ lookup
def test_lookup_matches_scan_filter(wm):
    a = wm.insert(Transfer("a", "u1"))
    b = wm.insert(Transfer("b", "u1"))
    wm.insert(Transfer("a", "u2"))
    assert wm.lookup(Transfer, dst="u1") == [a, b]
    assert wm.lookup(Transfer, lfn="a", dst="u1") == [a]
    assert wm.lookup(Transfer, lfn="zzz") == []


def test_lookup_preserves_insertion_order(wm):
    facts = [wm.insert(Transfer(str(i), "u", status="s")) for i in range(20)]
    assert wm.lookup(Transfer, status="s") == facts


def test_lookup_sees_subclasses_via_base(wm):
    p = wm.insert(Priority("a", "u1"))
    t = wm.insert(Transfer("a", "u1"))
    assert wm.lookup(Transfer, lfn="a") == [p, t]
    assert wm.lookup(Priority, lfn="a") == [p]


def test_lookup_tracks_updates(wm):
    a = wm.insert(Transfer("a", "u1"))
    assert wm.lookup(Transfer, status="new") == [a]
    wm.update(a, status="done")
    assert wm.lookup(Transfer, status="new") == []
    assert wm.lookup(Transfer, status="done") == [a]


def test_lookup_tracks_retracts(wm):
    a = wm.insert(Transfer("a", "u1"))
    wm.lookup(Transfer, dst="u1")  # build the index first
    wm.retract(a)
    assert wm.lookup(Transfer, dst="u1") == []


def test_lookup_index_built_lazily_covers_existing_facts(wm):
    facts = [wm.insert(Transfer(str(i), "u1")) for i in range(5)]
    # No lookup has run yet; the first one must still see everything.
    assert wm.lookup(Transfer, dst="u1") == facts


def test_lookup_skips_facts_missing_the_attribute(wm):
    wm.insert(Bare())
    t = wm.insert(Transfer("a", "u1"))
    assert wm.lookup(Fact, lfn="a") == [t]


def test_lookup_unhashable_value_raises_when_indexed():
    wm = WorkingMemory(indexed=True)
    wm.insert(Transfer("a", "u1"))
    with pytest.raises(TypeError):
        wm.lookup(Transfer, lfn=["not", "hashable"])


def test_indexed_and_scan_modes_agree():
    indexed, scan = WorkingMemory(indexed=True), WorkingMemory(indexed=False)
    for mem in (indexed, scan):
        for i in range(30):
            mem.insert(Transfer(f"f{i % 7}", f"u{i % 3}", status="new"))
        for f in list(mem.facts_of(Transfer))[::4]:
            mem.update(f, status="done")
        for f in list(mem.facts_of(Transfer))[::9]:
            mem.retract(f)

    def view(mem):
        return [
            [(f.lfn, f.dst, f.status) for f in mem.lookup(Transfer, **q)]
            for q in (
                {"status": "new"},
                {"status": "done"},
                {"lfn": "f1", "dst": "u0"},
                {"dst": "u2"},
            )
        ]

    assert view(indexed) == view(scan)


# ------------------------------------------------------------------ fid access
def test_fact_with_fid(wm):
    a = wm.insert(Transfer("a", "u1"))
    fid = wm.fid_of(a)
    assert wm.fact_with_fid(fid) is a
    wm.retract(a)
    assert wm.fact_with_fid(fid) is None


# ------------------------------------------------------------------ change log
def test_changes_since_records_insert_update_retract(wm):
    start = wm.clock
    a = wm.insert(Transfer("a", "u1"))
    fid = wm.fid_of(a)
    wm.update(a, status="done")
    wm.retract(a)
    changes = wm.changes_since(start)
    assert changes is not None
    assert [(c_fid, op) for c_fid, _f, op in changes] == [
        (fid, "i"), (fid, "u"), (fid, "r")
    ]


def test_changes_since_current_clock_is_empty(wm):
    wm.insert(Transfer("a", "u1"))
    assert wm.changes_since(wm.clock) == []


def test_changes_since_overflow_returns_none(wm):
    start = wm.clock
    a = wm.insert(Transfer("a", "u1"))
    for _ in range(_CHANGELOG_CAP + 10):
        wm.update(a, status="new")
    assert wm.changes_since(start) is None
    # A recent sequence number is still serviceable.
    recent = wm.clock
    wm.update(a, status="done")
    changes = wm.changes_since(recent)
    assert changes is not None and len(changes) == 1


def test_changes_since_none_fallback_at_eviction_edge(wm):
    """The ring buffer serves exactly the last ``_CHANGELOG_CAP`` ticks:
    one past the edge must return ``None`` (rebuild), the edge itself the
    full window."""
    a = wm.insert(Transfer("a", "u1"))
    for _ in range(_CHANGELOG_CAP + 5):
        wm.update(a, status="new")
    oldest_retained = wm.clock - _CHANGELOG_CAP + 1
    # The edge: every retained tick is the answer.
    edge = wm.changes_since(oldest_retained - 1)
    assert edge is not None and len(edge) == _CHANGELOG_CAP
    # One tick older has been evicted — the caller cannot trust a partial
    # answer and must rebuild.
    assert wm.changes_since(oldest_retained - 2) is None
    assert wm.changes_since_verbose(oldest_retained - 2) is None


def test_update_records_attributes_that_actually_changed(wm):
    start = wm.clock
    a = wm.insert(Transfer("a", "u1"))
    wm.update(a, status="done", dst="u1")     # dst unchanged
    wm.update(a, status="done")               # nothing really changed
    wm.update(a)                              # in-place announce: unknowable
    changes = wm.changes_since_verbose(start)
    assert [(op, changed) for _fid, _f, op, changed in changes] == [
        ("i", None),
        ("u", frozenset({"status"})),
        ("u", frozenset()),
        ("u", None),
    ]
    # The compact view carries the same mutations without the detail.
    assert [op for _fid, _f, op in wm.changes_since(start)] == ["i", "u", "u", "u"]
