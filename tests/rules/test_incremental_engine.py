"""Equivalence tests: incremental (dirty-set) agenda vs the full re-match.

The incremental engine must produce the exact same firing sequence as the
seed engine — same rules, same binding tuples, same order — across salience
tiers, refraction, ``no_loop``, updates, retracts, negations and keyed
patterns.  Every scenario here is executed in both modes and compared.
"""

from repro.rules import (
    Absent,
    Collect,
    Exists,
    Fact,
    Pattern,
    Rule,
    Session,
    Test,
    WorkingMemory,
)


class Order(Fact):
    def __init__(self, oid, item, qty, status="new"):
        self.oid = oid
        self.item = item
        self.qty = qty
        self.status = status


class Stock(Fact):
    def __init__(self, item, level):
        self.item = item
        self.level = level


class Audit(Fact):
    def __init__(self, note):
        self.note = note


def run_both(make_rules, scenario):
    """Run ``scenario(session, trace)`` in both engine modes; return traces."""
    traces = []
    for incremental in (False, True):
        trace = []
        memory = WorkingMemory(indexed=incremental)
        session = Session(make_rules(trace), memory=memory, incremental=incremental)
        scenario(session, trace)
        traces.append(trace)
    assert traces[0] == traces[1]
    return traces[0]


def test_salience_and_fifo_order_match():
    def make_rules(trace):
        return [
            Rule(
                "low",
                salience=1,
                when=[Pattern(Order, "o")],
                then=lambda ctx: trace.append(("low", ctx.o.oid)),
            ),
            Rule(
                "high",
                salience=10,
                when=[Pattern(Order, "o")],
                then=lambda ctx: trace.append(("high", ctx.o.oid)),
            ),
        ]

    def scenario(s, trace):
        for i in range(4):
            s.insert(Order(i, "disk", 1))
        trace.append(("fired", s.fire_all()))

    trace = run_both(make_rules, scenario)
    # All high-salience activations drain before any low-salience one.
    assert trace[:4] == [("high", i) for i in range(4)]
    assert trace[4:8] == [("low", i) for i in range(4)]


def test_mid_firing_inserts_and_updates_match():
    def make_rules(trace):
        def restock(ctx):
            trace.append(("restock", ctx.o.oid))
            ctx.update(ctx.stock, level=ctx.stock.level - ctx.o.qty)
            ctx.update(ctx.o, status="filled")

        def alarm(ctx):
            trace.append(("alarm", ctx.s.item))
            ctx.insert(Audit(f"low:{ctx.s.item}"))

        return [
            Rule(
                "fill",
                salience=5,
                when=[
                    Pattern(Order, "o", where=lambda o, b: o.status == "new",
                            keys={"status": lambda b: "new"}),
                    Pattern(Stock, "stock",
                            where=lambda s, b: s.item == b["o"].item
                            and s.level >= b["o"].qty,
                            keys={"item": lambda b: b["o"].item}),
                ],
                then=restock,
            ),
            Rule(
                "low-stock",
                salience=1,
                no_loop=True,
                when=[
                    Pattern(Stock, "s", where=lambda s, b: s.level < 3),
                    Absent(Audit, where=lambda a, b: a.note == f"low:{b['s'].item}"),
                ],
                then=alarm,
            ),
        ]

    def scenario(s, trace):
        s.insert(Stock("disk", 10))
        s.insert(Stock("cpu", 2))
        for i in range(5):
            s.insert(Order(i, "disk" if i % 2 else "cpu", 2))
        trace.append(("fired", s.fire_all()))
        # Second wave against the already-warm memory.
        s.insert(Order(10, "disk", 1))
        trace.append(("fired2", s.fire_all()))

    run_both(make_rules, scenario)


def test_retract_and_absent_gate_match():
    def make_rules(trace):
        def cancel(ctx):
            trace.append(("cancel", ctx.o.oid))
            ctx.retract(ctx.o)

        return [
            Rule(
                "cancel-unstocked",
                when=[
                    Pattern(Order, "o"),
                    Absent(Stock, where=lambda s, b: s.item == b["o"].item),
                ],
                then=cancel,
            ),
            Rule(
                "note-existing",
                salience=-1,
                when=[
                    Exists(Order),
                    Pattern(Stock, "s"),
                ],
                then=lambda ctx: trace.append(("note", ctx.s.item)),
            ),
        ]

    def scenario(s, trace):
        s.insert(Order(1, "ghost", 1))
        s.insert(Order(2, "disk", 1))
        stock = s.insert(Stock("disk", 5))
        trace.append(("fired", s.fire_all()))
        s.retract(stock)
        s.insert(Order(3, "disk", 1))
        trace.append(("fired2", s.fire_all()))

    run_both(make_rules, scenario)


def test_collect_and_test_elements_match():
    def make_rules(trace):
        return [
            Rule(
                "batch-report",
                no_loop=True,
                when=[
                    Pattern(Stock, "s"),
                    Collect(Order, "orders",
                            where=lambda o, b: o.item == b["s"].item),
                    Test(lambda b: len(b["orders"]) >= 2),
                ],
                then=lambda ctx: trace.append(
                    ("report", ctx.s.item, [o.oid for o in ctx.orders])
                ),
            ),
        ]

    def scenario(s, trace):
        s.insert(Stock("disk", 5))
        s.insert(Stock("cpu", 5))
        for i in range(4):
            s.insert(Order(i, "disk" if i < 3 else "cpu", 1))
        trace.append(("fired", s.fire_all()))
        s.insert(Order(9, "cpu", 1))
        trace.append(("fired2", s.fire_all()))

    run_both(make_rules, scenario)


def test_no_loop_suppression_matches():
    def make_rules(trace):
        def bump(ctx):
            trace.append(("bump", ctx.o.oid, ctx.o.qty))
            ctx.update(ctx.o, qty=ctx.o.qty + 1)

        return [
            Rule(
                "bump-once",
                no_loop=True,
                when=[Pattern(Order, "o", where=lambda o, b: o.qty < 10)],
                then=bump,
            ),
        ]

    def scenario(s, trace):
        s.insert(Order(1, "disk", 1))
        s.insert(Order(2, "disk", 5))
        trace.append(("fired", s.fire_all()))

    run_both(make_rules, scenario)


def test_keyed_pattern_falls_back_on_missing_binding():
    # A keys= hint whose key function raises AttributeError must degrade to
    # the full scan, not crash or mis-match.
    def make_rules(trace):
        return [
            Rule(
                "pair",
                when=[
                    Pattern(Order, "o"),
                    Pattern(Stock, "s",
                            where=lambda s, b: s.item == b["o"].item,
                            # b["o"].missing raises AttributeError
                            keys={"item": lambda b: b["o"].missing}),
                ],
                then=lambda ctx: trace.append(("pair", ctx.o.oid, ctx.s.item)),
            ),
        ]

    def scenario(s, trace):
        s.insert(Stock("disk", 5))
        s.insert(Order(1, "disk", 1))
        trace.append(("fired", s.fire_all()))

    trace = run_both(make_rules, scenario)
    assert ("pair", 1, "disk") in trace


def test_incremental_engine_requires_indexed_memory_modes_compose():
    # incremental=True over a scan memory and incremental=False over an
    # indexed memory are both legal compositions.
    for indexed, incremental in ((True, False), (False, True)):
        hits = []
        rule = Rule(
            "any",
            when=[Pattern(Order, "o")],
            then=lambda ctx: hits.append(ctx.o.oid),
        )
        s = Session([rule], memory=WorkingMemory(indexed=indexed),
                    incremental=incremental)
        s.insert(Order(1, "disk", 1))
        assert s.fire_all() == 1
        assert hits == [1]
