"""Property-based tests of policy-service invariants under random traffic."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.policy import PolicyConfig, PolicyService
from repro.policy.model import HostPairFact, TransferFact

op_strategy = st.lists(
    st.tuples(
        st.sampled_from(["submit", "done", "fail"]),
        st.integers(min_value=0, max_value=9),   # file index
        st.integers(min_value=0, max_value=2),   # source host index
    ),
    min_size=1,
    max_size=60,
)


@given(
    ops=op_strategy,
    threshold=st.integers(min_value=2, max_value=40),
    default=st.integers(min_value=1, max_value=12),
)
@settings(max_examples=60, deadline=None)
def test_allocation_conservation(ops, threshold, default):
    """At every step: each pair's recorded allocation equals the sum of
    its in-progress transfers' grants, and while the pair is below its
    threshold no single grant exceeds the remaining headroom."""
    service = PolicyService(
        PolicyConfig(policy="greedy", default_streams=default, max_streams=threshold)
    )
    live: list[int] = []  # tids currently in progress
    job_counter = 0

    def check_conservation():
        by_pair: dict = {}
        for t in service.memory.facts_of(TransferFact):
            if t.status == "in_progress" and t.allocated_streams:
                key = (t.src_host, t.dst_host)
                by_pair[key] = by_pair.get(key, 0) + t.allocated_streams
        for pair in service.memory.facts_of(HostPairFact):
            recorded = pair.allocated
            actual = by_pair.get((pair.src_host, pair.dst_host), 0)
            assert recorded == actual, (
                f"pair {pair.src_host}->{pair.dst_host}: "
                f"recorded {recorded} != in-progress sum {actual}"
            )

    for op, fidx, hidx in ops:
        if op == "submit":
            job_counter += 1
            advice = service.submit_transfers(
                "wf",
                f"job{job_counter}",
                [
                    {
                        "lfn": f"f{fidx}_{job_counter}",  # unique: no dedup noise
                        "src_url": f"gsiftp://src{hidx}/d/f{fidx}_{job_counter}",
                        "dst_url": f"gsiftp://dst/s/f{fidx}_{job_counter}",
                        "nbytes": 10.0,
                    }
                ],
            )
            for item in advice:
                if item.action == "transfer":
                    assert 1 <= item.streams <= max(default, 1)
                    live.append(item.tid)
        elif live:
            tid = live.pop(0) if op == "done" else live.pop()
            if op == "done":
                service.complete_transfers(done=[tid])
            else:
                service.complete_transfers(failed=[tid])
        check_conservation()

    # Drain everything; allocations must return to zero.
    if live:
        service.complete_transfers(done=list(live))
    for pair in service.memory.facts_of(HostPairFact):
        assert pair.allocated == 0


@given(ops=op_strategy)
@settings(max_examples=30, deadline=None)
def test_every_submission_is_answered_exactly_once(ops):
    service = PolicyService(PolicyConfig(policy="greedy"))
    submitted = answered = 0
    live: list[int] = []
    for i, (op, fidx, hidx) in enumerate(ops):
        if op == "submit":
            advice = service.submit_transfers(
                "wf",
                f"j{i}",
                [
                    {
                        "lfn": f"f{fidx}",
                        "src_url": f"gsiftp://src{hidx}/d/f{fidx}",
                        "dst_url": f"gsiftp://dst/s/f{fidx}",
                        "nbytes": 1.0,
                    }
                ],
            )
            submitted += 1
            answered += len(advice)
            live.extend(a.tid for a in advice if a.action == "transfer")
        elif live:
            service.complete_transfers(done=[live.pop(0)])
    assert submitted == answered
