"""Property-based tests of the fair-share (stride) ensemble scheduler.

The defining property of weighted fair queueing: as long as every tenant
has backlog, the fraction of bytes charged to each tenant converges to
its weight share.  We drive the scheduler directly (no DES) with a long
stream of equal-sized items and check the long-run fractions, plus the
stride invariants that make the schedule a pure function of the
submission sequence.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tenancy import FairShareScheduler, TenantRegistry, TenantSpec

ITEM_BYTES = 100.0

weights = st.lists(
    st.floats(min_value=0.25, max_value=16, allow_nan=False,
              allow_infinity=False),
    min_size=2,
    max_size=5,
)


def build(weight_list):
    registry = TenantRegistry()
    for i, w in enumerate(weight_list):
        registry.register(TenantSpec(f"t{i}", weight=w))
    return registry, FairShareScheduler(registry)


def drain(sched, registry, rounds):
    """Admit ``rounds`` items, refilling each tenant's backlog so nobody
    ever runs dry (the convergence property only holds under backlog)."""
    for name in registry.names():
        sched.submit(name, f"{name}-seed", est_bytes=ITEM_BYTES)
    order = []
    for _ in range(rounds):
        sub = sched.select()
        assert sub is not None
        sched.charge(sub.tenant, ITEM_BYTES)
        sched.submit(sub.tenant, f"{sub.tenant}-refill", est_bytes=ITEM_BYTES)
        order.append(sub.tenant)
    return order


@settings(max_examples=40, deadline=None)
@given(weight_list=weights)
def test_longrun_byte_fractions_converge_to_weight_shares(weight_list):
    registry, sched = build(weight_list)
    total_weight = sum(weight_list)
    # Enough rounds that even a weight-0.25 tenant in a 16-weight field
    # has been charged many items.
    rounds = 200 * len(weight_list)
    drain(sched, registry, rounds)
    grand = sum(sched.charged.values())
    assert grand == rounds * ITEM_BYTES
    for i, w in enumerate(weight_list):
        share = w / total_weight
        fraction = sched.charged.get(f"t{i}", 0.0) / grand
        # One item of slack per tenant around the ideal share.
        assert abs(fraction - share) <= share * 0.10 + ITEM_BYTES / grand * 2


@settings(max_examples=40, deadline=None)
@given(weight_list=weights)
def test_virtual_passes_stay_within_one_stride(weight_list):
    """Stride invariant: under backlog, tenants' virtual passes never
    drift apart by more than the largest single stride."""
    registry, sched = build(weight_list)
    max_stride = ITEM_BYTES / min(weight_list)
    for name in registry.names():
        sched.submit(name, f"{name}-seed", est_bytes=ITEM_BYTES)
    for _ in range(100 * len(weight_list)):
        sub = sched.select()
        sched.charge(sub.tenant, ITEM_BYTES)
        sched.submit(sub.tenant, f"{sub.tenant}-refill", est_bytes=ITEM_BYTES)
        passes = [sched.virtual_pass(n) for n in registry.names()]
        assert max(passes) - min(passes) <= max_stride + 1e-9


@settings(max_examples=25, deadline=None)
@given(weight_list=weights, seed_bytes=st.integers(min_value=0, max_value=10))
def test_schedule_is_reproducible_from_ledgers(weight_list, seed_bytes):
    """Re-seeding a fresh scheduler with the charged ledgers reproduces
    the continuation order — the crash-recovery contract."""
    registry, sched = build(weight_list)
    sched.seed_charges({"t0": seed_bytes * ITEM_BYTES})
    first_half = drain(sched, registry, 50)

    registry2, resumed = build(weight_list)
    resumed.seed_charges({"t0": seed_bytes * ITEM_BYTES})
    replay = drain(resumed, registry2, 50)
    assert replay == first_half

    # And continuing either one yields the same future decisions.
    assert drain(sched, registry, 30) == drain(resumed, registry2, 30)
