"""Property-based tests of the stream allocators (greedy / balanced)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.policy import PolicyConfig, PolicyService
from repro.policy.allocation import greedy_allocate, greedy_allocation_trace


@given(
    requested=st.integers(min_value=1, max_value=64),
    allocated=st.integers(min_value=0, max_value=500),
    threshold=st.integers(min_value=1, max_value=300),
)
def test_greedy_grant_bounds(requested, allocated, threshold):
    grant = greedy_allocate(requested, allocated, threshold)
    # Never starve, never exceed the request.
    assert 1 <= grant <= requested
    # Never push a below-threshold pair past the threshold.
    if allocated < threshold:
        assert allocated + grant <= threshold
    else:
        assert grant == 1


@given(
    n=st.integers(min_value=0, max_value=60),
    default=st.integers(min_value=1, max_value=16),
    threshold=st.integers(min_value=1, max_value=250),
)
def test_greedy_trace_invariants(n, default, threshold):
    trace = greedy_allocation_trace(n, default, threshold)
    assert len(trace) == n
    # Total allocation is at most threshold + (n - k) where the tail are
    # single-stream grants; more precisely never exceeds threshold + n.
    assert sum(trace) <= threshold + n
    # Grants are non-increasing for identical requests.
    assert all(a >= b for a, b in zip(trace, trace[1:]))
    # Once a single-stream grant happens, all following grants are 1.
    if 1 in trace and default > 1:
        first_one = trace.index(1)
        assert all(g == 1 for g in trace[first_one:])


@given(
    default=st.integers(min_value=1, max_value=16),
    threshold=st.integers(min_value=1, max_value=250),
    n=st.integers(min_value=1, max_value=25),
)
@settings(max_examples=30, deadline=None)
def test_rule_engine_matches_analytic_allocator(default, threshold, n):
    """The Table II rule pack is extensionally equal to the pure function."""
    service = PolicyService(
        PolicyConfig(policy="greedy", default_streams=default, max_streams=threshold)
    )
    grants = []
    for i in range(n):
        advice = service.submit_transfers(
            "wf",
            f"job{i}",
            [
                {
                    "lfn": f"f{i}",
                    "src_url": f"gsiftp://src/d/f{i}",
                    "dst_url": f"gsiftp://dst/s/f{i}",
                    "nbytes": 1.0,
                }
            ],
        )
        grants.append(advice[0].streams)
    assert grants == greedy_allocation_trace(n, default, threshold)


@given(
    lfns=st.lists(
        st.text(alphabet="abcdef", min_size=1, max_size=4), min_size=1, max_size=12
    )
)
@settings(max_examples=40, deadline=None)
def test_dedup_is_exact(lfns):
    """Across any request mix, each distinct file is approved exactly once."""
    service = PolicyService(PolicyConfig(policy="greedy", max_streams=100))
    approved = []
    for i, lfn in enumerate(lfns):
        advice = service.submit_transfers(
            "wf",
            f"job{i}",
            [
                {
                    "lfn": lfn,
                    "src_url": f"gsiftp://src/d/{lfn}",
                    "dst_url": f"gsiftp://dst/s/{lfn}",
                    "nbytes": 1.0,
                }
            ],
        )
        for a in advice:
            if a.action == "transfer":
                approved.append(a.lfn)
                service.complete_transfers(done=[a.tid])
    assert sorted(approved) == sorted(set(lfns))
