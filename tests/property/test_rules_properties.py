"""Property-based tests of rule-engine semantics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rules import Collect, Fact, Pattern, Rule, Session


class Item(Fact):
    def __init__(self, value):
        self.value = value
        self.tagged = False


@given(values=st.lists(st.integers(), min_size=0, max_size=40))
@settings(max_examples=50, deadline=None)
def test_each_fact_processed_exactly_once(values):
    hits = []
    rule = Rule(
        "tag",
        when=[Pattern(Item, "i", where=lambda i, b: not i.tagged)],
        then=lambda ctx: (hits.append(ctx.i.value), ctx.update(ctx.i, tagged=True)),
    )
    s = Session([rule])
    for v in values:
        s.insert(Item(v))
    fired = s.fire_all()
    assert fired == len(values)
    assert sorted(hits) == sorted(values)
    assert s.fire_all() == 0  # quiescent


@given(
    values=st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=25),
    cutoff=st.integers(min_value=-1000, max_value=1000),
)
@settings(max_examples=50, deadline=None)
def test_guards_partition_facts(values, cutoff):
    above, below = [], []
    rules = [
        Rule(
            "above",
            when=[Pattern(Item, "i", where=lambda i, b: i.value >= cutoff)],
            then=lambda ctx: above.append(ctx.i.value),
        ),
        Rule(
            "below",
            when=[Pattern(Item, "i", where=lambda i, b: i.value < cutoff)],
            then=lambda ctx: below.append(ctx.i.value),
        ),
    ]
    s = Session(rules)
    for v in values:
        s.insert(Item(v))
    s.fire_all()
    assert sorted(above + below) == sorted(values)
    assert all(v >= cutoff for v in above)
    assert all(v < cutoff for v in below)


@given(values=st.lists(st.integers(), min_size=1, max_size=20))
@settings(max_examples=50, deadline=None)
def test_collect_sees_full_population(values):
    sums = []
    rule = Rule(
        "sum",
        when=[Collect(Item, binding="items", min_count=1)],
        then=lambda ctx: sums.append(sum(i.value for i in ctx.items)),
    )
    s = Session([rule])
    for v in values:
        s.insert(Item(v))
    s.fire_all()
    # Fires once with every fact bound (refraction: one firing per census).
    assert sums == [sum(values)]


@given(
    saliences=st.lists(st.integers(min_value=-50, max_value=50), min_size=1, max_size=8)
)
@settings(max_examples=50, deadline=None)
def test_salience_ordering_is_total(saliences):
    order = []
    rules = [
        Rule(
            f"r{idx}",
            salience=s,
            when=[Pattern(Item)],
            then=(lambda idx: (lambda ctx: order.append(idx)))(idx),
        )
        for idx, s in enumerate(saliences)
    ]
    session = Session(rules)
    session.insert(Item(0))
    session.fire_all()
    fired_saliences = [saliences[i] for i in order]
    assert fired_saliences == sorted(fired_saliences, reverse=True)
    assert len(order) == len(saliences)
