"""Property-based tests of planner invariants on random workflows."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalogs import ReplicaCatalog, SiteCatalog, SiteEntry, TransformationCatalog
from repro.planner import JobKind, Planner, PlanOptions
from repro.workflow.synthetic import random_layered_workflow


def make_planner(workflow):
    sites = SiteCatalog()
    sites.add(SiteEntry(name="exec", storage_host="cluster", nodes=2, cores_per_node=4))
    sites.add(SiteEntry(name="remote", storage_host="remote-host"))
    transformations = TransformationCatalog()
    transformations.add("process", 1.0)
    replicas = ReplicaCatalog()
    for f in workflow.input_files():
        replicas.register(f.lfn, "remote", f"gsiftp://remote-host/data/{f.lfn}")
    return Planner(sites, transformations, replicas)


workflow_strategy = st.builds(
    random_layered_workflow,
    layers=st.integers(min_value=1, max_value=5),
    width=st.integers(min_value=1, max_value=6),
    edge_prob=st.floats(min_value=0.0, max_value=1.0),
    rng=st.integers(min_value=0, max_value=999).map(np.random.default_rng),
)


@given(workflow=workflow_strategy, cleanup=st.booleans())
@settings(max_examples=40, deadline=None)
def test_plan_invariants(workflow, cleanup):
    planner = make_planner(workflow)
    plan = planner.plan(workflow, "exec", PlanOptions(cleanup=cleanup))
    plan.validate()  # acyclic

    # Every external input is transferred exactly once across all staging jobs.
    staged = [
        t.lfn for j in plan.by_kind(JobKind.STAGE_IN) for t in j.transfers
    ]
    expected = sorted(f.lfn for f in workflow.input_files())
    assert sorted(staged) == expected

    # Every compute job appears; stage-ins precede their compute jobs.
    for job_id in workflow.jobs:
        assert job_id in plan.jobs
    position = {jid: i for i, jid in enumerate(plan.topological_order())}
    for si in plan.by_kind(JobKind.STAGE_IN):
        for child in plan.children(si.id):
            assert position[si.id] < position[child]

    if cleanup:
        # A cleanup job never precedes any consumer of its file.
        for cj in plan.by_kind(JobKind.CLEANUP):
            for lfn, _url in cj.cleanup_files:
                for consumer in workflow.consumers_of(lfn):
                    assert position[consumer] < position[cj.id]
    else:
        assert not plan.by_kind(JobKind.CLEANUP)


@given(
    workflow=workflow_strategy,
    factor=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=30, deadline=None)
def test_clustering_preserves_transfers_and_acyclicity(workflow, factor):
    planner = make_planner(workflow)
    plain = planner.plan(workflow, "exec", PlanOptions(cleanup=False))
    clustered = planner.plan(
        workflow, "exec", PlanOptions(cleanup=False, cluster_factor=factor)
    )
    clustered.validate()

    def transfer_multiset(plan):
        return sorted(
            (t.lfn, t.src_url, t.dst_url)
            for j in plan.by_kind(JobKind.STAGE_IN)
            for t in j.transfers
        )

    assert transfer_multiset(plain) == transfer_multiset(clustered)
    # Clustering can only reduce (or keep) the number of staging jobs.
    assert len(clustered.by_kind(JobKind.STAGE_IN)) <= len(
        plain.by_kind(JobKind.STAGE_IN)
    )
