"""Property: every ``keys`` hint in the shipped rule sets is implied by its
guard.

``Pattern.keys`` is an access-path hint — the engine fetches candidates
through a hash index on the keyed attributes.  If a guard ever accepts a
fact the keyed lookup does not return, that match is *silently lost*
(``src/repro/rules/patterns.py`` says so outright).  This test rebuilds the
shipped rule-set compositions and checks the implication directly over
hypothesis-generated working memories — a regression guard independent of
the ``repro.analysis`` linter, which checks the same property with its own
probing machinery.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.policy.model import (
    CleanupFact,
    ClusterAllocationFact,
    HostPairFact,
    LeaseSweepFact,
    PolicyConfig,
    StagedFileFact,
    TransferFact,
)
from repro.policy.rules_access import HostDenialFact, WorkflowQuotaFact, access_rules
from repro.policy.rules_balanced import balanced_rules
from repro.policy.rules_common import common_rules
from repro.policy.rules_greedy import greedy_rules
from repro.policy.rules_priority import JobPriorityFact, priority_rules
from repro.rules import WorkingMemory
from repro.rules.patterns import Absent, Collect, Exists, Pattern, Test

HOSTS = ["h1", "h2"]
LFNS = ["f1.dat", "f2.dat"]
WORKFLOWS = ["wfA", "wfB"]
JOBS = ["j1", "j2"]
CLUSTERS = ["c0", "c1"]
TRANSFER_STATUSES = [
    "submitted", "new", "in_progress", "skip_duplicate", "skip_staged",
    "wait", "done", "failed", "denied",
]
CLEANUP_STATUSES = ["submitted", "new", "approved", "skip_in_use", "skip_duplicate"]


def _url(host, lfn):
    return f"gsiftp://{host}/data/{lfn}"


@st.composite
def transfer_facts(draw):
    lfn = draw(st.sampled_from(LFNS))
    fact = TransferFact(
        tid=draw(st.integers(0, 5)),
        workflow=draw(st.sampled_from(WORKFLOWS)),
        job=draw(st.sampled_from(JOBS)),
        lfn=lfn,
        src_url=_url(draw(st.sampled_from(HOSTS)), lfn),
        dst_url=_url(draw(st.sampled_from(HOSTS)), lfn),
        nbytes=draw(st.floats(0, 100, allow_nan=False)),
        requested_streams=draw(st.one_of(st.none(), st.integers(1, 8))),
        priority=draw(st.integers(0, 3)),
        cluster=draw(st.one_of(st.none(), st.sampled_from(CLUSTERS))),
        batch=draw(st.integers(0, 2)),
    )
    fact.status = draw(st.sampled_from(TRANSFER_STATUSES))
    fact.allocated_streams = draw(st.one_of(st.none(), st.integers(1, 8)))
    fact.group_id = draw(st.one_of(st.none(), st.integers(1, 3)))
    fact.quota_charged = draw(st.booleans())
    fact.lease_deadline = draw(st.one_of(st.none(), st.floats(0, 10, allow_nan=False)))
    fact.wait_for = draw(st.one_of(st.none(), st.integers(0, 5)))
    return fact


@st.composite
def staged_file_facts(draw):
    lfn = draw(st.sampled_from(LFNS))
    fact = StagedFileFact(
        lfn=lfn,
        dst_url=_url(draw(st.sampled_from(HOSTS)), lfn),
        owner_tid=draw(st.integers(0, 5)),
        workflow=draw(st.sampled_from(WORKFLOWS)),
    )
    fact.status = draw(st.sampled_from(["staging", "staged"]))
    fact.users = set(draw(st.lists(st.sampled_from(WORKFLOWS), max_size=2)))
    return fact


@st.composite
def host_pair_facts(draw):
    fact = HostPairFact(
        src_host=draw(st.sampled_from(HOSTS)),
        dst_host=draw(st.sampled_from(HOSTS)),
        group_id=draw(st.integers(1, 3)),
    )
    fact.allocated = draw(st.integers(0, 10))
    fact.threshold = draw(st.one_of(st.none(), st.integers(1, 10)))
    return fact


@st.composite
def cluster_allocation_facts(draw):
    fact = ClusterAllocationFact(
        src_host=draw(st.sampled_from(HOSTS)),
        dst_host=draw(st.sampled_from(HOSTS)),
        cluster=draw(st.sampled_from(CLUSTERS)),
    )
    fact.allocated = draw(st.integers(0, 10))
    return fact


@st.composite
def cleanup_facts(draw):
    lfn = draw(st.sampled_from(LFNS))
    fact = CleanupFact(
        cid=draw(st.integers(0, 5)),
        workflow=draw(st.sampled_from(WORKFLOWS)),
        job=draw(st.sampled_from(JOBS)),
        lfn=lfn,
        url=_url(draw(st.sampled_from(HOSTS)), lfn),
        batch=draw(st.integers(0, 2)),
    )
    fact.status = draw(st.sampled_from(CLEANUP_STATUSES))
    fact.lease_deadline = draw(st.one_of(st.none(), st.floats(0, 10, allow_nan=False)))
    return fact


def _misc_facts():
    return st.one_of(
        st.builds(
            JobPriorityFact,
            workflow=st.sampled_from(WORKFLOWS),
            job=st.sampled_from(JOBS),
            priority=st.integers(0, 3),
        ),
        st.builds(LeaseSweepFact, now=st.floats(0, 10, allow_nan=False)),
        st.builds(
            HostDenialFact,
            host=st.sampled_from(HOSTS),
            direction=st.sampled_from(["src", "dst", "any"]),
        ),
        _quota_facts(),
    )


@st.composite
def _quota_facts(draw):
    fact = WorkflowQuotaFact(
        workflow=draw(st.sampled_from(WORKFLOWS)),
        max_bytes=draw(st.floats(0, 200, allow_nan=False)),
    )
    fact.used_bytes = draw(st.floats(0, 200, allow_nan=False))
    return fact


def memories():
    return st.lists(
        st.one_of(
            transfer_facts(),
            staged_file_facts(),
            host_pair_facts(),
            cluster_allocation_facts(),
            cleanup_facts(),
            _misc_facts(),
        ),
        min_size=2,
        max_size=14,
    )


RULE_SETS = {
    "fifo": (lambda: common_rules() + priority_rules(), PolicyConfig(policy="fifo")),
    "greedy": (
        lambda: common_rules() + priority_rules() + greedy_rules(),
        PolicyConfig(policy="greedy"),
    ),
    "balanced": (
        lambda: common_rules() + priority_rules() + balanced_rules(),
        PolicyConfig(policy="balanced", cluster_count=2),
    ),
    "access": (
        lambda: common_rules() + priority_rules() + access_rules() + greedy_rules(),
        PolicyConfig(policy="greedy", access_control=True),
    ),
}


def _guard_ok(guard, fact, bindings):
    if guard is None:
        return True
    try:
        return bool(guard(fact, bindings))
    except AttributeError:
        return False


def _assert_keys_implied(element, memory, bindings):
    """The keyed lookup must return a superset of the guard's accepts."""
    try:
        values = {attr: fn(bindings) for attr, fn in element.keys.items()}
    except AttributeError:
        return  # the engine falls back to the full scan here
    keyed = {id(f) for f in memory.lookup(element.fact_type, **values)}
    for fact in memory.facts_of(element.fact_type):
        if _guard_ok(element.where, fact, bindings):
            assert id(fact) in keyed, (
                f"keys {values!r} on {element!r} miss guard-accepted fact "
                f"{fact.describe()} — matches would be silently lost"
            )


def _walk_rule(rule, memory, seed_bindings):
    """Guard-only LHS walk, checking every keyed element along the way."""
    frontier = [dict(seed_bindings)]
    for element in rule.when:
        if isinstance(element, Test):
            frontier = [b for b in frontier if element.predicate(b)]
            continue
        if element.keys:
            for bindings in frontier:
                _assert_keys_implied(element, memory, bindings)
        next_frontier = []
        for bindings in frontier:
            accepted = [
                f
                for f in memory.facts_of(element.fact_type)
                if _guard_ok(element.where, f, bindings)
            ]
            if isinstance(element, Pattern):
                for fact in accepted:
                    new = dict(bindings)
                    if element.binding:
                        new[element.binding] = fact
                    next_frontier.append(new)
            elif isinstance(element, Absent):
                if not accepted:
                    next_frontier.append(dict(bindings))
            elif isinstance(element, Exists):
                if accepted:
                    next_frontier.append(dict(bindings))
            elif isinstance(element, Collect):
                if len(accepted) >= element.min_count:
                    new = dict(bindings)
                    new[element.binding] = accepted
                    next_frontier.append(new)
        frontier = next_frontier
        if not frontier:
            return


@pytest.mark.parametrize("name", sorted(RULE_SETS))
@given(facts=memories())
@settings(max_examples=25, deadline=None)
def test_every_keys_spec_is_implied_by_its_guard(name, facts):
    build, config = RULE_SETS[name]
    rules = build()
    memory = WorkingMemory(indexed=True)
    for fact in facts:
        memory.insert(fact)
    seed = {"_globals": {"config": config, "group_counter": 1}}
    for rule in rules:
        _walk_rule(rule, memory, seed)
