"""Property-based tests of the fluid-flow fabric (conservation, fairness)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des import Environment
from repro.net import FlowNetwork, Link, Network, StreamModel

transfer_strategy = st.tuples(
    st.floats(min_value=1.0, max_value=1e7),  # bytes
    st.integers(min_value=1, max_value=16),   # streams
    st.floats(min_value=0.0, max_value=50.0), # start offset
)


def build(capacity=1000.0, knee=None, stream_cap=None, model=None):
    env = Environment()
    net = Network()
    s = net.add_site("s")
    a, b = net.add_host("a", s), net.add_host("b", s)
    net.add_link(
        Link("l", capacity=capacity, knee=knee, stream_rate_cap=stream_cap)
    )
    net.add_route(a, b, [net.links["l"]])
    return env, FlowNetwork(env, net, model or StreamModel(0.1, 0.01, 0.1))


@given(transfers=st.lists(transfer_strategy, min_size=1, max_size=12))
@settings(max_examples=40, deadline=None)
def test_all_bytes_delivered_exactly(transfers):
    env, fabric = build()
    flows = []

    def submit(nbytes, streams, offset):
        yield env.timeout(offset)
        flows.append(fabric.start_transfer("a", "b", nbytes, streams))

    for nbytes, streams, offset in transfers:
        env.process(submit(nbytes, streams, offset))
    env.run()
    assert all(f.state == "done" for f in flows)
    total = sum(t[0] for t in transfers)
    assert math.isclose(fabric.bytes_moved, total, rel_tol=1e-6)


@given(transfers=st.lists(transfer_strategy, min_size=1, max_size=10))
@settings(max_examples=30, deadline=None)
def test_duration_never_beats_capacity_floor(transfers):
    """No transfer finishes faster than its bytes at full link capacity."""
    capacity = 1000.0
    env, fabric = build(capacity=capacity)
    flows = []

    def submit(nbytes, streams, offset):
        yield env.timeout(offset)
        flows.append((fabric.start_transfer("a", "b", nbytes, streams), nbytes))

    for nbytes, streams, offset in transfers:
        env.process(submit(nbytes, streams, offset))
    env.run()
    for flow, nbytes in flows:
        floor = nbytes / capacity
        assert flow.duration >= floor * (1 - 1e-9)


@given(
    transfers=st.lists(transfer_strategy, min_size=2, max_size=8),
    knee=st.integers(min_value=1, max_value=40),
)
@settings(max_examples=30, deadline=None)
def test_congestion_only_slows_things_down(transfers, knee):
    """A knee never makes any single transfer finish earlier."""

    def run(with_knee):
        env, fabric = build(knee=knee if with_knee else None)
        flows = []

        def submit(nbytes, streams, offset):
            yield env.timeout(offset)
            flows.append(fabric.start_transfer("a", "b", nbytes, streams))

        for nbytes, streams, offset in transfers:
            env.process(submit(nbytes, streams, offset))
        env.run()
        return [f.t_done for f in flows]

    free = run(False)
    congested = run(True)
    assert all(c >= f - 1e-6 for f, c in zip(free, congested))


@given(
    n=st.integers(min_value=1, max_value=10),
    streams=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=30, deadline=None)
def test_equal_flows_finish_together(n, streams):
    # Zero setup so starts are exactly simultaneous.
    env, fabric = build(model=StreamModel(0, 0, 0))
    flows = [fabric.start_transfer("a", "b", 1e5, streams) for _ in range(n)]
    env.run()
    ends = [f.t_done for f in flows]
    assert max(ends) - min(ends) < 1e-6
