"""Property-based tests of the DES kernel (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des import Environment, Resource, Store


@given(delays=st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=30))
def test_time_never_goes_backwards(delays):
    env = Environment()
    observed = []

    def proc(delay):
        yield env.timeout(delay)
        observed.append(env.now)

    for d in delays:
        env.process(proc(d))
    env.run()
    assert observed == sorted(observed)
    assert len(observed) == len(delays)


@given(delays=st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=20))
def test_makespan_equals_max_delay(delays):
    env = Environment()
    for d in delays:
        env.timeout(d)
    env.run()
    assert env.now == max(delays)


@given(
    durations=st.lists(st.floats(min_value=0.1, max_value=10), min_size=1, max_size=20),
    capacity=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=50)
def test_resource_never_exceeds_capacity_and_serves_everyone(durations, capacity):
    env = Environment()
    res = Resource(env, capacity=capacity)
    served = []
    max_in_use = [0]

    def user(i, duration):
        req = res.request()
        yield req
        max_in_use[0] = max(max_in_use[0], res.count)
        yield env.timeout(duration)
        res.release(req)
        served.append(i)

    for i, d in enumerate(durations):
        env.process(user(i, d))
    env.run()
    assert max_in_use[0] <= capacity
    assert sorted(served) == list(range(len(durations)))


@given(items=st.lists(st.integers(), min_size=1, max_size=30))
def test_store_preserves_fifo_and_content(items):
    env = Environment()
    store = Store(env)
    got = []

    def producer():
        for item in items:
            yield store.put(item)

    def consumer():
        for _ in items:
            value = yield store.get()
            got.append(value)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert got == items


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    n=st.integers(min_value=1, max_value=10),
)
@settings(max_examples=25)
def test_simulation_replay_determinism(seed, n):
    """Identical inputs produce identical event traces."""

    def run_once():
        env = Environment()
        trace = []

        def worker(i):
            delay = (seed % 97 + i * 13) % 29 + 0.5
            for _ in range(3):
                yield env.timeout(delay)
                trace.append((round(env.now, 9), i))

        for i in range(n):
            env.process(worker(i))
        env.run()
        return trace

    assert run_once() == run_once()
