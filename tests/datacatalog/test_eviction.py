"""Policy-driven eviction through the service: victims, protections, parity."""

import json

import pytest

from repro.datacatalog.model import CatalogConfig
from repro.policy import salience

from tests.datacatalog.conftest import Clock, make_service, spec, stage

ENGINES = ["seed", "indexed", "compiled"]


def overflow_scenario(engine="indexed", eviction_policy="lru"):
    """Stage three files for wf1, release wf1, then overflow with wf2.

    Returns (service, clock, completion-response of the overflowing
    transfer).  obelix budget is 2500 bytes; sizes are chosen so LRU and
    size policies pick different victims.
    """
    clock = Clock()
    service = make_service(
        engine=engine,
        clock=clock,
        config=CatalogConfig(
            site_capacity={"obelix": 2500.0}, eviction_policy=eviction_policy
        ),
    )
    stage(service, "wf1", [spec("a", nbytes=500.0)])
    clock.advance(10.0)
    stage(service, "wf1", [spec("b", nbytes=1500.0)])
    clock.advance(10.0)
    stage(service, "wf1", [spec("c", nbytes=800.0)])
    service.unregister_workflow("wf1")
    clock.advance(10.0)
    response = stage(service, "wf2", [spec("d", nbytes=700.0)])
    return service, clock, response


def test_lru_evicts_oldest_until_under_budget():
    service, _clock, response = overflow_scenario(eviction_policy="lru")
    # used = 3500 > 2500; a (oldest, 500) then b (1500) fall: 1500 left.
    assert [v["lfn"] for v in response["evicted"]] == ["a", "b"]
    census = service.catalog_census()
    assert [r["lfn"] for r in census["replicas"]] == ["c", "d"]
    assert census["sites"][0]["used_bytes"] == 1500.0


def test_size_evicts_largest_first():
    service, _clock, response = overflow_scenario(eviction_policy="size")
    # size policy: b (1500) alone brings 3500 -> 2000 <= 2500.
    assert [v["lfn"] for v in response["evicted"]] == ["b"]
    assert [r["lfn"] for r in service.catalog_census()["replicas"]] == [
        "a", "c", "d",
    ]


def test_under_budget_completions_evict_nothing(service):
    response = stage(service, "wf1", [spec("a", nbytes=100.0)])
    assert response["evicted"] == []


def test_pinned_replicas_are_never_evicted():
    clock = Clock()
    service = make_service(clock=clock)
    stage(service, "wf1", [spec("a", nbytes=1000.0)])
    clock.advance(10.0)
    stage(service, "wf1", [spec("b", nbytes=1000.0)])
    service.unregister_workflow("wf1")
    service.catalog_pin("gsiftp://obelix/scratch/a")
    clock.advance(10.0)
    response = stage(service, "wf2", [spec("c", nbytes=1000.0)])
    # a is older but pinned; b is the only victim needed (3000 -> 2000).
    assert [v["lfn"] for v in response["evicted"]] == ["b"]
    assert {r["lfn"] for r in service.catalog_census()["replicas"]} == {"a", "c"}


def test_replicas_with_live_users_are_never_evicted():
    clock = Clock()
    service = make_service(clock=clock)
    stage(service, "wf1", [spec("a", nbytes=1000.0), spec("b", nbytes=1000.0)])
    clock.advance(10.0)
    # wf1 is still registered: its staged files have users and must
    # survive the sweep even though the site is over budget.
    response = stage(service, "wf1", [spec("c", nbytes=1000.0)])
    assert response["evicted"] == []
    assert len(service.catalog_census()["replicas"]) == 3


def test_inflight_transfer_source_is_protected():
    """A replica serving as the source of an in-progress transfer must
    not be evicted mid-copy — and becomes evictable once it completes."""
    clock = Clock()
    service = make_service(
        clock=clock,
        config=CatalogConfig(
            site_capacity={"obelix": 2500.0},
            link_costs={("obelix", "nike"): 1.0},
        ),
    )
    stage(service, "wf1", [spec("a", nbytes=1000.0)])
    service.unregister_workflow("wf1")
    clock.advance(10.0)

    # wf2 stages the same dataset to nike; replica selection rewrites the
    # source to the obelix replica (cost 1.0 beats the WAN default).
    advice = service.submit_transfers(
        "wf2", "j", [spec("a", dst_host="nike", nbytes=1000.0)]
    )
    assert advice[0].action == "transfer"
    assert advice[0].src_url == "gsiftp://obelix/scratch/a"

    # Overflow obelix while the copy is in flight: the source replica is
    # protected, so nothing can be evicted.
    service.set_site_capacity("obelix", 0.0)
    response = stage(service, "wf3", [spec("b", nbytes=100.0)])
    assert [v["lfn"] for v in response["evicted"]] == []

    # Completion releases the source; the next sweep may take it.
    clock.advance(10.0)
    response = service.complete_transfers(done=[advice[0].tid])
    assert "a" in [v["lfn"] for v in response["evicted"]]


def test_cleanup_retained_on_under_budget_site_approved_when_over():
    clock = Clock()
    service = make_service(clock=clock)
    stage(service, "wf1", [spec("a", nbytes=1000.0)])

    # Under budget: the catalog retains the replica (skip advice).
    advice = service.submit_cleanups(
        "wf1", "jc", [("a", "gsiftp://obelix/scratch/a")]
    )
    assert advice[0].action == "skip"
    assert "retain" in advice[0].reason

    # Over budget: retention no longer applies; ordinary approval wins.
    service.set_site_capacity("obelix", 500.0)
    service.unregister_workflow("wf1")
    advice = service.submit_cleanups(
        "wf2", "jc", [("a", "gsiftp://obelix/scratch/a")]
    )
    assert advice[0].action == "delete"
    service.complete_cleanups([advice[0].cid])
    assert service.catalog_census()["replicas"] == []


def test_eviction_emits_decision_provenance():
    service, _clock, response = overflow_scenario()
    evictions = [
        r for r in service.decision_records() if r.get("kind") == "eviction"
    ]
    assert [r["lfn"] for r in evictions] == ["a", "b"]
    record = evictions[0]
    assert record["advice"]["action"] == "evict"
    assert record["advice"]["policy"] == "lru"
    assert "over budget" in record["advice"]["reason"]
    # The firing trail cites the eviction-selection rule at its tier.
    rules = {f["rule"] for f in record["firings"]}
    assert any("eviction victims" in name.lower() for name in rules)
    assert all(
        f["salience"] in (salience.EVICTION_SELECT, salience.EVICTION_RETIRE)
        or f["salience"] >= 0
        for f in record["firings"]
    )


@pytest.mark.parametrize("policy", ["lru", "size"])
def test_census_and_victims_identical_across_engines(policy):
    censuses, victims, digests = [], [], []
    for engine in ENGINES:
        service, _clock, response = overflow_scenario(engine, policy)
        censuses.append(json.dumps(service.catalog_census(), sort_keys=True))
        victims.append([v["lfn"] for v in response["evicted"]])
        digests.append(
            [
                r["digest"]
                for r in service.decision_records()
                if r.get("kind") == "eviction"
            ]
        )
    assert censuses[0] == censuses[1] == censuses[2]
    assert victims[0] == victims[1] == victims[2]
    assert digests[0] == digests[1] == digests[2]
