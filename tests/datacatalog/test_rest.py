"""Catalog endpoints over real HTTP, on both REST frontends."""

import json
import urllib.error
import urllib.request

import pytest

from repro.datacatalog.model import CatalogConfig
from repro.policy import PolicyConfig, PolicyService
from repro.policy.client import HTTPPolicyClient
from repro.policy.rest import PolicyRestServer
from repro.policy.rest_async import AsyncPolicyRestServer

FRONTENDS = [
    pytest.param(PolicyRestServer, id="threaded"),
    pytest.param(AsyncPolicyRestServer, id="async"),
]


def make_service(catalog=True):
    return PolicyService(
        PolicyConfig(
            policy="greedy",
            default_streams=4,
            max_streams=50,
            catalog=CatalogConfig(site_capacity={"obelix": 1e9})
            if catalog
            else None,
        )
    )


@pytest.fixture(params=FRONTENDS)
def server(request):
    with request.param(make_service()) as srv:
        yield srv


@pytest.fixture
def client(server):
    return HTTPPolicyClient(server.url)


def stage_one(client, lfn="weird file+name", workflow="wf1"):
    advice = client.submit_transfers(
        workflow,
        "j1",
        [
            {
                "lfn": lfn,
                "src_url": f"gsiftp://fg-vm/data/{lfn}",
                "dst_url": f"gsiftp://obelix/scratch/{lfn}",
                "nbytes": 1000,
            }
        ],
    )
    client.complete_transfers(done=[advice[0].tid])
    return lfn


def test_catalog_census_over_http(client):
    lfn = stage_one(client)
    census = client.catalog_census()
    assert [r["lfn"] for r in census["replicas"]] == [lfn]
    assert census["sites"][0]["site"] == "obelix"
    assert census["sites"][0]["used_bytes"] == 1000.0


def test_catalog_replicas_lookup_quotes_lfn(client):
    lfn = stage_one(client)  # contains a space and a '+'
    rows = client.catalog_replicas(lfn)
    assert len(rows) == 1 and rows[0]["lfn"] == lfn
    assert client.catalog_replicas("absent") == []


def test_set_site_capacity_over_http(client):
    stage_one(client)
    result = client.set_site_capacity("obelix", 5000.0)
    assert result == {
        "site": "obelix",
        "capacity_bytes": 5000.0,
        "used_bytes": 1000.0,
    }
    # None lifts the budget.
    assert client.set_site_capacity("obelix", None)["capacity_bytes"] is None


def test_pin_endpoints_over_http(client):
    lfn = stage_one(client, lfn="plain")
    url = f"gsiftp://obelix/scratch/{lfn}"
    assert client.catalog_pin(url) == {"url": url, "pin_count": 1}
    assert client.catalog_pin(url, pinned=False)["pin_count"] == 0
    with pytest.raises(urllib.error.HTTPError) as err:
        client.catalog_pin("gsiftp://obelix/scratch/missing")
    assert err.value.code == 400


@pytest.mark.parametrize("frontend", FRONTENDS)
def test_catalog_routes_400_when_disabled(frontend):
    with frontend(make_service(catalog=False)) as srv:
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(f"{srv.url}/policy/catalog", timeout=5)
        assert err.value.code == 400
        body = json.loads(err.value.read())
        assert "not enabled" in body["error"]
