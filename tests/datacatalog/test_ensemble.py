"""Acceptance: shared-dataset savings, chaos protection, trace artifacts."""

import json

from repro.datacatalog.model import CatalogConfig
from repro.des.faults import FaultPlan
from repro.experiments import ExperimentConfig, run_traced_cell
from repro.experiments.chaos import compare_with_faultless
from repro.experiments.runner import run_tenant_ensemble
from repro.tenancy import AdmissionConfig
from repro.workflow.montage import MB, MontageConfig, augmented_montage


def _shared_submissions():
    """Two tenants whose workflows read the SAME input dataset
    (``lfn_prefix=""`` removes the per-workflow namespace)."""
    subs = []
    for tenant, name in (("astro", "astro-wf"), ("climate", "climate-wf")):
        wf = augmented_montage(
            10.0 * MB, MontageConfig(n_images=6, name=name, lfn_prefix="")
        )
        subs.append((tenant, wf))
    return subs


def _run_ensemble(catalog):
    cfg = ExperimentConfig(
        extra_file_mb=10.0,
        n_images=6,
        policy="greedy",
        catalog=catalog,
        seed=7,
    )
    return run_tenant_ensemble(
        cfg,
        tenants=[{"tenant": "astro"}, {"tenant": "climate"}],
        submissions=_shared_submissions(),
        admission=AdmissionConfig(max_concurrent=1),
        scheduler="fifo",
    )


def test_shared_dataset_ensemble_stages_25pct_fewer_bytes():
    """The headline acceptance: with the catalog retaining shared inputs
    across workflow boundaries, the second tenant stages from the cache
    instead of re-transferring — >= 25% fewer bytes over the ensemble."""
    base = _run_ensemble(None)
    cat = _run_ensemble(CatalogConfig(default_capacity=50e9))
    b0 = sum(m.bytes_staged for m in base.metrics)
    b1 = sum(m.bytes_staged for m in cat.metrics)
    assert all(m.success for m in base.metrics)
    assert all(m.success for m in cat.metrics)
    assert b1 <= 0.75 * b0, f"expected >=25% reduction, got {b0} -> {b1}"
    assert base.catalog_census is None
    assert cat.catalog_census is not None
    assert len(cat.catalog_census["replicas"]) > 0


def _content(census):
    """Timing-free view of a census: what is on disk and how big."""
    return (
        {(r["lfn"], r["site"], r["nbytes"], r["checksum"])
         for r in census["replicas"]},
        [(s["site"], s["capacity_bytes"], s["used_bytes"])
         for s in census["sites"]],
    )


def test_chaos_crash_replay_keeps_catalog_consistent(tmp_path):
    """Zero cleanup-protection regressions under chaos: a crash+replay
    run finishes with the byte-identical staged set of a clean run, and
    the recovered catalog tracks exactly the same replica content."""
    cfg = ExperimentConfig(
        policy="greedy",
        n_images=10,
        threshold=20,
        lease_seconds=600.0,
        retries=5,
        catalog=CatalogConfig(default_capacity=1e12),
    )
    plan = FaultPlan.single_crash(at=60.0, duration=120.0)
    outcome = compare_with_faultless(
        cfg, plan, journal_dir=tmp_path / "journal"
    )
    assert outcome["both_succeeded"]
    assert outcome["staged_sets_equal"]
    assert outcome["chaotic"].leaked_in_progress == 0
    clean, chaotic = outcome["clean"], outcome["chaotic"]
    assert clean.catalog_census is not None
    assert chaotic.catalog_census is not None
    # last_used/registered_at differ (degraded staging adopts files later
    # than a clean completion would); the content must not.
    assert _content(clean.catalog_census) == _content(chaotic.catalog_census)


def test_traced_run_writes_catalog_census_artifact(tmp_path):
    cfg = ExperimentConfig(
        extra_file_mb=2.0,
        n_images=4,
        seed=3,
        catalog=CatalogConfig(default_capacity=1e12),
    )
    traced = run_traced_cell(cfg)
    paths = traced.write_artifacts(tmp_path / "out")
    assert "catalog_census.json" in {p.rsplit("/", 1)[-1] for p in paths.values()}
    census = json.loads((tmp_path / "out" / "catalog_census.json").read_text())
    assert census == traced.catalog_census
    assert len(census["replicas"]) > 0

    bare = run_traced_cell(ExperimentConfig(extra_file_mb=2.0, n_images=4, seed=3))
    bare_paths = bare.write_artifacts(tmp_path / "bare")
    assert not (tmp_path / "bare" / "catalog_census.json").exists()
    assert "catalog_census.json" not in {
        p.rsplit("/", 1)[-1] for p in bare_paths.values()
    }
