"""PolicyService + catalog integration: selection, hits, admin APIs."""

import pytest

from repro.datacatalog.model import CatalogConfig
from repro.policy import PolicyConfig, PolicyService

from tests.datacatalog.conftest import Clock, make_service, spec, stage


def _catalog_metric(service, event):
    return service.metrics.get("repro_policy_catalog_events_total").value(
        event=event
    )


def test_replica_selection_rewrites_source_and_records_provenance():
    clock = Clock()
    service = make_service(
        clock=clock,
        config=CatalogConfig(
            site_capacity={"obelix": 1e9},
            link_costs={("obelix", "nike"): 1.0},
        ),
    )
    stage(service, "wf1", [spec("a")])
    clock.advance(5.0)

    advice = service.submit_transfers(
        "wf2", "j2", [spec("a", dst_host="nike")]
    )
    assert advice[0].action == "transfer"
    assert advice[0].src_url == "gsiftp://obelix/scratch/a"
    assert _catalog_metric(service, "selected") == 1

    record = service.decision_records()[-1]
    assert record["meta"]["catalog"]["selected"] == {
        "requested_src": "gsiftp://fg-vm/data/a",
        "selected_src": "gsiftp://obelix/scratch/a",
        "site": "obelix",
    }
    # Serving as a source counts as a use: the LRU clock moved.
    replica = service.catalog_replicas("a")[0]
    assert replica["last_used"] == 5.0


def test_catalog_hit_on_skip_staged_touches_lru_and_counts():
    clock = Clock()
    service = make_service(clock=clock)
    stage(service, "wf1", [spec("a")])
    clock.advance(7.0)

    advice = service.submit_transfers("wf2", "j2", [spec("a")])
    assert advice[0].action == "skip"
    assert _catalog_metric(service, "hits") == 1
    record = service.decision_records()[-1]
    assert record["meta"]["catalog"] == {"hit": True, "site": "obelix"}
    assert service.catalog_replicas("a")[0]["last_used"] == 7.0


def test_reconcile_staged_registers_replicas():
    service = make_service()
    result = service.reconcile_staged(
        "wf",
        [
            ("a", "gsiftp://obelix/scratch/a", 1000.0),
            ("b", "gsiftp://obelix/scratch/b"),  # legacy 2-tuple: 0 bytes
        ],
    )
    assert result["registered"] == 2
    sizes = {
        r["lfn"]: r["nbytes"]
        for r in service.catalog_census()["replicas"]
    }
    assert sizes == {"a": 1000.0, "b": 0.0}
    # An unsized adoption can never push a site over budget.
    assert service.catalog_census()["sites"][0]["used_bytes"] == 1000.0


def test_catalog_apis_raise_when_disabled():
    service = PolicyService(
        PolicyConfig(policy="greedy", default_streams=4, max_streams=50)
    )
    for call in (
        service.catalog_census,
        lambda: service.catalog_replicas("a"),
        lambda: service.set_site_capacity("obelix", 1.0),
        lambda: service.catalog_pin("gsiftp://x/y"),
    ):
        with pytest.raises(RuntimeError, match="catalog is not enabled"):
            call()
    assert service.snapshot()["catalog"] is None


def test_snapshot_embeds_catalog_census(service):
    stage(service, "wf", [spec("a")])
    assert service.snapshot()["catalog"] == service.catalog_census()


def test_catalog_pin_roundtrip_and_unknown_url(service):
    stage(service, "wf", [spec("a")])
    url = "gsiftp://obelix/scratch/a"
    assert service.catalog_pin(url) == {"url": url, "pin_count": 1}
    assert service.catalog_pin(url, pinned=False) == {
        "url": url,
        "pin_count": 0,
    }
    with pytest.raises(KeyError):
        service.catalog_pin("gsiftp://obelix/scratch/missing")


def test_eviction_metric_counts_victims():
    clock = Clock()
    service = make_service(clock=clock)
    stage(service, "wf1", [spec("a", nbytes=1000.0)])
    clock.advance(1.0)
    stage(service, "wf1", [spec("b", nbytes=1000.0)])
    service.unregister_workflow("wf1")
    clock.advance(1.0)
    response = stage(service, "wf2", [spec("c", nbytes=2000.0)])
    assert len(response["evicted"]) == 2
    assert _catalog_metric(service, "evictions") == 2


def test_config_fingerprint_includes_catalog(service):
    fp = service.config_fingerprint()
    assert fp["catalog"]["eviction_policy"] == "lru"
    bare = PolicyService(
        PolicyConfig(policy="greedy", default_streams=4, max_streams=50)
    )
    assert bare.config_fingerprint()["catalog"] is None
