"""DataCatalog facade + CatalogConfig + LinkCostModel unit tests."""

import pytest

from repro.datacatalog.catalog import DataCatalog, derive_checksum
from repro.datacatalog.linkcost import DEFAULT_WAN_COST, LinkCostModel
from repro.datacatalog.model import CatalogConfig, ReplicaRecordFact
from repro.rules import WorkingMemory


def make_catalog(**kwargs):
    return DataCatalog(WorkingMemory(), CatalogConfig(**kwargs))


def test_register_places_replica_at_host_site():
    cat = make_catalog(host_site={"obelix": "isi"})
    cat.register("f1", "gsiftp://obelix/scratch/f1", 1000.0, now=5.0)
    replica = cat.replica_at("gsiftp://obelix/scratch/f1")
    assert replica.site == "isi"
    assert replica.nbytes == 1000.0
    assert replica.last_used == 5.0
    assert replica.checksum == derive_checksum("f1", 1000.0)
    # Unmapped hosts are their own site.
    cat.register("f2", "gsiftp://nike/scratch/f2", 10.0, now=0.0)
    assert cat.replica_at("gsiftp://nike/scratch/f2").site == "nike"


def test_reregistration_refreshes_size_and_site_usage():
    cat = make_catalog(site_capacity={"obelix": 5000.0})
    cat.register("f1", "gsiftp://obelix/s/f1", 1000.0, now=0.0)
    assert cat.site_fact("obelix").used_bytes == 1000.0
    cat.register("f1", "gsiftp://obelix/s/f1", 1500.0, now=2.0)
    replica = cat.replica_at("gsiftp://obelix/s/f1")
    assert replica.nbytes == 1500.0
    assert replica.last_used == 2.0
    assert cat.site_fact("obelix").used_bytes == 1500.0
    assert len(list(cat.memory.facts_of(ReplicaRecordFact))) == 1


def test_unregister_releases_site_bytes():
    cat = make_catalog(site_capacity={"obelix": 5000.0})
    cat.register("f1", "gsiftp://obelix/s/f1", 1000.0, now=0.0)
    assert cat.unregister("gsiftp://obelix/s/f1") is True
    assert cat.site_fact("obelix").used_bytes == 0.0
    assert cat.unregister("gsiftp://obelix/s/f1") is False


def test_lookup_is_sorted_by_site_then_url():
    cat = make_catalog()
    cat.register("f1", "gsiftp://zeus/s/f1", 1.0, now=0.0)
    cat.register("f1", "gsiftp://apollo/s/f1", 1.0, now=0.0)
    cat.register("f1", "gsiftp://nike/s/f1", 1.0, now=0.0)
    assert [r.site for r in cat.lookup("f1")] == ["apollo", "nike", "zeus"]


def test_pin_unpin_never_below_zero():
    cat = make_catalog()
    cat.register("f1", "gsiftp://obelix/s/f1", 1.0, now=0.0)
    assert cat.pin("gsiftp://obelix/s/f1")
    assert cat.replica_at("gsiftp://obelix/s/f1").pin_count == 1
    assert cat.unpin("gsiftp://obelix/s/f1")
    assert cat.unpin("gsiftp://obelix/s/f1")
    assert cat.replica_at("gsiftp://obelix/s/f1").pin_count == 0
    assert not cat.pin("gsiftp://other/s/unknown")


def test_over_budget_sites():
    cat = make_catalog(site_capacity={"obelix": 1500.0})
    cat.register("f1", "gsiftp://obelix/s/f1", 1000.0, now=0.0)
    assert cat.over_budget_sites() == []
    cat.register("f2", "gsiftp://obelix/s/f2", 1000.0, now=0.0)
    assert cat.over_budget_sites() == ["obelix"]


def test_census_is_canonical_and_sorted():
    cat = make_catalog(site_capacity={"obelix": 9000.0})
    cat.register("b", "gsiftp://obelix/s/b", 2.0, now=0.0)
    cat.register("a", "gsiftp://obelix/s/a", 1.0, now=0.0)
    census = cat.census()
    assert [r["lfn"] for r in census["replicas"]] == ["a", "b"]
    assert census["sites"][0]["site"] == "obelix"
    assert census["sites"][0]["used_bytes"] == 3.0
    # census_text is canonical JSON — equal catalogs, equal bytes.
    other = make_catalog(site_capacity={"obelix": 9000.0})
    other.register("a", "gsiftp://obelix/s/a", 1.0, now=0.0)
    other.register("b", "gsiftp://obelix/s/b", 2.0, now=0.0)
    assert cat.census_text() == other.census_text()


# -------------------------------------------------------------- link costs
def test_link_cost_model_defaults_and_overrides():
    model = LinkCostModel({("a", "b"): 2.0}, default_cost=7.0, same_site_cost=0.5)
    assert model.cost("a", "b") == 2.0
    assert model.cost("b", "a") == 7.0
    assert model.cost("a", "a") == 0.5


def test_link_cost_best_prefers_cheapest_with_stable_tiebreak():
    model = LinkCostModel({("near", "dst"): 1.0})

    class R:
        def __init__(self, site, url):
            self.site, self.url = site, url

    far1, far2 = R("far", "gsiftp://far/1"), R("far", "gsiftp://far/2")
    near = R("near", "gsiftp://near/1")
    assert model.best([far2, near, far1], "dst") is near
    # All-equal costs fall back to (site, url) ordering.
    assert model.best([far2, far1], "dst") is far1
    assert model.best([], "dst") is None


def test_catalog_config_validation_and_fingerprint():
    with pytest.raises(ValueError):
        CatalogConfig(eviction_policy="random")
    with pytest.raises(ValueError):
        CatalogConfig(default_capacity=-1.0)
    with pytest.raises(ValueError):
        CatalogConfig(link_costs={("a", "b"): -1.0})
    fp = CatalogConfig(
        site_capacity={"obelix": 10.0}, link_costs={("a", "b"): 2.0}
    ).fingerprint()
    assert fp["link_costs"] == {"a->b": 2.0}
    assert fp["default_link_cost"] == DEFAULT_WAN_COST
    # The fingerprint is advice-relevant config only: stable across
    # equal configs, different across different link costs.
    assert fp != CatalogConfig(
        site_capacity={"obelix": 10.0}, link_costs={("a", "b"): 3.0}
    ).fingerprint()


def test_select_source_only_rewrites_strictly_cheaper():
    config = CatalogConfig(link_costs={("obelix", "nike"): 1.0})
    cat = DataCatalog(WorkingMemory(), config)
    cat.register("f1", "gsiftp://obelix/s/f1", 1.0, now=0.0)
    # obelix->nike (1.0) beats fg-vm->nike (WAN default): rewrite.
    chosen = cat.select_source("f1", "gsiftp://nike/s/f1", "gsiftp://fg-vm/d/f1")
    assert chosen is not None and chosen.url == "gsiftp://obelix/s/f1"
    # A tie (both WAN) must NOT rewrite: advice stays stable.
    tied = DataCatalog(WorkingMemory(), CatalogConfig())
    tied.register("f1", "gsiftp://obelix/s/f1", 1.0, now=0.0)
    assert tied.select_source("f1", "gsiftp://nike/s/f1", "gsiftp://fg-vm/d/f1") is None
    # The destination's own copy is never a source candidate.
    assert cat.select_source("f1", "gsiftp://obelix/s/f1", "gsiftp://fg-vm/d/f1") is None
