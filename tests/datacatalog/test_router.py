"""Sharded router + catalog: fleet merges, broadcast admin, pin routing."""

import pytest

from repro.datacatalog.model import CatalogConfig
from repro.policy import PolicyConfig
from repro.policy.sharding import ShardedPolicyService

from tests.datacatalog.conftest import Clock, spec


def make_router(num_shards, clock=None, **catalog_kw):
    catalog_kw.setdefault("site_capacity", {"obelix": 1e12})
    cfg = PolicyConfig(
        policy="greedy",
        default_streams=4,
        max_streams=12,
        catalog=CatalogConfig(**catalog_kw),
    )
    return ShardedPolicyService(
        cfg, num_shards=num_shards, clock=clock or Clock()
    )


def drive(router, workflow="wf", lfns=("a", "b", "c", "d", "e")):
    advice = router.submit_transfers(
        workflow, "j", [spec(lfn, nbytes=1000.0) for lfn in lfns]
    )
    done = [a.tid for a in advice if a.action == "transfer"]
    return router.complete_transfers(done=done)


def test_census_merge_is_shard_count_independent():
    censuses = []
    for num_shards in (1, 3):
        router = make_router(num_shards)
        drive(router)
        censuses.append(router.catalog_census())
    assert censuses[0] == censuses[1]
    assert [r["lfn"] for r in censuses[0]["replicas"]] == [
        "a", "b", "c", "d", "e",
    ]
    assert censuses[0]["sites"] == [
        {"site": "obelix", "capacity_bytes": 1e12, "used_bytes": 5000.0}
    ]


def test_catalog_replicas_merge_across_shards():
    router = make_router(3)
    drive(router)
    rows = router.catalog_replicas("c")
    assert [r["lfn"] for r in rows] == ["c"]
    assert rows[0]["site"] == "obelix"
    assert router.catalog_replicas("nope") == []


def test_evicted_merge_in_complete_transfers():
    clock = Clock()
    router = make_router(3, clock=clock, site_capacity={"obelix": 2000.0})
    drive(router, "wf1", lfns=("a", "b"))
    router.unregister_workflow("wf1")
    clock.advance(10.0)
    response = drive(router, "wf2", lfns=("c", "d"))
    victims = response["evicted"]
    # Per-shard budgets are approximate (each shard holds the full
    # budget for its own replicas), but every victim is real and the
    # merged list is canonically sorted regardless of which shard shed it.
    assert victims == sorted(
        victims, key=lambda v: (v["site"], v["lfn"], v["url"])
    )
    assert all(v["site"] == "obelix" for v in victims)
    survivors = {r["lfn"] for r in router.catalog_census()["replicas"]}
    assert survivors.isdisjoint({v["lfn"] for v in victims})


def test_set_site_capacity_broadcasts_and_sums_usage():
    router = make_router(3)
    drive(router)
    result = router.set_site_capacity("obelix", 5e6)
    assert result == {
        "site": "obelix",
        "capacity_bytes": 5e6,
        "used_bytes": 5000.0,
    }
    assert router.catalog_census()["sites"][0]["capacity_bytes"] == 5e6


def test_catalog_pin_routes_to_owner_and_raises_on_unknown():
    router = make_router(3)
    drive(router)
    for lfn in ("a", "b", "c"):
        url = f"gsiftp://obelix/scratch/{lfn}"
        assert router.catalog_pin(url)["pin_count"] == 1
        assert router.catalog_pin(url, pinned=False)["pin_count"] == 0
    with pytest.raises(KeyError):
        router.catalog_pin("gsiftp://obelix/scratch/missing")


def test_reconcile_staged_registers_sized_replicas():
    router = make_router(2)
    router.reconcile_staged(
        "wf",
        [
            ("a", "gsiftp://obelix/scratch/a", 700.0),
            ("b", "gsiftp://obelix/scratch/b"),
        ],
    )
    sizes = {
        r["lfn"]: r["nbytes"] for r in router.catalog_census()["replicas"]
    }
    assert sizes == {"a": 700.0, "b": 0.0}
