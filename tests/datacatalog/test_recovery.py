"""Catalog durability: WAL+snapshot recovery is byte-identical.

Mirrors ``tests/policy/test_journal_fuzz.py`` for the staged-data
catalog: whatever op sequence mutated the catalog (register / pin /
unpin / capacity changes / evictions) and wherever the WAL tail is torn,
``PolicyService.recover`` must land on a committed prefix whose catalog
census is byte-identical to the census observed right after that commit.
"""

import itertools
import json
import shutil

import pytest

from repro.datacatalog.model import CatalogConfig
from repro.policy import PolicyConfig, PolicyJournal, PolicyService

from tests.datacatalog.conftest import Clock, spec, stage

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

_UNIQUE = itertools.count()

LFNS = ["fa", "fb", "fc", "fd"]


def _config():
    return PolicyConfig(
        policy="greedy",
        default_streams=4,
        max_streams=50,
        catalog=CatalogConfig(site_capacity={"obelix": 2500.0}),
    )


def _url(lfn):
    return f"gsiftp://obelix/scratch/{lfn}"


def _census_text(service):
    return json.dumps(service.catalog_census(), sort_keys=True)


def _apply(service, clock, op, censuses):
    """One catalog-mutating service call; unknown-url pins are no-ops.

    ``censuses`` collects the census after every *commit*, not just
    after every op: ``stage`` commits twice (submit, then complete), and
    a torn WAL tail may land between the two.
    """
    kind = op[0]
    clock.advance(1.0)
    if kind == "stage":
        # submit+complete: registers the replica and runs the sweep.
        advice = service.submit_transfers(
            op[1], f"j{op[2]}", [spec(op[2], nbytes=op[3])]
        )
        censuses.append(_census_text(service))
        done = [a.tid for a in advice if a.action == "transfer"]
        service.complete_transfers(done=done)
    elif kind == "reconcile":
        service.reconcile_staged(op[1], [(op[2], _url(op[2]), op[3])])
    elif kind == "pin":
        try:
            service.catalog_pin(_url(op[1]), op[2])
        except KeyError:
            pass
    elif kind == "capacity":
        service.set_site_capacity("obelix", op[1])
    elif kind == "release":
        service.unregister_workflow(op[1])


OPS = st.lists(
    st.one_of(
        st.tuples(
            st.just("stage"),
            st.sampled_from(["wf1", "wf2"]),
            st.sampled_from(LFNS),
            st.sampled_from([400.0, 900.0, 1600.0]),
        ),
        st.tuples(
            st.just("reconcile"),
            st.sampled_from(["wf1", "wf2"]),
            st.sampled_from(LFNS),
            st.sampled_from([300.0, 1100.0]),
        ),
        st.tuples(
            st.just("pin"), st.sampled_from(LFNS), st.booleans()
        ),
        st.tuples(
            st.just("capacity"), st.sampled_from([800.0, 2500.0, None])
        ),
        st.tuples(st.just("release"), st.sampled_from(["wf1", "wf2"])),
    ),
    min_size=3,
    max_size=12,
)


def _build_journal(path, ops):
    """Run the op sequence journaled; returns the census after each op."""
    journal = PolicyJournal(path, snapshot_interval=10_000)
    clock = Clock()
    service = PolicyService(_config(), clock=clock, journal=journal)
    censuses = [_census_text(service)]
    for op in ops:
        _apply(service, clock, op, censuses)
        censuses.append(_census_text(service))
    journal.close()
    return censuses


def _fresh_dir(tmp_path):
    return tmp_path / f"case{next(_UNIQUE)}"


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(ops=OPS, cut=st.integers(min_value=0, max_value=200_000))
def test_torn_tail_recovers_to_a_committed_census(tmp_path, ops, cut):
    path = _fresh_dir(tmp_path)
    censuses = _build_journal(path, ops)
    wal = path / "journal.jsonl"
    raw = wal.read_bytes()
    wal.write_bytes(raw[: min(cut, len(raw))])

    recovered = PolicyService.recover(path, config=_config())
    # Never crashes; the catalog census is byte-identical to one of the
    # committed-prefix censuses (queries commit nothing, so several ops
    # may share a census — membership is the invariant).
    assert _census_text(recovered) in censuses


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(ops=OPS)
def test_full_journal_replays_census_byte_identical(tmp_path, ops):
    path = _fresh_dir(tmp_path)
    censuses = _build_journal(path, ops)
    recovered = PolicyService.recover(path, config=_config())
    assert _census_text(recovered) == censuses[-1]


def test_recovered_service_keeps_evicting_consistently(tmp_path):
    """Crash after an eviction; the replayed service agrees on the
    census, the decision digests, and the next eviction decision."""
    journal = PolicyJournal(tmp_path, snapshot_interval=10_000)
    clock = Clock()
    service = PolicyService(_config(), clock=clock, journal=journal)
    stage(service, "wf1", [spec("a", nbytes=1000.0)])
    clock.advance(10.0)
    stage(service, "wf1", [spec("b", nbytes=1000.0)])
    service.unregister_workflow("wf1")
    clock.advance(10.0)
    response = stage(service, "wf2", [spec("c", nbytes=1000.0)])
    assert [v["lfn"] for v in response["evicted"]] == ["a"]
    journal.close()

    # Recover from a copy so the replayed service journals independently
    # of the original directory.
    replay_dir = tmp_path.parent / f"{tmp_path.name}-replay"
    shutil.copytree(tmp_path, replay_dir)
    recovered = PolicyService.recover(
        replay_dir, config=_config(), clock=clock
    )
    assert _census_text(recovered) == _census_text(service)
    assert [r["digest"] for r in recovered.decision_records()] == [
        r["digest"] for r in service.decision_records()
    ]
    # Both evict the same next victim for the same overflow.
    recovered.unregister_workflow("wf2")
    service.unregister_workflow("wf2")
    clock.advance(10.0)
    again_live = stage(service, "wf3", [spec("d", nbytes=1500.0)])
    again_replay = stage(recovered, "wf3", [spec("d", nbytes=1500.0)])
    assert (
        [v["lfn"] for v in again_live["evicted"]]
        == [v["lfn"] for v in again_replay["evicted"]]
        == ["b"]
    )
    assert _census_text(recovered) == _census_text(service)
