"""Shared staged-data-catalog test helpers."""

import pytest

from repro.datacatalog.model import CatalogConfig
from repro.policy import PolicyConfig, PolicyService


class Clock:
    """A controllable simulation clock for deterministic LRU ordering."""

    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def catalog_config(**kwargs) -> CatalogConfig:
    kwargs.setdefault("site_capacity", {"obelix": 2500.0})
    return CatalogConfig(**kwargs)


def make_service(engine="indexed", journal=None, clock=None, config=None, **kwargs):
    policy_config = PolicyConfig(
        policy="greedy",
        default_streams=4,
        max_streams=50,
        catalog=config if config is not None else catalog_config(**kwargs),
    )
    return PolicyService(
        policy_config, clock=clock or Clock(), engine=engine, journal=journal
    )


def spec(lfn, src_host="fg-vm", dst_host="obelix", nbytes=1000.0):
    return {
        "lfn": lfn,
        "src_url": f"gsiftp://{src_host}/data/{lfn}",
        "dst_url": f"gsiftp://{dst_host}/scratch/{lfn}",
        "nbytes": nbytes,
    }


def stage(service, workflow, specs, job="j"):
    """Submit + complete the given transfer specs; returns the completion
    response (which carries any eviction victims)."""
    advice = service.submit_transfers(workflow, job, specs)
    done = [a.tid for a in advice if a.action == "transfer"]
    return service.complete_transfers(done=done)


@pytest.fixture
def clock():
    return Clock()


@pytest.fixture
def service(clock):
    return make_service(clock=clock)
