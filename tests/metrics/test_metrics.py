"""Unit tests for metric containers and plain-text reporting."""

import pytest

from repro.metrics import (
    Series,
    ascii_series_plot,
    format_series_table,
    mean_std,
    summarize_records,
)


# ---------------------------------------------------------------- Series
def test_series_add_and_stats():
    s = Series(label="makespan")
    s.add(4, [100.0, 110.0, 90.0])
    s.add(8, [200.0])
    assert s.xs == [4, 8]
    assert s.means() == [100.0, 200.0]
    assert s.stds()[0] == pytest.approx(8.1649, rel=1e-3)
    mean, std = s.at(8)
    assert (mean, std) == (200.0, 0.0)


def test_series_rejects_empty_replicates():
    s = Series(label="x")
    with pytest.raises(ValueError):
        s.add(1, [])


def test_series_at_unknown_x():
    s = Series(label="x")
    s.add(1, [1.0])
    with pytest.raises(ValueError):
        s.at(99)


def test_series_roundtrip_dict():
    s = Series(label="x")
    s.add(1, [1.0, 2.0])
    doc = s.to_dict()
    assert doc == {"label": "x", "xs": [1], "ys": [[1.0, 2.0]]}


# ---------------------------------------------------------------- helpers
def test_mean_std():
    mean, std = mean_std([2.0, 4.0])
    assert mean == 3.0
    assert std == 1.0
    with pytest.raises(ValueError):
        mean_std([])


def test_summarize_records():
    stats = summarize_records([1.0, 2.0, 3.0, 4.0])
    assert stats["count"] == 4
    assert stats["mean"] == 2.5
    assert stats["min"] == 1.0
    assert stats["max"] == 4.0
    assert stats["p50"] == 2.5
    assert summarize_records([]) == {"count": 0}


# ---------------------------------------------------------------- reports
def two_series():
    a, b = Series(label="alpha"), Series(label="beta")
    for x in (1, 2, 3):
        a.add(x, [float(x * 10)])
        b.add(x, [float(x * 20), float(x * 22)])
    return [a, b]


def test_format_series_table():
    text = format_series_table("My Title", "x", two_series())
    assert "My Title" in text
    assert "alpha" in text and "beta" in text
    assert "10.0" in text
    assert text.count("\n") >= 5


def test_format_series_table_validation():
    with pytest.raises(ValueError):
        format_series_table("t", "x", [])
    a, b = two_series()
    b.add(4, [1.0])  # mismatched xs
    with pytest.raises(ValueError, match="mismatched"):
        format_series_table("t", "x", [a, b])


def test_ascii_plot_contains_marks_and_legend():
    text = ascii_series_plot("Plot", two_series())
    assert "Plot" in text
    assert "o = alpha" in text
    assert "x = beta" in text
    assert "o" in text


def test_ascii_plot_flat_series():
    s = Series(label="flat")
    s.add(1, [5.0])
    s.add(2, [5.0])
    text = ascii_series_plot("Flat", [s])
    assert "Flat" in text  # no division-by-zero on flat data


def test_ascii_plot_validation():
    with pytest.raises(ValueError):
        ascii_series_plot("t", [])
