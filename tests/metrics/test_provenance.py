"""Tests of provenance export and the ASCII timeline."""

import json

from repro.experiments import ExperimentConfig
from repro.experiments.environment import build_testbed
from repro.experiments.runner import WorkflowExecution, build_policy_client
from repro.metrics import ascii_timeline, run_provenance
from repro.workflow.montage import MB, MontageConfig, augmented_montage


def executed_run():
    cfg = ExperimentConfig(extra_file_mb=10, n_images=8, seed=21)
    bed = build_testbed(cfg.testbed, seed=21)
    wf = augmented_montage(10 * MB, MontageConfig(n_images=8, name="m8"))
    execution = WorkflowExecution(cfg, wf, bed, build_policy_client(cfg, bed))
    process = execution.start()
    bed.env.run(until=process)
    return cfg, execution


def test_provenance_is_json_serializable_and_complete():
    cfg, execution = executed_run()
    doc = run_provenance(execution.metrics(), execution.result, cfg)
    text = json.dumps(doc)  # must not raise
    assert doc["success"] is True
    assert doc["staging"]["transfers_executed"] > 0
    assert doc["policy"]["calls"] > 0
    assert doc["config"]["policy"] == "'greedy'"
    assert "testbed" not in doc["config"]
    assert doc["job_durations"]["compute"]["count"] > 0
    # per-job records present and ordered by start time
    starts = [j["t_start"] for j in doc["jobs"]]
    assert starts == sorted(starts)
    assert all(j["state"] == "done" for j in doc["jobs"])
    assert "mProjectPP_0" in text


def test_provenance_without_result_or_config():
    _, execution = executed_run()
    doc = run_provenance(execution.metrics())
    assert "jobs" not in doc
    assert "config" not in doc


def test_ascii_timeline_renders_kinds():
    _, execution = executed_run()
    text = ascii_timeline(execution.result)
    assert "timeline of" in text
    assert "stage-in" in text
    assert "compute" in text
    assert "cleanup" in text
    assert "#" in text


def test_ascii_timeline_empty_result():
    from repro.engine.dagman import DAGManResult

    empty = DAGManResult(workflow_id="w", success=False, makespan=0.0)
    assert "no completed jobs" in ascii_timeline(empty)


def test_ascii_timeline_golden():
    """Pinned output: bar placement, kind ordering, failed jobs excluded."""
    from repro.engine.dagman import DAGManResult, JobRecord

    records = {
        "stage_in_a": JobRecord("stage_in_a", "stage-in", 0.0, 0.0, 10.0, 1, "done"),
        "stage_in_b": JobRecord("stage_in_b", "stage-in", 0.0, 4.0, 12.0, 1, "done"),
        "compute_a": JobRecord("compute_a", "compute", 10.0, 10.0, 20.0, 1, "done"),
        "cleanup_a": JobRecord("cleanup_a", "cleanup", 20.0, 20.0, 24.0, 1, "done"),
        # failed jobs must not contribute bars
        "failed_x": JobRecord("failed_x", "compute", 0.0, 1.0, 2.0, 3, "failed"),
    }
    result = DAGManResult(
        workflow_id="m4#1", success=True, makespan=24.0, records=records
    )
    assert ascii_timeline(result, width=36) == (
        "timeline of m4#1 (0 .. 24 s)\n"
        "   compute |              ################      |\n"
        "  stage-in |##################                  |\n"
        "   cleanup |                             #######|"
    )


def test_provenance_trace_summary_attached():
    from repro.obs import Tracer

    tracer = Tracer()
    tracer.instant("fault", "fault.outage.begin")
    _, execution = executed_run()
    doc = run_provenance(execution.metrics(), tracer=tracer)
    assert doc["trace"]["events"] == 1
    assert doc["trace"]["categories"] == {"fault": 1}
