"""Unit tests for structure-based priority algorithms."""

from repro.workflow import (
    File,
    Job,
    Workflow,
    bfs_priorities,
    dependent_priorities,
    dfs_priorities,
    diamond_workflow,
    direct_dependent_priorities,
    fork_join_workflow,
)
from repro.workflow.priorities import PRIORITY_ALGORITHMS


def tree_wf():
    r"""root -> (mid1, mid2); mid1 -> (leaf1, leaf2); mid2 -> leaf3."""
    wf = Workflow("tree")
    r1, r2 = File("r1", 1), File("r2", 1)
    m1a, m1b, m2a = File("m1a", 1), File("m1b", 1), File("m2a", 1)
    wf.add_job(Job("root", "t", outputs=(r1, r2)))
    wf.add_job(Job("mid1", "t", inputs=(r1,), outputs=(m1a, m1b)))
    wf.add_job(Job("mid2", "t", inputs=(r2,), outputs=(m2a,)))
    wf.add_job(Job("leaf1", "t", inputs=(m1a,)))
    wf.add_job(Job("leaf2", "t", inputs=(m1b,)))
    wf.add_job(Job("leaf3", "t", inputs=(m2a,)))
    return wf


def test_bfs_root_highest_levels_descend():
    p = bfs_priorities(tree_wf())
    assert p["root"] > p["mid1"] > p["leaf1"]
    assert p["root"] > p["mid2"] > p["leaf3"]
    # BFS visits all mids before any leaf.
    assert min(p["mid1"], p["mid2"]) > max(p["leaf1"], p["leaf2"], p["leaf3"])


def test_dfs_explores_branch_first():
    p = dfs_priorities(tree_wf())
    assert p["root"] > p["mid1"]
    # DFS dives into mid1's subtree before visiting mid2.
    assert p["leaf1"] > p["mid2"]


def test_direct_dependent_is_fanout():
    p = direct_dependent_priorities(tree_wf())
    assert p["root"] == 2
    assert p["mid1"] == 2
    assert p["mid2"] == 1
    assert p["leaf1"] == 0


def test_dependent_counts_all_descendants():
    p = dependent_priorities(tree_wf())
    assert p["root"] == 5
    assert p["mid1"] == 2
    assert p["mid2"] == 1
    assert p["leaf2"] == 0


def test_all_algorithms_cover_all_jobs():
    wf = fork_join_workflow(width=5)
    for name, algo in PRIORITY_ALGORITHMS.items():
        p = algo(wf)
        assert set(p) == set(wf.jobs), name
        assert all(v >= 0 for v in p.values()), name


def test_priorities_deterministic():
    wf = diamond_workflow()
    for algo in PRIORITY_ALGORITHMS.values():
        assert algo(wf) == algo(wf)


def test_fork_join_fanout_priority():
    wf = fork_join_workflow(width=7)
    p = direct_dependent_priorities(wf)
    assert p["fork"] == 7
    assert p["join"] == 0
