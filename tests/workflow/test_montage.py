"""Unit tests for the Montage generator and its augmentation."""

import pytest

from repro.workflow import MontageConfig, augmented_montage, montage_workflow
from repro.workflow.montage import (
    EXTRA_FILE_PREFIX,
    MB,
    MONTAGE_RUNTIMES,
    montage_transformations,
)


def test_default_config_matches_paper_staging_count():
    wf = montage_workflow()
    counts = wf.transform_counts()
    # One stage-in job per compute job with remote inputs = one per mProjectPP.
    assert counts["mProjectPP"] == 89
    assert counts["mBackground"] == 89
    for singleton in ("mConcatFit", "mBgModel", "mImgtbl", "mAdd", "mShrink", "mJPEG"):
        assert counts[singleton] == 1
    assert counts["mDiffFit"] > 89  # overlap pairs outnumber images


def test_workflow_inputs_are_raw_images_plus_header():
    wf = montage_workflow()
    inputs = [f.lfn for f in wf.input_files()]
    assert "region.hdr" in inputs
    assert sum(1 for lfn in inputs if lfn.startswith("raw_")) == 89
    assert len(inputs) == 90


def test_structure_levels():
    wf = montage_workflow(MontageConfig(n_images=9, name="m9"))
    levels = wf.levels()
    assert levels["mProjectPP_0"] == 0
    assert levels["mDiffFit_0000"] == 1
    assert levels["mConcatFit"] == 2
    assert levels["mBgModel"] == 3
    assert levels["mBackground_0"] == 4
    assert levels["mImgtbl"] == 5
    assert levels["mAdd"] == 6
    assert levels["mShrink"] == 7
    assert levels["mJPEG"] == 8


def test_small_config_overlaps():
    # 2x2 grid: overlaps = 2 horizontal + 2 vertical
    wf = montage_workflow(MontageConfig(n_images=4, name="m4"))
    assert wf.transform_counts()["mDiffFit"] == 4


def test_single_image_grid():
    wf = montage_workflow(MontageConfig(n_images=1, name="m1"))
    assert wf.transform_counts().get("mDiffFit", 0) == 0
    wf.validate()


def test_config_validation():
    with pytest.raises(ValueError):
        MontageConfig(n_images=0)
    with pytest.raises(ValueError):
        MontageConfig(image_size=0)


def test_augmented_adds_one_extra_per_projection():
    wf = augmented_montage(100 * MB)
    extras = [f for f in wf.input_files() if f.lfn.startswith(EXTRA_FILE_PREFIX)]
    assert len(extras) == 89
    assert all(f.size == 100 * MB for f in extras)
    # Each mProjectPP consumes exactly one extra file.
    for job_id, job in wf.jobs.items():
        n_extra = sum(1 for f in job.inputs if f.lfn.startswith(EXTRA_FILE_PREFIX))
        assert n_extra == (1 if job.transform == "mProjectPP" else 0)


def test_augmented_zero_size_is_plain_workflow():
    wf = augmented_montage(0)
    assert not [f for f in wf.input_files() if f.lfn.startswith(EXTRA_FILE_PREFIX)]
    assert wf.name == MontageConfig().name


def test_augmented_negative_rejected():
    with pytest.raises(ValueError):
        augmented_montage(-1)


def test_augmented_name_encodes_size():
    assert "100MB" in augmented_montage(100 * MB).name


def test_transform_catalog_covers_all_transforms():
    catalog = montage_transformations()
    wf = montage_workflow()
    for transform in wf.transform_counts():
        assert transform in catalog
    assert set(MONTAGE_RUNTIMES) == set(wf.transform_counts())


def test_mproject_runtime_is_several_seconds():
    """The paper: mProjectPP jobs run 'several seconds'."""
    mean, _std = MONTAGE_RUNTIMES["mProjectPP"]
    assert 2 <= mean <= 15
