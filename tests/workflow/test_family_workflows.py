"""Unit tests for the Epigenomics/CyberShake-like generators, and their
end-to-end execution on the simulated testbed."""

import pytest

from repro.experiments import ExperimentConfig
from repro.experiments.environment import build_testbed
from repro.experiments.runner import run_workflow
from repro.workflow import cybershake_workflow, epigenomics_workflow


# ---------------------------------------------------------------- epigenomics
def test_epigenomics_structure():
    wf = epigenomics_workflow(lanes=3, chunks=4)
    counts = wf.transform_counts()
    assert counts["fastqSplit"] == 3
    assert counts["filterContams"] == counts["mapReads"] == counts["pileup"] == 12
    assert counts["mergeBam"] == 3
    assert counts["mapMerge"] == 1
    # External inputs: one read file per lane.
    assert len(wf.input_files()) == 3
    # Pipelines are deep: filter -> map -> dedup -> merge -> density.
    assert wf.levels()["density_map"] == 5


def test_epigenomics_validation():
    with pytest.raises(ValueError):
        epigenomics_workflow(lanes=0)
    with pytest.raises(ValueError):
        epigenomics_workflow(chunks=0)


# ----------------------------------------------------------------- cybershake
def test_cybershake_structure():
    wf = cybershake_workflow(rupture_sites=3, variations=5)
    counts = wf.transform_counts()
    assert counts["SeismogramSynthesis"] == 15
    assert counts["PeakValCalc"] == 15
    assert counts["HazardCurveCalc"] == 1
    # SGT pairs are external inputs shared by all variations of a site.
    assert len(wf.input_files()) == 6
    assert len(wf.consumers_of("cs_s0_sgt_x.bin")) == 5


def test_cybershake_validation():
    with pytest.raises(ValueError):
        cybershake_workflow(rupture_sites=0)
    with pytest.raises(ValueError):
        cybershake_workflow(variations=0)


# --------------------------------------------------------------- end to end
@pytest.mark.parametrize(
    "workflow",
    [epigenomics_workflow(lanes=2, chunks=3), cybershake_workflow(2, 3)],
    ids=["epigenomics", "cybershake"],
)
def test_family_workflows_run_under_policy(workflow):
    cfg = ExperimentConfig(extra_file_mb=0, policy="greedy", threshold=50, seed=6)
    bed = build_testbed(cfg.testbed, seed=6)
    metrics = run_workflow(cfg, workflow, bed=bed)
    assert metrics.success
    assert metrics.bytes_staged > 0


def test_cybershake_shared_sgt_staged_once():
    """Each SGT file feeds several jobs but moves over the WAN only once."""
    wf = cybershake_workflow(rupture_sites=2, variations=4)
    cfg = ExperimentConfig(extra_file_mb=0, policy="greedy", threshold=50, seed=6)
    bed = build_testbed(cfg.testbed, seed=6)
    metrics = run_workflow(cfg, wf, bed=bed)
    # 2 sites x 2 SGT files of 50 MB each = 200 MB total (+ jitter).
    assert metrics.bytes_staged == pytest.approx(4 * 50e6, rel=0.03)
