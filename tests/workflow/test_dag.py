"""Unit tests for the abstract workflow DAG."""

import pytest

from repro.workflow import File, Job, Workflow, WorkflowError


def simple_wf():
    wf = Workflow("w")
    a_out = File("a.out", 10)
    b_out = File("b.out", 20)
    wf.add_job(Job("a", "gen", inputs=(File("raw.in", 5),), outputs=(a_out,)))
    wf.add_job(Job("b", "proc", inputs=(a_out,), outputs=(b_out,)))
    wf.add_job(Job("c", "sink", inputs=(b_out,)))
    return wf


def test_file_validation():
    with pytest.raises(WorkflowError):
        File("", 1)
    with pytest.raises(WorkflowError):
        File("x", -1)


def test_job_validation():
    f = File("f", 1)
    with pytest.raises(WorkflowError):
        Job("", "t")
    with pytest.raises(WorkflowError):
        Job("j", "")
    with pytest.raises(WorkflowError):
        Job("j", "t", inputs=(f, f))
    with pytest.raises(WorkflowError):
        Job("j", "t", inputs=(f,), outputs=(f,))


def test_workflow_name_required():
    with pytest.raises(WorkflowError):
        Workflow("")


def test_data_dependencies_derived():
    wf = simple_wf()
    assert wf.parents("b") == ["a"]
    assert wf.children("a") == ["b"]
    assert wf.parents("a") == []
    assert wf.children("c") == []


def test_duplicate_job_rejected():
    wf = simple_wf()
    with pytest.raises(WorkflowError):
        wf.add_job(Job("a", "gen"))


def test_duplicate_producer_rejected():
    wf = Workflow("w")
    out = File("x", 1)
    wf.add_job(Job("p1", "t", outputs=(out,)))
    with pytest.raises(WorkflowError, match="produced by both"):
        wf.add_job(Job("p2", "t", outputs=(out,)))


def test_inconsistent_file_size_rejected():
    wf = Workflow("w")
    wf.add_job(Job("p", "t", outputs=(File("x", 1),)))
    with pytest.raises(WorkflowError, match="inconsistent"):
        wf.add_job(Job("c", "t", inputs=(File("x", 2),)))


def test_cycle_detection():
    wf = Workflow("w")
    x, y = File("x", 1), File("y", 1)
    wf.add_job(Job("a", "t", inputs=(y,), outputs=(x,)))
    wf.add_job(Job("b", "t", inputs=(x,), outputs=(y,)))
    with pytest.raises(WorkflowError, match="cycle"):
        wf.validate()


def test_control_edges():
    wf = simple_wf()
    wf.add_control_edge("a", "c")
    assert "a" in wf.parents("c")
    with pytest.raises(WorkflowError):
        wf.add_control_edge("a", "a")
    with pytest.raises(WorkflowError):
        wf.add_control_edge("a", "ghost")


def test_roots_leaves_topo():
    wf = simple_wf()
    assert wf.roots() == ["a"]
    assert wf.leaves() == ["c"]
    assert wf.topological_order() == ["a", "b", "c"]


def test_levels():
    wf = simple_wf()
    assert wf.levels() == {"a": 0, "b": 1, "c": 2}


def test_levels_longest_path():
    wf = Workflow("w")
    x, y, z = File("x", 1), File("y", 1), File("z", 1)
    wf.add_job(Job("a", "t", outputs=(x,)))
    wf.add_job(Job("b", "t", inputs=(x,), outputs=(y,)))
    # c consumes both the root output and the level-1 output.
    wf.add_job(Job("c", "t", inputs=(x, y), outputs=(z,)))
    assert wf.levels()["c"] == 2  # longest path, not shortest


def test_input_output_files():
    wf = simple_wf()
    assert [f.lfn for f in wf.input_files()] == ["raw.in"]
    assert [f.lfn for f in wf.output_files()] == []  # c has no outputs
    wf2 = Workflow("w2")
    wf2.add_job(Job("only", "t", inputs=(File("in", 1),), outputs=(File("out", 1),)))
    assert [f.lfn for f in wf2.output_files()] == ["out"]


def test_producer_consumers_lookup():
    wf = simple_wf()
    assert wf.producer_of("a.out") == "a"
    assert wf.producer_of("raw.in") is None
    assert wf.consumers_of("a.out") == ["b"]
    assert wf.consumers_of("nope") == []


def test_file_lookup_and_unknown_job():
    wf = simple_wf()
    assert wf.file("a.out").size == 10
    with pytest.raises(WorkflowError):
        wf.file("ghost")
    with pytest.raises(WorkflowError):
        wf.parents("ghost")


def test_descendants():
    wf = simple_wf()
    assert wf.descendants("a") == {"b", "c"}
    assert wf.descendants("c") == set()


def test_transform_counts_and_len():
    wf = simple_wf()
    assert wf.transform_counts() == {"gen": 1, "proc": 1, "sink": 1}
    assert len(wf) == 3
