"""Unit tests for synthetic generators and DAX JSON round-tripping."""

import numpy as np
import pytest

from repro.workflow import (
    chain_workflow,
    diamond_workflow,
    fork_join_workflow,
    montage_workflow,
    random_layered_workflow,
    workflow_from_json,
    workflow_to_json,
)
from repro.workflow.dag import WorkflowError
from repro.workflow.montage import MontageConfig


def test_chain_structure():
    wf = chain_workflow(length=5)
    assert len(wf) == 5
    assert wf.roots() == ["stage_0"]
    assert wf.leaves() == ["stage_4"]
    assert wf.levels()["stage_4"] == 4


def test_chain_validation():
    with pytest.raises(ValueError):
        chain_workflow(length=0)


def test_diamond_structure():
    wf = diamond_workflow()
    assert wf.parents("join") == ["left", "right"]
    assert wf.children("split") == ["left", "right"]


def test_fork_join_structure():
    wf = fork_join_workflow(width=6)
    assert len(wf) == 8
    assert len(wf.children("fork")) == 6
    assert len(wf.parents("join")) == 6
    with pytest.raises(ValueError):
        fork_join_workflow(width=0)


def test_random_layered_connected_and_deterministic():
    rng1 = np.random.default_rng(5)
    rng2 = np.random.default_rng(5)
    wf1 = random_layered_workflow(layers=4, width=5, rng=rng1)
    wf2 = random_layered_workflow(layers=4, width=5, rng=rng2)
    assert workflow_to_json(wf1) == workflow_to_json(wf2)
    # Every non-root job has at least one parent.
    levels = wf1.levels()
    for job_id, level in levels.items():
        if level > 0:
            assert wf1.parents(job_id)


def test_random_layered_validation():
    with pytest.raises(ValueError):
        random_layered_workflow(layers=0)
    with pytest.raises(ValueError):
        random_layered_workflow(edge_prob=1.5)


def test_dax_roundtrip_montage():
    wf = montage_workflow(MontageConfig(n_images=9, name="m9"))
    text = workflow_to_json(wf, indent=2)
    back = workflow_from_json(text)
    assert back.name == wf.name
    assert set(back.jobs) == set(wf.jobs)
    assert back.transform_counts() == wf.transform_counts()
    assert workflow_to_json(back) == workflow_to_json(wf)


def test_dax_roundtrip_preserves_control_edges():
    wf = diamond_workflow()
    wf.add_control_edge("left", "right")
    back = workflow_from_json(workflow_to_json(wf))
    assert "left" in back.parents("right")


def test_dax_rejects_garbage():
    with pytest.raises(WorkflowError):
        workflow_from_json("{not json")
    with pytest.raises(WorkflowError):
        workflow_from_json('{"format": "other", "name": "x"}')


def test_dax_xml_roundtrip_montage():
    from repro.workflow.dax import workflow_from_dax_xml, workflow_to_dax_xml

    wf = montage_workflow(MontageConfig(n_images=9, name="m9"))
    text = workflow_to_dax_xml(wf)
    assert text.startswith("<adag")
    assert 'link="input"' in text and 'link="output"' in text
    back = workflow_from_dax_xml(text)
    assert set(back.jobs) == set(wf.jobs)
    assert back.transform_counts() == wf.transform_counts()
    for lfn in ("raw_0.fits", "mosaic.jpg"):
        assert back.file(lfn).size == wf.file(lfn).size


def test_dax_xml_roundtrip_control_edges():
    from repro.workflow.dax import workflow_from_dax_xml, workflow_to_dax_xml

    wf = diamond_workflow()
    wf.add_control_edge("left", "right")
    back = workflow_from_dax_xml(workflow_to_dax_xml(wf))
    assert "left" in back.parents("right")


def test_dax_xml_rejects_garbage():
    from repro.workflow.dax import workflow_from_dax_xml

    with pytest.raises(WorkflowError, match="invalid DAX"):
        workflow_from_dax_xml("<not-closed")
    with pytest.raises(WorkflowError, match="not a DAX"):
        workflow_from_dax_xml("<other/>")
    with pytest.raises(WorkflowError, match="missing the workflow name"):
        workflow_from_dax_xml("<adag/>")
    with pytest.raises(WorkflowError, match="bad link"):
        workflow_from_dax_xml(
            '<adag name="w"><job id="j" name="t">'
            '<uses file="f" link="sideways" size="1"/></job></adag>'
        )
