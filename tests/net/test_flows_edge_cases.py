"""Edge-case tests for the fluid-flow fabric."""

import pytest

from repro.des import Environment
from repro.net import FlowNetwork, Link, Network, StreamModel

from tests.net.test_flows import make_fabric


def test_abort_during_setup_phase():
    model = StreamModel(session_setup=10.0, stream_setup=0, ramp_time=0)
    env, fabric = make_fabric(model=model)
    flow = fabric.start_transfer("src", "dst", 1000.0, streams=2)
    flow.done.defuse()

    def killer():
        yield env.timeout(2.0)  # still in setup
        fabric.abort(flow, RuntimeError("cancelled"))

    env.process(killer())
    env.run()
    assert flow.state == "aborted"
    assert fabric.bytes_moved == 0.0
    assert fabric.announced_flow_count == 0


def test_announced_vs_active_counts():
    model = StreamModel(session_setup=5.0, stream_setup=0, ramp_time=0)
    env, fabric = make_fabric(model=model)
    fabric.start_transfer("src", "dst", 1000.0, streams=2)
    assert fabric.announced_flow_count == 1
    assert fabric.active_flow_count == 0  # still in setup
    env.run(until=6.0)
    assert fabric.active_flow_count == 1


def test_flow_duration_property():
    env, fabric = make_fabric(capacity=100.0)
    flow = fabric.start_transfer("src", "dst", 100.0, streams=1)
    assert flow.duration is None  # in flight
    env.run()
    assert flow.duration == pytest.approx(1.0)


def test_many_small_flows_complete_exactly():
    env, fabric = make_fabric(capacity=1000.0)
    flows = [fabric.start_transfer("src", "dst", 10.0, streams=1) for _ in range(50)]
    env.run()
    assert all(f.state == "done" for f in flows)
    assert fabric.bytes_moved == pytest.approx(500.0)


def test_very_long_horizon_no_livelock():
    """A multi-hour simulated transfer completes without event explosion."""
    env, fabric = make_fabric(capacity=1e6)
    flow = fabric.start_transfer("src", "dst", 1e11, streams=4)  # ~27.8 h
    env.run(until=flow.done)
    assert env.now == pytest.approx(1e5, rel=1e-6)
    # The event count stayed tiny (one timer per reschedule).
    assert env._seq < 100


def test_flow_into_second_route_uses_other_links_only():
    env = Environment()
    net = Network()
    s = net.add_site("s")
    a, b, c = net.add_host("a", s), net.add_host("b", s), net.add_host("c", s)
    l1 = net.add_link(Link("l1", capacity=100.0))
    l2 = net.add_link(Link("l2", capacity=100.0))
    net.add_route(a, b, [l1])
    net.add_route(a, c, [l2])
    fabric = FlowNetwork(env, net, StreamModel(0, 0, 0))
    f1 = fabric.start_transfer("a", "b", 1000.0, streams=4)
    f2 = fabric.start_transfer("a", "c", 1000.0, streams=4)
    env.run()
    # Disjoint links: both run at full capacity, no interference.
    assert f1.t_done == pytest.approx(10.0)
    assert f2.t_done == pytest.approx(10.0)
    assert fabric.peak_streams == {"l1": 4, "l2": 4}
