"""Unit tests for the GridFTP-like client/server."""

import numpy as np
import pytest

from repro.des import Environment
from repro.net import (
    FlowNetwork,
    GridFTPClient,
    GridFTPServer,
    Link,
    Network,
    StreamModel,
    TransferError,
    parse_url,
)


def make_fabric():
    env = Environment()
    net = Network()
    s = net.add_site("s")
    src = net.add_host("srv", s)
    dst = net.add_host("cli", s)
    net.add_link(Link("wan", capacity=100.0))
    net.add_route(src, dst, [net.links["wan"]])
    fabric = FlowNetwork(env, net, StreamModel(0, 0, 0))
    return env, fabric


# ------------------------------------------------------------------- URLs
def test_parse_url():
    assert parse_url("gsiftp://hostA/data/f.fits") == ("hostA", "/data/f.fits")
    assert parse_url("http://web/f") == ("web", "/f")
    assert parse_url("file://local/tmp/x") == ("local", "/tmp/x")


def test_parse_url_rejects_malformed():
    for bad in ["nope", "gsiftp:/missing", "://nohost/x", "gsiftp:///path", "weird://h/p"]:
        with pytest.raises(ValueError):
            parse_url(bad)


# ---------------------------------------------------------------- transfers
def test_basic_transfer_returns_record():
    env, fabric = make_fabric()
    client = GridFTPClient(fabric)
    out = {}

    def run():
        rec = yield from client.transfer(
            "gsiftp://srv/a.dat", "gsiftp://cli/a.dat", 1000.0, streams=2
        )
        out["rec"] = rec

    env.process(run())
    env.run()
    rec = out["rec"]
    assert rec.duration == pytest.approx(10.0)
    assert rec.throughput == pytest.approx(100.0)
    assert client.records == [rec]


def test_require_server_enforced():
    env, fabric = make_fabric()
    client = GridFTPClient(fabric, require_server=True)

    def run():
        yield from client.transfer("gsiftp://srv/a", "gsiftp://cli/a", 10.0, 1)

    p = env.process(run())
    with pytest.raises(TransferError, match="no GridFTP server"):
        env.run(until=p)

    GridFTPServer(fabric, fabric.network.host("srv"))
    done = {}

    def run2():
        yield from client.transfer("gsiftp://srv/a", "gsiftp://cli/a", 10.0, 1)
        done["ok"] = True

    env.process(run2())
    env.run()
    assert done.get("ok")


def test_duplicate_server_rejected():
    env, fabric = make_fabric()
    GridFTPServer(fabric, fabric.network.host("srv"))
    with pytest.raises(ValueError):
        GridFTPServer(fabric, fabric.network.host("srv"))


def test_failure_injection_raises_transfer_error():
    env, fabric = make_fabric()
    client = GridFTPClient(fabric, rng=np.random.default_rng(1), failure_rate=0.999)

    def run():
        yield from client.transfer("gsiftp://srv/a", "gsiftp://cli/a", 100.0, 1)

    p = env.process(run())
    with pytest.raises(TransferError, match="interrupted"):
        env.run(until=p)
    assert client.records == []  # failed transfers are not recorded


def test_overhead_jitter_inflates_duration_deterministically():
    def run_with(seed):
        env, fabric = make_fabric()
        client = GridFTPClient(
            fabric, rng=np.random.default_rng(seed), overhead_jitter=0.05
        )

        def run():
            yield from client.transfer("gsiftp://srv/a", "gsiftp://cli/a", 1000.0, 1)

        env.process(run())
        env.run()
        return env.now

    base = 10.0
    t1, t2 = run_with(7), run_with(7)
    assert t1 == t2  # deterministic
    assert t1 >= base  # overhead only ever adds


def test_client_validation():
    env, fabric = make_fabric()
    with pytest.raises(ValueError):
        GridFTPClient(fabric, overhead_jitter=-0.1)
    with pytest.raises(ValueError):
        GridFTPClient(fabric, failure_rate=1.0)
