"""Unit tests for network topology."""

import pytest

from repro.net import Host, Link, Network, Site
from repro.net.topology import GB, MB, mbit


def test_unit_helpers():
    assert MB == 1_000_000
    assert GB == 1_000_000_000
    assert mbit(28) == pytest.approx(3.5e6)


def test_site_host_validation():
    with pytest.raises(ValueError):
        Site("")
    site = Site("isi")
    with pytest.raises(ValueError):
        Host("", site)
    host = Host("obelix", site)
    assert host.url_prefix == "gsiftp://obelix"


def test_link_validation():
    with pytest.raises(ValueError):
        Link("l", capacity=0)
    with pytest.raises(ValueError):
        Link("l", capacity=1, stream_rate_cap=0)
    with pytest.raises(ValueError):
        Link("l", capacity=1, knee=0)
    with pytest.raises(ValueError):
        Link("l", capacity=1, congestion_floor=0)
    with pytest.raises(ValueError):
        Link("l", capacity=1, congestion_slope=-1)


def build_net():
    net = Network()
    isi = net.add_site("isi")
    tacc = net.add_site("tacc")
    vm = net.add_host("futuregrid-vm", tacc)
    obelix = net.add_host("obelix", isi)
    wan = net.add_link(Link("wan", capacity=mbit(28), knee=70))
    lan = net.add_link(Link("lan", capacity=mbit(1000)))
    net.add_route(vm, obelix, [wan, lan])
    return net, vm, obelix, wan, lan


def test_route_lookup_by_object_and_name():
    net, vm, obelix, wan, lan = build_net()
    route = net.route(vm, obelix)
    assert route.links == (wan, lan)
    assert net.route("futuregrid-vm", "obelix") is route
    assert net.has_route(vm, obelix)
    assert not net.has_route(obelix, vm)


def test_missing_route_raises():
    net, vm, obelix, *_ = build_net()
    with pytest.raises(KeyError, match="no route"):
        net.route(obelix, vm)


def test_duplicate_registrations_rejected():
    net, vm, obelix, wan, lan = build_net()
    with pytest.raises(ValueError):
        net.add_site("isi")
    with pytest.raises(ValueError):
        net.add_host("obelix", net.sites["isi"])
    with pytest.raises(ValueError):
        net.add_link(Link("wan", capacity=1))
    with pytest.raises(ValueError):
        net.add_route(vm, obelix, [wan])


def test_route_with_unregistered_link_rejected():
    net, vm, obelix, *_ = build_net()
    rogue = Link("rogue", capacity=1)
    with pytest.raises(ValueError, match="unregistered"):
        net.add_route(obelix, vm, [rogue])


def test_empty_route_rejected():
    net, vm, obelix, *_ = build_net()
    with pytest.raises(ValueError):
        net.add_route(obelix, vm, [])


def test_unknown_host_lookup():
    net, *_ = build_net()
    with pytest.raises(KeyError):
        net.host("nope")
    assert net.host("obelix").name == "obelix"
