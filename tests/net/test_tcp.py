"""Unit tests for the stream throughput model."""

import pytest

from repro.net import Link, StreamModel
from repro.net.tcp import congestion_factor, effective_capacity


def test_stream_model_validation():
    with pytest.raises(ValueError):
        StreamModel(session_setup=-1)
    with pytest.raises(ValueError):
        StreamModel(ramp_ref=0)


def test_setup_delay_components():
    model = StreamModel(session_setup=1.0, stream_setup=0.1, ramp_time=2.0, ramp_ref=50)
    # no contention: 1 + 0.1*4 + 2*(1+0) = 3.4
    assert model.setup_delay(4, 0) == pytest.approx(3.4)
    # contention of 50 doubles the ramp
    assert model.setup_delay(4, 50) == pytest.approx(1 + 0.4 + 4.0)


def test_setup_delay_monotone_in_streams_and_contention():
    model = StreamModel()
    assert model.setup_delay(8, 0) > model.setup_delay(2, 0)
    assert model.setup_delay(4, 100) > model.setup_delay(4, 0)


def test_setup_delay_requires_stream():
    with pytest.raises(ValueError):
        StreamModel().setup_delay(0, 0)


def test_congestion_factor_below_knee_is_one():
    link = Link("wan", capacity=1e6, knee=70)
    assert congestion_factor(link, 0) == 1.0
    assert congestion_factor(link, 70) == 1.0


def test_congestion_factor_declines_past_knee():
    link = Link("wan", capacity=1e6, knee=70, congestion_slope=0.5, congestion_floor=0.3)
    f100 = congestion_factor(link, 100)
    f200 = congestion_factor(link, 200)
    assert f100 == pytest.approx(1 / (1 + 0.5 * (30 / 70)))
    assert f200 < f100 < 1.0


def test_congestion_factor_concave_marginal_damage_decreases():
    link = Link("wan", capacity=1e6, knee=70, congestion_slope=0.5, congestion_floor=0.01)
    drop1 = congestion_factor(link, 70) - congestion_factor(link, 100)
    drop2 = congestion_factor(link, 100) - congestion_factor(link, 130)
    assert drop1 > drop2 > 0


def test_congestion_factor_floor():
    link = Link("wan", capacity=1e6, knee=10, congestion_slope=1.0, congestion_floor=0.4)
    assert congestion_factor(link, 10_000) == 0.4


def test_no_knee_means_no_congestion():
    link = Link("lan", capacity=1e6)
    assert congestion_factor(link, 10_000) == 1.0


def test_negative_streams_rejected():
    link = Link("wan", capacity=1e6, knee=70)
    with pytest.raises(ValueError):
        congestion_factor(link, -1)


def test_effective_capacity():
    link = Link("wan", capacity=100.0, knee=10, congestion_slope=0.5, congestion_floor=0.1)
    assert effective_capacity(link, 5) == 100.0
    assert effective_capacity(link, 20) == pytest.approx(100 / (1 + 0.5))
