"""Unit tests for the fluid-flow transfer engine."""

import pytest

from repro.des import Environment
from repro.net import FlowNetwork, Link, Network, StreamModel


def make_fabric(
    capacity=100.0,
    stream_rate_cap=None,
    knee=None,
    model=None,
    slope=0.5,
    floor=0.35,
):
    """Single WAN link between two hosts, zero setup by default."""
    env = Environment()
    net = Network()
    a_site, b_site = net.add_site("a"), net.add_site("b")
    src = net.add_host("src", a_site)
    dst = net.add_host("dst", b_site)
    wan = net.add_link(
        Link(
            "wan",
            capacity=capacity,
            stream_rate_cap=stream_rate_cap,
            knee=knee,
            congestion_slope=slope,
            congestion_floor=floor,
        )
    )
    net.add_route(src, dst, [wan])
    model = model or StreamModel(session_setup=0, stream_setup=0, ramp_time=0)
    return env, FlowNetwork(env, net, model)


def test_single_flow_runs_at_capacity():
    env, fabric = make_fabric(capacity=100.0)
    flow = fabric.start_transfer("src", "dst", 1000.0, streams=4)
    env.run(until=flow.done)
    assert env.now == pytest.approx(10.0)
    assert flow.state == "done"


def test_stream_rate_cap_limits_single_flow():
    env, fabric = make_fabric(capacity=100.0, stream_rate_cap=10.0)
    flow = fabric.start_transfer("src", "dst", 100.0, streams=2)  # cap 20 B/s
    env.run(until=flow.done)
    assert env.now == pytest.approx(5.0)


def test_equal_flows_share_capacity():
    env, fabric = make_fabric(capacity=100.0)
    f1 = fabric.start_transfer("src", "dst", 500.0, streams=4)
    f2 = fabric.start_transfer("src", "dst", 500.0, streams=4)
    env.run()
    assert f1.t_done == pytest.approx(10.0)
    assert f2.t_done == pytest.approx(10.0)


def test_weighted_sharing_by_streams():
    env, fabric = make_fabric(capacity=100.0)
    heavy = fabric.start_transfer("src", "dst", 750.0, streams=3)
    light = fabric.start_transfer("src", "dst", 250.0, streams=1)
    env.run()
    # Weighted fairly: both finish together at t=10.
    assert heavy.t_done == pytest.approx(10.0)
    assert light.t_done == pytest.approx(10.0)


def test_remaining_capacity_redistributed_after_completion():
    env, fabric = make_fabric(capacity=100.0)
    short = fabric.start_transfer("src", "dst", 100.0, streams=1)
    long = fabric.start_transfer("src", "dst", 200.0, streams=1)
    env.run()
    # Phase 1: 50/50 split until short finishes at t=2 (100B at 50B/s).
    assert short.t_done == pytest.approx(2.0)
    # Long has 100B left, now gets full 100 B/s -> finishes at t=3.
    assert long.t_done == pytest.approx(3.0)


def test_late_arrival_slows_existing_flow():
    env, fabric = make_fabric(capacity=100.0)
    first = fabric.start_transfer("src", "dst", 1000.0, streams=1)

    def later():
        yield env.timeout(5.0)
        fabric.start_transfer("src", "dst", 10_000.0, streams=1)

    env.process(later())
    env.run(until=first.done)
    # 500B moved in first 5s; remaining 500B at 50 B/s -> +10s.
    assert env.now == pytest.approx(15.0)


def test_congestion_knee_reduces_aggregate():
    # knee=4: two flows of 4 streams => 8 total, factor = 1/(1+0.5*1) = 2/3
    env, fabric = make_fabric(capacity=100.0, knee=4, slope=0.5, floor=0.1)
    f1 = fabric.start_transfer("src", "dst", 250.0, streams=4)
    f2 = fabric.start_transfer("src", "dst", 250.0, streams=4)
    env.run()
    assert f1.t_done == pytest.approx(7.5)  # 500B at 66.7 B/s aggregate
    assert f2.t_done == pytest.approx(7.5)


def test_setup_delay_charged_before_data():
    model = StreamModel(session_setup=2.0, stream_setup=0.5, ramp_time=1.0, ramp_ref=50)
    env, fabric = make_fabric(capacity=100.0, model=model)
    flow = fabric.start_transfer("src", "dst", 100.0, streams=2)
    env.run(until=flow.done)
    # setup = 2 + 0.5*2 + 1*(1+0) = 4; data = 1s
    assert env.now == pytest.approx(5.0)
    assert flow.t_data_start == pytest.approx(4.0)


def test_ramp_grows_with_contention():
    model = StreamModel(session_setup=0, stream_setup=0, ramp_time=1.0, ramp_ref=10)
    env, fabric = make_fabric(capacity=1000.0, model=model)
    fabric.start_transfer("src", "dst", 1e9, streams=10)  # long-lived
    second = fabric.start_transfer("src", "dst", 0.0, streams=1)
    env.run(until=second.done)
    # second's ramp = 1 * (1 + 10/10) = 2s
    assert env.now == pytest.approx(2.0)


def test_zero_byte_transfer_completes_after_setup():
    env, fabric = make_fabric()
    flow = fabric.start_transfer("src", "dst", 0.0, streams=1)
    env.run(until=flow.done)
    assert flow.state == "done"


def test_abort_fails_waiter_and_frees_capacity():
    env, fabric = make_fabric(capacity=100.0)
    doomed = fabric.start_transfer("src", "dst", 1e6, streams=1)
    survivor = fabric.start_transfer("src", "dst", 300.0, streams=1)
    caught = []

    def killer():
        yield env.timeout(1.0)
        fabric.abort(doomed, RuntimeError("injected"))

    def waiter():
        try:
            yield doomed.done
        except RuntimeError as exc:
            caught.append(str(exc))

    env.process(killer())
    env.process(waiter())
    env.run()
    assert caught == ["injected"]
    # Survivor: 50B in first second, then 250B at full 100 B/s.
    assert survivor.t_done == pytest.approx(3.5)


def test_abort_twice_rejected():
    env, fabric = make_fabric()
    flow = fabric.start_transfer("src", "dst", 1e6, streams=1)
    flow.done.defuse()
    fabric.abort(flow, RuntimeError("x"))
    with pytest.raises(ValueError):
        fabric.abort(flow, RuntimeError("y"))
    env.run()


def test_validation():
    env, fabric = make_fabric()
    with pytest.raises(ValueError):
        fabric.start_transfer("src", "dst", -1, streams=1)
    with pytest.raises(ValueError):
        fabric.start_transfer("src", "dst", 10, streams=0)
    with pytest.raises(KeyError):
        fabric.start_transfer("dst", "src", 10, streams=1)  # no reverse route


def test_peak_streams_tracked():
    env, fabric = make_fabric()
    fabric.start_transfer("src", "dst", 100.0, streams=4)
    fabric.start_transfer("src", "dst", 100.0, streams=6)
    env.run()
    assert fabric.peak_streams["wan"] == 10


def test_streams_between_counts_announced():
    model = StreamModel(session_setup=100.0, stream_setup=0, ramp_time=0)
    env, fabric = make_fabric(model=model)
    fabric.start_transfer("src", "dst", 100.0, streams=7)
    # Still in setup, but its streams are announced on the route.
    assert fabric.streams_between("src", "dst") == 7


def test_bytes_moved_accounting():
    env, fabric = make_fabric(capacity=100.0)
    fabric.start_transfer("src", "dst", 1000.0, streams=2)
    env.run()
    assert fabric.bytes_moved == pytest.approx(1000.0)


def test_two_links_bottleneck_is_binding():
    env = Environment()
    net = Network()
    s = net.add_site("s")
    a, b = net.add_host("a", s), net.add_host("b", s)
    fat = net.add_link(Link("fat", capacity=1000.0))
    thin = net.add_link(Link("thin", capacity=10.0))
    net.add_route(a, b, [fat, thin])
    fabric = FlowNetwork(env, net, StreamModel(0, 0, 0))
    flow = fabric.start_transfer("a", "b", 100.0, streams=4)
    env.run(until=flow.done)
    assert env.now == pytest.approx(10.0)


def test_shared_bottleneck_across_distinct_routes():
    """Two routes sharing one NFS link contend on it."""
    env = Environment()
    net = Network()
    s = net.add_site("s")
    a, b, c = net.add_host("a", s), net.add_host("b", s), net.add_host("c", s)
    la = net.add_link(Link("la", capacity=1000.0))
    lb = net.add_link(Link("lb", capacity=1000.0))
    nfs = net.add_link(Link("nfs", capacity=100.0))
    net.add_route(a, c, [la, nfs])
    net.add_route(b, c, [lb, nfs])
    fabric = FlowNetwork(env, net, StreamModel(0, 0, 0))
    f1 = fabric.start_transfer("a", "c", 500.0, streams=1)
    f2 = fabric.start_transfer("b", "c", 500.0, streams=1)
    env.run()
    assert f1.t_done == pytest.approx(10.0)
    assert f2.t_done == pytest.approx(10.0)


def test_deterministic_replay():
    def run_once():
        env, fabric = make_fabric(capacity=77.0, knee=6)
        flows = [
            fabric.start_transfer("src", "dst", 100.0 * (i + 1), streams=1 + i % 3)
            for i in range(6)
        ]
        env.run()
        return [f.t_done for f in flows]

    assert run_once() == run_once()
