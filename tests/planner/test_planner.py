"""Unit tests for the planner (stage-in/out, cleanup, priorities)."""

import pytest

from repro.planner import JobKind, PlanningError, PlanOptions
from repro.workflow import File, Job, Workflow, augmented_montage, montage_workflow
from repro.workflow.montage import MB, MontageConfig

from tests.planner.conftest import register_montage_inputs


def small_montage():
    return montage_workflow(MontageConfig(n_images=9, name="m9"))


def test_plan_montage_staging_job_count(planner, replicas):
    wf = montage_workflow()  # 89 images, the paper config
    register_montage_inputs(replicas, wf)
    plan = planner.plan(wf, "isi", PlanOptions(cleanup=False))
    counts = plan.kind_counts()
    assert counts["stage-in"] == 89  # the paper's 89 data staging jobs
    assert counts["compute"] == len(wf)
    assert "stage-out" not in counts  # outputs stay on the execution site


def test_plan_augmented_each_staging_job_has_extra_file(planner, replicas):
    wf = augmented_montage(100 * MB)
    register_montage_inputs(replicas, wf)
    plan = planner.plan(wf, "isi", PlanOptions(cleanup=False))
    stage_ins = plan.by_kind(JobKind.STAGE_IN)
    assert len(stage_ins) == 89
    for si in stage_ins:
        extras = [t for t in si.transfers if t.lfn.startswith("montage_extra_")]
        assert len(extras) == 1
        assert extras[0].src_url.startswith("gsiftp://fg-vm/")
        assert extras[0].nbytes == 100 * MB
        images = [t for t in si.transfers if t.lfn.startswith("raw_")]
        assert len(images) == 1
        assert images[0].src_url.startswith("http://web-isi/")


def test_shared_input_staged_once(planner, replicas):
    """region.hdr feeds every mProjectPP but is staged by exactly one job."""
    wf = small_montage()
    register_montage_inputs(replicas, wf)
    plan = planner.plan(wf, "isi", PlanOptions(cleanup=False))
    carriers = [
        si for si in plan.by_kind(JobKind.STAGE_IN)
        if any(t.lfn == "region.hdr" for t in si.transfers)
    ]
    assert len(carriers) == 1
    # Every other mProjectPP depends on that carrier's stage-in.
    carrier = carriers[0]
    dependents = plan.children(carrier.id)
    assert len(dependents) >= 2


def test_stage_in_precedes_its_compute_job(planner, replicas):
    wf = small_montage()
    register_montage_inputs(replicas, wf)
    plan = planner.plan(wf, "isi")
    for si in plan.by_kind(JobKind.STAGE_IN):
        compute_id = si.source_jobs[0]
        assert compute_id in plan.children(si.id)


def test_data_dependencies_preserved(planner, replicas):
    wf = small_montage()
    register_montage_inputs(replicas, wf)
    plan = planner.plan(wf, "isi", PlanOptions(cleanup=False))
    assert "mConcatFit" in plan.children("mDiffFit_0000")
    assert "mBgModel" in plan.children("mConcatFit")


def test_destination_urls_use_site_scratch(planner, replicas):
    wf = small_montage()
    register_montage_inputs(replicas, wf)
    plan = planner.plan(wf, "isi", PlanOptions(cleanup=False))
    for si in plan.by_kind(JobKind.STAGE_IN):
        for t in si.transfers:
            assert t.dst_url == f"gsiftp://obelix/nfs/scratch/{t.lfn}"


def test_local_replica_needs_no_transfer(planner, replicas):
    wf = Workflow("w")
    wf.add_job(Job("j", "proc", inputs=(File("already_here.dat", 10),)))
    replicas.register("already_here.dat", "isi", "gsiftp://obelix/nfs/scratch/already_here.dat")
    plan = planner.plan(wf, "isi", PlanOptions(cleanup=False))
    assert plan.kind_counts().get("stage-in", 0) == 0


def test_missing_replica_is_planning_error(planner, replicas):
    wf = Workflow("w")
    wf.add_job(Job("j", "proc", inputs=(File("ghost.dat", 10),)))
    with pytest.raises(PlanningError, match="no replica"):
        planner.plan(wf, "isi")


def test_missing_transformation_is_planning_error(planner, replicas):
    wf = Workflow("w")
    wf.add_job(Job("j", "mystery-transform"))
    with pytest.raises(PlanningError, match="transformation"):
        planner.plan(wf, "isi")


def test_site_without_slots_rejected(planner, replicas):
    wf = Workflow("w")
    wf.add_job(Job("j", "proc"))
    with pytest.raises(PlanningError, match="no compute slots"):
        planner.plan(wf, "futuregrid")


def test_stage_out_to_other_site(planner, replicas):
    wf = small_montage()
    register_montage_inputs(replicas, wf)
    plan = planner.plan(
        wf, "isi", PlanOptions(cleanup=False, output_site="archive")
    )
    stage_outs = plan.by_kind(JobKind.STAGE_OUT)
    assert [t.lfn for so in stage_outs for t in so.transfers] == ["mosaic.jpg"]
    so = stage_outs[0]
    assert so.transfers[0].src_url.startswith("gsiftp://obelix/")
    assert so.transfers[0].dst_url.startswith("gsiftp://archive-host/")
    assert plan.parents(so.id) == ["mJPEG"]


def test_cleanup_jobs_gated_on_all_consumers(planner, replicas):
    wf = small_montage()
    register_montage_inputs(replicas, wf)
    plan = planner.plan(wf, "isi", PlanOptions(cleanup=True))
    # corrections.tbl is consumed by every mBackground job.
    cleanup = plan.jobs["cleanup_corrections.tbl"]
    assert cleanup.kind == JobKind.CLEANUP
    parents = plan.parents(cleanup.id)
    assert len(parents) == 9
    assert all(p.startswith("mBackground_") for p in parents)
    assert cleanup.cleanup_files == [
        ("corrections.tbl", "gsiftp://obelix/nfs/scratch/corrections.tbl")
    ]


def test_cleanup_for_unconsumed_output_waits_for_producer(planner, replicas):
    wf = small_montage()
    register_montage_inputs(replicas, wf)
    plan = planner.plan(wf, "isi", PlanOptions(cleanup=True))
    assert plan.parents("cleanup_mosaic.jpg") == ["mJPEG"]


def test_cleanup_disabled(planner, replicas):
    wf = small_montage()
    register_montage_inputs(replicas, wf)
    plan = planner.plan(wf, "isi", PlanOptions(cleanup=False))
    assert "cleanup" not in plan.kind_counts()


def test_priorities_attached_and_inherited(planner, replicas):
    wf = small_montage()
    register_montage_inputs(replicas, wf)
    plan = planner.plan(
        wf, "isi", PlanOptions(cleanup=False, priority_algorithm="dependent")
    )
    # mProjectPP has many descendants; its stage-in inherits the priority.
    si = plan.jobs["stage_in_mProjectPP_0"]
    assert si.priority == plan.jobs["mProjectPP_0"].priority > 0
    assert plan.jobs["mJPEG"].priority == 0


def test_unique_workflow_ids(planner, replicas):
    wf = small_montage()
    register_montage_inputs(replicas, wf)
    p1 = planner.plan(wf, "isi")
    p2 = planner.plan(wf, "isi")
    assert p1.workflow_id != p2.workflow_id


def test_plan_options_validation():
    with pytest.raises(PlanningError):
        PlanOptions(cluster_factor=0)
    with pytest.raises(PlanningError):
        PlanOptions(priority_algorithm="nope")


def test_plan_is_acyclic(planner, replicas):
    wf = augmented_montage(10 * MB, MontageConfig(n_images=16, name="m16"))
    register_montage_inputs(replicas, wf)
    plan = planner.plan(wf, "isi", PlanOptions(cleanup=True))
    plan.validate()
    order = plan.topological_order()
    position = {jid: i for i, jid in enumerate(order)}
    for parent, child in plan.edges():
        assert position[parent] < position[child]


def test_link_costs_pick_cheapest_replica_source(planner, replicas):
    """With a link-cost model, the planner stages from the nearest
    replica; without one, the deterministic (site, url) order stands."""
    from repro.datacatalog.linkcost import LinkCostModel

    wf = Workflow("one")
    wf.add_job(Job("proc", "process", inputs=(File("in.dat", MB),),
                   outputs=(File("out.dat", MB),)))
    replicas.register("in.dat", "futuregrid", "gsiftp://fg-vm/data/in.dat")
    replicas.register("in.dat", "archive", "gsiftp://archive-host/archive/in.dat")

    plan = planner.plan(wf, "isi", PlanOptions(cleanup=False))
    spec = plan.by_kind(JobKind.STAGE_IN)[0].transfers[0]
    assert spec.src_url == "gsiftp://archive-host/archive/in.dat"

    costs = LinkCostModel({("futuregrid", "isi"): 1.0})
    plan = planner.plan(
        wf, "isi", PlanOptions(cleanup=False, link_costs=costs)
    )
    spec = plan.by_kind(JobKind.STAGE_IN)[0].transfers[0]
    assert spec.src_url == "gsiftp://fg-vm/data/in.dat"
