"""Unit tests for horizontal clustering of staging jobs (paper Fig. 2)."""

import pytest

from repro.planner import JobKind, PlanningError, PlanOptions, cluster_staging_jobs
from repro.workflow import montage_workflow
from repro.workflow.montage import MontageConfig

from tests.planner.conftest import register_montage_inputs


def planned_montage(planner, replicas, n_images=9, **opts):
    wf = montage_workflow(MontageConfig(n_images=n_images, name=f"m{n_images}"))
    register_montage_inputs(replicas, wf)
    return planner.plan(wf, "isi", PlanOptions(cleanup=False, **opts))


def test_cluster_factor_bounds_staging_jobs_per_level(planner, replicas):
    plan = planned_montage(planner, replicas, n_images=9, cluster_factor=2)
    stage_ins = plan.by_kind(JobKind.STAGE_IN)
    # All 9 stage-ins sit at level 0 -> merged into 2 clusters.
    assert len(stage_ins) == 2
    assert plan.cluster_factor == 2


def test_clustering_preserves_all_transfers(planner, replicas):
    unclustered = planned_montage(planner, replicas, n_images=9)
    clustered = planned_montage(planner, replicas, n_images=9, cluster_factor=3)

    def transfer_set(plan):
        return sorted(
            (t.lfn, t.src_url, t.dst_url, t.nbytes)
            for j in plan.by_kind(JobKind.STAGE_IN)
            for t in j.transfers
        )

    assert transfer_set(unclustered) == transfer_set(clustered)


def test_clustering_rewires_edges_to_cluster(planner, replicas):
    plan = planned_montage(planner, replicas, n_images=9, cluster_factor=2)
    for si in plan.by_kind(JobKind.STAGE_IN):
        children = plan.children(si.id)
        assert children, "cluster feeds at least one compute job"
        assert all(plan.jobs[c].kind == JobKind.COMPUTE for c in children)
    plan.validate()


def test_clustering_factor_larger_than_jobs_is_identity_count(planner, replicas):
    plan = planned_montage(planner, replicas, n_images=4, cluster_factor=100)
    assert len(plan.by_kind(JobKind.STAGE_IN)) == 4


def test_clustering_factor_one_serializes_level(planner, replicas):
    plan = planned_montage(planner, replicas, n_images=9, cluster_factor=1)
    stage_ins = plan.by_kind(JobKind.STAGE_IN)
    assert len(stage_ins) == 1
    assert len(stage_ins[0].transfers) == 10  # 9 images + region.hdr


def test_cluster_source_jobs_tracked(planner, replicas):
    plan = planned_montage(planner, replicas, n_images=9, cluster_factor=2)
    sources = sorted(
        s for si in plan.by_kind(JobKind.STAGE_IN) for s in si.source_jobs
    )
    assert len(sources) == 9
    assert all(s.startswith("mProjectPP_") for s in sources)


def test_invalid_factor_rejected(planner, replicas):
    plan = planned_montage(planner, replicas, n_images=4)
    with pytest.raises(PlanningError):
        cluster_staging_jobs(plan, 0)
