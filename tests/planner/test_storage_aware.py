"""Unit + end-to-end tests for storage-constrained staging."""

import pytest

from repro.experiments import ExperimentConfig, run_cell
from repro.planner import JobKind, PlanningError, PlanOptions, constrain_staging_footprint
from repro.workflow import augmented_montage
from repro.workflow.montage import MB, MontageConfig

from tests.planner.conftest import register_montage_inputs

EXTRA = 10 * MB


def planned(planner, replicas, n_images=8, max_staging_bytes=None):
    wf = augmented_montage(EXTRA, MontageConfig(n_images=n_images, name=f"m{n_images}"))
    register_montage_inputs(replicas, wf)
    return planner.plan(
        wf, "isi", PlanOptions(cleanup=True, max_staging_bytes=max_staging_bytes)
    )


def test_options_validation():
    with pytest.raises(PlanningError):
        PlanOptions(max_staging_bytes=0)
    with pytest.raises(PlanningError):
        PlanOptions(max_staging_bytes=1e9, cleanup=False)
    with pytest.raises(PlanningError):
        PlanOptions(max_staging_bytes=1e9, cluster_factor=4)


def test_gating_edges_added_and_plan_acyclic(planner, replicas):
    # 8 units x ~12 MB exclusive bytes; budget of 30 MB forces batching.
    plan = planned(planner, replicas, max_staging_bytes=30 * MB)
    plan.validate()
    gated = [
        si for si in plan.by_kind(JobKind.STAGE_IN)
        if any(p.startswith("cleanup_") for p in plan.parents(si.id))
    ]
    assert gated, "expected later batches to be gated on earlier cleanups"


def test_generous_budget_adds_no_gates(planner, replicas):
    plan = planned(planner, replicas, max_staging_bytes=10_000 * MB)
    for si in plan.by_kind(JobKind.STAGE_IN):
        assert not any(p.startswith("cleanup_") for p in plan.parents(si.id))


def test_infeasible_budget_rejected(planner, replicas):
    with pytest.raises(PlanningError, match="infeasible"):
        planned(planner, replicas, max_staging_bytes=5 * MB)  # < one unit


def test_requires_cleanup_jobs(planner, replicas):
    wf = augmented_montage(EXTRA, MontageConfig(n_images=4, name="m4"))
    register_montage_inputs(replicas, wf)
    plan = planner.plan(wf, "isi", PlanOptions(cleanup=False))
    with pytest.raises(PlanningError, match="requires cleanup"):
        constrain_staging_footprint(plan, 100 * MB)


def test_capacity_validation(planner, replicas):
    plan = planned(planner, replicas)
    with pytest.raises(PlanningError):
        constrain_staging_footprint(plan, 0)


# ------------------------------------------------------------ end to end
def test_simulated_footprint_respects_budget():
    """The whole point: with the constraint, the measured peak footprint of
    staged inputs stays near the budget instead of the full input set."""
    budget = 60 * MB
    unconstrained = run_cell(
        ExperimentConfig(extra_file_mb=10, n_images=16, seed=9)
    )
    constrained = run_cell(
        ExperimentConfig(
            extra_file_mb=10, n_images=16, seed=9, max_staging_bytes=budget
        )
    )
    assert constrained.success
    # Unconstrained: all 16 x 12 MB inputs (+ intermediates) co-resident.
    assert unconstrained.peak_footprint > 1.5 * budget
    # Constrained: staged inputs bounded by the budget; intermediates
    # (projected images etc.) ride on top, so allow their share.
    intermediates_allowance = 16 * 2 * 4e6  # proj + corr per image
    assert constrained.peak_footprint <= budget + intermediates_allowance
    # Feasibility costs time.
    assert constrained.makespan >= unconstrained.makespan
