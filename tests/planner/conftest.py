"""Shared planning fixtures: the paper's catalog setup in miniature."""

import pytest

from repro.catalogs import ReplicaCatalog, SiteCatalog, SiteEntry
from repro.planner import Planner
from repro.workflow.montage import EXTRA_FILE_PREFIX, montage_transformations


@pytest.fixture
def sites():
    sc = SiteCatalog()
    sc.add(
        SiteEntry(
            name="isi",
            storage_host="obelix",
            scratch_dir="/nfs/scratch",
            nodes=9,
            cores_per_node=6,
        )
    )
    sc.add(SiteEntry(name="futuregrid", storage_host="fg-vm", scratch_dir="/data"))
    sc.add(SiteEntry(name="archive", storage_host="archive-host", scratch_dir="/archive"))
    return sc


@pytest.fixture
def transformations():
    tc = montage_transformations()
    for extra in ("gen", "proc", "sink", "split", "join", "process"):
        tc.add(extra, 1.0, 0.1)
    return tc


def register_montage_inputs(replicas: ReplicaCatalog, workflow) -> None:
    """Put raw images + header on the local web host; extras on FutureGrid."""
    for f in workflow.input_files():
        if f.lfn.startswith(EXTRA_FILE_PREFIX):
            replicas.register(f.lfn, "futuregrid", f"gsiftp://fg-vm/data/{f.lfn}")
        else:
            replicas.register(f.lfn, "isi-web", f"http://web-isi/images/{f.lfn}")


@pytest.fixture
def replicas():
    return ReplicaCatalog()


@pytest.fixture
def planner(sites, transformations, replicas):
    return Planner(sites, transformations, replicas)
