"""REST observability: request ids, access log, spans, /policy/metrics."""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.obs import Tracer
from repro.policy import PolicyConfig, PolicyService
from repro.policy.client import HTTPPolicyClient
from repro.policy.rest import PolicyRestServer


@pytest.fixture
def tracer():
    return Tracer(clock=time.monotonic)


@pytest.fixture
def server(tracer):
    service = PolicyService(
        PolicyConfig(policy="greedy", default_streams=4, max_streams=50)
    )
    with PolicyRestServer(service, tracer=tracer) as srv:
        yield srv


def get(url, headers=None):
    request = urllib.request.Request(url, headers=headers or {})
    return urllib.request.urlopen(request, timeout=5)


def test_client_request_id_is_echoed(server):
    with get(f"{server.url}/policy/status",
             headers={"X-Repro-Request-Id": "my-rid-1"}) as response:
        assert response.headers["X-Repro-Request-Id"] == "my-rid-1"


def test_server_generates_request_ids_when_absent(server):
    with get(f"{server.url}/policy/status") as response:
        first = response.headers["X-Repro-Request-Id"]
    with get(f"{server.url}/policy/status") as response:
        second = response.headers["X-Repro-Request-Id"]
    assert first.startswith("req-")
    assert second.startswith("req-")
    assert first != second


def test_error_bodies_carry_the_request_id(server):
    request = urllib.request.Request(
        f"{server.url}/policy/transfers",
        data=b"not json",
        headers={"Content-Type": "application/json",
                 "X-Repro-Request-Id": "bad-1"},
        method="POST",
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request, timeout=5)
    assert excinfo.value.code == 400
    body = json.loads(excinfo.value.read())
    assert body["request_id"] == "bad-1"
    assert "error" in body


def test_404_body_carries_request_id_too(server):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        get(f"{server.url}/no/such", headers={"X-Repro-Request-Id": "miss-1"})
    assert excinfo.value.code == 404
    assert json.loads(excinfo.value.read())["request_id"] == "miss-1"


def test_access_log_records_every_request_including_errors(server):
    get(f"{server.url}/policy/status",
        headers={"X-Repro-Request-Id": "ok-1"}).close()
    with pytest.raises(urllib.error.HTTPError):
        get(f"{server.url}/nope", headers={"X-Repro-Request-Id": "err-1"})
    log = server.access_log
    by_rid = {entry["request_id"]: entry for entry in log}
    assert by_rid["ok-1"]["status"] == 200
    assert by_rid["ok-1"]["method"] == "GET"
    assert by_rid["ok-1"]["path"] == "/policy/status"
    assert by_rid["ok-1"]["latency_s"] >= 0
    assert by_rid["ok-1"]["host"]
    assert by_rid["err-1"]["status"] == 404


def test_spans_emitted_for_success_and_error_paths(server, tracer):
    get(f"{server.url}/policy/status").close()
    with pytest.raises(urllib.error.HTTPError):
        get(f"{server.url}/nope")
    request = urllib.request.Request(
        f"{server.url}/policy/transfers", data=b"{", method="POST"
    )
    with pytest.raises(urllib.error.HTTPError):
        urllib.request.urlopen(request, timeout=5)

    spans = tracer.spans()
    statuses = {(s["name"], s["args"]["status"]) for s in spans}
    assert ("GET /policy/status", 200) in statuses
    assert ("GET /nope", 404) in statuses
    assert ("POST /policy/transfers", 400) in statuses
    for span in spans:
        assert span["cat"] == "rest"
        assert span["args"]["request_id"]
        assert span["dur"] >= 0


def test_metrics_endpoint_serves_prometheus_text(server):
    client = HTTPPolicyClient(server.url)
    client.submit_transfers("wf1", "j1", [{
        "lfn": "f", "src_url": "gsiftp://fg-vm/data/f",
        "dst_url": "gsiftp://obelix/scratch/f", "nbytes": 10,
    }])
    with get(f"{server.url}/policy/metrics") as response:
        assert response.headers["Content-Type"].startswith("text/plain")
        text = response.read().decode()
    assert "# TYPE repro_policy_transfers_total counter" in text
    assert 'repro_policy_transfers_total{event="approved"} 1' in text
    assert "# TYPE repro_policy_call_seconds histogram" in text
    assert "repro_policy_rule_firings_total" in text


def test_http_policy_client_sends_request_ids(server):
    client = HTTPPolicyClient(server.url)
    client.status()
    rids = [entry["request_id"] for entry in server.access_log]
    assert any(rid.startswith("cli-") for rid in rids)


def test_access_log_is_bounded():
    from repro.policy.rest import _ServerState

    state = _ServerState(max_request_bytes=100, access_log_cap=3)
    for i in range(5):
        state.log_request({"request_id": f"r{i}"})
    assert [e["request_id"] for e in state.access_log] == ["r2", "r3", "r4"]


def test_metrics_endpoint_exports_rule_profile_families():
    """With a RuleProfiler attached, /policy/metrics gains per-rule
    fire counts and match/action wall-time gauges."""
    from repro.obs import RuleProfiler

    profiler = RuleProfiler()
    service = PolicyService(
        PolicyConfig(policy="greedy", default_streams=4, max_streams=50),
        profiler=profiler,
    )
    with PolicyRestServer(service) as srv:
        client = HTTPPolicyClient(srv.url)
        client.submit_transfers("wf1", "j1", [{
            "lfn": "f", "src_url": "gsiftp://fg-vm/data/f",
            "dst_url": "gsiftp://obelix/scratch/f", "nbytes": 10,
        }])
        with get(f"{srv.url}/policy/metrics") as response:
            text = response.read().decode()
    assert "# TYPE repro_policy_rule_profile_fires gauge" in text
    assert ('repro_policy_rule_profile_fires'
            '{rule="Insert new transfers into policy memory"}') in text
    assert "repro_policy_rule_profile_match_seconds" in text
    assert "repro_policy_rule_profile_action_seconds" in text


def test_rule_profile_families_absent_without_profiler(server):
    with get(f"{server.url}/policy/metrics") as response:
        text = response.read().decode()
    assert 'repro_policy_rule_profile_fires{' not in text
