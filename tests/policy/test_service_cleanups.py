"""Tests of cleanup handling: detach, protection, duplicates (Table I)."""

from repro.policy.model import StagedFileFact

from tests.policy.conftest import spec


def stage(service, workflow, lfn, job="j"):
    advice = service.submit_transfers(workflow, job, [spec(lfn)])
    service.complete_transfers(done=[advice[0].tid])
    return advice[0].dst_url


def test_cleanup_of_unshared_file_approved(greedy_service):
    url = stage(greedy_service, "wf1", "f")
    advice = greedy_service.submit_cleanups("wf1", "cleanup_f", [("f", url)])
    assert advice[0].action == "delete"


def test_cleanup_of_shared_file_skipped(greedy_service):
    url = stage(greedy_service, "wf1", "shared")
    # wf2 now also uses the file (its transfer is skipped as staged).
    greedy_service.submit_transfers("wf2", "j2", [spec("shared")])
    advice = greedy_service.submit_cleanups("wf1", "c", [("shared", url)])
    assert advice[0].action == "skip"
    assert "in use" in advice[0].reason
    # wf1 was detached: only wf2 remains a user.
    resource = greedy_service.memory.facts_of(StagedFileFact)[0]
    assert resource.users == {"wf2"}


def test_cleanup_approved_after_all_users_detach(greedy_service):
    url = stage(greedy_service, "wf1", "shared")
    greedy_service.submit_transfers("wf2", "j2", [spec("shared")])
    greedy_service.submit_cleanups("wf1", "c1", [("shared", url)])  # skipped
    advice = greedy_service.submit_cleanups("wf2", "c2", [("shared", url)])
    assert advice[0].action == "delete"


def test_duplicate_cleanup_skipped(greedy_service):
    url = stage(greedy_service, "wf1", "f")
    first = greedy_service.submit_cleanups("wf1", "c1", [("f", url)])
    assert first[0].action == "delete"
    # The first cleanup is still in progress; a duplicate request is skipped.
    second = greedy_service.submit_cleanups("wf1", "c2", [("f", url)])
    assert second[0].action == "skip"
    assert "already handling" in second[0].reason


def test_cleanup_completion_drops_resource_allowing_restage(greedy_service):
    url = stage(greedy_service, "wf1", "f")
    advice = greedy_service.submit_cleanups("wf1", "c", [("f", url)])
    greedy_service.complete_cleanups([advice[0].cid])
    assert greedy_service.staging_state("f", url) == "unknown"
    restage = greedy_service.submit_transfers("wf1", "j2", [spec("f")])
    assert restage[0].action == "transfer"


def test_cleanup_of_untracked_file_approved(greedy_service):
    # Intermediate files created on-site never pass through the service.
    advice = greedy_service.submit_cleanups(
        "wf1", "c", [("proj_1.fits", "gsiftp://obelix/scratch/proj_1.fits")]
    )
    assert advice[0].action == "delete"


def test_unregister_workflow_releases_files(greedy_service):
    url = stage(greedy_service, "wf1", "shared")
    greedy_service.submit_transfers("wf2", "j", [spec("shared")])
    greedy_service.unregister_workflow("wf2")
    advice = greedy_service.submit_cleanups("wf1", "c", [("shared", url)])
    assert advice[0].action == "delete"


def test_cleanup_stats(greedy_service):
    url = stage(greedy_service, "wf1", "f")
    greedy_service.submit_transfers("wf2", "j", [spec("f")])
    greedy_service.submit_cleanups("wf1", "c", [("f", url)])
    snap = greedy_service.snapshot()
    assert snap["stats"]["cleanups_submitted"] == 1
    assert snap["stats"]["cleanups_skipped"] == 1
