"""Integration tests: real HTTP against the RESTful web interface."""

import json
import urllib.error
import urllib.request

import pytest

from repro.policy import PolicyConfig, PolicyService
from repro.policy.client import HTTPPolicyClient
from repro.policy.rest import PolicyRestServer
from repro.policy.rest_async import AsyncPolicyRestServer

FRONTENDS = [
    pytest.param(PolicyRestServer, id="threaded"),
    pytest.param(AsyncPolicyRestServer, id="async"),
]


@pytest.fixture(params=FRONTENDS)
def server(request):
    service = PolicyService(PolicyConfig(policy="greedy", default_streams=4, max_streams=50))
    with request.param(service) as srv:
        yield srv


@pytest.fixture
def client(server):
    return HTTPPolicyClient(server.url)


def transfers_for(*lfns):
    return [
        {
            "lfn": lfn,
            "src_url": f"gsiftp://fg-vm/data/{lfn}",
            "dst_url": f"gsiftp://obelix/scratch/{lfn}",
            "nbytes": 1000,
        }
        for lfn in lfns
    ]


def test_full_transfer_lifecycle_over_http(client):
    advice = client.submit_transfers("wf1", "j1", transfers_for("a", "b"))
    assert [a.action for a in advice] == ["transfer", "transfer"]
    assert all(a.streams == 4 for a in advice)

    assert client.transfer_state(advice[0].tid) == "in_progress"
    client.complete_transfers(done=[a.tid for a in advice])
    assert client.transfer_state(advice[0].tid) == "done"
    assert client.staging_state("a", "gsiftp://obelix/scratch/a") == "staged"

    # A second workflow sees the staged file and is told to skip.
    again = client.submit_transfers("wf2", "j2", transfers_for("a"))
    assert again[0].action == "skip"


def test_cleanup_lifecycle_over_http(client):
    advice = client.submit_transfers("wf1", "j1", transfers_for("f"))
    client.complete_transfers(done=[advice[0].tid])
    cleanups = client.submit_cleanups("wf1", "c", [("f", "gsiftp://obelix/scratch/f")])
    assert cleanups[0].action == "delete"
    ack = client.complete_cleanups([cleanups[0].cid])
    assert ack["acknowledged"] == 1


def test_priorities_and_status_over_http(client):
    client.register_priorities("wf1", {"stage_in_x": 9})
    status = client.status()
    assert status["policy"] == "greedy"
    assert status["memory"].get("JobPriorityFact") == 1
    client.unregister_workflow("wf1")
    assert "JobPriorityFact" not in client.status()["memory"]


def test_malformed_request_is_http_400(server):
    request = urllib.request.Request(
        f"{server.url}/policy/transfers",
        data=json.dumps({"job": "j"}).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request, timeout=5)
    assert excinfo.value.code == 400
    assert "workflow" in json.loads(excinfo.value.read())["error"]


def test_invalid_json_is_http_400(server):
    request = urllib.request.Request(
        f"{server.url}/policy/transfers",
        data=b"{broken",
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request, timeout=5)
    assert excinfo.value.code == 400


def test_unknown_endpoint_is_http_404(server):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(f"{server.url}/policy/nope", timeout=5)
    assert excinfo.value.code == 404


def test_unknown_transfer_id_state(client):
    assert client.transfer_state(424242) == "unknown"


@pytest.mark.parametrize("frontend", FRONTENDS)
def test_server_restart_guard(frontend):
    service = PolicyService(PolicyConfig())
    server = frontend(service).start()
    try:
        with pytest.raises(RuntimeError):
            server.start()
    finally:
        server.stop()
    server.stop()  # idempotent


def test_concurrent_http_clients_are_serialized_safely(server):
    """Multiple threads hammer the service; the internal lock keeps the
    single-threaded rule engine consistent (every request answered, all
    transfers eventually completed)."""
    import threading

    client = HTTPPolicyClient(server.url)
    errors = []
    approved_tids = []
    lock = threading.Lock()

    def worker(worker_id):
        try:
            for i in range(10):
                advice = client.submit_transfers(
                    f"wf{worker_id}",
                    f"job{worker_id}_{i}",
                    transfers_for(f"w{worker_id}_f{i}"),
                )
                with lock:
                    approved_tids.extend(
                        a.tid for a in advice if a.action == "transfer"
                    )
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(w,)) for w in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert not errors
    assert len(approved_tids) == 40
    assert len(set(approved_tids)) == 40  # unique ids under concurrency
    client.complete_transfers(done=approved_tids)
    status = client.status()
    assert status["memory"].get("TransferFact") is None


def _raw_request(server, payload: bytes) -> tuple[int, dict]:
    """Send raw bytes over a socket; return (status, decoded JSON body)."""
    import socket
    from urllib.parse import urlsplit

    parts = urlsplit(server.url)
    with socket.create_connection((parts.hostname, parts.port), timeout=5) as sock:
        sock.sendall(payload)
        sock.settimeout(5)
        chunks = []
        while True:
            try:
                chunk = sock.recv(65536)
            except TimeoutError:
                break
            if not chunk:
                break
            chunks.append(chunk)
            if b"\r\n\r\n" in b"".join(chunks):
                head, _, body = b"".join(chunks).partition(b"\r\n\r\n")
                declared = 0
                for line in head.split(b"\r\n"):
                    if line.lower().startswith(b"content-length:"):
                        declared = int(line.split(b":", 1)[1])
                if len(body) >= declared:
                    break
    raw = b"".join(chunks)
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, json.loads(body or b"{}")


def test_non_numeric_content_length_is_http_400(server):
    status, doc = _raw_request(
        server,
        b"POST /policy/transfers HTTP/1.1\r\n"
        b"Host: localhost\r\n"
        b"Content-Type: application/json\r\n"
        b"Content-Length: banana\r\n"
        b"\r\n",
    )
    assert status == 400
    assert "Content-Length" in doc["error"]


def test_negative_content_length_is_http_400(server):
    status, doc = _raw_request(
        server,
        b"POST /policy/transfers HTTP/1.1\r\n"
        b"Host: localhost\r\n"
        b"Content-Length: -5\r\n"
        b"\r\n",
    )
    assert status == 400
    assert "Content-Length" in doc["error"]


def test_non_numeric_content_length_on_get_is_handled(server):
    # GET ignores the body, but a bogus header must not crash the handler.
    status, doc = _raw_request(
        server,
        b"GET /policy/status HTTP/1.1\r\n"
        b"Host: localhost\r\n"
        b"Content-Length: banana\r\n"
        b"\r\n",
    )
    assert status == 200
    assert "policy" in doc


def test_non_dict_json_body_is_http_400(server):
    request = urllib.request.Request(
        f"{server.url}/policy/transfers",
        data=b"[1, 2, 3]",
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request, timeout=5)
    assert excinfo.value.code == 400
    assert "JSON object" in json.loads(excinfo.value.read())["error"]


def test_internal_error_is_http_500_not_dropped_connection(server):
    # Sabotage the controller to simulate an unexpected bug; the handler
    # must answer 500 + JSON instead of severing the connection.
    original = server.controller.status
    server.controller.status = lambda: 1 / 0
    try:
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{server.url}/policy/status", timeout=5)
        assert excinfo.value.code == 500
        assert "internal error" in json.loads(excinfo.value.read())["error"]
    finally:
        server.controller.status = original
    # The server is still alive for the next request.
    with urllib.request.urlopen(f"{server.url}/policy/status", timeout=5) as resp:
        assert resp.status == 200


def test_post_internal_error_is_http_500(server):
    original = server.controller.submit_transfers
    server.controller.submit_transfers = lambda payload: {}["boom"]
    try:
        request = urllib.request.Request(
            f"{server.url}/policy/transfers",
            data=json.dumps({"workflow": "w", "job": "j", "transfers": []}).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5)
        assert excinfo.value.code == 500
    finally:
        server.controller.submit_transfers = original


def test_explain_over_http(client, server):
    """Both frontends serve the decision-provenance record for a tid."""
    advice = client.submit_transfers("wf1", "j1", transfers_for("x", "y"))
    tid = advice[0].tid
    with urllib.request.urlopen(
        f"{server.url}/policy/explain/{tid}", timeout=5
    ) as resp:
        record = json.loads(resp.read())
    assert record["kind"] == "transfer" and record["tid"] == tid
    assert record["advice"]["action"] == "transfer"
    assert record["firings"] and record["digest"]
    # The REST record is exactly what the in-process API returns.
    assert record == server.service.explain(tid)


def test_explain_unknown_tid_is_http_404(client, server):
    client.submit_transfers("wf1", "j1", transfers_for("z"))
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(f"{server.url}/policy/explain/424242", timeout=5)
    assert excinfo.value.code == 404
    body = json.loads(excinfo.value.read())
    assert "424242" in body["error"]


def test_explain_non_integer_tid_is_http_400(server):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(f"{server.url}/policy/explain/abc", timeout=5)
    assert excinfo.value.code == 400
