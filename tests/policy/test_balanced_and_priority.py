"""Tests of the balanced allocation pack and structure-based priorities."""

from repro.policy import PolicyConfig, PolicyService

from tests.policy.conftest import spec


def balanced_service(cluster_count=2, max_streams=20, default=8, cluster_threshold=None):
    return PolicyService(
        PolicyConfig(
            policy="balanced",
            default_streams=default,
            max_streams=max_streams,
            cluster_count=cluster_count,
            cluster_threshold=cluster_threshold,
        )
    )


def test_balanced_each_cluster_gets_own_share():
    service = balanced_service(cluster_count=2, max_streams=20, default=8)
    # Cluster A exhausts its share of 10.
    a1 = service.submit_transfers("wf", "cA", [spec("a1", cluster="cA")])[0]
    a2 = service.submit_transfers("wf", "cA", [spec("a2", cluster="cA")])[0]
    a3 = service.submit_transfers("wf", "cA", [spec("a3", cluster="cA")])[0]
    assert (a1.streams, a2.streams, a3.streams) == (8, 2, 1)
    # Cluster B's share was reserved: late arrival still gets a full grant.
    b1 = service.submit_transfers("wf", "cB", [spec("b1", cluster="cB")])[0]
    assert b1.streams == 8


def test_balanced_not_starved_unlike_greedy():
    """The scenario motivating balanced: greedy lets an early cluster hog."""
    greedy = PolicyService(PolicyConfig(policy="greedy", default_streams=10, max_streams=20))
    g = [
        greedy.submit_transfers("wf", "cA", [spec(f"g{i}", cluster="cA")])[0].streams
        for i in range(2)
    ]
    g_late = greedy.submit_transfers("wf", "cB", [spec("gl", cluster="cB")])[0].streams
    assert g == [10, 10] and g_late == 1  # cluster B starved by greedy

    balanced = balanced_service(cluster_count=2, max_streams=20, default=10)
    b = [
        balanced.submit_transfers("wf", "cA", [spec(f"b{i}", cluster="cA")])[0].streams
        for i in range(2)
    ]
    b_late = balanced.submit_transfers("wf", "cB", [spec("bl", cluster="cB")])[0].streams
    assert b == [10, 1] and b_late == 10  # cluster B's share preserved


def test_balanced_cluster_defaults_to_job_id():
    service = balanced_service(cluster_count=2, max_streams=20, default=8)
    a = service.submit_transfers("wf", "jobX", [spec("a")])[0]
    assert a.streams == 8
    # Same job id = same cluster; its share depletes.
    b = service.submit_transfers("wf", "jobX", [spec("b")])[0]
    assert b.streams == 2


def test_balanced_explicit_cluster_threshold():
    service = balanced_service(cluster_count=4, max_streams=100, default=8,
                               cluster_threshold=8)
    a = service.submit_transfers("wf", "c1", [spec("a", cluster="c1")])[0]
    b = service.submit_transfers("wf", "c1", [spec("b", cluster="c1")])[0]
    assert (a.streams, b.streams) == (8, 1)


def test_balanced_completion_frees_cluster_share():
    service = balanced_service(cluster_count=2, max_streams=20, default=8)
    a = service.submit_transfers("wf", "cA", [spec("a", cluster="cA")])[0]
    b = service.submit_transfers("wf", "cA", [spec("b", cluster="cA")])[0]
    assert (a.streams, b.streams) == (8, 2)
    service.complete_transfers(done=[a.tid])
    c = service.submit_transfers("wf", "cA", [spec("c", cluster="cA")])[0]
    assert c.streams == 8


# ------------------------------------------------------------- priorities
def test_priority_ordering_of_advice():
    service = PolicyService(
        PolicyConfig(policy="greedy", default_streams=4, max_streams=50,
                     order_by="priority")
    )
    advice = service.submit_transfers(
        "wf", "j",
        [spec("low", priority=1), spec("high", priority=9), spec("mid", priority=5)],
    )
    assert [a.lfn for a in advice] == ["high", "mid", "low"]


def test_priority_order_affects_allocation_order():
    service = PolicyService(
        PolicyConfig(policy="greedy", default_streams=8, max_streams=10,
                     order_by="priority")
    )
    advice = service.submit_transfers(
        "wf", "j", [spec("low", priority=1), spec("high", priority=9)]
    )
    by_lfn = {a.lfn: a.streams for a in advice}
    assert by_lfn == {"high": 8, "low": 2}  # high-priority allocated first


def test_registered_priorities_stamped_on_transfers():
    service = PolicyService(
        PolicyConfig(policy="greedy", default_streams=4, order_by="priority")
    )
    service.register_priorities("wf", {"stage_in_rootjob": 42})
    advice = service.submit_transfers("wf", "stage_in_rootjob", [spec("a")])
    assert advice[0].priority == 42


def test_unregistered_workflow_priorities_removed():
    service = PolicyService(PolicyConfig(policy="greedy", order_by="priority"))
    service.register_priorities("wf", {"j": 7})
    service.unregister_workflow("wf")
    advice = service.submit_transfers("wf", "j", [spec("a")])
    assert advice[0].priority == 0
