"""REST hardening: request-size limits and graceful drain on stop()."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.policy import PolicyConfig, PolicyService
from repro.policy.client import HTTPPolicyClient, RetryPolicy
from repro.policy.rest import PolicyRestServer
from repro.policy.rest_async import AsyncPolicyRestServer


@pytest.fixture(
    params=[
        pytest.param(PolicyRestServer, id="threaded"),
        pytest.param(AsyncPolicyRestServer, id="async"),
    ]
)
def make_server(request):
    def factory(**kwargs):
        service = PolicyService(
            PolicyConfig(policy="greedy", default_streams=4, max_streams=50)
        )
        return request.param(service, **kwargs)

    return factory


def post(url, payload: dict, timeout=5):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def test_oversized_body_is_http_413(make_server):
    with make_server(max_request_bytes=256) as server:
        payload = {"workflow": "wf", "job": "j", "transfers": [], "pad": "x" * 1024}
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post(f"{server.url}/policy/transfers", payload)
        assert excinfo.value.code == 413
        assert "exceeds" in json.loads(excinfo.value.read())["error"]
        # The server survives and serves ordinary requests afterwards.
        doc = post(
            f"{server.url}/policy/staging",
            {"lfn": "a", "url": "gsiftp://obelix/scratch/a"},
        )
        assert doc["state"] == "unknown"


def test_body_at_the_limit_is_accepted(make_server):
    payload = {"workflow": "wf", "job": "j", "transfers": []}
    size = len(json.dumps(payload).encode())
    with make_server(max_request_bytes=size) as server:
        doc = post(f"{server.url}/policy/transfers", payload)
        assert doc["advice"] == []


def test_request_size_cap_validation(make_server):
    with pytest.raises(ValueError):
        make_server(max_request_bytes=0)
    with pytest.raises(ValueError):
        make_server(drain_timeout=-1)


def test_stop_drains_in_flight_request(make_server):
    server = make_server(drain_timeout=10.0)
    server.start()
    url = server.url
    release = threading.Event()
    original = server.controller.status

    def slow_status():
        release.wait(5)
        return original()

    server.controller.status = slow_status
    results = {}

    def slow_call():
        with urllib.request.urlopen(f"{url}/policy/status", timeout=10) as resp:
            results["status"] = resp.status

    t = threading.Thread(target=slow_call)
    t.start()
    # Wait until the slow request is actually in flight.
    deadline = time.monotonic() + 5
    while not server._state._in_flight and time.monotonic() < deadline:
        time.sleep(0.01)
    assert server._state._in_flight == 1

    def stop_then_release():
        time.sleep(0.2)
        release.set()

    releaser = threading.Thread(target=stop_then_release)
    releaser.start()
    assert server.stop() is True  # drained: the in-flight request finished
    releaser.join()
    t.join(timeout=5)
    assert results["status"] == 200


def test_requests_during_drain_get_http_503(make_server):
    server = make_server(drain_timeout=5.0)
    server.start()
    url = server.url
    server._state.begin_stop()  # drain mode: refuse new work
    try:
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{url}/policy/status", timeout=5)
        assert excinfo.value.code == 503
    finally:
        server.stop()


def test_stop_reports_timeout_when_request_hangs(make_server):
    server = make_server(drain_timeout=0.2)
    server.start()
    url = server.url
    release = threading.Event()
    original = server.controller.status
    server.controller.status = lambda: (release.wait(10), original())[1]

    t = threading.Thread(
        target=lambda: urllib.request.urlopen(f"{url}/policy/status", timeout=15).read()
    )
    t.daemon = True
    t.start()
    deadline = time.monotonic() + 5
    while not server._state._in_flight and time.monotonic() < deadline:
        time.sleep(0.01)
    assert server.stop() is False  # the hung request outlived the drain window
    release.set()
    t.join(timeout=5)


def test_client_surfaces_413_without_retry(make_server):
    calls = {"sleeps": 0}
    with make_server(max_request_bytes=128) as server:
        client = HTTPPolicyClient(
            server.url,
            retry=RetryPolicy(retries=3, base_delay=0.01),
            sleep=lambda d: calls.__setitem__("sleeps", calls["sleeps"] + 1),
        )
        transfers = [
            {
                "lfn": f"f{i}",
                "src_url": f"gsiftp://fg-vm/data/f{i}",
                "dst_url": f"gsiftp://obelix/scratch/f{i}",
                "nbytes": 1000,
            }
            for i in range(20)
        ]
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            client.submit_transfers("wf", "j", transfers)
        assert excinfo.value.code == 413
        assert calls["sleeps"] == 0  # a 4xx is not retried
