"""Transfer/cleanup leases: expired grants are reaped and release streams.

A client that crashes after being granted a transfer must not pin its
stream allocation forever: the lease reaper marks the grant failed, which
releases both the host-pair ledger (greedy) and the per-cluster ledger
(balanced), and lets workflows that were waiting on the dead transfer
resubmit.
"""

import pytest

from repro.policy import PolicyConfig, PolicyService
from repro.policy.model import ClusterAllocationFact, HostPairFact

from tests.policy.conftest import spec


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


def leased_service(policy="greedy", lease=60.0, sweep=None, **kw):
    clock = FakeClock()
    config = PolicyConfig(
        policy=policy,
        default_streams=4,
        max_streams=8,
        lease_seconds=lease,
        lease_sweep_interval=sweep,
        **kw,
    )
    return PolicyService(config, clock=clock), clock


def test_granted_advice_carries_lease_deadline():
    service, clock = leased_service()
    clock.now = 100.0
    advice = service.submit_transfers("wf1", "j1", [spec("a")])
    assert advice[0].action == "transfer"
    assert advice[0].lease_deadline == pytest.approx(160.0)


def test_no_lease_config_means_no_deadline(greedy_service):
    advice = greedy_service.submit_transfers("wf1", "j1", [spec("a")])
    assert advice[0].lease_deadline is None


def test_reap_marks_failed_and_releases_host_pair_streams():
    service, clock = leased_service()
    # Fill the 8-stream pair threshold: two full 4-stream grants, then the
    # over-threshold fallback of a single stream.
    advice = service.submit_transfers("wf1", "j1", [spec("a"), spec("b"), spec("c")])
    assert [a.streams for a in advice] == [4, 4, 1]

    clock.now = 61.0
    reaped = service.reap_expired()
    assert sorted(reaped["transfers"]) == sorted(a.tid for a in advice)
    for a in advice:
        assert service.transfer_state(a.tid) == "failed"

    pair = service.memory.facts_of(HostPairFact)[0]
    assert pair.allocated == 0
    # Freed streams are immediately grantable at full width again.
    retry = service.submit_transfers("wf1", "j2", [spec("d"), spec("e")])
    assert [a.streams for a in retry] == [4, 4]
    assert service.stats["transfers_reaped"] == 3


def test_reap_releases_cluster_ledger_under_balanced():
    service, clock = leased_service(policy="balanced", cluster_count=2)
    advice = service.submit_transfers(
        "wf1", "j1", [spec("a", cluster="c1"), spec("b", cluster="c1")]
    )
    # Per-cluster share is 8/2 = 4 streams: one full grant, then the
    # single-stream fallback.
    assert [a.streams for a in advice] == [4, 1]

    clock.now = 61.0
    service.reap_expired()
    allocations = service.memory.facts_of(ClusterAllocationFact)
    assert all(c.allocated == 0 for c in allocations)
    retry = service.submit_transfers("wf1", "j2", [spec("c", cluster="c1")])
    assert retry[0].streams == 4


def test_reap_unblocks_waiting_workflow():
    service, clock = leased_service()
    first = service.submit_transfers("wf1", "j1", [spec("a")])
    assert first[0].action == "transfer"
    other = service.submit_transfers("wf2", "j2", [spec("a")])
    assert other[0].action == "wait"
    assert other[0].wait_for == first[0].tid

    # wf1's tool dies; the lease expires.
    clock.now = 61.0
    service.reap_expired()
    # The dead transfer now reads "failed" and the resource is gone, so
    # the waiting workflow's poll tells it to resubmit — and the
    # resubmission is granted.
    assert service.transfer_state(first[0].tid) == "failed"
    assert service.staging_state("a", "gsiftp://obelix/scratch/a") == "unknown"
    retry = service.submit_transfers("wf2", "j2", [spec("a")])
    assert retry[0].action == "transfer"


def test_expired_cleanup_grant_is_dropped():
    service, clock = leased_service()
    advice = service.submit_transfers("wf1", "j1", [spec("a")])
    service.complete_transfers(done=[advice[0].tid])
    cleanups = service.submit_cleanups(
        "wf1", "clean", [("a", "gsiftp://obelix/scratch/a")]
    )
    assert cleanups[0].action == "delete"
    assert cleanups[0].lease_deadline == pytest.approx(60.0)

    clock.now = 61.0
    reaped = service.reap_expired()
    assert reaped["cleanups"] == [cleanups[0].cid]
    assert service.stats["cleanups_reaped"] == 1
    # The file is deletable again by a fresh cleanup request.
    again = service.submit_cleanups(
        "wf1", "clean2", [("a", "gsiftp://obelix/scratch/a")]
    )
    assert again[0].action == "delete"


def test_unexpired_leases_survive_a_sweep():
    service, clock = leased_service()
    advice = service.submit_transfers("wf1", "j1", [spec("a")])
    clock.now = 59.0
    reaped = service.reap_expired()
    assert reaped == {"transfers": [], "cleanups": []}
    assert service.transfer_state(advice[0].tid) == "in_progress"


def test_sweep_piggybacks_on_service_calls():
    service, clock = leased_service(sweep=0.0)  # sweep on every call
    advice = service.submit_transfers("wf1", "j1", [spec("a")])
    clock.now = 61.0
    # An ordinary query triggers the reap — no explicit reap_expired call.
    assert service.transfer_state(advice[0].tid) == "failed"
    assert service.stats["transfers_reaped"] == 1


def test_sweep_throttle_limits_reap_frequency():
    service, clock = leased_service(sweep=100.0)
    service.submit_transfers("wf1", "j1", [spec("a")])
    clock.now = 61.0  # lease expired, but the throttle window is 100s
    service.staging_state("zzz", "gsiftp://nowhere/zzz")  # sweep at t=0 armed throttle
    assert service.stats["transfers_reaped"] == 0
    clock.now = 161.0
    service.staging_state("zzz", "gsiftp://nowhere/zzz")
    assert service.stats["transfers_reaped"] == 1


def test_lease_reaping_with_journal_recovery(tmp_path):
    """Reaps are durable: a recovered service remembers reaped failures."""
    from repro.policy import PolicyJournal

    clock = FakeClock()
    config = PolicyConfig(policy="greedy", max_streams=8, lease_seconds=60.0)
    service = PolicyService(
        config, clock=clock, journal=PolicyJournal(tmp_path / "j")
    )
    advice = service.submit_transfers("wf1", "j1", [spec("a")])
    clock.now = 61.0
    service.reap_expired()

    recovered = PolicyService.recover(tmp_path / "j", config=config, clock=clock)
    assert recovered.transfer_state(advice[0].tid) == "failed"
