"""Failure/release accounting and allocation boundary regressions.

A failed transfer must give back the streams it held on *every* ledger
the allocation rules charge: the host-pair allocation (greedy and
balanced) **and** the per-cluster allocation (balanced only).  And the
balanced partial-grant boundary must never hand out 0 streams.
"""

from repro.policy import PolicyConfig, PolicyService
from repro.policy.model import ClusterAllocationFact, HostPairFact

from tests.policy.conftest import spec


def balanced_service(**kw):
    cfg = dict(policy="balanced", default_streams=8, max_streams=20, cluster_count=2)
    cfg.update(kw)
    return PolicyService(PolicyConfig(**cfg))


def pair_allocated(service):
    [pair] = service.memory.facts_of(HostPairFact)
    return pair.allocated


def cluster_allocated(service, cluster):
    for c in service.memory.facts_of(ClusterAllocationFact):
        if c.cluster == cluster:
            return c.allocated
    return 0


# ----------------------------------------------------------- failure release
def test_failed_transfer_releases_host_pair_streams_greedy():
    service = PolicyService(PolicyConfig(policy="greedy", default_streams=6, max_streams=20))
    advice = service.submit_transfers("wf", "j", [spec("a"), spec("b")])
    assert pair_allocated(service) == 12
    service.complete_transfers(failed=[advice[0].tid])
    assert pair_allocated(service) == 6
    service.complete_transfers(done=[advice[1].tid])
    assert pair_allocated(service) == 0


def test_failed_transfer_releases_both_pair_and_cluster_ledgers():
    service = balanced_service()
    advice = service.submit_transfers("wf", "cA", [spec("a", cluster="cA")])
    assert cluster_allocated(service, "cA") == 8
    service.complete_transfers(failed=[advice[0].tid])
    # The release path walks BOTH ledgers: the cluster allocation drops
    # back to zero and the (uncharged) pair ledger is never driven
    # negative by the clamp.
    assert cluster_allocated(service, "cA") == 0
    assert pair_allocated(service) == 0
    # The freed share is grantable again in full.
    again = service.submit_transfers("wf", "cA", [spec("a2", cluster="cA")])
    assert again[0].streams == 8


def test_mixed_outcomes_release_only_their_own_streams():
    service = balanced_service()
    a = service.submit_transfers("wf", "cA", [spec("a", cluster="cA")])[0]
    b = service.submit_transfers("wf", "cB", [spec("b", cluster="cB")])[0]
    service.complete_transfers(done=[a.tid], failed=[b.tid])
    assert pair_allocated(service) == 0
    assert cluster_allocated(service, "cA") == 0
    assert cluster_allocated(service, "cB") == 0


# ----------------------------------------------------------- grant boundaries
def test_balanced_partial_grant_boundary_never_grants_zero():
    # Share per cluster = 10.  First transfer takes exactly the share;
    # the next request must fall through to the single-stream rule, not a
    # zero-stream "partial" grant.
    service = balanced_service(max_streams=20, cluster_count=2, default_streams=10)
    first = service.submit_transfers("wf", "cA", [spec("a", cluster="cA")])[0]
    assert first.streams == 10
    second = service.submit_transfers("wf", "cA", [spec("b", cluster="cA")])[0]
    assert second.streams == 1
    assert second.streams > 0


def test_balanced_partial_grant_takes_remaining_share():
    service = balanced_service(max_streams=20, cluster_count=2, default_streams=7)
    first = service.submit_transfers("wf", "cA", [spec("a", cluster="cA")])[0]
    second = service.submit_transfers("wf", "cA", [spec("b", cluster="cA")])[0]
    assert (first.streams, second.streams) == (7, 3)
    assert cluster_allocated(service, "cA") == 10


def test_balanced_every_grant_positive_under_pressure():
    service = balanced_service(max_streams=12, cluster_count=3, default_streams=3)
    streams = [
        service.submit_transfers("wf", "cA", [spec(f"f{i}", cluster="cA")])[0].streams
        for i in range(6)
    ]
    assert all(s >= 1 for s in streams)
    assert streams[0] == 3  # share is 4: full grant
    assert 1 in streams  # exhaustion reached single-stream grants


def test_greedy_partial_grant_boundary_never_grants_zero():
    service = PolicyService(PolicyConfig(policy="greedy", default_streams=10, max_streams=10))
    first = service.submit_transfers("wf", "j", [spec("a")])[0]
    second = service.submit_transfers("wf", "j", [spec("b")])[0]
    assert first.streams == 10
    assert second.streams == 1
