"""Tests of the per-tenant fair-share rule pack (rules_fairshare.py).

The pack meters *aggregate* stream budgets per tenant: every new transfer
of a bound workflow is stamped with its owner, reserved against the
tenant's ``max_streams`` ledger (clamped, never blocked — a wedged
transfer would poll forever), refunded when the allocator grants less,
and released when the transfer settles.  Ledgers survive a crash via the
journal, so a recovered service reproduces admission decisions.
"""

import pytest

from repro.policy import PolicyConfig, PolicyJournal, PolicyService
from repro.policy.model import TransferFact

from tests.policy.conftest import spec


def config(**kw):
    defaults = dict(policy="greedy", default_streams=4, max_streams=50)
    defaults.update(kw)
    return PolicyConfig(**defaults)


def service_with_tenant(max_streams=None, max_bytes=None, engine="indexed"):
    svc = PolicyService(config(), engine=engine)
    svc.register_tenant("acme", weight=2, max_streams=max_streams,
                        max_bytes=max_bytes)
    svc.bind_workflow("wf", "acme")
    return svc


def census(svc, tenant):
    return next(t for t in svc.tenants() if t["tenant"] == tenant)


def test_transfers_are_stamped_with_owner():
    svc = service_with_tenant()
    svc.submit_transfers("wf", "j", [spec("a")])
    fact = next(f for f in svc.memory.facts_of(TransferFact) if f.tid == 1)
    assert fact.tenant == "acme"


def test_unbound_workflow_is_not_stamped():
    svc = service_with_tenant()
    svc.submit_transfers("other-wf", "j", [spec("a")])
    fact = next(f for f in svc.memory.facts_of(TransferFact) if f.tid == 1)
    assert fact.tenant is None


def test_budget_clamps_but_never_denies():
    svc = service_with_tenant(max_streams=6)
    advice = svc.submit_transfers("wf", "j", [
        spec("a", streams=4), spec("b", streams=4), spec("c", streams=4),
    ])
    # 4 + 2 hit the budget of 6; the third transfer still gets the floor
    # of one stream (a "wait" would poll staging state forever).
    assert [a.streams for a in advice] == [4, 2, 1]
    assert all(a.action == "transfer" for a in advice)
    assert "aggregate stream budget" in advice[1].reason
    assert census(svc, "acme")["inflight_streams"] == 7


def test_batch_cannot_collectively_overshoot():
    """Reservation is charged per firing, so a simultaneous batch cannot
    each see the full remaining budget."""
    svc = service_with_tenant(max_streams=8)
    advice = svc.submit_transfers("wf", "j", [
        spec(f"f{i}", streams=8) for i in range(4)
    ])
    granted = [a.streams for a in advice]
    assert granted[0] == 8
    assert all(g == 1 for g in granted[1:])  # floor, not 8 each


def test_refund_when_allocator_grants_less():
    """The pair threshold can trim below the tenant reservation — the
    difference must come back to the ledger."""
    svc = PolicyService(config(max_streams=3))
    svc.register_tenant("acme", max_streams=40)
    svc.bind_workflow("wf", "acme")
    advice = svc.submit_transfers("wf", "j", [spec("a", streams=10)])
    assert advice[0].streams == 3  # host-pair threshold wins
    assert census(svc, "acme")["inflight_streams"] == 3  # not 10


def test_completion_releases_and_meters_bytes():
    svc = service_with_tenant(max_streams=10)
    advice = svc.submit_transfers("wf", "j", [
        spec("a", streams=4, nbytes=500.0), spec("b", streams=4, nbytes=300.0),
    ])
    svc.complete_transfers(done=[advice[0].tid], failed=[advice[1].tid])
    entry = census(svc, "acme")
    assert entry["inflight_streams"] == 0
    assert entry["bytes_staged"] == 500.0  # failures stage nothing


def test_release_happens_once_despite_refires():
    svc = service_with_tenant(max_streams=10)
    advice = svc.submit_transfers("wf", "j", [spec("a", streams=4)])
    svc.complete_transfers(done=[advice[0].tid])
    svc.submit_transfers("wf", "j2", [spec("b", streams=4)])  # new session
    assert census(svc, "acme")["inflight_streams"] == 4  # only b's reservation


def test_budget_frees_after_completion():
    svc = service_with_tenant(max_streams=4)
    first = svc.submit_transfers("wf", "j", [spec("a", streams=4)])
    clamped = svc.submit_transfers("wf", "j", [spec("b", streams=4)])
    assert clamped[0].streams == 1
    svc.complete_transfers(done=[first[0].tid, clamped[0].tid])
    fresh = svc.submit_transfers("wf", "j", [spec("c", streams=4)])
    assert fresh[0].streams == 4


def test_unregister_workflow_unbinds_it():
    svc = service_with_tenant()
    svc.unregister_workflow("wf")
    svc.submit_transfers("wf", "j", [spec("a")])
    fact = next(f for f in svc.memory.facts_of(TransferFact) if f.tid == 1)
    assert fact.tenant is None


def test_unregister_tenant_removes_bindings():
    svc = service_with_tenant()
    assert svc.unregister_tenant("acme") == 2  # the tenant + one binding
    assert svc.tenants() == []
    svc.submit_transfers("wf", "j", [spec("a")])
    fact = next(f for f in svc.memory.facts_of(TransferFact) if f.tid == 1)
    assert fact.tenant is None


def test_bind_requires_registered_tenant():
    svc = PolicyService(config())
    with pytest.raises(RuntimeError):
        svc.bind_workflow("wf", "ghost")


def test_reregister_preserves_ledgers():
    svc = service_with_tenant(max_streams=10)
    advice = svc.submit_transfers("wf", "j", [spec("a", streams=4, nbytes=50.0)])
    svc.complete_transfers(done=[advice[0].tid])
    svc.register_tenant("acme", weight=9, max_streams=20)  # policy update
    entry = census(svc, "acme")
    assert entry["weight"] == 9
    assert entry["bytes_staged"] == 50.0  # ledger survives the update


@pytest.mark.parametrize("engine", ["seed", "indexed", "compiled"])
def test_engines_agree_on_budgeted_advice(engine):
    svc_a = service_with_tenant(max_streams=6, engine=engine)
    svc_b = service_with_tenant(max_streams=6, engine="indexed")
    batch = [spec(f"f{i}", streams=4) for i in range(3)]
    advice_a = [a.to_dict() for a in svc_a.submit_transfers("wf", "j", batch)]
    advice_b = [a.to_dict() for a in svc_b.submit_transfers("wf", "j", batch)]
    assert advice_a == advice_b


def test_snapshot_includes_tenants():
    svc = service_with_tenant(max_streams=6)
    doc = svc.snapshot()
    assert doc["tenants"][0]["tenant"] == "acme"
    assert doc["tenants"][0]["workflows"] == ["wf"]


def test_tenant_metrics_labels():
    svc = service_with_tenant(max_streams=6)
    svc.submit_transfers("wf", "j", [spec("a", streams=4)])
    text = svc.metrics_text()
    assert 'repro_policy_tenant_inflight_streams{tenant="acme"} 4' in text


# -- crash / recovery ---------------------------------------------------------
def ops():
    yield ("submit", "wf", "j1", [spec("a", streams=4, nbytes=100.0),
                                  spec("b", streams=4, nbytes=200.0)])
    yield ("done", [1])
    yield ("submit", "wf", "j2", [spec("c", streams=4, nbytes=300.0)])
    yield ("done", [2, 3])
    yield ("submit", "wf2", "j1", [spec("d", streams=4, nbytes=50.0)])


def apply_op(svc, op):
    if op[0] == "submit":
        return [a.to_dict() for a in svc.submit_transfers(op[1], op[2], op[3])]
    return svc.complete_transfers(done=op[1])


def build_journaled(tmp_path, engine="indexed"):
    svc = PolicyService(config(), engine=engine,
                        journal=PolicyJournal(tmp_path / "j"))
    svc.register_tenant("acme", weight=2, max_streams=6)
    svc.register_tenant("beta", weight=1, max_streams=4)
    svc.bind_workflow("wf", "acme")
    svc.bind_workflow("wf2", "beta")
    return svc


@pytest.mark.parametrize("crash_at", [1, 2, 3, 4])
def test_recovered_tenant_advice_byte_identical(tmp_path, crash_at):
    sequence = list(ops())
    journaled = build_journaled(tmp_path)
    for op in sequence[:crash_at]:
        apply_op(journaled, op)
    before_census = journaled.tenants()
    del journaled  # crash: only the journal directory survives

    recovered = PolicyService.recover(tmp_path / "j", config=config())
    assert recovered.tenants() == before_census  # ledgers + specs intact

    twin = build_journaled(tmp_path / "twin")
    for op in sequence[:crash_at]:
        apply_op(twin, op)
    after_recovered = [apply_op(recovered, op) for op in sequence[crash_at:]]
    after_twin = [apply_op(twin, op) for op in sequence[crash_at:]]
    assert after_recovered == after_twin


def test_recovery_across_engines_with_tenants(tmp_path):
    sequence = list(ops())
    journaled = build_journaled(tmp_path, engine="indexed")
    for op in sequence[:2]:
        apply_op(journaled, op)
    recovered = PolicyService.recover(tmp_path / "j", config=config(),
                                      engine="seed")
    twin = build_journaled(tmp_path / "twin", engine="seed")
    for op in sequence[:2]:
        apply_op(twin, op)
    assert [apply_op(recovered, op) for op in sequence[2:]] == \
        [apply_op(twin, op) for op in sequence[2:]]
