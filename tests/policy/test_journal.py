"""Durable policy memory: journal replay and snapshot recovery.

The central guarantee: a service recovered from its journal gives
**byte-identical advice** to one that never crashed — across allocation
policies, across rule engines, and at any crash point in a call trace.
"""

import json

import pytest

from repro.policy import PolicyConfig, PolicyJournal, PolicyService
from repro.policy.journal import JournalError

from tests.policy.conftest import spec


def greedy_config():
    return PolicyConfig(policy="greedy", default_streams=4, max_streams=8)


def balanced_config():
    return PolicyConfig(
        policy="balanced", default_streams=4, max_streams=8, cluster_count=2
    )


# A trace with every interesting shape: grants, in-batch and cross-workflow
# duplicates (skip/wait), threshold-limited allocation, failures, cleanups,
# and a workflow departure.
def trace():
    return [
        ("submit_transfers", ("wf1", "job1", [spec("a"), spec("b"), spec("a")])),
        ("complete_transfers", {"done": [1]}),
        ("submit_transfers", ("wf2", "job2", [spec("a"), spec("c"), spec("d")])),
        ("complete_transfers", {"done": [2], "failed": [5]}),
        ("submit_transfers", ("wf2", "job3", [spec("d"), spec("e")])),
        ("complete_transfers", {"done": [6, 7, 8]}),
        ("submit_cleanups", ("wf1", "clean1", [("a", "gsiftp://obelix/scratch/a")])),
        ("complete_cleanups", ([1],)),
        ("unregister_workflow", ("wf1",)),
        ("submit_transfers", ("wf3", "job4", [spec("c"), spec("f")])),
    ]


def apply_op(service, op):
    """Run one trace step; return its response as a canonical JSON string."""
    name, args = op
    method = getattr(service, name)
    if isinstance(args, dict):
        result = method(**args)
    else:
        result = method(*args)
    if isinstance(result, list):  # advice lists
        return json.dumps([a.to_dict() for a in result], sort_keys=True)
    return json.dumps(result, sort_keys=True)


@pytest.mark.parametrize("config_fn", [greedy_config, balanced_config])
@pytest.mark.parametrize("engine", ["indexed", "seed"])
@pytest.mark.parametrize("crash_at", [1, 3, 5, 8])
def test_recovered_advice_byte_identical(tmp_path, config_fn, engine, crash_at):
    ops = trace()
    reference = PolicyService(config_fn(), engine=engine)
    expected = [apply_op(reference, op) for op in ops]

    journaled = PolicyService(
        config_fn(), engine=engine, journal=PolicyJournal(tmp_path / "j")
    )
    before = [apply_op(journaled, op) for op in ops[:crash_at]]
    assert before == expected[:crash_at]

    del journaled  # crash: only the journal directory survives
    recovered = PolicyService.recover(
        tmp_path / "j", config=config_fn(), engine=engine
    )
    after = [apply_op(recovered, op) for op in ops[crash_at:]]
    assert after == expected[crash_at:]


def test_recovery_across_engines(tmp_path):
    """A journal written by the indexed engine restores under the seed
    engine with identical advice (the fingerprint excludes the engine)."""
    ops = trace()
    reference = PolicyService(greedy_config(), engine="seed")
    expected = [apply_op(reference, op) for op in ops]

    journaled = PolicyService(
        greedy_config(), engine="indexed", journal=PolicyJournal(tmp_path / "j")
    )
    for op in ops[:4]:
        apply_op(journaled, op)
    recovered = PolicyService.recover(tmp_path / "j", config=greedy_config(), engine="seed")
    after = [apply_op(recovered, op) for op in ops[4:]]
    assert after == expected[4:]


@pytest.mark.parametrize("snapshot_interval", [1, 3])
def test_snapshot_compaction_preserves_advice(tmp_path, snapshot_interval):
    ops = trace()
    reference = PolicyService(greedy_config())
    expected = [apply_op(reference, op) for op in ops]

    journal = PolicyJournal(tmp_path / "j", snapshot_interval=snapshot_interval)
    journaled = PolicyService(greedy_config(), journal=journal)
    for op in ops[:6]:
        apply_op(journaled, op)
    assert journal.snapshots >= 2  # initial + at least one compaction

    recovered = PolicyService.recover(
        tmp_path / "j", config=greedy_config(), snapshot_interval=snapshot_interval
    )
    after = [apply_op(recovered, op) for op in ops[6:]]
    assert after == expected[6:]


def test_torn_tail_is_discarded(tmp_path):
    journal = PolicyJournal(tmp_path / "j")
    service = PolicyService(greedy_config(), journal=journal)
    apply_op(service, ("submit_transfers", ("wf1", "j1", [spec("a")])))
    journal.close()

    # A crash mid-write leaves a torn, uncommitted tail.
    with open(journal.journal_path, "a", encoding="utf-8") as fh:
        fh.write('{"op": "i", "fid": 99, "fact": {"type": "TransferF')

    recovered = PolicyService.recover(tmp_path / "j", config=greedy_config())
    assert recovered.transfer_state(1) == "in_progress"
    assert recovered.counters()["tid"] == 1


def test_uncommitted_mutations_are_discarded(tmp_path):
    journal = PolicyJournal(tmp_path / "j")
    service = PolicyService(greedy_config(), journal=journal)
    apply_op(service, ("submit_transfers", ("wf1", "j1", [spec("a")])))
    journal.close()

    # Complete mutation records with no commit: the client never got a
    # response for that call, so replay must not apply them.
    with open(journal.journal_path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps({"op": "r", "fid": 0}) + "\n")

    recovered = PolicyService.recover(tmp_path / "j", config=greedy_config())
    assert recovered.transfer_state(1) == "in_progress"


def test_fingerprint_mismatch_is_rejected(tmp_path):
    service = PolicyService(greedy_config(), journal=PolicyJournal(tmp_path / "j"))
    apply_op(service, ("submit_transfers", ("wf1", "j1", [spec("a")])))
    with pytest.raises(JournalError, match="different"):
        PolicyService.recover(
            tmp_path / "j",
            config=PolicyConfig(policy="greedy", default_streams=4, max_streams=99),
        )


def test_fresh_constructor_refuses_used_journal(tmp_path):
    service = PolicyService(greedy_config(), journal=PolicyJournal(tmp_path / "j"))
    apply_op(service, ("submit_transfers", ("wf1", "j1", [spec("a")])))
    with pytest.raises(JournalError, match="recover"):
        PolicyService(greedy_config(), journal=PolicyJournal(tmp_path / "j"))


def test_queries_write_nothing(tmp_path):
    journal = PolicyJournal(tmp_path / "j")
    service = PolicyService(greedy_config(), journal=journal)
    commits = journal.commits
    service.transfer_state(1)
    service.staging_state("a", "gsiftp://obelix/scratch/a")
    assert journal.commits == commits


def test_failed_call_leaves_no_journal_residue(tmp_path):
    journal = PolicyJournal(tmp_path / "j")
    service = PolicyService(greedy_config(), journal=journal)
    with pytest.raises(Exception):
        service.submit_transfers("wf1", "j1", [{"lfn": "a"}])  # missing urls
    assert journal._pending == []
    # The aborted call burned tid 1; the next grant is tid 2 and the
    # counter state must survive recovery.
    advice = service.submit_transfers("wf1", "j1", [spec("a")])
    assert advice[0].tid == 2
    recovered = PolicyService.recover(tmp_path / "j", config=greedy_config())
    assert recovered.transfer_state(2) == "in_progress"
    assert recovered.counters()["tid"] == 2


def test_done_and_failed_retention_recovered(tmp_path):
    journal = PolicyJournal(tmp_path / "j")
    service = PolicyService(greedy_config(), journal=journal)
    service.submit_transfers("wf1", "j1", [spec("a"), spec("b")])
    service.complete_transfers(done=[1], failed=[2])
    recovered = PolicyService.recover(tmp_path / "j", config=greedy_config())
    assert recovered.transfer_state(1) == "done"
    assert recovered.transfer_state(2) == "failed"
    assert recovered.transfer_state(3) == "unknown"
