"""Tests of the access-control rule pack (denials and quotas)."""

import pytest

from repro.policy import PolicyConfig, PolicyService
from repro.policy.rules_access import HostDenialFact, WorkflowQuotaFact

from tests.policy.conftest import spec


def make_service(**kw):
    defaults = dict(policy="greedy", default_streams=4, max_streams=50,
                    access_control=True)
    defaults.update(kw)
    return PolicyService(PolicyConfig(**defaults))


# ------------------------------------------------------------- host denials
def test_denied_source_host_blocks_transfer():
    service = make_service()
    service.deny_host("fg-vm", direction="src", reason="maintenance window")
    advice = service.submit_transfers("wf", "j", [spec("a")])
    assert advice[0].action == "deny"
    assert "maintenance window" in advice[0].reason
    assert service.snapshot()["stats"]["transfers_denied"] == 1


def test_denial_direction_respected():
    service = make_service()
    service.deny_host("obelix", direction="src")  # only as a *source*
    advice = service.submit_transfers("wf", "j", [spec("a")])  # writes TO obelix
    assert advice[0].action == "transfer"


def test_any_direction_denial():
    service = make_service()
    service.deny_host("obelix", direction="any")
    advice = service.submit_transfers("wf", "j", [spec("a")])
    assert advice[0].action == "deny"


def test_allow_host_lifts_denial():
    service = make_service()
    service.deny_host("fg-vm")
    assert service.allow_host("fg-vm") == 1
    advice = service.submit_transfers("wf", "j", [spec("a")])
    assert advice[0].action == "transfer"
    assert service.allow_host("fg-vm") == 0  # nothing left to lift


def test_denied_transfer_claims_no_streams_or_resources():
    service = make_service()
    service.deny_host("fg-vm")
    service.submit_transfers("wf", "j", [spec("a")])
    snap = service.snapshot()
    assert snap["memory"].get("StagedFileFact") is None
    pair = snap["host_pairs"].get("fg-vm->obelix")
    assert pair is None or pair["allocated"] == 0


# ------------------------------------------------------------------ quotas
def test_quota_denies_beyond_budget():
    service = make_service()
    service.set_quota("wf", 2500.0)
    a = service.submit_transfers("wf", "j1", [spec("a", nbytes=1000)])
    b = service.submit_transfers("wf", "j2", [spec("b", nbytes=1000)])
    c = service.submit_transfers("wf", "j3", [spec("c", nbytes=1000)])
    assert a[0].action == "transfer"
    assert b[0].action == "transfer"
    assert c[0].action == "deny"
    assert "quota exceeded" in c[0].reason


def test_quota_applies_per_workflow():
    service = make_service()
    service.set_quota("wf-limited", 500.0)
    limited = service.submit_transfers("wf-limited", "j", [spec("a", nbytes=1000)])
    unlimited = service.submit_transfers("wf-free", "j", [spec("b", nbytes=1000)])
    assert limited[0].action == "deny"
    assert unlimited[0].action == "transfer"


def test_quota_replacement():
    service = make_service()
    service.set_quota("wf", 500.0)
    service.set_quota("wf", 5000.0)  # replaces, does not accumulate
    assert len(service.memory.facts_of(WorkflowQuotaFact)) == 1
    advice = service.submit_transfers("wf", "j", [spec("a", nbytes=1000)])
    assert advice[0].action == "transfer"


def test_quota_charging_is_exact():
    service = make_service()
    service.set_quota("wf", 1999.0)
    service.submit_transfers("wf", "j1", [spec("a", nbytes=1000)])
    quota = service.memory.facts_of(WorkflowQuotaFact)[0]
    assert quota.used_bytes == 1000.0
    denied = service.submit_transfers("wf", "j2", [spec("b", nbytes=1000)])
    assert denied[0].action == "deny"
    assert quota.used_bytes == 1000.0  # denied transfer not charged


# ----------------------------------------------------------------- guards
def test_admin_api_requires_access_control_enabled():
    service = PolicyService(PolicyConfig(policy="greedy"))
    with pytest.raises(RuntimeError):
        service.deny_host("fg-vm")
    with pytest.raises(RuntimeError):
        service.set_quota("wf", 100)


def test_fact_validation():
    with pytest.raises(ValueError):
        HostDenialFact("h", direction="sideways")
    with pytest.raises(ValueError):
        WorkflowQuotaFact("wf", -1)


# ------------------------------------------------------------------- REST
def test_access_control_over_http():
    from repro.policy.client import HTTPPolicyClient
    from repro.policy.rest import PolicyRestServer

    service = make_service()
    with PolicyRestServer(service) as server:
        client = HTTPPolicyClient(server.url)
        client.deny_host("fg-vm", reason="banned")
        advice = client.submit_transfers(
            "wf", "j",
            [{"lfn": "a", "src_url": "gsiftp://fg-vm/d/a",
              "dst_url": "gsiftp://obelix/s/a", "nbytes": 10}],
        )
        assert advice[0].action == "deny"
        assert client.allow_host("fg-vm")["removed"] == 1
        client.set_quota("wf", 5.0)
        advice = client.submit_transfers(
            "wf", "j2",
            [{"lfn": "b", "src_url": "gsiftp://fg-vm/d/b",
              "dst_url": "gsiftp://obelix/s/b", "nbytes": 10}],
        )
        assert advice[0].action == "deny"


def test_rest_validation_errors():
    from repro.policy import PolicyController, PolicyRequestError

    controller = PolicyController(PolicyService(PolicyConfig(policy="greedy")))
    with pytest.raises(PolicyRequestError, match="direction"):
        controller.deny_host({"host": "h", "direction": "up"})
    with pytest.raises(PolicyRequestError, match="not enabled"):
        controller.deny_host({"host": "h"})
    with pytest.raises(PolicyRequestError, match="max_bytes"):
        controller.set_quota({"workflow": "wf", "max_bytes": -1})


# ------------------------------------------------------------- PTT behavior
def test_ptt_fails_staging_job_on_denial():
    import numpy as np

    from repro.des import Environment
    from repro.engine import PegasusTransferTool
    from repro.net import (
        FlowNetwork, GridFTPClient, Link, Network, StreamModel, TransferError,
    )
    from repro.planner.executable import ExecutableJob, JobKind, TransferSpec
    from repro.policy import InProcessPolicyClient

    env = Environment()
    net = Network()
    s = net.add_site("s")
    net.add_host("fg-vm", s)
    net.add_host("obelix", s)
    net.add_link(Link("wan", capacity=100.0))
    net.add_route(net.host("fg-vm"), net.host("obelix"), [net.links["wan"]])
    fabric = FlowNetwork(env, net, StreamModel(0, 0, 0))
    gridftp = GridFTPClient(fabric, rng=np.random.default_rng(0))
    service = make_service()
    service.deny_host("fg-vm")
    ptt = PegasusTransferTool(
        gridftp, policy=InProcessPolicyClient(service, env, latency=0.0)
    )
    job = ExecutableJob(
        id="si", kind=JobKind.STAGE_IN, site="s",
        transfers=[TransferSpec("a", "gsiftp://fg-vm/d/a",
                                "gsiftp://obelix/s/a", 10.0)],
    )

    def proc():
        yield from ptt.execute("wf", job)

    p = env.process(proc())
    with pytest.raises(TransferError, match="denied by policy"):
        env.run(until=p)


def test_quota_refunded_on_failure():
    service = make_service()
    service.set_quota("wf", 1500.0)
    a = service.submit_transfers("wf", "j1", [spec("a", nbytes=1000)])
    assert a[0].action == "transfer"
    service.complete_transfers(failed=[a[0].tid])
    quota = service.memory.facts_of(WorkflowQuotaFact)[0]
    assert quota.used_bytes == 0.0  # refunded: the bytes never moved
    retry = service.submit_transfers("wf", "j1-retry", [spec("a", nbytes=1000)])
    assert retry[0].action == "transfer"
