"""Tests of the policy service's transfer handling (Table I + Table II)."""

from repro.policy import PolicyConfig, PolicyService
from repro.policy.model import HostPairFact, StagedFileFact, TransferFact

from tests.policy.conftest import spec


def executable(advice):
    return [a for a in advice if a.action == "transfer"]


# ------------------------------------------------------------ basic flow
def test_simple_batch_approved_with_default_streams(greedy_service):
    advice = greedy_service.submit_transfers("wf1", "job1", [spec("a"), spec("b")])
    execute = executable(advice)
    assert len(execute) == 2
    assert all(a.streams == 4 for a in execute)  # default_streams
    assert all(a.group_id == execute[0].group_id for a in execute)  # same host pair


def test_explicit_streams_respected_below_threshold(greedy_service):
    advice = greedy_service.submit_transfers("wf", "j", [spec("a", streams=7)])
    assert advice[0].streams == 7


def test_group_ids_distinct_per_host_pair(greedy_service):
    advice = greedy_service.submit_transfers(
        "wf", "j",
        [
            spec("a", src="gsiftp://s1/d"),
            spec("b", src="gsiftp://s2/d"),
            spec("c", src="gsiftp://s1/d"),
        ],
    )
    groups = {a.lfn: a.group_id for a in advice}
    assert groups["a"] == groups["c"] != groups["b"]


def test_advice_sorted_by_urls(greedy_service):
    advice = greedy_service.submit_transfers(
        "wf", "j",
        [spec("zz", src="gsiftp://s2/d"), spec("aa", src="gsiftp://s1/d")],
    )
    assert [a.lfn for a in advice] == ["aa", "zz"]


def test_zero_stream_request_bumped_to_one():
    # Controller rejects streams < 1, but the service rule guards it too.
    service = PolicyService(PolicyConfig(policy="greedy"))
    advice = service.submit_transfers("wf", "j", [spec("a", streams=0)])
    assert advice[0].streams >= 1


# --------------------------------------------------------- de-duplication
def test_duplicate_within_batch_skipped(greedy_service):
    advice = greedy_service.submit_transfers("wf", "j", [spec("a"), spec("a")])
    actions = sorted(a.action for a in advice)
    assert actions == ["skip", "transfer"]
    skip = next(a for a in advice if a.action == "skip")
    assert "duplicate" in skip.reason


def test_same_lfn_different_destination_not_duplicate(greedy_service):
    advice = greedy_service.submit_transfers(
        "wf", "j", [spec("a"), spec("a", dst="gsiftp://other/scratch")]
    )
    assert [a.action for a in advice] == ["transfer", "transfer"]


def test_already_staged_file_skipped_across_workflows(greedy_service):
    first = greedy_service.submit_transfers("wf1", "j1", [spec("shared")])
    greedy_service.complete_transfers(done=[first[0].tid])
    second = greedy_service.submit_transfers("wf2", "j2", [spec("shared")])
    assert second[0].action == "skip"
    assert "already staged" in second[0].reason
    # Both workflows are now users of the staged file.
    resource = greedy_service.memory.facts_of(StagedFileFact)[0]
    assert resource.users == {"wf1", "wf2"}


def test_in_flight_transfer_causes_wait(greedy_service):
    first = greedy_service.submit_transfers("wf1", "j1", [spec("big")])
    assert first[0].action == "transfer"
    second = greedy_service.submit_transfers("wf2", "j2", [spec("big")])
    assert second[0].action == "wait"
    assert second[0].wait_for == first[0].tid
    # The waiting workflow was registered as a user of the file.
    resource = greedy_service.memory.facts_of(StagedFileFact)[0]
    assert resource.users == {"wf1", "wf2"}


def test_wait_then_staged_visible_via_query(greedy_service):
    first = greedy_service.submit_transfers("wf1", "j1", [spec("big")])
    dst = first[0].dst_url
    assert greedy_service.staging_state("big", dst) == "staging"
    greedy_service.complete_transfers(done=[first[0].tid])
    assert greedy_service.staging_state("big", dst) == "staged"
    assert greedy_service.staging_state("other", dst) == "unknown"


def test_failed_transfer_allows_restaging(greedy_service):
    first = greedy_service.submit_transfers("wf1", "j1", [spec("flaky")])
    greedy_service.complete_transfers(failed=[first[0].tid])
    # Resource removed; a retry is approved as a fresh transfer.
    retry = greedy_service.submit_transfers("wf1", "j1-retry", [spec("flaky")])
    assert retry[0].action == "transfer"


def test_transfer_state_lifecycle(greedy_service):
    advice = greedy_service.submit_transfers("wf", "j", [spec("a")])
    tid = advice[0].tid
    assert greedy_service.transfer_state(tid) == "in_progress"
    greedy_service.complete_transfers(done=[tid])
    assert greedy_service.transfer_state(tid) == "done"
    assert greedy_service.transfer_state(99999) == "unknown"


def test_complete_unknown_ids_ignored(greedy_service):
    assert greedy_service.complete_transfers(done=[12345])["acknowledged"] == 0


# ------------------------------------------------------ greedy allocation
def test_greedy_allocates_until_threshold():
    service = PolicyService(PolicyConfig(policy="greedy", default_streams=8, max_streams=50))
    grants = []
    for i in range(20):
        advice = service.submit_transfers("wf", f"job{i}", [spec(f"f{i}")])
        grants.append(advice[0].streams)
    # Paper Table IV narrative: 6 full grants of 8, one grant of 2, rest 1.
    assert grants == [8] * 6 + [2] + [1] * 13
    assert sum(grants) == 63


def test_greedy_threshold_100_default_6():
    service = PolicyService(PolicyConfig(policy="greedy", default_streams=6, max_streams=100))
    grants = [
        service.submit_transfers("wf", f"j{i}", [spec(f"f{i}")])[0].streams
        for i in range(20)
    ]
    assert sum(grants) == 103  # Table IV


def test_completion_frees_streams_for_new_transfers():
    service = PolicyService(PolicyConfig(policy="greedy", default_streams=8, max_streams=16))
    a = service.submit_transfers("wf", "j1", [spec("a")])[0]
    b = service.submit_transfers("wf", "j2", [spec("b")])[0]
    assert (a.streams, b.streams) == (8, 8)
    c = service.submit_transfers("wf", "j3", [spec("c")])[0]
    assert c.streams == 1  # threshold reached
    service.complete_transfers(done=[a.tid])
    # a's 8 streams freed: allocation is 8 (b) + 1 (c) = 9; a new request
    # for 8 is trimmed to the 7 streams left under the threshold of 16.
    d = service.submit_transfers("wf", "j4", [spec("d")])[0]
    assert d.streams == 7
    pair = service.memory.facts_of(HostPairFact)[0]
    assert pair.allocated == 16


def test_greedy_per_pair_thresholds_independent():
    service = PolicyService(PolicyConfig(policy="greedy", default_streams=8, max_streams=8))
    a = service.submit_transfers("wf", "j1", [spec("a", src="gsiftp://s1/d")])[0]
    b = service.submit_transfers("wf", "j2", [spec("b", src="gsiftp://s2/d")])[0]
    assert a.streams == b.streams == 8  # separate pairs, separate budgets


def test_pair_threshold_override():
    service = PolicyService(
        PolicyConfig(
            policy="greedy",
            default_streams=8,
            max_streams=50,
            pair_thresholds={("fg-vm", "obelix"): 4},
        )
    )
    advice = service.submit_transfers("wf", "j", [spec("a")])
    assert advice[0].streams == 4  # trimmed to the pair's own threshold


def test_fifo_policy_no_stream_cap():
    service = PolicyService(PolicyConfig(policy="fifo", default_streams=9))
    grants = [
        service.submit_transfers("wf", f"j{i}", [spec(f"f{i}")])[0].streams
        for i in range(10)
    ]
    assert grants == [9] * 10  # no threshold enforcement


def test_memory_persists_across_batches(greedy_service):
    greedy_service.submit_transfers("wf", "j1", [spec("a")])
    greedy_service.submit_transfers("wf", "j2", [spec("b")])
    in_progress = [
        t for t in greedy_service.memory.facts_of(TransferFact)
        if t.status == "in_progress"
    ]
    assert len(in_progress) == 2


def test_stats_counters(greedy_service):
    greedy_service.submit_transfers("wf", "j", [spec("a"), spec("a")])
    snap = greedy_service.snapshot()
    assert snap["stats"]["transfers_submitted"] == 2
    assert snap["stats"]["transfers_approved"] == 1
    assert snap["stats"]["transfers_skipped"] == 1
    assert snap["policy"] == "greedy"
    assert snap["memory"]["TransferFact"] == 1


def test_batch_allocation_reserves_for_whole_list():
    """The service allocates streams for every transfer of a batch at
    advice time (the PTT executes the list serially and reports
    completions afterwards — the paper's protocol).  Wide batches
    therefore reserve far more streams than are concurrently active,
    which is why the paper's evaluation ran with clustering disabled
    (see EXPERIMENTS.md, ablation A1)."""
    service = PolicyService(PolicyConfig(policy="greedy", default_streams=4, max_streams=50))
    advice = service.submit_transfers(
        "wf", "clustered_job", [spec(f"f{i}") for i in range(13)]
    )
    grants = [a.streams for a in advice]
    assert sum(grants) == 4 * 12 + 2  # 48 full + one trimmed to the threshold
    pair = service.memory.facts_of(HostPairFact)[0]
    assert pair.allocated == 50  # the whole batch is reserved immediately
    # A second clustered job arriving now is starved to single streams.
    late = service.submit_transfers("wf", "other_cluster", [spec("g0"), spec("g1")])
    assert [a.streams for a in late] == [1, 1]


def test_advice_ordering_ranks_deny_last():
    service = PolicyService(
        PolicyConfig(policy="greedy", default_streams=4, max_streams=50,
                     access_control=True)
    )
    service.deny_host("banned-host", direction="src")
    advice = service.submit_transfers(
        "wf", "j",
        [
            spec("ok"),
            spec("nope", src="gsiftp://banned-host/d"),
            spec("dup"),
            spec("dup"),
        ],
    )
    actions = [a.action for a in advice]
    # transfer(s) first, skips before denials at the tail.
    assert actions == ["transfer", "transfer", "skip", "deny"]


def test_snapshot_host_pairs_reflect_live_allocation():
    service = PolicyService(PolicyConfig(policy="greedy", default_streams=6, max_streams=50))
    service.submit_transfers("wf", "j", [spec("a"), spec("b")])
    snap = service.snapshot()
    pair = snap["host_pairs"]["fg-vm->obelix"]
    assert pair["allocated"] == 12
    assert pair["threshold"] == 50
    assert pair["group_id"] >= 1
