"""The service's metrics registry and the legacy ``stats`` alias view."""

import pytest

from repro.obs import MetricsRegistry
from repro.policy import PolicyConfig, PolicyService

LEGACY_KEYS = {
    "transfer_requests", "transfers_submitted", "transfers_approved",
    "transfers_skipped", "transfers_waited", "transfers_denied",
    "transfers_reaped", "cleanup_requests", "cleanups_submitted",
    "cleanups_approved", "cleanups_skipped", "cleanups_reaped",
    "staged_reconciled", "rule_firings",
}


def specs(*lfns):
    return [
        {
            "lfn": lfn,
            "src_url": f"gsiftp://fg-vm/data/{lfn}",
            "dst_url": f"gsiftp://obelix/scratch/{lfn}",
            "nbytes": 100,
        }
        for lfn in lfns
    ]


@pytest.fixture
def service():
    return PolicyService(PolicyConfig(policy="greedy", max_streams=50))


def test_stats_alias_exposes_all_legacy_keys(service):
    assert set(service.stats) == LEGACY_KEYS
    assert all(isinstance(v, int) for v in service.stats.values())


def test_stats_alias_tracks_the_registry(service):
    advice = service.submit_transfers("wf", "j", specs("a", "b"))
    assert service.stats["transfer_requests"] == 1  # batches, as always
    assert service.stats["transfers_approved"] == 2
    assert service.stats["rule_firings"] > 0
    counter = service.metrics.get("repro_policy_transfers_total")
    assert counter.value(event="approved") == 2
    service.complete_transfers(done=[a.tid for a in advice])
    # A duplicate submission is skipped in both namespaces.
    service.submit_transfers("wf2", "j2", specs("a"))
    assert service.stats["transfers_skipped"] == 1
    assert counter.value(event="skipped") == 1


def test_calls_and_batch_metrics(service):
    service.submit_transfers("wf", "j", specs("a", "b", "c"))
    calls = service.metrics.get("repro_policy_calls_total")
    assert calls.value(call="submit_transfers") == 1
    text = service.metrics_text()
    assert 'repro_policy_batch_size_bucket{kind="transfers",le="5"} 1' in text
    assert 'repro_policy_call_seconds_count{call="submit_transfers"} 1' in text


def test_snapshot_has_metrics_namespace_and_legacy_stats(service):
    service.submit_transfers("wf", "j", specs("x"))
    snap = service.snapshot()
    assert snap["stats"]["transfers_approved"] == 1
    metrics = snap["metrics"]
    assert metrics["repro_policy_transfers_total"][
        'repro_policy_transfers_total{event="approved"}'
    ] == 1.0
    assert metrics["repro_policy_id_highwater"][
        'repro_policy_id_highwater{kind="tid"}'
    ] == 1.0


def test_shared_registry_is_used_not_copied():
    registry = MetricsRegistry()
    service = PolicyService(PolicyConfig(policy="greedy"), metrics=registry)
    assert service.metrics is registry
    service.submit_transfers("wf", "j", specs("a"))
    assert registry.get("repro_policy_transfers_total").value(event="approved") == 1


def test_journal_commits_metered(tmp_path):
    from repro.policy.journal import PolicyJournal

    service = PolicyService(
        PolicyConfig(policy="greedy"), journal=PolicyJournal(tmp_path)
    )
    service.submit_transfers("wf", "j", specs("a"))
    commits = service.metrics.get("repro_policy_journal_commits_total").value()
    assert commits >= 1
    text = service.metrics_text()
    assert "repro_policy_journal_commit_seconds_count" in text


def test_recovered_service_keeps_the_registry(tmp_path):
    from repro.policy.journal import PolicyJournal

    registry = MetricsRegistry()
    config = PolicyConfig(policy="greedy")
    service = PolicyService(
        config, journal=PolicyJournal(tmp_path), metrics=registry
    )
    service.submit_transfers("wf", "j", specs("a"))
    before = registry.get("repro_policy_transfers_total").value(event="approved")
    recovered = PolicyService.recover(tmp_path, config=config, metrics=registry)
    assert recovered.metrics is registry
    recovered.submit_transfers("wf2", "j2", specs("b"))
    after = registry.get("repro_policy_transfers_total").value(event="approved")
    assert after == before + 1  # counters accumulate across the restart
