"""Tests of the threshold auto-tuner."""

import numpy as np
import pytest

from repro.policy.tuning import ThresholdTuner


def test_validation():
    with pytest.raises(ValueError):
        ThresholdTuner([])
    with pytest.raises(ValueError):
        ThresholdTuner([0])
    with pytest.raises(ValueError):
        ThresholdTuner([50], epsilon=2.0)
    tuner = ThresholdTuner([50, 100])
    with pytest.raises(ValueError):
        tuner.observe(75, 10.0)
    with pytest.raises(ValueError):
        tuner.observe(50, 0.0)


def test_tries_every_arm_first():
    tuner = ThresholdTuner([50, 100, 200], rng=np.random.default_rng(0))
    seen = []
    for _ in range(3):
        arm = tuner.suggest()
        seen.append(arm)
        tuner.observe(arm, 100.0)
    assert sorted(seen) == [50, 100, 200]


def test_converges_to_best_threshold():
    rng = np.random.default_rng(1)
    tuner = ThresholdTuner([50, 100, 200], epsilon=0.2, rng=rng)

    def simulated_time(threshold):
        base = {50: 100.0, 100: 115.0, 200: 140.0}[threshold]
        return base + rng.normal(0, 3)

    for _ in range(60):
        arm = tuner.suggest()
        tuner.observe(arm, max(1.0, simulated_time(arm)))
    assert tuner.best() == 50
    # Exploitation dominates: the best arm has the most samples.
    counts = tuner.observations()
    assert counts[50] > counts[200]


def test_mean_time_and_duplicate_candidates():
    tuner = ThresholdTuner([50, 50, 100])
    assert tuner.candidates == [50, 100]
    assert tuner.mean_time(50) is None
    tuner.observe(50, 10)
    tuner.observe(50, 20)
    assert tuner.mean_time(50) == 15.0


def test_best_before_observations_is_first_candidate():
    assert ThresholdTuner([75, 50]).best() == 75
