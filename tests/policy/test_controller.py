"""Tests of the Policy Controller's validation/translation layer."""

import pytest

from repro.policy import PolicyConfig, PolicyController, PolicyRequestError, PolicyService


@pytest.fixture
def controller():
    return PolicyController(PolicyService(PolicyConfig(policy="greedy")))


def transfer_payload(**overrides):
    payload = {
        "workflow": "wf",
        "job": "j",
        "transfers": [
            {
                "lfn": "f",
                "src_url": "gsiftp://src/d/f",
                "dst_url": "gsiftp://dst/s/f",
                "nbytes": 100,
            }
        ],
    }
    payload.update(overrides)
    return payload


def test_submit_transfers_roundtrip(controller):
    doc = controller.submit_transfers(transfer_payload())
    assert doc["workflow"] == "wf"
    assert len(doc["advice"]) == 1
    advice = doc["advice"][0]
    assert advice["action"] == "transfer"
    assert advice["streams"] == 4
    assert isinstance(advice["tid"], int)


def test_missing_fields_rejected(controller):
    with pytest.raises(PolicyRequestError, match="workflow"):
        controller.submit_transfers({"job": "j", "transfers": []})
    with pytest.raises(PolicyRequestError, match="transfers"):
        controller.submit_transfers({"workflow": "w", "job": "j"})
    with pytest.raises(PolicyRequestError, match="src_url"):
        controller.submit_transfers(
            transfer_payload(transfers=[{"lfn": "f", "dst_url": "gsiftp://d/f"}])
        )


def test_bad_types_rejected(controller):
    with pytest.raises(PolicyRequestError):
        controller.submit_transfers(transfer_payload(transfers=["nope"]))
    with pytest.raises(PolicyRequestError, match="nbytes"):
        bad = transfer_payload()
        bad["transfers"][0]["nbytes"] = -5
        controller.submit_transfers(bad)
    with pytest.raises(PolicyRequestError, match="streams"):
        bad = transfer_payload()
        bad["transfers"][0]["streams"] = 0
        controller.submit_transfers(bad)
    with pytest.raises(PolicyRequestError):
        controller.submit_transfers("not a dict")


def test_complete_transfers_validation(controller):
    doc = controller.submit_transfers(transfer_payload())
    tid = doc["advice"][0]["tid"]
    assert controller.complete_transfers({"done": [tid]})["acknowledged"] == 1
    with pytest.raises(PolicyRequestError):
        controller.complete_transfers({"done": ["x"]})


def test_transfer_and_staging_state(controller):
    doc = controller.submit_transfers(transfer_payload())
    tid = doc["advice"][0]["tid"]
    assert controller.transfer_state(tid)["state"] == "in_progress"
    with pytest.raises(PolicyRequestError):
        controller.transfer_state("nope")
    state = controller.staging_state({"lfn": "f", "url": "gsiftp://dst/s/f"})
    assert state["state"] == "staging"


def test_cleanup_endpoints(controller):
    doc = controller.submit_transfers(transfer_payload())
    controller.complete_transfers({"done": [doc["advice"][0]["tid"]]})
    cleanup = controller.submit_cleanups(
        {"workflow": "wf", "job": "c", "files": [{"lfn": "f", "url": "gsiftp://dst/s/f"}]}
    )
    assert cleanup["advice"][0]["action"] == "delete"
    ack = controller.complete_cleanups({"ids": [cleanup["advice"][0]["cid"]]})
    assert ack["acknowledged"] == 1
    with pytest.raises(PolicyRequestError):
        controller.submit_cleanups({"workflow": "wf", "job": "c", "files": ["x"]})
    with pytest.raises(PolicyRequestError):
        controller.complete_cleanups({"ids": "nope"})


def test_priorities_endpoints(controller):
    doc = controller.register_priorities({"workflow": "wf", "priorities": {"j": 5}})
    assert doc["registered"] == 1
    with pytest.raises(PolicyRequestError):
        controller.register_priorities({"workflow": "wf", "priorities": {"j": "high"}})
    assert controller.unregister_workflow({"workflow": "wf"})["unregistered"]


def test_status(controller):
    status = controller.status()
    assert status["policy"] == "greedy"
    assert "stats" in status
