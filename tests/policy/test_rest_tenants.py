"""REST tenant CRUD, per-tenant metrics labels, and the NaN/inf quota
regression: ``json.loads`` happily parses ``NaN``/``Infinity``, and
``NaN < 0`` is False, so naive range checks let poisoned numbers into
policy memory.  Every byte/weight field must reject non-finite values
with HTTP 400."""

import json
import urllib.error
import urllib.request

import pytest

from repro.policy import PolicyConfig, PolicyService
from repro.policy.rest import PolicyRestServer


@pytest.fixture
def server():
    service = PolicyService(
        PolicyConfig(policy="greedy", default_streams=4, max_streams=50,
                     access_control=True)
    )
    with PolicyRestServer(service) as srv:
        yield srv


def post(url, payload: dict, timeout=5):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def get(url, timeout=5):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.read().decode()


def post_error_code(url, payload) -> int:
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        post(url, payload)
    return excinfo.value.code


def test_tenant_crud_roundtrip(server):
    doc = post(f"{server.url}/policy/tenants",
               {"tenant": "acme", "weight": 4, "priority_class": 1,
                "max_bytes": 1e9, "max_streams": 8, "max_concurrent": 2})
    assert doc == {"tenant": "acme", "registered": True}
    post(f"{server.url}/policy/tenants/bind",
         {"workflow": "wf1", "tenant": "acme"})
    census = json.loads(get(f"{server.url}/policy/tenants"))["tenants"]
    assert census == [{
        "tenant": "acme", "weight": 4.0, "priority_class": 1,
        "max_bytes": 1e9, "max_streams": 8, "max_concurrent": 2,
        "inflight_streams": 0, "bytes_staged": 0.0, "workflows": ["wf1"],
    }]
    doc = post(f"{server.url}/policy/tenants/remove", {"tenant": "acme"})
    assert doc["removed"] == 2  # the tenant fact + one binding
    assert json.loads(get(f"{server.url}/policy/tenants"))["tenants"] == []


def test_bound_tenant_budget_applies_over_rest(server):
    post(f"{server.url}/policy/tenants", {"tenant": "acme", "max_streams": 6})
    post(f"{server.url}/policy/tenants/bind",
         {"workflow": "wf", "tenant": "acme"})
    doc = post(f"{server.url}/policy/transfers", {
        "workflow": "wf", "job": "j",
        "transfers": [
            {"lfn": f"f{i}", "src_url": f"gsiftp://a/f{i}",
             "dst_url": f"gsiftp://b/f{i}", "nbytes": 10.0, "streams": 4}
            for i in range(2)
        ],
    })
    assert [a["streams"] for a in doc["advice"]] == [4, 2]
    metrics = get(f"{server.url}/policy/metrics")
    assert 'repro_policy_tenant_inflight_streams{tenant="acme"} 6' in metrics


def test_bind_unknown_tenant_is_400(server):
    assert post_error_code(f"{server.url}/policy/tenants/bind",
                           {"workflow": "wf", "tenant": "ghost"}) == 400


@pytest.mark.parametrize("payload", [
    {"tenant": "t", "weight": float("nan")},
    {"tenant": "t", "weight": float("inf")},
    {"tenant": "t", "weight": 0},
    {"tenant": "t", "weight": -2},
    {"tenant": "t", "weight": True},
    {"tenant": "t", "max_bytes": float("nan")},
    {"tenant": "t", "max_bytes": float("-inf")},
    {"tenant": "t", "max_bytes": -5},
    {"tenant": "t", "max_streams": 0},
    {"tenant": "t", "max_streams": 2.5},
    {"tenant": "t", "max_concurrent": -1},
    {"tenant": "t", "priority_class": "high"},
    {"tenant": ""},
])
def test_tenant_registration_rejects_poisoned_numbers(server, payload):
    assert post_error_code(f"{server.url}/policy/tenants", payload) == 400
    assert json.loads(get(f"{server.url}/policy/tenants"))["tenants"] == []


@pytest.mark.parametrize("max_bytes", [float("nan"), float("inf"),
                                       float("-inf"), -1.0, True])
def test_set_quota_rejects_non_finite_bytes(server, max_bytes):
    # Regression: NaN/Infinity survive json.dumps/loads round-trips and
    # NaN compares False against every bound.
    code = post_error_code(f"{server.url}/policy/quotas",
                           {"workflow": "wf", "max_bytes": max_bytes})
    assert code == 400


def test_set_quota_accepts_finite_bytes(server):
    doc = post(f"{server.url}/policy/quotas",
               {"workflow": "wf", "max_bytes": 5e9})
    assert doc == {"workflow": "wf", "max_bytes": 5e9}
