"""Unit tests for policy configuration and DTOs."""

import pytest

from repro.policy import PolicyConfig, TransferAdvice
from repro.policy.model import CleanupAdvice, TransferFact


def test_config_defaults_match_paper():
    cfg = PolicyConfig()
    assert cfg.policy == "greedy"
    assert cfg.default_streams == 4
    assert cfg.max_streams == 50


def test_config_validation():
    with pytest.raises(ValueError):
        PolicyConfig(policy="nope")
    with pytest.raises(ValueError):
        PolicyConfig(default_streams=0)
    with pytest.raises(ValueError):
        PolicyConfig(max_streams=0)
    with pytest.raises(ValueError):
        PolicyConfig(order_by="random")
    with pytest.raises(ValueError):
        PolicyConfig(policy="balanced")  # needs cluster_count
    with pytest.raises(ValueError):
        PolicyConfig(policy="balanced", cluster_count=4, cluster_threshold=0)


def test_threshold_for_with_pair_override():
    cfg = PolicyConfig(max_streams=50, pair_thresholds={("a", "b"): 10})
    assert cfg.threshold_for("a", "b") == 10
    assert cfg.threshold_for("b", "a") == 50


def test_per_cluster_threshold():
    cfg = PolicyConfig(policy="balanced", max_streams=50, cluster_count=4)
    assert cfg.per_cluster_threshold() == 12
    cfg2 = PolicyConfig(policy="balanced", max_streams=50, cluster_count=4,
                        cluster_threshold=20)
    assert cfg2.per_cluster_threshold() == 20


def test_transfer_fact_parses_hosts():
    t = TransferFact(1, "wf", "job", "f", "gsiftp://src-host/d/f",
                     "gsiftp://dst-host/s/f", 100)
    assert t.src_host == "src-host"
    assert t.dst_host == "dst-host"
    assert t.status == "submitted"


def test_advice_roundtrip():
    a = TransferAdvice(tid=3, lfn="f", src_url="gsiftp://a/f", dst_url="gsiftp://b/f",
                       nbytes=10.0, action="transfer", streams=4, group_id=1)
    assert TransferAdvice.from_dict(a.to_dict()) == a
    c = CleanupAdvice(cid=1, lfn="f", url="gsiftp://b/f", action="delete")
    assert CleanupAdvice.from_dict(c.to_dict()) == c
