"""Cross-engine equivalence and long-lived-service memory tests.

The ``engine="indexed"`` service (hash-indexed memory + incremental
agenda) and the ``engine="compiled"`` service (join-network plans with
memoized partial matches) must give **byte-identical** advice to the
``engine="seed"`` service (full re-scan engine) for the same request
stream.  The Montage scenario mirrors the paper's workload: per-job
stage-in batches with cross-workflow duplicates, completions and
cleanups interleaved; the access and fairshare variants layer host
denials and tenant budgets on top.
"""

import json

import pytest

from repro.policy import PolicyConfig, PolicyJournal, PolicyService
from repro.policy.model import HostPairFact, StagedFileFact, TransferFact
from repro.workflow.montage import MontageConfig, montage_workflow

from tests.policy.conftest import spec


# ------------------------------------------------------------- workload
def montage_batches(max_jobs=40):
    """Per-job stage-in batches derived from the Montage DAG."""
    wf = montage_workflow(MontageConfig(n_images=12))
    batches = []
    for job in list(wf.jobs.values())[:max_jobs]:
        items = [
            {
                "lfn": f.lfn,
                "src_url": f"gsiftp://fg-vm/data/{f.lfn}",
                "dst_url": f"gsiftp://obelix/scratch/{f.lfn}",
                "nbytes": float(f.size or 1000.0),
            }
            for f in job.inputs
        ]
        if items:
            batches.append((job.id, items))
    return batches


def drive(service, mid_hook=None):
    """Run the Montage scenario against a service; return the advice log.

    ``mid_hook`` runs between the two workflows so scenario variants can
    flip service state (deny a host, rebind tenants) mid-stream.
    """
    log = []
    in_flight = []
    for n, (workflow, mult) in enumerate([("wfA", 1), ("wfB", 2)]):
        if n == 1 and mid_hook is not None:
            mid_hook(service)
        for i, (job, items) in enumerate(montage_batches()):
            advice = service.submit_transfers(workflow, job, items)
            log.append([a.to_dict() for a in advice])
            in_flight.extend(
                a.tid for a in advice if a.action == "transfer"
            )
            # Complete in waves so allocations free up mid-run; leave a
            # tail in flight to exercise the shared-staging "wait" path.
            if i % mult == 0 and in_flight:
                half = len(in_flight) // 2 or 1
                done, in_flight = in_flight[:half], in_flight[half:]
                log.append(service.complete_transfers(done=done))
        log.append(service.complete_transfers(done=in_flight))
        in_flight = []
        cleanups = service.submit_cleanups(
            workflow,
            "clean",
            [(f"{n}-unused", f"gsiftp://obelix/scratch/{n}-unused")],
        )
        log.append([c.to_dict() for c in cleanups])
        service.unregister_workflow(workflow)
    log.append(service.snapshot()["memory"])
    return log


def make_service(engine, policy="greedy", **kw):
    cfg = dict(policy=policy, default_streams=4, max_streams=12)
    cfg.update(kw)
    return PolicyService(PolicyConfig(**cfg), engine=engine)


def _fairshare_setup(service):
    service.register_tenant("acme", weight=2, max_streams=20)
    service.register_tenant("beta", weight=1, max_streams=8)
    service.bind_workflow("wfA", "acme")
    service.bind_workflow("wfB", "beta")


def _deny_mid_run(service):
    # wfA staged normally; every wfB transfer now hits a denied source.
    service.deny_host("fg-vm", direction="src", reason="maintenance window")


_PACKS = [
    pytest.param({"policy": "greedy"}, None, None, id="greedy"),
    pytest.param({"policy": "fifo"}, None, None, id="fifo"),
    pytest.param({"policy": "balanced", "cluster_count": 3}, None, None,
                 id="balanced"),
    pytest.param({"policy": "greedy", "order_by": "priority"}, None, None,
                 id="priority"),
    pytest.param({"policy": "greedy", "access_control": True}, None,
                 _deny_mid_run, id="access"),
    pytest.param({"policy": "greedy"}, _fairshare_setup, None, id="fairshare"),
]


@pytest.mark.parametrize("engine", ["indexed", "compiled"])
@pytest.mark.parametrize("policy_kw, setup, mid_hook", _PACKS)
def test_montage_advice_byte_identical_across_engines(
    engine, policy_kw, setup, mid_hook
):
    logs = {}
    for name in ("seed", engine):
        service = make_service(name, **policy_kw)
        if setup is not None:
            setup(service)
        logs[name] = drive(service, mid_hook=mid_hook)
    assert json.dumps(logs["seed"], sort_keys=True) == json.dumps(
        logs[engine], sort_keys=True
    )


def test_engine_parameter_validated():
    with pytest.raises(ValueError):
        PolicyService(engine="warp")


@pytest.mark.parametrize("engine", ["seed", "indexed", "compiled"])
def test_crash_recovery_replay_byte_identical(tmp_path, engine):
    """A recovered service must replay to the same advice as an uncrashed
    twin — on every engine, including the compiled join network."""
    cfg = dict(policy="greedy", default_streams=4, max_streams=12)
    batches = montage_batches(max_jobs=12)

    def build(path):
        return PolicyService(
            PolicyConfig(**cfg), engine=engine, journal=PolicyJournal(path)
        )

    journaled = build(tmp_path / "j")
    for job, items in batches[:6]:
        journaled.submit_transfers("wfA", job, items)
    del journaled  # crash: only the journal directory survives

    recovered = PolicyService.recover(
        tmp_path / "j", config=PolicyConfig(**cfg), engine=engine
    )
    twin = build(tmp_path / "twin")
    for job, items in batches[:6]:
        twin.submit_transfers("wfA", job, items)

    tails = []
    for svc in (recovered, twin):
        log = [
            [a.to_dict() for a in svc.submit_transfers("wfB", job, items)]
            for job, items in batches[6:]
        ]
        log.append(svc.snapshot()["memory"])
        tails.append(log)
    assert json.dumps(tails[0], sort_keys=True) == json.dumps(tails[1], sort_keys=True)


# ------------------------------------------------------- bounded memory
def test_hundred_workflow_lifetimes_leave_no_residue():
    service = PolicyService(
        PolicyConfig(policy="greedy", default_streams=4, max_streams=50,
                     completed_tid_retention=100)
    )
    censuses = []
    for life in range(100):
        wf = f"wf{life}"
        advice = service.submit_transfers(
            wf, "stage", [spec(f"{wf}-f{i}") for i in range(5)]
        )
        tids = [a.tid for a in advice if a.action == "transfer"]
        service.complete_transfers(done=tids[:-1], failed=tids[-1:])
        service.unregister_workflow(wf)
        census = service.snapshot()["memory"]
        censuses.append(
            (census.get("StagedFileFact", 0), census.get("TransferFact", 0))
        )
    # No growth: every lifetime ends with the same (empty) census.
    assert set(censuses) == {(0, 0)}
    assert len(service._done_tids) <= 100
    assert len(service._failed_tids) <= 100


@pytest.mark.parametrize("retain", [False, True], ids=["drop", "retain"])
@pytest.mark.parametrize("policy_kw", [
    pytest.param({"policy": "greedy"}, id="greedy"),
    pytest.param({"policy": "balanced", "cluster_count": 3}, id="balanced"),
])
def test_repeated_lifetimes_leave_no_allocation_residue(policy_kw, retain):
    """Regression: idle ``HostPairFact`` / ``ClusterAllocationFact``
    records used to survive ``unregister_workflow`` forever (one per host
    pair), growing working memory in a long-lived service."""
    service = make_service("indexed", **policy_kw)
    for life in range(25):
        wf = f"wf{life}"
        lfn = "shared" if retain else wf
        advice = service.submit_transfers(
            wf, "stage",
            [dict(spec(f"{lfn}-f{i}"), cluster=i % 3) for i in range(3)],
        )
        service.complete_transfers(
            done=[a.tid for a in advice if a.action == "transfer"]
        )
        service.unregister_workflow(wf, retain_staged=retain)
        census = service.snapshot()["memory"]
        assert "HostPairFact" not in census
        assert "ClusterAllocationFact" not in census
        assert "TransferFact" not in census
        if not retain:
            assert "StagedFileFact" not in census
    if retain:
        # The retained files are the *only* thing the service remembers.
        assert set(service.snapshot()["memory"]) == {"StagedFileFact"}


def test_unregister_retracts_orphaned_staged_files(greedy_service):
    service = greedy_service
    advice = service.submit_transfers("wf1", "j1", [spec("a"), spec("b")])
    service.complete_transfers(done=[a.tid for a in advice])
    assert len(service.memory.facts_of(StagedFileFact)) == 2
    service.unregister_workflow("wf1")
    assert service.memory.facts_of(StagedFileFact) == []


def test_unregister_keeps_files_with_remaining_users(greedy_service):
    service = greedy_service
    a1 = service.submit_transfers("wf1", "j1", [spec("a")])
    service.complete_transfers(done=[a1[0].tid])
    # wf2 shares the staged file (skip advice attaches it as a user).
    again = service.submit_transfers("wf2", "j1", [spec("a")])
    assert again[0].action == "skip"
    service.unregister_workflow("wf1")
    [fact] = service.memory.facts_of(StagedFileFact)
    assert fact.users == {"wf2"}
    service.unregister_workflow("wf2")
    assert service.memory.facts_of(StagedFileFact) == []


def test_unregister_retain_staged_keeps_orphans(greedy_service):
    service = greedy_service
    advice = service.submit_transfers("wf1", "j1", [spec("a")])
    service.complete_transfers(done=[advice[0].tid])
    service.unregister_workflow("wf1", retain_staged=True)
    [fact] = service.memory.facts_of(StagedFileFact)
    assert fact.users == set()
    # A later workflow can still share the retained file.
    again = service.submit_transfers("wf2", "j1", [spec("a")])
    assert again[0].action == "skip"


def test_completed_tid_retention_is_bounded_and_fifo():
    service = PolicyService(
        PolicyConfig(policy="fifo", completed_tid_retention=3)
    )
    tids = []
    for i in range(6):
        advice = service.submit_transfers("wf", "j", [spec(f"f{i}")])
        tids.append(advice[0].tid)
        service.complete_transfers(done=[advice[0].tid])
    # Only the 3 most recent completions are remembered.
    assert [service.transfer_state(t) for t in tids[:3]] == ["unknown"] * 3
    assert [service.transfer_state(t) for t in tids[3:]] == ["done"] * 3
    assert service.memory.facts_of(TransferFact) == []
