"""Indexed-engine equivalence and long-lived-service memory tests.

The ``engine="indexed"`` service (hash-indexed memory + incremental
agenda) must give **byte-identical** advice to the ``engine="seed"``
service (full re-scan engine) for the same request stream.  The Montage
scenario mirrors the paper's workload: per-job stage-in batches with
cross-workflow duplicates, completions and cleanups interleaved.
"""

import json

import pytest

from repro.policy import PolicyConfig, PolicyService
from repro.policy.model import StagedFileFact, TransferFact
from repro.workflow.montage import MontageConfig, montage_workflow

from tests.policy.conftest import spec


# ------------------------------------------------------------- workload
def montage_batches(max_jobs=40):
    """Per-job stage-in batches derived from the Montage DAG."""
    wf = montage_workflow(MontageConfig(n_images=12))
    batches = []
    for job in list(wf.jobs.values())[:max_jobs]:
        items = [
            {
                "lfn": f.lfn,
                "src_url": f"gsiftp://fg-vm/data/{f.lfn}",
                "dst_url": f"gsiftp://obelix/scratch/{f.lfn}",
                "nbytes": float(f.size or 1000.0),
            }
            for f in job.inputs
        ]
        if items:
            batches.append((job.id, items))
    return batches


def drive(service):
    """Run the Montage scenario against a service; return the advice log."""
    log = []
    in_flight = []
    for n, (workflow, mult) in enumerate([("wfA", 1), ("wfB", 2)]):
        for i, (job, items) in enumerate(montage_batches()):
            advice = service.submit_transfers(workflow, job, items)
            log.append([a.to_dict() for a in advice])
            in_flight.extend(
                a.tid for a in advice if a.action == "transfer"
            )
            # Complete in waves so allocations free up mid-run; leave a
            # tail in flight to exercise the shared-staging "wait" path.
            if i % mult == 0 and in_flight:
                half = len(in_flight) // 2 or 1
                done, in_flight = in_flight[:half], in_flight[half:]
                log.append(service.complete_transfers(done=done))
        log.append(service.complete_transfers(done=in_flight))
        in_flight = []
        cleanups = service.submit_cleanups(
            workflow,
            "clean",
            [(f"{n}-unused", f"gsiftp://obelix/scratch/{n}-unused")],
        )
        log.append([c.to_dict() for c in cleanups])
        service.unregister_workflow(workflow)
    log.append(service.snapshot()["memory"])
    return log


def make_service(engine, policy="greedy", **kw):
    cfg = dict(policy=policy, default_streams=4, max_streams=12)
    cfg.update(kw)
    return PolicyService(PolicyConfig(**cfg), engine=engine)


@pytest.mark.parametrize(
    "policy_kw",
    [
        {"policy": "greedy"},
        {"policy": "fifo"},
        {"policy": "balanced", "cluster_count": 3},
        {"policy": "greedy", "order_by": "priority"},
    ],
    ids=["greedy", "fifo", "balanced", "priority"],
)
def test_montage_advice_byte_identical_across_engines(policy_kw):
    seed = drive(make_service("seed", **policy_kw))
    indexed = drive(make_service("indexed", **policy_kw))
    assert json.dumps(seed, sort_keys=True) == json.dumps(indexed, sort_keys=True)


def test_engine_parameter_validated():
    with pytest.raises(ValueError):
        PolicyService(engine="warp")


# ------------------------------------------------------- bounded memory
def test_hundred_workflow_lifetimes_leave_no_residue():
    service = PolicyService(
        PolicyConfig(policy="greedy", default_streams=4, max_streams=50,
                     completed_tid_retention=100)
    )
    censuses = []
    for life in range(100):
        wf = f"wf{life}"
        advice = service.submit_transfers(
            wf, "stage", [spec(f"{wf}-f{i}") for i in range(5)]
        )
        tids = [a.tid for a in advice if a.action == "transfer"]
        service.complete_transfers(done=tids[:-1], failed=tids[-1:])
        service.unregister_workflow(wf)
        census = service.snapshot()["memory"]
        censuses.append(
            (census.get("StagedFileFact", 0), census.get("TransferFact", 0))
        )
    # No growth: every lifetime ends with the same (empty) census.
    assert set(censuses) == {(0, 0)}
    assert len(service._done_tids) <= 100
    assert len(service._failed_tids) <= 100


def test_unregister_retracts_orphaned_staged_files(greedy_service):
    service = greedy_service
    advice = service.submit_transfers("wf1", "j1", [spec("a"), spec("b")])
    service.complete_transfers(done=[a.tid for a in advice])
    assert len(service.memory.facts_of(StagedFileFact)) == 2
    service.unregister_workflow("wf1")
    assert service.memory.facts_of(StagedFileFact) == []


def test_unregister_keeps_files_with_remaining_users(greedy_service):
    service = greedy_service
    a1 = service.submit_transfers("wf1", "j1", [spec("a")])
    service.complete_transfers(done=[a1[0].tid])
    # wf2 shares the staged file (skip advice attaches it as a user).
    again = service.submit_transfers("wf2", "j1", [spec("a")])
    assert again[0].action == "skip"
    service.unregister_workflow("wf1")
    [fact] = service.memory.facts_of(StagedFileFact)
    assert fact.users == {"wf2"}
    service.unregister_workflow("wf2")
    assert service.memory.facts_of(StagedFileFact) == []


def test_unregister_retain_staged_keeps_orphans(greedy_service):
    service = greedy_service
    advice = service.submit_transfers("wf1", "j1", [spec("a")])
    service.complete_transfers(done=[advice[0].tid])
    service.unregister_workflow("wf1", retain_staged=True)
    [fact] = service.memory.facts_of(StagedFileFact)
    assert fact.users == set()
    # A later workflow can still share the retained file.
    again = service.submit_transfers("wf2", "j1", [spec("a")])
    assert again[0].action == "skip"


def test_completed_tid_retention_is_bounded_and_fifo():
    service = PolicyService(
        PolicyConfig(policy="fifo", completed_tid_retention=3)
    )
    tids = []
    for i in range(6):
        advice = service.submit_transfers("wf", "j", [spec(f"f{i}")])
        tids.append(advice[0].tid)
        service.complete_transfers(done=[advice[0].tid])
    # Only the 3 most recent completions are remembered.
    assert [service.transfer_state(t) for t in tids[:3]] == ["unknown"] * 3
    assert [service.transfer_state(t) for t in tids[3:]] == ["done"] * 3
    assert service.memory.facts_of(TransferFact) == []
