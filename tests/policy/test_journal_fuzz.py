"""Property-based fuzzing of journal recovery.

The WAL promise: whatever happens to the *tail* of ``journal.jsonl`` —
torn writes, truncation at any byte, bit flips, garbage appends —
``PolicyService.recover`` must never crash and must restore exactly the
state as of the last fully committed, checksum-intact transaction
prefix.
"""

import itertools
import json

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.policy import PolicyConfig, PolicyJournal, PolicyService  # noqa: E402

_UNIQUE = itertools.count()


def _config():
    return PolicyConfig(policy="greedy", default_streams=4, max_streams=12)


def _spec(lfn):
    return {
        "lfn": lfn,
        "src_url": f"gsiftp://fg-vm/data/{lfn}",
        "dst_url": f"gsiftp://obelix/scratch/{lfn}",
        "nbytes": 1000.0,
    }


def _census(service):
    return service.snapshot()["memory"]


def _build_journal(path, batches=4):
    """A journaled service with several committed transactions.

    Returns ``(service, censuses)`` where ``censuses[i]`` is the memory
    census right after the i-th committed transaction — the exact set of
    states a torn-tail recovery is allowed to land on.
    """
    journal = PolicyJournal(path, snapshot_interval=10_000)
    service = PolicyService(_config(), journal=journal)
    censuses = []
    done = []
    for b in range(batches):
        advice = service.submit_transfers(
            "wf", f"job{b}", [_spec(f"f{b}-{i}") for i in range(3)])
        censuses.append(_census(service))
        done.extend(a.tid for a in advice if a.action == "transfer")
        if b % 2 == 1:
            service.complete_transfers(done=done[: len(done) // 2])
            censuses.append(_census(service))
            done = done[len(done) // 2:]
    journal.close()
    return service, censuses


def _fresh_dir(tmp_path):
    """Hypothesis reuses the function-scoped tmp_path across examples, so
    every example gets its own journal directory."""
    return tmp_path / f"case{next(_UNIQUE)}"


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(cut=st.integers(min_value=0, max_value=10_000))
def test_truncated_tail_recovers_to_a_committed_prefix(tmp_path, cut):
    path = _fresh_dir(tmp_path)
    _, censuses = _build_journal(path)
    wal = path / "journal.jsonl"
    raw = wal.read_bytes()
    wal.write_bytes(raw[: min(cut, len(raw))])

    recovered = PolicyService.recover(path, config=_config())
    # Never crashes, and the restored memory is exactly one of the
    # committed-transaction states (or empty, if the cut ate everything).
    assert _census(recovered) in censuses + [{}]
    # The recovered service still answers.
    advice = recovered.submit_transfers("probe", "p", [_spec("probe-file")])
    assert advice and advice[0].action in {"transfer", "skip", "wait"}


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(data=st.data())
def test_bit_flipped_tail_never_crashes_recover(tmp_path, data):
    path = _fresh_dir(tmp_path)
    _, censuses = _build_journal(path)
    wal = path / "journal.jsonl"
    raw = bytearray(wal.read_bytes())
    # Corrupt only the tail half: the head must stay replayable.
    lo = len(raw) // 2
    flips = data.draw(st.integers(min_value=1, max_value=8))
    for _ in range(flips):
        pos = data.draw(st.integers(min_value=lo, max_value=len(raw) - 1))
        bit = data.draw(st.integers(min_value=0, max_value=7))
        raw[pos] ^= 1 << bit
    wal.write_bytes(bytes(raw))

    recovered = PolicyService.recover(path, config=_config())
    # A flip in line k kills that line's CRC; replay stops at the last
    # committed transaction before it — some committed prefix state.
    assert _census(recovered) in censuses + [{}]
    assert recovered.submit_transfers("probe", "p", [_spec("probe-file")])


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(garbage=st.binary(min_size=1, max_size=300))
def test_garbage_appended_tail_is_discarded(tmp_path, garbage):
    path = _fresh_dir(tmp_path)
    reference, _ = _build_journal(path)
    wal = path / "journal.jsonl"
    expected = _census(reference)

    with open(wal, "ab") as handle:
        handle.write(garbage)

    recovered = PolicyService.recover(path, config=_config())
    # Appended garbage after the last commit must change nothing.
    assert _census(recovered) == expected


def test_full_journal_recovers_byte_identical(tmp_path):
    reference, _ = _build_journal(tmp_path)
    recovered = PolicyService.recover(tmp_path, config=_config())
    assert _census(recovered) == _census(reference)
    a = [x.to_dict() for x in
         reference.submit_transfers("wf2", "j", [_spec("same")])]
    b = [x.to_dict() for x in
         recovered.submit_transfers("wf2", "j", [_spec("same")])]
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


def test_torn_mid_transaction_rolls_back_whole_transaction(tmp_path):
    """Cutting inside the last transaction discards it entirely — the
    recovered state is the previous committed state, never a partial
    application of the torn transaction."""
    _, censuses = _build_journal(tmp_path)
    wal = tmp_path / "journal.jsonl"
    lines = wal.read_bytes().splitlines(keepends=True)
    # Drop the final commit marker and tear the mutation line before it.
    wal.write_bytes(b"".join(lines[:-2]) + lines[-2][: len(lines[-2]) // 2])

    recovered = PolicyService.recover(tmp_path, config=_config())
    assert _census(recovered) in censuses[:-1]
