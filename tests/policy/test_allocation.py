"""Tests of the analytic allocator — must reproduce Table IV exactly."""

import pytest

from repro.policy import PolicyConfig, PolicyService
from repro.policy.allocation import (
    balanced_allocate,
    format_table4,
    greedy_allocate,
    greedy_allocation_trace,
    max_streams_table,
)

from tests.policy.conftest import spec

#: Table IV from the paper, verbatim.
PAPER_TABLE4 = {
    50: {4: 57, 6: 61, 8: 63, 10: 65, 12: 65},
    100: {4: 80, 6: 103, 8: 107, 10: 110, 12: 111},
    200: {4: 80, 6: 120, 8: 160, 10: 200, 12: 203},
}


def test_greedy_allocate_cases():
    assert greedy_allocate(8, 0, 50) == 8       # fits
    assert greedy_allocate(8, 48, 50) == 2      # trimmed to threshold
    assert greedy_allocate(8, 50, 50) == 1      # threshold reached
    assert greedy_allocate(8, 60, 50) == 1      # threshold exceeded


def test_greedy_allocate_validation():
    with pytest.raises(ValueError):
        greedy_allocate(0, 0, 50)
    with pytest.raises(ValueError):
        greedy_allocate(4, -1, 50)
    with pytest.raises(ValueError):
        greedy_allocate(4, 0, 0)


def test_balanced_allocate_mirrors_greedy_per_cluster():
    assert balanced_allocate(8, 4, 10) == 6
    assert balanced_allocate(8, 10, 10) == 1


def test_trace_paper_example():
    """Paper: threshold 50, default 8 -> six 8s, one 2, thirteen 1s."""
    trace = greedy_allocation_trace(20, 8, 50)
    assert trace == [8] * 6 + [2] + [1] * 13
    assert sum(trace) == 63


def test_trace_validation():
    with pytest.raises(ValueError):
        greedy_allocation_trace(-1, 4, 50)


def test_table4_matches_paper_exactly():
    table = max_streams_table()
    assert table["no_policy"] == 80
    for threshold, row in PAPER_TABLE4.items():
        for default, expected in row.items():
            assert table["greedy"][threshold][default] == expected, (
                f"threshold={threshold} default={default}"
            )


def test_format_table4_renders_all_rows():
    text = format_table4(max_streams_table())
    assert "No policy case" in text
    for value in ("57", "63", "103", "203", "80"):
        assert value in text


def test_rule_engine_agrees_with_analytic_allocator():
    """The Table II rules and the pure function produce identical grants."""
    for threshold in (50, 100, 200):
        for default in (4, 6, 8, 10, 12):
            service = PolicyService(
                PolicyConfig(policy="greedy", default_streams=default,
                             max_streams=threshold)
            )
            engine_grants = [
                service.submit_transfers("wf", f"j{i}", [spec(f"f{i}")])[0].streams
                for i in range(20)
            ]
            assert engine_grants == greedy_allocation_trace(20, default, threshold), (
                f"threshold={threshold} default={default}"
            )
