"""The sharded router must be byte-identical to the single service.

Every (shard count, engine, policy pack) cell drives the multi-site
Montage scenario — submits, wave completions with failures, state
queries, cleanups, and workflow unregistration — through both a plain
``PolicyService`` and a ``ShardedPolicyService`` and compares the full
JSON advice logs.
"""

import json

import pytest

from repro.policy import PolicyService, ShardedPolicyService
from repro.policy.model import PolicyConfig

from tests.policy.sharding.conftest import (
    make_router,
    make_single,
    multi_site_batches,
    multi_site_drive,
)

_PACKS = [
    pytest.param({}, id="greedy"),
    pytest.param({"policy": "balanced", "cluster_count": 3}, id="balanced"),
    pytest.param({"order_by": "priority"}, id="priority"),
    pytest.param({"policy": "fifo"}, id="fifo"),
]


@pytest.mark.parametrize("engine", ["indexed", "compiled"])
@pytest.mark.parametrize("num_shards", [1, 2, 4])
@pytest.mark.parametrize("policy_kw", _PACKS)
def test_sharded_advice_byte_identical_to_single(engine, num_shards, policy_kw):
    single_log = multi_site_drive(make_single(engine, **policy_kw))
    router = make_router(num_shards, engine, **policy_kw)
    try:
        sharded_log = multi_site_drive(router)
    finally:
        router.close()
    assert json.dumps(single_log, sort_keys=True) == json.dumps(
        sharded_log, sort_keys=True
    )


def test_batches_actually_split_across_shards():
    """The equivalence above is vacuous if one shard gets everything."""
    router = make_router(4)
    try:
        _job, items = multi_site_batches()[0]
        multi_site_drive(router)
        dispatched = {
            labels
            for (_n, labels, value) in router._m_dispatch.samples()
            if value > 0
        }
    finally:
        router.close()
    assert len(dispatched) >= 2, f"all work went to shards {dispatched}"


def test_priority_ordering_matches_single_service():
    """Priority pre-sort happens at the router, not per shard."""
    specs = [
        {
            "lfn": f"p{i}",
            "src_url": f"gsiftp://site{i % 5}/data/p{i}",
            "dst_url": f"gsiftp://obelix/scratch/p{i}",
            "nbytes": 1000.0,
            "priority": i % 3,
        }
        for i in range(20)
    ]
    single = make_single(order_by="priority")
    router = make_router(4, order_by="priority")
    try:
        a = [x.to_dict() for x in single.submit_transfers("wf", "j", specs)]
        b = [x.to_dict() for x in router.submit_transfers("wf", "j", specs)]
    finally:
        router.close()
    assert a == b


def test_group_ids_renumbered_to_single_service_canon():
    """Shards mint group ids locally; the router renumbers them so the
    merged advice carries exactly the single service's numbering."""
    specs = [
        {
            "lfn": f"g{i}",
            "src_url": f"gsiftp://site{i % 3}/data/g{i}",
            "dst_url": f"gsiftp://obelix/scratch/g{i}",
            "nbytes": 1000.0,
        }
        for i in range(12)
    ]
    single = make_single()
    router = make_router(4)
    try:
        expect = [a.group_id for a in single.submit_transfers("wf", "j", specs)]
        got = [a.group_id for a in router.submit_transfers("wf", "j", specs)]
    finally:
        router.close()
    assert got == expect
    # Canonical numbering is contiguous from 1.
    assert set(got) == set(range(1, max(got) + 1))


def test_num_shards_validated():
    with pytest.raises(ValueError):
        ShardedPolicyService(PolicyConfig(), num_shards=0)


def test_config_fingerprint_matches_single_service():
    cfg = PolicyConfig(policy="greedy", default_streams=4, max_streams=12)
    single = PolicyService(cfg)
    router = ShardedPolicyService(cfg, num_shards=2)
    try:
        assert router.config_fingerprint() == single.config_fingerprint()
    finally:
        router.close()


@pytest.mark.parametrize("num_shards", [1, 2, 4])
def test_explain_digests_invariant_across_shard_counts(num_shards):
    """``explain`` must return the same causal record (same digest) for
    the same request stream whatever the shard count: pair/cluster
    ledgers are shard-complete by routing, and the router rewrites the
    one shard-local value (the advice's group id) to the canonical one."""
    single = make_single()
    multi_site_drive(single)
    expected = {
        (r["kind"], r.get("tid", r.get("cid"))): r for r in single.decision_records()
    }
    router = make_router(num_shards)
    try:
        multi_site_drive(router)
        got = {
            (r["kind"], r.get("tid", r.get("cid"))): r
            for r in router.decision_records()
        }
        assert set(got) == set(expected)
        for key, record in got.items():
            reference = expected[key]
            assert record["digest"] == reference["digest"], key
            # Byte-identical once the digest-excluded meta is dropped.
            a = {k: v for k, v in record.items() if k != "meta"}
            b = {k: v for k, v in reference.items() if k != "meta"}
            assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
        # The point query agrees with the aggregate, both kinds.
        some_tid = next(i for (kind, i) in got if kind == "transfer")
        assert router.explain(some_tid)["digest"] == expected[
            ("transfer", some_tid)]["digest"]
        some_cid = next(i for (kind, i) in got if kind == "cleanup")
        assert router.explain_cleanup(some_cid)["digest"] == expected[
            ("cleanup", some_cid)]["digest"]
    finally:
        router.close()
