"""Process-backed shards: pipe RPC, crash, and journal replay in a
fresh worker process."""

import json

import pytest

from repro.policy import PolicyConfig
from repro.policy.sharding import (
    ProcessShardBackend,
    ShardedPolicyService,
    ShardUnavailableError,
)

from tests.policy.sharding.conftest import make_single, multi_site_drive


def _cfg():
    return PolicyConfig(policy="greedy", default_streams=4, max_streams=12)


def test_process_fleet_matches_single_service():
    single_log = multi_site_drive(make_single())
    backends = [ProcessShardBackend(_cfg()) for _ in range(2)]
    router = ShardedPolicyService(_cfg(), num_shards=2, backends=backends)
    try:
        sharded_log = multi_site_drive(router)
    finally:
        router.close()
    assert json.dumps(single_log, sort_keys=True) == json.dumps(
        sharded_log, sort_keys=True
    )


def test_worker_errors_propagate_as_domain_errors():
    backend = ProcessShardBackend(_cfg())
    try:
        with pytest.raises(RuntimeError, match="AttributeError"):
            backend.invoke("definitely_not_a_method")
    finally:
        backend.close()


def test_crashed_worker_raises_unavailable_and_replays(tmp_path):
    backend = ProcessShardBackend(_cfg(), journal_dir=tmp_path)
    try:
        advice = backend.invoke(
            "submit_transfers", "wf", "j",
            [{"lfn": "p1", "src_url": "gsiftp://a/p1",
              "dst_url": "gsiftp://b/p1", "nbytes": 10.0}],
            tids=[1],
        )
        backend.invoke("complete_transfers", done=[advice[0].tid])
        backend.crash()
        with pytest.raises(ShardUnavailableError):
            backend.invoke("staging_state", "p1", "gsiftp://b/p1")
        backend.recover()
        # The fresh worker process replayed the shard's own journal.
        assert backend.invoke(
            "staging_state", "p1", "gsiftp://b/p1") == "staged"
    finally:
        backend.close()
