"""Shard crash, degraded advice, buffered replay, and health metrics."""

import pytest

from repro.policy import PolicyConfig, PolicyRestServer, ShardedPolicyService
from repro.policy.sharding import ShardUnavailableError

from tests.policy.sharding.conftest import make_router, make_single


def _spec(lfn, site="siteA"):
    return {
        "lfn": lfn,
        "src_url": f"gsiftp://{site}/data/{lfn}",
        "dst_url": f"gsiftp://obelix/scratch/{lfn}",
        "nbytes": 1000.0,
    }


def _shard_of(router, site):
    from repro.policy.sharding import pair_key

    return router.ring.node_for(pair_key(site, "obelix"))


def _two_sites_on_distinct_shards(router):
    """Find two source sites the ring homes on different shards."""
    first = f"site{0}"
    home = _shard_of(router, first)
    for i in range(1, 64):
        site = f"site{i}"
        if _shard_of(router, site) != home:
            return first, site
    raise AssertionError("ring put 64 sites on one shard")


def test_ownership_forwarding_keeps_dedup_exact():
    """A second workflow requesting the same (lfn, dst) from a different
    source pair is forwarded to the home shard, so dedup sees it."""
    single = make_single()
    router = make_router(4)
    try:
        for service in (single, router):
            first = service.submit_transfers(
                "wfA", "j1", [_spec("shared", site="siteX")])
            service.complete_transfers(done=[first[0].tid])
            again = service.submit_transfers(
                "wfB", "j2", [_spec("shared", site="siteY")])
            # The staged copy is reused whichever pair asks.
            assert again[0].action == "skip", (type(service), again[0])
        key = ("shared", "gsiftp://obelix/scratch/shared")
        assert key in router._owner
    finally:
        router.close()


def test_crash_degrades_only_the_dead_shards_keyspace():
    router = make_router(4)
    try:
        site_dead, site_live = _two_sites_on_distinct_shards(router)
        victim = _shard_of(router, site_dead)
        router.crash_shard(victim)

        advice = router.submit_transfers(
            "wf", "j",
            [_spec("a", site=site_dead), _spec("b", site=site_live)])
        dead_a, live_b = advice
        assert dead_a.action == "transfer" and dead_a.group_id == 0
        assert f"shard {victim}" in dead_a.reason
        assert live_b.action == "transfer" and live_b.group_id >= 1
        assert "unavailable" not in live_b.reason

        # Queries against the dead keyspace answer "unknown", cleanups skip.
        assert router.staging_state("a", dead_a.url if hasattr(dead_a, "url")
                                    else _spec("a")["dst_url"]) == "unknown"
        assert router.transfer_state(dead_a.tid) == "in_progress"
        cleanup = router.submit_cleanups(
            "wf", "clean", [("a", _spec("a", site=site_dead)["dst_url"])])
        assert cleanup[0].action == "skip"
    finally:
        router.close()


def test_buffered_completions_replay_at_recovery(tmp_path):
    router = make_router(2, journal_root=tmp_path)
    try:
        site_dead, _ = _two_sites_on_distinct_shards(router)
        victim = _shard_of(router, site_dead)

        granted = router.submit_transfers(
            "wf", "j", [_spec("f1", site=site_dead)])
        tid = granted[0].tid
        router.crash_shard(victim)

        # Completion while the shard is down is buffered, not lost.
        ack = router.complete_transfers(done=[tid])
        assert ack["acknowledged"] >= 1 or ack  # ack shape is service's own
        assert router._pending_ops[victim]

        result = router.recover_shard(victim)
        assert result["replayed"] >= 1
        assert not router._pending_ops[victim]
        assert not router.recovery_errors
        assert router.staging_state(
            "f1", _spec("f1", site=site_dead)["dst_url"]) == "staged"
        assert router.shards[victim].healthy()
    finally:
        router.close()


def test_journal_replay_restores_staged_state(tmp_path):
    router = make_router(2, journal_root=tmp_path)
    try:
        site_dead, _ = _two_sites_on_distinct_shards(router)
        victim = _shard_of(router, site_dead)
        granted = router.submit_transfers(
            "wf", "j", [_spec("f1", site=site_dead)])
        router.complete_transfers(done=[granted[0].tid])

        router.crash_shard(victim)
        assert not router.shards[victim].healthy()
        router.recover_shard(victim)

        # Staged fact came back from the shard's own WAL.
        assert router.staging_state(
            "f1", _spec("f1", site=site_dead)["dst_url"]) == "staged"
        # Dedup still works post-replay.
        again = router.submit_transfers(
            "wf2", "j2", [_spec("f1", site=site_dead)])
        assert again[0].action == "skip"
    finally:
        router.close()


def test_partition_heals_without_replay():
    router = make_router(2)
    try:
        site_dead, _ = _two_sites_on_distinct_shards(router)
        victim = _shard_of(router, site_dead)
        router.partition_shard(victim)
        advice = router.submit_transfers(
            "wf", "j", [_spec("p1", site=site_dead)])
        assert advice[0].group_id == 0 and "unavailable" in advice[0].reason

        router.partition_shard(victim, False)
        assert router.shards[victim].healthy()
        advice = router.submit_transfers(
            "wf", "j2", [_spec("p2", site=site_dead)])
        assert advice[0].group_id >= 1
    finally:
        router.close()


def test_timeout_storm_trips_the_breaker():
    router = make_router(2, breaker_threshold=3)
    try:
        site_dead, _ = _two_sites_on_distinct_shards(router)
        victim = _shard_of(router, site_dead)
        router.slow_shard(victim, 1.0)
        for i in range(4):
            router.submit_transfers(
                "wf", f"j{i}", [_spec(f"t{i}", site=site_dead)])
        handle = router.shards[victim]
        assert handle.breaker.state == "open"
        assert handle.breaker.transitions.get("closed->open", 0) >= 1

        # Breaker-open means unavailable even after the slowdown clears.
        router.slow_shard(victim, 0.0)
        with pytest.raises(ShardUnavailableError):
            handle.call("stats")

        # Recovery closes the breaker and restores exact advice.
        router.recover_shard(victim)
        advice = router.submit_transfers(
            "wf", "jz", [_spec("tz", site=site_dead)])
        assert advice[0].group_id >= 1
    finally:
        router.close()


def test_breaker_and_shard_health_exported_in_metrics():
    router = make_router(2)
    try:
        router.submit_transfers("wf", "j", [_spec("m1")])
        router.crash_shard(1)
        router.submit_transfers("wf", "j2", [_spec("m2")])
        text = router.metrics_text()
    finally:
        router.close()
    assert 'repro_policy_client_breaker_state{shard="0"}' in text
    assert 'repro_policy_client_breaker_state{shard="1"}' in text
    assert "repro_policy_client_breaker_transitions_total" in text
    assert 'repro_policy_shard_up{shard="1"} 0' in text
    assert 'repro_policy_shard_up{shard="0"} 1' in text
    # Per-shard service families carry the injected shard label.
    assert 'shard="0"' in text and 'shard="1"' in text


def test_rest_metrics_endpoint_includes_shard_health():
    """Satellite: GET /policy/metrics over a sharded fleet reports
    breaker state and shard health."""
    import urllib.request

    router = ShardedPolicyService(
        PolicyConfig(policy="greedy", default_streams=4, max_streams=12),
        num_shards=2,
    )
    server = PolicyRestServer(router)
    try:
        server.start()
        router.crash_shard(0)
        text = urllib.request.urlopen(
            server.url + "/policy/metrics").read().decode()
        assert "repro_policy_client_breaker_state" in text
        assert 'repro_policy_shard_up{shard="0"} 0' in text
        status = urllib.request.urlopen(server.url + "/policy/status")
        import json

        doc = json.loads(status.read())
        assert any(not h["healthy"] for h in doc["shard_health"])
    finally:
        server.stop()
        router.close()


def test_snapshot_reports_fleet_state():
    router = make_router(2)
    try:
        router.submit_transfers("wf", "j", [_spec("s1")])
        snap = router.snapshot()
    finally:
        router.close()
    assert snap["shards"] == 2
    assert len(snap["shard_health"]) == 2
    assert all(h["healthy"] for h in snap["shard_health"])
    assert snap["memory"]


def test_degraded_advice_gets_synthetic_explain_record():
    """The home shard never saw a degraded grant, so the router itself
    must witness it: ``explain`` returns a policy-free record naming the
    dead shard, and the aggregate stream includes it."""
    router = make_router(4)
    try:
        site_dead, site_live = _two_sites_on_distinct_shards(router)
        victim = _shard_of(router, site_dead)
        router.crash_shard(victim)

        dead_a, live_b = router.submit_transfers(
            "wf", "j",
            [_spec("a", site=site_dead), _spec("b", site=site_live)])

        synthetic = router.explain(dead_a.tid)
        assert synthetic["policy_free"] is True
        assert synthetic["firings"] == [] and synthetic["ledger"] == {}
        assert synthetic["meta"]["shard"] == victim
        assert f"shard {victim}" in synthetic["advice"]["reason"]

        real = router.explain(live_b.tid)
        assert real["policy_free"] is False and real["firings"]

        # Cleanups the router answered conservatively are witnessed too.
        cleanup = router.submit_cleanups(
            "wf", "clean", [("a", _spec("a", site=site_dead)["dst_url"])])
        record = router.explain_cleanup(cleanup[0].cid)
        assert record["policy_free"] is True
        assert record["advice"]["action"] == "skip"

        records = router.decision_records()
        assert any(r.get("policy_free") for r in records)
        assert any(not r.get("policy_free") for r in records)
    finally:
        router.close()


def test_explain_survives_shard_crash_and_recovery(tmp_path):
    """A journaled shard reproduces its decision records byte-identically
    after crash + recovery, and the router serves them transparently."""
    router = make_router(2, journal_root=tmp_path)
    try:
        granted = router.submit_transfers(
            "wf", "j", [_spec(f"f{i}", site=f"site{i}") for i in range(6)])
        before = {a.tid: router.explain(a.tid) for a in granted}
        assert all(before.values())

        for victim in range(2):
            router.crash_shard(victim)
            router.recover_shard(victim)
        after = {a.tid: router.explain(a.tid) for a in granted}
        assert after == before
    finally:
        router.close()
