"""Shared harness for the shard-router tests.

``multi_site_drive`` mirrors the Montage scenario from
``tests/policy/test_engine_equivalence.py`` but spreads source hosts
over several sites (deterministically per lfn), so a multi-shard router
actually splits every batch across its fleet.
"""

import hashlib

from repro.policy import PolicyConfig, PolicyService
from repro.policy.sharding import ShardedPolicyService
from repro.workflow.montage import MontageConfig, montage_workflow

SITES = [f"site{i}" for i in range(6)]


def site_of(lfn: str) -> str:
    """Deterministic source site per lfn (same across workflows, so a
    duplicated file always has one home pair)."""
    digest = int(hashlib.sha256(lfn.encode()).hexdigest(), 16)
    return SITES[digest % len(SITES)]


def multi_site_batches(max_jobs=40):
    wf = montage_workflow(MontageConfig(n_images=12))
    batches = []
    for job in list(wf.jobs.values())[:max_jobs]:
        items = [
            {
                "lfn": f.lfn,
                "src_url": f"gsiftp://{site_of(f.lfn)}/data/{f.lfn}",
                "dst_url": f"gsiftp://obelix/scratch/{f.lfn}",
                "nbytes": float(f.size or 1000.0),
            }
            for f in job.inputs
        ]
        if items:
            batches.append((job.id, items))
    return batches


def multi_site_drive(service):
    """Drive the multi-site Montage scenario; return the full advice log.

    Interleaves submits, wave completions (done + failed), state
    queries, cleanups, cleanup completions, and workflow unregistration
    — every merge path the router implements.
    """
    log = []
    in_flight = []
    for n, (workflow, mult) in enumerate([("wfA", 1), ("wfB", 2)]):
        for i, (job, items) in enumerate(multi_site_batches()):
            advice = service.submit_transfers(workflow, job, items)
            log.append([a.to_dict() for a in advice])
            in_flight.extend(a.tid for a in advice if a.action == "transfer")
            if i % mult == 0 and in_flight:
                half = len(in_flight) // 2 or 1
                done, in_flight = in_flight[:half], in_flight[half:]
                failed = done[-1:] if len(done) > 1 else []
                done = done[: len(done) - len(failed)]
                log.append(service.complete_transfers(done=done, failed=failed))
            if i % 5 == 0 and items:
                log.append(service.staging_state(
                    items[0]["lfn"], items[0]["dst_url"]))
                if in_flight:
                    log.append(service.transfer_state(in_flight[0]))
        log.append(service.complete_transfers(done=in_flight))
        in_flight = []
        cleanups = service.submit_cleanups(
            workflow,
            "clean",
            [
                (f"{n}-unused", f"gsiftp://obelix/scratch/{n}-unused"),
                (f"{n}-other", f"gsiftp://obelix/scratch/{n}-other"),
            ],
        )
        log.append([c.to_dict() for c in cleanups])
        log.append(service.complete_cleanups(
            [c.cid for c in cleanups if c.action == "delete"]))
        service.unregister_workflow(workflow)
    log.append(service.snapshot()["memory"])
    return log


def make_single(engine="indexed", **kw):
    cfg = dict(policy="greedy", default_streams=4, max_streams=12)
    cfg.update(kw)
    return PolicyService(PolicyConfig(**cfg), engine=engine)


def make_router(num_shards, engine="indexed", **kw):
    router_kw = {
        key: kw.pop(key)
        for key in ("journal_root", "backends", "concurrent",
                    "breaker_threshold", "breaker_reset", "clock")
        if key in kw
    }
    cfg = dict(policy="greedy", default_streams=4, max_streams=12)
    cfg.update(kw)
    return ShardedPolicyService(
        PolicyConfig(**cfg), num_shards=num_shards, engine=engine,
        **router_kw,
    )
