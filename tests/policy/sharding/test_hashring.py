"""Consistent-hash ring: determinism, spread, and key builders."""

import subprocess
import sys

from repro.policy.sharding import HashRing, namespace_key, pair_key
from repro.policy.sharding.hashring import url_key


def test_ring_is_deterministic_across_instances():
    a, b = HashRing(4), HashRing(4)
    keys = [pair_key(f"site{i}", "obelix") for i in range(64)]
    assert [a.node_for(k) for k in keys] == [b.node_for(k) for k in keys]


def test_ring_is_independent_of_hash_randomization():
    """SHA-256, not ``hash()`` — assignments survive PYTHONHASHSEED."""
    script = (
        "import sys; sys.path.insert(0, 'src')\n"
        "from repro.policy.sharding import HashRing, pair_key\n"
        "ring = HashRing(4)\n"
        "print([ring.node_for(pair_key(f'site{i}', 'obelix'))"
        " for i in range(32)])\n"
    )
    outs = set()
    for seed in ("0", "12345"):
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True,
            env={"PYTHONHASHSEED": seed, "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        outs.add(proc.stdout.strip())
    assert len(outs) == 1


def test_single_shard_ring_routes_everything_to_zero():
    ring = HashRing(1)
    assert {ring.node_for(f"k{i}") for i in range(100)} == {0}


def test_spread_is_roughly_balanced():
    ring = HashRing(4)
    keys = [pair_key(f"site{i}", "obelix") for i in range(200)]
    counts = ring.spread(keys)
    assert sum(counts) == 200
    # With 64 vnodes/shard no shard should be starved or dominant.
    assert min(counts) >= 20 and max(counts) <= 90


def test_ring_validates_shard_count():
    import pytest

    with pytest.raises(ValueError):
        HashRing(0)


def test_key_builders():
    assert pair_key("a", "b") == "pair:a|b"
    assert pair_key("a", "b") != pair_key("b", "a")
    assert url_key("gsiftp://h/p").startswith("url:")
    # Namespace key groups files by directory prefix.
    assert namespace_key("run01/img1.fits") == namespace_key("run01/img2.fits")
    assert namespace_key("run01/img1.fits") != namespace_key("run02/img1.fits")


def test_adding_a_shard_moves_a_minority_of_keys():
    """Consistent hashing: growing the fleet remaps ~1/N of the keys."""
    keys = [pair_key(f"s{i}", f"d{i % 7}") for i in range(500)]
    before = [HashRing(4).node_for(k) for k in keys]
    after = [HashRing(5).node_for(k) for k in keys]
    moved = sum(1 for b, a in zip(before, after) if b != a)
    assert moved < len(keys) // 2
