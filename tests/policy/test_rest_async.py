"""Asyncio frontend specifics: keep-alive, pipelining, engine parity.

The shared REST surface (routes, error mapping, drain) is exercised over
both frontends in ``test_rest.py`` / ``test_rest_hardening.py``; this
module covers what only the asyncio frontend promises — many requests in
flight on one connection, answered in order.
"""

import json
import socket

import pytest

from repro.policy import PolicyConfig, PolicyService
from repro.policy.client import HTTPPolicyClient
from repro.policy.rest_async import AsyncPolicyRestServer


@pytest.fixture
def server():
    service = PolicyService(
        PolicyConfig(policy="greedy", default_streams=4, max_streams=50)
    )
    with AsyncPolicyRestServer(service) as srv:
        yield srv


def _connect(server):
    from urllib.parse import urlsplit

    parts = urlsplit(server.url)
    sock = socket.create_connection((parts.hostname, parts.port), timeout=10)
    return sock


def _request_bytes(method: str, path: str, doc=None, rid=None) -> bytes:
    body = json.dumps(doc).encode() if doc is not None else b""
    head = f"{method} {path} HTTP/1.1\r\nHost: localhost\r\n"
    if rid:
        head += f"X-Repro-Request-Id: {rid}\r\n"
    head += f"Content-Length: {len(body)}\r\n\r\n"
    return head.encode() + body


def _read_response(fp) -> tuple[int, dict, dict]:
    """Read one framed HTTP response: (status, headers, JSON body)."""
    status_line = fp.readline()
    status = int(status_line.split(b" ", 2)[1])
    headers = {}
    while True:
        line = fp.readline().rstrip(b"\r\n")
        if not line:
            break
        name, _, value = line.decode().partition(":")
        headers[name.strip().lower()] = value.strip()
    body = fp.read(int(headers.get("content-length", "0")))
    return status, headers, json.loads(body or b"{}")


def _transfer_payload(workflow: str, i: int) -> dict:
    return {
        "workflow": workflow,
        "job": f"job{i}",
        "transfers": [
            {
                "lfn": f"{workflow}_f{i}",
                "src_url": f"gsiftp://fg-vm/data/{workflow}_f{i}",
                "dst_url": f"gsiftp://obelix/scratch/{workflow}_f{i}",
                "nbytes": 1000,
            }
        ],
    }


def test_keep_alive_reuses_one_connection(server):
    with _connect(server) as sock:
        fp = sock.makefile("rb")
        for i in range(3):
            sock.sendall(
                _request_bytes("POST", "/policy/transfers", _transfer_payload("wf", i))
            )
            status, headers, doc = _read_response(fp)
            assert status == 200
            assert headers["connection"] == "keep-alive"
            assert len(doc["advice"]) == 1


def test_pipelined_burst_is_answered_in_order(server):
    """A burst of advice calls written back-to-back without waiting gets
    one response per request, in request order, ids preserved."""
    n = 20
    with _connect(server) as sock:
        burst = b"".join(
            _request_bytes(
                "POST", "/policy/transfers", _transfer_payload("wf", i), rid=f"burst-{i}"
            )
            for i in range(n)
        )
        sock.sendall(burst)
        fp = sock.makefile("rb")
        tids = []
        for i in range(n):
            status, headers, doc = _read_response(fp)
            assert status == 200
            assert headers["x-repro-request-id"] == f"burst-{i}"
            advice = doc["advice"]
            assert advice[0]["action"] == "transfer"
            tids.append(advice[0]["tid"])
    assert len(set(tids)) == n  # every request saw its own evaluation
    log = server.access_log
    assert [e["request_id"] for e in log] == [f"burst-{i}" for i in range(n)]


def test_pipelined_mixed_methods_keep_order(server):
    with _connect(server) as sock:
        sock.sendall(
            _request_bytes("POST", "/policy/transfers", _transfer_payload("wf", 0))
            + _request_bytes("GET", "/policy/status")
            + _request_bytes("POST", "/policy/transfers", _transfer_payload("wf", 1))
        )
        fp = sock.makefile("rb")
        _, _, first = _read_response(fp)
        _, _, status_doc = _read_response(fp)
        _, _, second = _read_response(fp)
    assert first["advice"][0]["action"] == "transfer"
    # The GET observes the state after the first POST, before the second.
    assert status_doc["memory"]["TransferFact"] == 1
    assert second["advice"][0]["action"] == "transfer"


def test_error_mid_pipeline_closes_connection_after_reply(server):
    """A malformed request gets its 400 and ends the connection; the
    later pipelined request is never half-applied."""
    with _connect(server) as sock:
        sock.sendall(
            _request_bytes("POST", "/policy/transfers", {"job": "only"})
            + _request_bytes("POST", "/policy/transfers", _transfer_payload("wf", 9))
        )
        fp = sock.makefile("rb")
        status, headers, doc = _read_response(fp)
        assert status == 400
        assert headers["connection"] == "close"
        assert "workflow" in doc["error"]
        assert fp.read() == b""  # server closed; second request discarded
    assert server.controller.status()["memory"].get("TransferFact") is None


def test_compiled_engine_is_served_over_async_http():
    service = PolicyService(
        PolicyConfig(policy="greedy", default_streams=4, max_streams=50),
        engine="compiled",
    )
    with AsyncPolicyRestServer(service) as srv:
        client = HTTPPolicyClient(srv.url)
        advice = client.submit_transfers(
            "wf1",
            "j1",
            [
                {
                    "lfn": "a",
                    "src_url": "gsiftp://fg-vm/data/a",
                    "dst_url": "gsiftp://obelix/scratch/a",
                    "nbytes": 1000,
                }
            ],
        )
        assert advice[0].action == "transfer"
        assert advice[0].streams == 4
        client.complete_transfers(done=[advice[0].tid])
        assert client.staging_state("a", "gsiftp://obelix/scratch/a") == "staged"
