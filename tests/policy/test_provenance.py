"""Decision provenance: per-advice "why" records and the explain API.

The acceptance bar: ``explain`` returns the **same causal record (same
digest)** for the same seeded request stream across all three rule
engines and before/after crash recovery.  Shard-count invariance lives
in ``tests/policy/sharding/``; REST surfacing in ``test_rest.py``.
"""

import json

import pytest

from repro.policy import PolicyConfig, PolicyJournal, PolicyService
from repro.policy.model import HostPairFact, StagedFileFact, TransferFact
from repro.policy.provenance import (
    DecisionLog,
    decision_digest,
    degraded_cleanup_record,
    degraded_record,
    render_narrative,
    rewrite_group_id,
    stable_ref,
    tier_name,
)

from tests.policy.conftest import spec


def drive(service):
    """A small request stream touching every decision shape."""
    service.submit_transfers("wf1", "j1", [spec("a"), spec("b"), spec("a")])
    service.complete_transfers(done=[1, 2])
    service.submit_transfers("wf2", "j2", [spec("a"), spec("c")])
    service.submit_cleanups(
        "wf1", "clean", [("a", "gsiftp://obelix/scratch/a")]
    )


def make_service(engine="indexed", **kw):
    cfg = dict(policy="greedy", default_streams=4, max_streams=8)
    cfg.update(kw)
    return PolicyService(PolicyConfig(**cfg), engine=engine)


# ------------------------------------------------------------ record shape
def test_explain_returns_causal_record():
    service = make_service()
    drive(service)
    record = service.explain(1)
    assert record["kind"] == "transfer"
    assert record["tid"] == 1
    assert record["workflow"] == "wf1"
    assert record["lfn"] == "a"
    assert record["policy_free"] is False
    assert record["advice"]["action"] == "transfer"
    assert record["advice"]["streams"] == 4
    tiers = [f["tier"] for f in record["firings"]]
    assert "ACK" in tiers and "ALLOCATION" in tiers
    # Every firing carries a named tier and stable fact refs.
    for firing in record["firings"]:
        assert firing["tier"]
        for op in firing["ops"]:
            assert ":" in op["fact"] or op["fact"] == "sweep"
    assert record["ledger"]["pair"]["key"] == "fg-vm->obelix"
    assert record["ledger"]["pair"]["after"]["allocated"] >= 4
    assert record["digest"] == decision_digest(record)


def test_duplicate_and_skip_records_tell_why():
    service = make_service()
    drive(service)
    # tid 3 duplicated tid 1 in-batch: advice was wait/skip, not transfer.
    dup = service.explain(3)
    assert dup["advice"]["action"] in ("wait", "skip")
    # wf2 resubmitted "a" after it staged: the skip names the staged file.
    skip = service.explain(4)
    assert skip["advice"]["action"] == "skip"


def test_explain_cleanup_records_staged_ledger():
    service = make_service()
    drive(service)
    record = service.explain_cleanup(1)
    assert record["kind"] == "cleanup"
    assert record["cid"] == 1
    assert record["advice"]["action"] in ("delete", "skip", "defer")
    assert record["digest"] == decision_digest(record)


def test_unknown_ids_return_none():
    service = make_service()
    drive(service)
    assert service.explain(999) is None
    assert service.explain_cleanup(999) is None


def test_decision_log_off_disables_explain():
    service = make_service(decision_log=False)
    drive(service)
    assert service.explain(1) is None
    assert service.explain_cleanup(1) is None
    assert service.decision_records() == []


def test_decision_records_oldest_first():
    service = make_service()
    drive(service)
    records = service.decision_records()
    tids = [r["tid"] for r in records if r["kind"] == "transfer"]
    assert tids == sorted(tids)
    assert any(r["kind"] == "cleanup" for r in records)


# ------------------------------------------------------- engine equivalence
def test_records_byte_identical_across_engines():
    logs = {}
    for engine in ("seed", "indexed", "compiled"):
        service = make_service(engine=engine)
        drive(service)
        records = service.decision_records()
        # meta names the engine (differs by construction); the digest and
        # the digest-covered content must not.
        for record in records:
            assert record["meta"]["engine"] == engine
            record.pop("meta")
        logs[engine] = json.dumps(records, sort_keys=True)
    assert logs["seed"] == logs["indexed"] == logs["compiled"]


# ------------------------------------------------------------ crash recovery
@pytest.mark.parametrize("engine", ["indexed", "seed"])
def test_records_byte_identical_after_recovery(tmp_path, engine):
    reference = make_service(engine=engine)
    drive(reference)

    journaled = PolicyService(
        PolicyConfig(policy="greedy", default_streams=4, max_streams=8),
        engine=engine,
        journal=PolicyJournal(tmp_path / "j"),
    )
    drive(journaled)
    recovered = PolicyService.recover(
        tmp_path / "j",
        PolicyConfig(policy="greedy", default_streams=4, max_streams=8),
        engine=engine,
    )
    assert json.dumps(recovered.decision_records(), sort_keys=True) == json.dumps(
        reference.decision_records(), sort_keys=True
    )
    assert recovered.explain(1) == reference.explain(1)


def test_recovery_replays_eviction_order(tmp_path):
    """A recovered bounded log holds exactly what the live one held."""
    config = PolicyConfig(
        policy="greedy", default_streams=4, max_streams=50, decision_log_cap=3
    )
    journaled = PolicyService(config, journal=PolicyJournal(tmp_path / "j"))
    for i in range(6):
        journaled.submit_transfers("wf", f"j{i}", [spec(f"f{i}")])
    live = journaled.decision_records()
    assert len(live) == 3 and live[0]["tid"] == 4
    recovered = PolicyService.recover(tmp_path / "j", config)
    assert json.dumps(recovered.decision_records(), sort_keys=True) == json.dumps(
        live, sort_keys=True
    )


# ------------------------------------------------------------------ helpers
def test_decision_log_is_bounded_and_moves_readds_to_end():
    log = DecisionLog(cap=2)
    log.add({"kind": "transfer", "tid": 1, "digest": "x"})
    log.add({"kind": "transfer", "tid": 2, "digest": "x"})
    log.add({"kind": "transfer", "tid": 1, "digest": "y"})  # re-add: moves to end
    log.add({"kind": "cleanup", "cid": 1, "digest": "x"})   # evicts tid 2
    assert log.transfer(2) is None
    assert log.transfer(1)["digest"] == "y"
    assert log.cleanup(1) is not None
    assert len(log) == 2
    with pytest.raises(ValueError):
        DecisionLog(cap=0)


def test_stable_refs_use_domain_identity():
    t = TransferFact(tid=7, workflow="wf", job="j", lfn="f",
                     src_url="gsiftp://a/f", dst_url="gsiftp://b/f", nbytes=1.0)
    assert stable_ref(t) == "transfer:7"
    assert stable_ref(
        HostPairFact(src_host="a", dst_host="b", group_id=1)
    ) == "pair:a->b"
    staged = StagedFileFact(lfn="f", dst_url="gsiftp://b/f",
                            owner_tid=7, workflow="wf")
    assert stable_ref(staged) == "staged:f@gsiftp://b/f"
    assert tier_name(90) == "ACK"
    assert tier_name(-123) == "-123"


def test_digest_ignores_meta_but_covers_content():
    base = {"kind": "transfer", "tid": 1, "advice": {"action": "transfer"},
            "meta": {"shard": 0, "batch": 3}}
    other = dict(base, meta={"shard": 7, "batch": 99})
    assert decision_digest(base) == decision_digest(other)
    assert decision_digest(base) != decision_digest(
        dict(base, advice={"action": "skip"})
    )


def test_degraded_records_are_policy_free():
    record = degraded_record(5, "wf", "f", "gsiftp://b/f", shard=2)
    assert record["policy_free"] is True
    assert record["firings"] == [] and record["ledger"] == {}
    assert record["meta"]["shard"] == 2
    assert record["digest"] == decision_digest(record)
    clean = degraded_cleanup_record(3, "wf", "f", "gsiftp://b/f")
    assert clean["advice"]["action"] == "skip"
    assert "POLICY-FREE" in render_narrative(clean)


def test_rewrite_group_id_recomputes_digest():
    service = make_service()
    drive(service)
    record = service.explain(1)
    rewritten = rewrite_group_id(record, 42)
    assert rewritten["advice"]["group_id"] == 42
    assert rewritten["digest"] == decision_digest(rewritten)
    assert record["advice"]["group_id"] != 42  # original untouched
    # A record whose advice carries no group id is left alone.
    bare = {"kind": "transfer", "tid": 9,
            "advice": {"action": "skip", "group_id": None}}
    assert rewrite_group_id(bare, 42)["advice"]["group_id"] is None


def test_narrative_tells_the_causal_story():
    service = make_service()
    drive(service)
    text = render_narrative(service.explain(1))
    assert "transfer 1: transfer" in text
    assert "ALLOCATION" in text
    assert "pair ledger fg-vm->obelix" in text
    assert "digest" in text
