"""Slow-loris hardening: idle and body-read timeouts on both frontends.

A client that opens a connection and never sends (or trickles) a
request must not pin a handler; a client that sends a complete head but
stalls the declared body gets 408 and a closed connection.  Both the
thread-per-request and asyncio servers enforce the same contract.
"""

import json
import socket
import time
import urllib.request

import pytest

from repro.policy import (
    AsyncPolicyRestServer,
    PolicyConfig,
    PolicyRestServer,
    PolicyService,
)


def _service():
    return PolicyService(
        PolicyConfig(policy="greedy", default_streams=4, max_streams=50))


def _make(kind, **kw):
    cls = PolicyRestServer if kind == "threaded" else AsyncPolicyRestServer
    return cls(_service(), **kw)


def _hostport(url):
    host, port = url.rsplit("//", 1)[1].rsplit(":", 1)
    return host, int(port)


def _recv_all(sock, timeout=5.0):
    sock.settimeout(timeout)
    chunks = []
    try:
        while True:
            chunk = sock.recv(4096)
            if not chunk:
                break
            chunks.append(chunk)
    except TimeoutError:
        pass
    return b"".join(chunks)


STALLED_HEAD = b"POST /policy/staging HTTP/1.1\r\nHost: x\r\n"
FULL_HEAD = (
    b"POST /policy/staging HTTP/1.1\r\nHost: x\r\n"
    b"Content-Type: application/json\r\n"
    b"Content-Length: 200\r\n\r\n"
)


@pytest.mark.parametrize("kind", ["threaded", "async"])
def test_idle_connection_is_closed_silently(kind):
    with _make(kind, idle_timeout=0.5, read_timeout=0.5) as server:
        sock = socket.create_connection(_hostport(server.url))
        t0 = time.monotonic()
        data = _recv_all(sock, timeout=5.0)
        elapsed = time.monotonic() - t0
        sock.close()
        # Closed (EOF), no response bytes, and promptly.
        assert data == b""
        assert elapsed < 4.0


@pytest.mark.parametrize("kind", ["threaded", "async"])
def test_trickled_request_head_is_closed_without_response(kind):
    with _make(kind, idle_timeout=0.5, read_timeout=0.5) as server:
        sock = socket.create_connection(_hostport(server.url))
        sock.sendall(STALLED_HEAD)  # head never finishes
        data = _recv_all(sock, timeout=5.0)
        sock.close()
        assert data == b""


@pytest.mark.parametrize("kind", ["threaded", "async"])
def test_stalled_body_gets_408_and_close(kind):
    with _make(kind, idle_timeout=5.0, read_timeout=0.5) as server:
        sock = socket.create_connection(_hostport(server.url))
        sock.sendall(FULL_HEAD + b'{"lfn": "par')  # 200 declared, stalls
        data = _recv_all(sock, timeout=5.0)
        sock.close()
        status = data.split(b"\r\n", 1)[0]
        assert b"408" in status, data
        assert b"timed out" in data.lower()
        # 408 closed the connection: recv saw EOF, not a hang.
        assert data.endswith(b"}")


@pytest.mark.parametrize("kind", ["threaded", "async"])
def test_prompt_requests_are_unaffected(kind):
    with _make(kind, idle_timeout=1.0, read_timeout=0.5) as server:
        body = json.dumps(
            {"lfn": "f", "url": "gsiftp://obelix/scratch/f"}).encode()
        req = urllib.request.Request(
            server.url + "/policy/staging", data=body,
            headers={"Content-Type": "application/json"})
        doc = json.load(urllib.request.urlopen(req))
        assert doc["state"] in {"unknown", "staged", "in_progress"}


@pytest.mark.parametrize("kind", ["threaded", "async"])
def test_timeouts_can_be_disabled(kind):
    with _make(kind, idle_timeout=None, read_timeout=None) as server:
        sock = socket.create_connection(_hostport(server.url))
        # Trickle the head slower than any default timeout tick.
        sock.sendall(b"GET /policy/status")
        time.sleep(0.3)
        sock.sendall(b" HTTP/1.1\r\nHost: x\r\n\r\n")
        data = _recv_all(sock, timeout=5.0)
        sock.close()
        assert data.split(b"\r\n", 1)[0].endswith(b"200 OK")


@pytest.mark.parametrize("kind", ["threaded", "async"])
def test_timeout_values_validated(kind):
    with pytest.raises(ValueError):
        _make(kind, idle_timeout=0.0)
    with pytest.raises(ValueError):
        _make(kind, read_timeout=-1.0)
