"""Client resilience: retry backoff, circuit breaker, fault-gated calls."""

import random

import pytest

from repro.des.core import Environment
from repro.policy import (
    CircuitBreaker,
    CircuitOpenError,
    InProcessPolicyClient,
    PolicyConfig,
    PolicyService,
    PolicyUnavailableError,
    RetryPolicy,
)
from repro.policy.client import HTTPPolicyClient

from tests.policy.conftest import spec


# -- RetryPolicy ------------------------------------------------------------


def test_backoff_doubles_and_caps():
    policy = RetryPolicy(retries=5, base_delay=1.0, multiplier=2.0, max_delay=5.0, jitter=0.0)
    assert [policy.delay_for(n) for n in range(5)] == [1.0, 2.0, 4.0, 5.0, 5.0]


def test_jitter_inflates_within_bounds():
    policy = RetryPolicy(base_delay=1.0, jitter=0.5)
    rng = random.Random(7)
    for n in range(20):
        delay = policy.delay_for(0, rng)
        assert 1.0 <= delay <= 1.5


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(retries=-1)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.5)


# -- CircuitBreaker ---------------------------------------------------------


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def test_breaker_trips_after_consecutive_failures():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=3, reset_timeout=10.0, clock=clock)
    assert breaker.allow()
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == "closed"
    breaker.record_failure()
    assert breaker.state == "open"
    assert not breaker.allow()


def test_success_resets_failure_count():
    breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    assert breaker.state == "closed"


def test_half_open_probe_after_timeout():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout=10.0, clock=clock)
    breaker.record_failure()
    assert not breaker.allow()

    clock.now = 10.0
    assert breaker.allow()  # the probe
    assert breaker.state == "half_open"
    assert not breaker.allow()  # others held back while the probe flies


def test_half_open_success_closes():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout=10.0, clock=clock)
    breaker.record_failure()
    clock.now = 10.0
    breaker.allow()
    breaker.record_success()
    assert breaker.state == "closed"
    assert breaker.allow()


def test_half_open_failure_reopens():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=5, reset_timeout=10.0, clock=clock)
    breaker.record_failure()
    breaker.failures = 5
    breaker.state = "open"
    breaker.opened_at = 0.0
    clock.now = 10.0
    breaker.allow()
    breaker.record_failure()  # a single half-open failure re-opens
    assert breaker.state == "open"
    assert breaker.opened_at == 10.0
    clock.now = 15.0
    assert not breaker.allow()


# -- InProcessPolicyClient with faults --------------------------------------


def run_process(env, gen):
    proc = env.process(gen)
    env.run()
    return proc.value


def make_client(env, fault_gate=None, retry=None, breaker=None):
    service = PolicyService(PolicyConfig(policy="greedy"))
    return InProcessPolicyClient(
        service,
        env,
        latency=0.05,
        retry=retry,
        breaker=breaker,
        fault_gate=fault_gate,
        rng=None,
    )


def test_retry_succeeds_after_transient_faults():
    env = Environment()
    failures = {"left": 2}

    def gate(name):
        if failures["left"] > 0:
            failures["left"] -= 1
            raise PolicyUnavailableError("injected")

    client = make_client(
        env, gate, retry=RetryPolicy(retries=3, base_delay=1.0, jitter=0.0)
    )
    advice = run_process(
        env, client.submit_transfers("wf1", "j1", [spec("a")])
    )
    assert advice[0].action == "transfer"
    assert client.failed_calls == 2
    # 3 attempts at 0.05s latency each + backoff delays of 1s and 2s.
    assert env.now == pytest.approx(0.05 * 3 + 1.0 + 2.0)


def test_exhausted_retries_raise():
    env = Environment()

    def gate(name):
        raise PolicyUnavailableError("service down")

    client = make_client(
        env, gate, retry=RetryPolicy(retries=2, base_delay=1.0, jitter=0.0)
    )
    with pytest.raises(PolicyUnavailableError):
        run_process(env, client.submit_transfers("wf1", "j1", [spec("a")]))
    assert client.failed_calls == 3  # initial + 2 retries


def test_breaker_trip_stops_retrying():
    env = Environment()

    def gate(name):
        raise PolicyUnavailableError("service down")

    breaker = CircuitBreaker(failure_threshold=2, reset_timeout=100.0, clock=lambda: env.now)
    client = make_client(
        env, gate, retry=RetryPolicy(retries=10, base_delay=1.0, jitter=0.0), breaker=breaker
    )
    with pytest.raises(PolicyUnavailableError):
        run_process(env, client.submit_transfers("wf1", "j1", [spec("a")]))
    # The breaker opened after 2 failures; the remaining 9 retries were skipped.
    assert client.failed_calls == 2
    assert breaker.state == "open"

    # Subsequent calls are refused outright without touching the service.
    with pytest.raises(CircuitOpenError):
        run_process(env, client.transfer_state(1))
    assert client.calls == 2  # no new attempt was charged


def test_breaker_recovers_when_service_returns():
    env = Environment()
    down = {"value": True}

    def gate(name):
        if down["value"]:
            raise PolicyUnavailableError("service down")

    breaker = CircuitBreaker(failure_threshold=1, reset_timeout=30.0, clock=lambda: env.now)
    client = make_client(env, gate, breaker=breaker)

    def scenario():
        try:
            yield from client.transfer_state(1)
        except PolicyUnavailableError:
            pass
        assert breaker.state == "open"
        down["value"] = False  # service comes back, but the breaker is open
        try:
            yield from client.transfer_state(1)
        except CircuitOpenError:
            pass
        yield env.timeout(31.0)  # past reset_timeout: half_open probe allowed
        return (yield from client.transfer_state(1))

    proc = env.process(scenario())
    env.run()
    assert proc.value == "unknown"
    assert breaker.state == "closed"


# -- HTTPPolicyClient against a dead endpoint --------------------------------


def test_http_client_retries_then_raises():
    sleeps = []
    client = HTTPPolicyClient(
        "http://127.0.0.1:1",  # nothing listens on port 1
        timeout=0.2,
        retry=RetryPolicy(retries=2, base_delay=0.5, jitter=0.0),
        sleep=sleeps.append,
    )
    with pytest.raises(PolicyUnavailableError):
        client.status()
    assert sleeps == [0.5, 1.0]


def test_http_client_circuit_open_is_immediate():
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout=100.0, clock=FakeClock())
    breaker.record_failure()
    client = HTTPPolicyClient("http://127.0.0.1:1", breaker=breaker)
    with pytest.raises(CircuitOpenError):
        client.status()
