"""Shared policy-test helpers."""

import pytest

from repro.policy import PolicyConfig, PolicyService


def spec(lfn, src="gsiftp://fg-vm/data", dst="gsiftp://obelix/scratch",
         nbytes=1000.0, streams=None, priority=0, cluster=None):
    """Build a transfer-request dict with sensible defaults."""
    item = {
        "lfn": lfn,
        "src_url": f"{src}/{lfn}",
        "dst_url": f"{dst}/{lfn}",
        "nbytes": nbytes,
    }
    if streams is not None:
        item["streams"] = streams
    if priority:
        item["priority"] = priority
    if cluster:
        item["cluster"] = cluster
    return item


@pytest.fixture
def greedy_service():
    return PolicyService(PolicyConfig(policy="greedy", default_streams=4, max_streams=50))


@pytest.fixture
def fifo_service():
    return PolicyService(PolicyConfig(policy="fifo", default_streams=4))
