"""Rule-by-rule tests of the Table I pack.

Each test isolates one named rule from the paper's Table I and checks its
specific effect through a service-level interaction, so a regression in
any single rule is pinpointed by name.
"""

import pytest

from repro.policy import PolicyConfig, PolicyService
from repro.policy.model import HostPairFact, StagedFileFact, TransferFact
from repro.policy.rules_common import common_rules

from tests.policy.conftest import spec


@pytest.fixture
def service():
    return PolicyService(PolicyConfig(policy="greedy", default_streams=4, max_streams=50))


def table1_rule_names():
    return [rule.name for rule in common_rules()]


def test_pack_covers_every_table1_concern():
    names = "\n".join(table1_rule_names())
    for fragment in (
        "Insert new transfers into policy memory",
        "Remove duplicate transfers",
        "already in progress",
        "Create a resource for a new transfer",
        "Associate a transfer with a resource",
        "Generate a unique group ID",
        "Assign the group ID to a transfer",
        "Detach a transfer from the resource",
        "Remove cleanups from the cleanup list",
        "Insert new cleanups into policy memory",
        "Assign a default level of parallel streams",
        "Remove a transfer that has completed",
        "Remove a transfer that has failed",
        "at least one parallel stream",
    ):
        assert fragment in names, f"missing Table I rule: {fragment}"


def test_rule_names_are_unique():
    names = table1_rule_names()
    assert len(names) == len(set(names))


# -- "Insert new transfers into policy memory" ---------------------------------
def test_insert_acknowledgement(service):
    service.submit_transfers("wf", "j", [spec("a")])
    facts = service.memory.facts_of(TransferFact)
    assert len(facts) == 1
    assert facts[0].status == "in_progress"  # submitted -> new -> in_progress


# -- "Create a resource ..." / "Associate a transfer with a resource" --------
def test_resource_created_with_owner_and_user(service):
    advice = service.submit_transfers("wf", "j", [spec("a")])
    resource = service.memory.facts_of(StagedFileFact)[0]
    assert resource.lfn == "a"
    assert resource.owner_tid == advice[0].tid
    assert resource.users == {"wf"}
    assert resource.status == "staging"


def test_resource_not_duplicated_for_same_destination(service):
    service.submit_transfers("wf1", "j1", [spec("a")])
    service.submit_transfers("wf2", "j2", [spec("a")])  # -> wait, same resource
    assert len(service.memory.facts_of(StagedFileFact)) == 1


# -- "Generate a unique group ID ..." / "Assign the group ID ..." ------------
def test_group_ids_are_unique_and_stable(service):
    first = service.submit_transfers("wf", "j1", [spec("a")])
    second = service.submit_transfers(
        "wf", "j2", [spec("b"), spec("c", src="gsiftp://other/d")]
    )
    pair_groups = {
        (p.src_host, p.dst_host): p.group_id
        for p in service.memory.facts_of(HostPairFact)
    }
    assert len(set(pair_groups.values())) == len(pair_groups)  # unique per pair
    b = next(a for a in second if a.lfn == "b")
    assert b.group_id == first[0].group_id  # same pair -> same stable group


# -- "Assign a default level of parallel streams to a transfer" ---------------
def test_default_streams_only_when_unspecified(service):
    implicit = service.submit_transfers("wf", "j1", [spec("a")])
    explicit = service.submit_transfers("wf", "j2", [spec("b", streams=2)])
    assert implicit[0].streams == 4
    assert explicit[0].streams == 2


# -- "Ensure each transfer has at least one parallel stream assigned" ---------
def test_minimum_one_stream(service):
    advice = service.submit_transfers("wf", "j", [spec("a", streams=0)])
    assert advice[0].streams >= 1


# -- "Remove a transfer that has completed" -----------------------------------
def test_completed_transfer_state_removed_but_location_kept(service):
    advice = service.submit_transfers("wf", "j", [spec("a")])
    service.complete_transfers(done=[advice[0].tid])
    # Detailed transfer state gone...
    assert service.memory.facts_of(TransferFact) == []
    # ...but the staged-file location is retained to prevent restaging.
    resource = service.memory.facts_of(StagedFileFact)[0]
    assert resource.status == "staged"


# -- "Remove a transfer that has failed" ---------------------------------------
def test_failed_transfer_removes_resource_too(service):
    advice = service.submit_transfers("wf", "j", [spec("a")])
    service.complete_transfers(failed=[advice[0].tid])
    assert service.memory.facts_of(TransferFact) == []
    assert service.memory.facts_of(StagedFileFact) == []


def test_failure_of_one_does_not_disturb_others(service):
    a = service.submit_transfers("wf", "j1", [spec("a")])
    b = service.submit_transfers("wf", "j2", [spec("b")])
    service.complete_transfers(failed=[a[0].tid])
    remaining = service.memory.facts_of(TransferFact)
    assert [t.lfn for t in remaining] == ["b"]
    pair = service.memory.facts_of(HostPairFact)[0]
    assert pair.allocated == b[0].streams  # only b's streams still held


# -- "Sort the list of transfers by the source and destination URLs" ----------
def test_response_sorted_by_urls(service):
    advice = service.submit_transfers(
        "wf",
        "j",
        [
            spec("m", src="gsiftp://hostC/d"),
            spec("z", src="gsiftp://hostA/d"),
            spec("a", src="gsiftp://hostB/d"),
        ],
    )
    sources = [a.src_url for a in advice]
    assert sources == sorted(sources)


# -- duplicate handling trio ---------------------------------------------------
def test_duplicate_rules_differentiate_three_cases(service):
    # Case 1: duplicate within one batch -> skip (duplicate).
    batch = service.submit_transfers("wf", "j", [spec("x"), spec("x")])
    assert sorted(a.action for a in batch) == ["skip", "transfer"]
    # Case 2: duplicate of an in-flight transfer -> wait.
    inflight = service.submit_transfers("wf2", "j", [spec("x")])
    assert inflight[0].action == "wait"
    # Case 3: duplicate of a completed (staged) transfer -> skip (staged).
    tid = next(a.tid for a in batch if a.action == "transfer")
    service.complete_transfers(done=[tid])
    staged = service.submit_transfers("wf3", "j", [spec("x")])
    assert staged[0].action == "skip"
    assert "already staged" in staged[0].reason
