"""Unit tests for the runtime-adaptive threshold controller."""

import pytest

from repro.policy import PolicyConfig, PolicyService
from repro.policy.adaptive import AdaptiveSettings, AdaptiveThresholdController

from tests.policy.conftest import spec


def make(initial=100, **settings):
    defaults = dict(epoch_bytes=1000.0, min_epoch=0.0, step_up=10,
                    down_factor=0.2, tolerance=0.05, min_threshold=10,
                    max_threshold=300)
    defaults.update(settings)
    ctrl = AdaptiveThresholdController(initial, AdaptiveSettings(**defaults))
    ctrl.threshold_for("a", "b", now=0.0)  # open the measurement epoch
    return ctrl


def test_settings_validation():
    with pytest.raises(ValueError):
        AdaptiveSettings(epoch_bytes=0)
    with pytest.raises(ValueError):
        AdaptiveSettings(min_epoch=-1)
    with pytest.raises(ValueError):
        AdaptiveSettings(step_up=0)
    with pytest.raises(ValueError):
        AdaptiveSettings(down_factor=1.0)
    with pytest.raises(ValueError):
        AdaptiveSettings(tolerance=-0.1)
    with pytest.raises(ValueError):
        AdaptiveSettings(min_threshold=0)
    with pytest.raises(ValueError):
        AdaptiveSettings(min_threshold=100, max_threshold=50)
    with pytest.raises(ValueError):
        AdaptiveThresholdController(0)
    with pytest.raises(TypeError):
        AdaptiveThresholdController(100, settings="fast")  # type: ignore[arg-type]


def test_no_decision_before_quota():
    ctrl = make()
    assert ctrl.observe("a", "b", 500.0, now=10.0) is None
    assert ctrl.threshold_for("a", "b", 10.0) == 100


def test_first_move_probes_downward():
    ctrl = make(initial=100)
    decided = ctrl.observe("a", "b", 1500.0, now=10.0)
    assert decided == 80  # 100 - max(10, 0.2*100)


def test_regression_reverses_direction():
    ctrl = make(initial=100)
    ctrl.observe("a", "b", 2000.0, now=10.0)       # rate 200 -> move down to 80
    decided = ctrl.observe("a", "b", 1000.0, now=20.0)  # rate 100: much worse
    assert decided == 90  # reversed: 80 + 10


def test_improvement_keeps_direction():
    ctrl = make(initial=100)
    ctrl.observe("a", "b", 1000.0, now=10.0)       # rate 100, down to 80
    decided = ctrl.observe("a", "b", 2000.0, now=20.0)  # rate 200: better
    assert decided == 64  # keep descending: 80 - 16


def test_upward_plateau_turns_back_down():
    ctrl = make(initial=100)
    ctrl.observe("a", "b", 2000.0, now=10.0)        # down to 80 (rate 200)
    ctrl.observe("a", "b", 1000.0, now=20.0)        # regression -> up to 90
    decided = ctrl.observe("a", "b", 1000.0, now=30.0)  # flat while going up
    assert decided == 72  # plateau: prefer the cheaper side


def test_bounds_respected():
    ctrl = make(initial=12, min_threshold=10)
    decided = ctrl.observe("a", "b", 1500.0, now=5.0)
    assert decided == 10  # clamped at min
    # At the floor with flat rates the controller bounces back up.
    nxt = ctrl.observe("a", "b", 1500.0, now=10.0)
    assert nxt is None or nxt >= 10


def test_pairs_tracked_independently():
    ctrl = make(initial=100)
    ctrl.observe("a", "b", 1500.0, now=10.0)
    assert ctrl.threshold_for("a", "b", 10.0) == 80
    assert ctrl.threshold_for("x", "y", 10.0) == 100


def test_history_records_decisions():
    ctrl = make(initial=100)
    ctrl.observe("a", "b", 1500.0, now=10.0)
    ctrl.observe("a", "b", 1500.0, now=20.0)
    history = ctrl.history("a", "b")
    assert len(history) == 2
    assert ctrl.history("no", "pair") == []


def test_negative_bytes_rejected():
    ctrl = make()
    with pytest.raises(ValueError):
        ctrl.observe("a", "b", -1.0, now=0.0)


# ------------------------------------------------------ service integration
def test_service_applies_adaptive_decisions():
    clock = [0.0]
    service = PolicyService(
        PolicyConfig(
            policy="greedy",
            default_streams=8,
            max_streams=100,
            adaptive=True,
            adaptive_settings=AdaptiveSettings(
                epoch_bytes=100.0, min_epoch=0.0, step_up=10, down_factor=0.2
            ),
        ),
        clock=lambda: clock[0],
    )
    first = service.submit_transfers("wf", "j0", [spec("f0", nbytes=1000)])
    clock[0] = 10.0
    service.complete_transfers(done=[first[0].tid])  # closes an epoch
    assert service.adaptive.adjustments == 1
    # The pair's threshold fact now carries the adapted value.
    from repro.policy.model import HostPairFact

    pair = service.memory.facts_of(HostPairFact)[0]
    assert pair.threshold == 80


def test_adaptive_requires_greedy():
    with pytest.raises(ValueError):
        PolicyConfig(policy="fifo", adaptive=True)
