"""Tests for the Table IV cross-check helper (observed WAN peaks)."""

from repro.experiments import ExperimentConfig
from repro.experiments.figures import observed_wan_peaks
from repro.policy.allocation import greedy_allocation_trace


def test_observed_peaks_respect_analytic_bounds():
    base = ExperimentConfig(n_images=16, job_limit=8)
    peaks = observed_wan_peaks(
        size_mb=20, base=base, thresholds=(20,), defaults=(6,)
    )
    observed = peaks["greedy"][20][6]
    bound = sum(greedy_allocation_trace(8, 6, 20))
    assert 0 < observed <= bound
    # No-policy peak bounded by job_limit x default streams.
    assert 0 < peaks["no_policy"] <= 8 * 4
