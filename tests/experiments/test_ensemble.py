"""Tests of the bounded-concurrency ensemble manager."""

import pytest

from repro.experiments import ExperimentConfig
from repro.experiments.runner import run_ensemble
from repro.workflow.montage import MB, MontageConfig, augmented_montage


def instances(n, shared=False):
    return [
        augmented_montage(
            10 * MB,
            MontageConfig(
                n_images=8, name=f"ens{i}",
                lfn_prefix="" if shared else f"e{i}_",
            ),
        )
        for i in range(n)
    ]


def cfg(**kw):
    defaults = dict(extra_file_mb=10, n_images=8, seed=33)
    defaults.update(kw)
    return ExperimentConfig(**defaults)


def test_all_workflows_complete():
    results = run_ensemble(cfg(), instances(4), max_concurrent=2)
    assert len(results) == 4
    assert all(m.success for m in results)


def test_concurrency_bound_serializes_queue():
    wide = run_ensemble(cfg(), instances(4), max_concurrent=4)
    narrow = run_ensemble(cfg(), instances(4), max_concurrent=1)
    # With one slot, total wall time spans all four runs back to back.
    assert max(m.makespan for m in narrow) * 3 > max(m.makespan for m in wide)


def test_shared_dataset_ensemble_stages_once_without_cleanup():
    # Cleanup must stay off: a finished workflow is the sole user of its
    # staged inputs, so with cleanup on it deletes them before the next
    # ensemble member starts (sharing needs temporal overlap OR retention).
    results = run_ensemble(
        cfg(cleanup=False), instances(3, shared=True), max_concurrent=1
    )
    assert results[0].transfers_executed > 0
    for follower in results[1:]:
        assert follower.transfers_executed == 0
        assert follower.transfers_skipped > 0


def test_shared_dataset_ensemble_with_cleanup_restages():
    """With cleanup enabled, a serialized ensemble re-stages every time —
    the flip side of the data-footprint reduction."""
    results = run_ensemble(cfg(), instances(3, shared=True), max_concurrent=1)
    assert all(m.transfers_executed > 0 for m in results)


def test_validation():
    with pytest.raises(ValueError):
        run_ensemble(cfg(), instances(1), max_concurrent=0)
