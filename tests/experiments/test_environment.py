"""Unit tests for the simulated paper testbed."""

import pytest

from repro.experiments.environment import TestbedParams, build_testbed, scaled_params
from repro.net.topology import MB, mbit
from repro.workflow import augmented_montage
from repro.workflow.montage import MontageConfig


def test_default_params_match_paper_narrative():
    p = TestbedParams()
    assert p.nodes == 9 and p.cores_per_node == 6          # Obelix
    assert p.wan_stream_rate == pytest.approx(mbit(28))    # quoted bandwidth
    assert p.wan_knee == 70                                # between 65 and 80


def test_testbed_topology_complete():
    bed = build_testbed(seed=1)
    assert bed.network.has_route("fg-vm", "obelix")
    assert bed.network.has_route("web-isi", "obelix")
    assert bed.network.has_route("obelix", "archive-host")
    # WAN and LAN routes share the NFS server link.
    wan_route = bed.network.route("fg-vm", "obelix")
    lan_route = bed.network.route("web-isi", "obelix")
    assert wan_route.links[-1] is lan_route.links[-1]


def test_testbed_catalogs():
    bed = build_testbed(seed=1)
    assert bed.sites.get("isi").slots == 54
    assert "mProjectPP" in bed.transformations
    assert "process" in bed.transformations  # generic transform for tests
    assert bed.host_site["obelix"] == "isi"


def test_register_workflow_inputs_places_replicas():
    bed = build_testbed(seed=1)
    wf = augmented_montage(10 * MB, MontageConfig(n_images=4, name="m4"))
    count = bed.register_workflow_inputs(wf)
    assert count == 4 + 1 + 4  # raw images + header + extras
    assert bed.replicas.has("raw_0.fits", site="isi-web")
    extras = [lfn for lfn in bed.replicas.lfns() if "montage_extra" in lfn]
    assert len(extras) == 4
    assert bed.replicas.lookup(extras[0])[0].site == "futuregrid"


def test_same_seed_same_gridftp_draws():
    a = build_testbed(seed=9).gridftp.rng.random(3)
    b = build_testbed(seed=9).gridftp.rng.random(3)
    assert (a == b).all()


def test_scaled_params_override():
    p = scaled_params(wan_knee=120, policy_latency=0.5)
    assert p.wan_knee == 120
    assert p.policy_latency == 0.5
    assert p.nodes == 9  # untouched defaults preserved
