"""Unit tests for the steady staging campaign runner."""

import pytest

from repro.experiments.campaign import CampaignConfig, run_staging_campaign


def small(**kw):
    defaults = dict(n_transfers=30, transfer_mb=50, workers=8, seed=2)
    defaults.update(kw)
    return CampaignConfig(**defaults)


def test_validation():
    with pytest.raises(ValueError):
        CampaignConfig(n_transfers=0)
    with pytest.raises(ValueError):
        CampaignConfig(workers=0)
    with pytest.raises(ValueError):
        CampaignConfig(transfer_mb=0)


def test_campaign_moves_all_bytes():
    result = run_staging_campaign(small())
    assert result.transfers_done == 30
    assert result.bytes_moved == pytest.approx(30 * 50e6, rel=0.03)
    assert result.duration > 0
    assert result.aggregate_throughput > 0


def test_no_policy_campaign_runs():
    result = run_staging_campaign(small(policy=None))
    assert result.transfers_done == 30
    assert result.threshold_history == []
    assert result.final_threshold is None


def test_policy_enforces_threshold_on_campaign():
    result = run_staging_campaign(small(threshold=20, default_streams=8))
    # 2 x 8 + 4 + rest singles for the first wave of 8 workers.
    assert result.peak_streams <= 20 + 8


def test_adaptive_campaign_records_history():
    result = run_staging_campaign(
        small(n_transfers=120, transfer_mb=200, threshold=200, adaptive=True)
    )
    assert result.final_threshold is not None
    assert len(result.threshold_history) > 0
    # Starting far above the knee, the controller moves down overall.
    assert result.final_threshold < 200


def test_deterministic_per_seed():
    a = run_staging_campaign(small(seed=5))
    b = run_staging_campaign(small(seed=5))
    assert a.duration == b.duration
