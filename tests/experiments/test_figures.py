"""Unit tests for the figure series builders (reduced scale for speed)."""

from repro.experiments import ExperimentConfig
from repro.experiments.figures import (
    DEFAULT_STREAM_SWEEP,
    FIG5_SIZES_MB,
    FIG_SIZE_MB,
    THRESHOLD_SWEEP,
    fig5_series,
    fig_threshold_series,
    no_policy_point,
)


def tiny_base():
    return ExperimentConfig(n_images=8)


def test_constants_match_paper():
    assert DEFAULT_STREAM_SWEEP == (4, 6, 8, 10, 12)
    assert FIG5_SIZES_MB == (0, 10, 100, 500, 1000)
    assert THRESHOLD_SWEEP == (50, 100, 200)
    assert FIG_SIZE_MB == {6: 10, 7: 100, 8: 500, 9: 1000}


def test_fig5_series_shape():
    series = fig5_series(
        base=tiny_base(), sizes_mb=(0, 10), defaults=(4, 8), replicates=2
    )
    assert [s.label for s in series] == ["0 MB extra", "10 MB extra"]
    for s in series:
        assert s.xs == [4, 8]
        assert all(len(v) == 2 for v in s.ys)
    # More staged data cannot be faster.
    assert series[1].at(4)[0] > series[0].at(4)[0] * 0.95


def test_fig_threshold_series_shape():
    series = fig_threshold_series(
        10, base=tiny_base(), thresholds=(50, 200), defaults=(4,), replicates=1
    )
    assert [s.label for s in series] == [
        "greedy threshold 50",
        "greedy threshold 200",
    ]
    assert all(s.xs == [4] for s in series)


def test_no_policy_point_shape():
    series = no_policy_point(10, base=tiny_base(), replicates=2)
    assert series.xs == [4]
    assert len(series.ys[0]) == 2
    assert "no policy" in series.label


def test_series_are_seeded_deterministically():
    a = fig5_series(base=tiny_base(), sizes_mb=(10,), defaults=(4,), replicates=1)
    b = fig5_series(base=tiny_base(), sizes_mb=(10,), defaults=(4,), replicates=1)
    assert a[0].ys == b[0].ys
