"""Traced runs: artifact set, determinism, profile coverage.

The determinism contract under test is the strong one: trace events
derive only from simulated time and run state, so two runs with the same
seed — even on different rule engines — produce byte-identical JSONL.
"""

import json
from dataclasses import replace

import pytest

from repro.experiments import ExperimentConfig, run_traced_cell
from repro.experiments.tracing import run_traced_chaos

SMALL = ExperimentConfig(extra_file_mb=2.0, n_images=4, seed=3)


@pytest.fixture(scope="module")
def traced_run():
    return run_traced_cell(SMALL)


def test_traced_run_succeeds_and_collects_events(traced_run):
    assert traced_run.metrics.success
    summary = traced_run.tracer.summary()
    assert summary["events"] > 0
    assert summary["spans"] > 0
    for cat in ("dagman", "ptt", "policy", "rpc", "net"):
        assert summary["categories"].get(cat, 0) > 0, cat


def test_jsonl_identical_across_engines():
    indexed = run_traced_cell(replace(SMALL, engine="indexed"))
    seed = run_traced_cell(replace(SMALL, engine="seed"))
    assert indexed.jsonl() == seed.jsonl()
    assert len(indexed.jsonl()) > 50


def test_jsonl_identical_on_same_seed_rerun(traced_run):
    again = run_traced_cell(SMALL)
    assert traced_run.jsonl() == again.jsonl()


def test_jsonl_differs_across_seeds(traced_run):
    other = run_traced_cell(replace(SMALL, seed=4))
    assert traced_run.jsonl() != other.jsonl()


def test_profile_covers_every_rule_in_the_active_set(traced_run):
    from repro.policy import PolicyConfig, PolicyService

    reference = PolicyService(PolicyConfig(
        policy=SMALL.policy, default_streams=SMALL.default_streams,
        max_streams=SMALL.threshold,
    ))
    expected = {rule.name for rule in reference._rules}
    profiled = {row.name for row in traced_run.profiler.rows()}
    assert profiled == expected
    report = traced_run.profiler.report()
    for name in expected:
        assert name[:42].rstrip() in report
    assert traced_run.profiler.total_firings > 0


def test_registry_collected_policy_metrics(traced_run):
    text = traced_run.registry.render()
    assert 'repro_policy_calls_total{call="submit_transfers"}' in text
    assert "repro_policy_call_seconds_bucket" in text
    assert "repro_policy_journal_commits_total 0" in text


def test_provenance_carries_trace_summary(traced_run):
    doc = traced_run.provenance
    assert doc["trace"] == traced_run.tracer.summary()
    json.dumps(doc, default=repr)  # must stay JSON-able


def test_write_artifacts_produces_the_standard_set(tmp_path, traced_run):
    paths = traced_run.write_artifacts(tmp_path / "out")
    assert set(paths) == {
        "trace.json", "events.jsonl", "metrics.prom",
        "rule_profile.txt", "provenance.json", "decisions.jsonl",
    }
    chrome = json.loads((tmp_path / "out" / "trace.json").read_text())
    assert chrome["traceEvents"]
    assert all({"ph", "pid", "tid", "name"} <= set(e) for e in chrome["traceEvents"])
    jsonl = (tmp_path / "out" / "events.jsonl").read_text().splitlines()
    assert jsonl == traced_run.jsonl()
    assert "# TYPE" in (tmp_path / "out" / "metrics.prom").read_text()
    assert "rules," in (tmp_path / "out" / "rule_profile.txt").read_text()
    assert json.loads((tmp_path / "out" / "provenance.json").read_text())["success"]


def test_untraced_run_emits_nothing():
    from repro.experiments.runner import run_cell

    metrics = run_cell(SMALL)  # no tracer anywhere
    assert metrics.success


def test_traced_chaos_marks_fault_windows():
    from repro.des.faults import FaultPlan

    cfg = replace(SMALL, lease_seconds=120.0)
    run = run_traced_chaos(cfg, plan=FaultPlan.single_crash(at=20.0, duration=15.0))
    names = [e["name"] for e in run.tracer.by_category("fault")]
    assert "fault.outage.begin" in names
    assert "fault.outage.end" in names
    begin = next(e for e in run.tracer.by_category("fault")
                 if e["name"] == "fault.outage.begin")
    assert begin["ts"] == 20.0
    assert begin["args"]["duration"] == 15.0
    assert run.provenance["fault_log"]


def test_traced_run_carries_span_linked_decisions(traced_run):
    """Every policy decision of a traced run is retained, digest-verified,
    and cross-referenced to its submit span in the Chrome trace."""
    from repro.policy.provenance import decision_digest

    assert traced_run.decisions
    span_seqs = {e["seq"] for e in traced_run.tracer.events}
    linked = 0
    for record in traced_run.decisions:
        assert record["digest"] == decision_digest(record)
        seq = record["meta"].get("span_seq")
        if seq is not None:
            assert seq in span_seqs
            linked += 1
    assert linked > 0, "no decision was linked to a trace span"


def test_decisions_jsonl_artifact_round_trips(tmp_path, traced_run):
    paths = traced_run.write_artifacts(tmp_path / "out")
    lines = (tmp_path / "out" / "decisions.jsonl").read_text().splitlines()
    assert len(lines) == len(traced_run.decisions)
    parsed = [json.loads(line) for line in lines]
    assert parsed == traced_run.decisions


def test_provenance_doc_names_engine_and_frontend(traced_run):
    assert traced_run.provenance["engine"] == SMALL.engine
    assert traced_run.provenance["shard_count"] == SMALL.shards
    assert traced_run.provenance["frontend"] == "in-process"
