"""End-to-end tests of the multi-tenant ensemble runner.

The acceptance scenario from the tenancy work: a 3-tenant ensemble with
weights 1/2/4 over one testbed and one Policy Service must (a) split the
*contended* bytes within 10% of the share ratios, (b) never delete a
staged file another tenant's workflow still needs, and (c) reproduce the
admission order byte-identically — across rule engines, across process
restarts, and after a crash when the scheduler is re-seeded with the
recovered byte ledgers.
"""

import pytest

from repro.experiments import ExperimentConfig, run_tenant_ensemble
from repro.experiments.tracing import run_traced_ensemble
from repro.tenancy import AdmissionConfig, TenantSpec
from repro.workflow.montage import MB, MontageConfig, augmented_montage


def cfg(**kw):
    defaults = dict(extra_file_mb=10, n_images=6, seed=13, policy="greedy")
    defaults.update(kw)
    return ExperimentConfig(**defaults)


THREE_TENANTS = [
    TenantSpec("bronze", weight=1),
    TenantSpec("silver", weight=2),
    TenantSpec("gold", weight=4),
]


def instance(name: str, shared: bool = False):
    """One small augmented-Montage workflow with its own LFN namespace."""
    prefix = "" if shared else f"{name}_"
    return augmented_montage(
        10 * MB, MontageConfig(n_images=6, name=name, lfn_prefix=prefix)
    )


def submissions(per_tenant: int, tenants=("bronze", "silver", "gold")):
    subs = []
    for i in range(per_tenant):
        for tenant in tenants:
            name = f"{tenant[0]}{i}"
            subs.append((tenant, instance(name)))
    return subs


def short(name: str) -> str:
    """Strip augmented_montage's ``-extra10MB`` suffix: ``g0-extra10MB -> g0``."""
    return name.split("-")[0]


def by_workflow(result):
    """Map workflow *name* -> its RunMetrics (plan ids are ``name#seq``)."""
    return {m.workflow_id.split("#")[0]: m for m in result.metrics}


def tenant_fractions(result, names):
    """Bytes staged per tenant over ``names``, as fractions of the total."""
    by_name = by_workflow(result)
    totals: dict[str, float] = {}
    for name in names:
        tenant = result.tenant_of[name]
        totals[tenant] = totals.get(tenant, 0.0) + by_name[name].bytes_staged
    grand = sum(totals.values())
    return {tenant: nbytes / grand for tenant, nbytes in totals.items()}


# -- fair share ---------------------------------------------------------------
def test_contended_bytes_match_share_ratios_within_10pct():
    """While every tenant has backlog, bytes track the 1:2:4 weights.

    The contended prefix is the first sum-of-weights admissions; once the
    light tenants' queues drain the heavy ones take the leftover slots,
    so the *final* totals equalize by construction.
    """
    result = run_tenant_ensemble(
        cfg(),
        THREE_TENANTS,
        submissions(per_tenant=4),
        admission=AdmissionConfig(max_concurrent=7),
        scheduler="fair",
    )
    assert all(m.success for m in result.metrics)
    contended = result.admission_order[:7]
    fractions = tenant_fractions(result, contended)
    assert fractions["bronze"] == pytest.approx(1 / 7, rel=0.10)
    assert fractions["silver"] == pytest.approx(2 / 7, rel=0.10)
    assert fractions["gold"] == pytest.approx(4 / 7, rel=0.10)
    assert result.tenant_shares == {"bronze": 1 / 7, "silver": 2 / 7,
                                    "gold": 4 / 7}


def test_priority_class_preempts_fair_share():
    tenants = [
        TenantSpec("bronze", weight=1),
        TenantSpec("silver", weight=2),
        TenantSpec("gold", weight=4, priority_class=1),
    ]
    result = run_tenant_ensemble(
        cfg(),
        tenants,
        submissions(per_tenant=2),
        admission=AdmissionConfig(max_concurrent=2),
        scheduler="fair",
    )
    # Both gold workflows admitted before any lower class touches a slot.
    assert [short(n) for n in result.admission_order[:2]] == ["g0", "g1"]


def test_per_tenant_concurrency_cap_lets_others_overtake():
    tenants = [TenantSpec("gold", weight=4, max_concurrent=1),
               TenantSpec("bronze", weight=1)]
    subs = [("gold", instance("g0")), ("gold", instance("g1")),
            ("bronze", instance("b0"))]
    result = run_tenant_ensemble(
        cfg(),
        tenants,
        subs,
        admission=AdmissionConfig(max_concurrent=3),
        scheduler="fifo",
    )
    # gold's second workflow waits for its own cap; bronze takes the slot.
    assert [short(n) for n in result.admission_order] == ["g0", "b0", "g1"]
    assert sorted(short(n) for n in result.completed_order) == ["b0", "g0", "g1"]


# -- isolation ----------------------------------------------------------------
def test_no_cross_tenant_deletion_of_shared_staged_files():
    """Two tenants over one dataset with cleanup ON: the leader's cleanup
    jobs must not delete files the other tenant's workflow still needs —
    a cross-tenant deletion would force the follower to re-stage (its
    ``transfers_executed`` would rise) or fail outright."""
    tenants = [TenantSpec("acme", weight=1), TenantSpec("beta", weight=1)]
    subs = [("acme", instance("m0", shared=True)),
            ("beta", instance("m1", shared=True))]
    result = run_tenant_ensemble(
        cfg(cleanup=True),
        tenants,
        subs,
        admission=AdmissionConfig(max_concurrent=2),
        scheduler="fair",
    )
    leader, follower = result.metrics
    assert leader.success and follower.success
    assert leader.transfers_executed > 0
    assert follower.transfers_executed == 0
    assert follower.transfers_skipped + follower.transfers_waited > 0


def test_isolated_policies_stage_independently():
    """share_policy=False: no shared memory, both tenants stage everything
    (and the lazily built per-workflow clients still work end to end)."""
    tenants = [TenantSpec("acme"), TenantSpec("beta")]
    subs = [("acme", instance("m0", shared=True)),
            ("beta", instance("m1", shared=True))]
    result = run_tenant_ensemble(
        cfg(),
        tenants,
        subs,
        admission=AdmissionConfig(max_concurrent=2),
        scheduler="fair",
        share_policy=False,
    )
    assert all(m.success for m in result.metrics)
    assert all(m.transfers_executed > 0 for m in result.metrics)
    assert all(m.transfers_skipped == 0 and m.transfers_waited == 0
               for m in result.metrics)


# -- quotas -------------------------------------------------------------------
def test_byte_quota_rejects_at_the_door():
    tenants = [TenantSpec("capped", max_bytes=1.0), TenantSpec("free")]
    subs = [("capped", instance("c0")), ("free", instance("f0"))]
    result = run_tenant_ensemble(
        cfg(), tenants, subs, admission=AdmissionConfig(max_concurrent=2)
    )
    assert [short(r[1]) for r in result.rejected] == ["c0"]
    assert [short(m.workflow_id.split("#")[0]) for m in result.metrics] == ["f0"]
    assert result.metrics[0].success
    assert result.tenant_bytes["capped"] == 0.0


# -- determinism --------------------------------------------------------------
@pytest.mark.parametrize("engine", ["seed", "indexed"])
def test_admission_and_trace_deterministic_across_engines(engine):
    def traced():
        return run_traced_ensemble(
            cfg(engine=engine),
            THREE_TENANTS,
            submissions(per_tenant=2),
            admission=AdmissionConfig(max_concurrent=2),
        )

    first, second = traced(), traced()
    assert first.result.admission_order == second.result.admission_order
    assert first.jsonl() == second.jsonl()


def test_engines_agree_on_admission_order():
    orders = {}
    for engine in ("seed", "indexed"):
        result = run_tenant_ensemble(
            cfg(engine=engine),
            THREE_TENANTS,
            submissions(per_tenant=2),
            admission=AdmissionConfig(max_concurrent=2),
        )
        orders[engine] = result.admission_order
    assert orders["seed"] == orders["indexed"]


def test_seeded_charges_reproduce_post_crash_admissions():
    """Crash recovery at the ensemble layer: re-seed the scheduler with the
    bytes each tenant had staged before the crash and re-queue the
    unfinished submissions — the resumed admission order must equal the
    tail of the uninterrupted run's order."""
    subs = submissions(per_tenant=2)
    full = run_tenant_ensemble(
        cfg(),
        THREE_TENANTS,
        subs,
        admission=AdmissionConfig(max_concurrent=1),
        scheduler="fair",
    )
    crash_at = 3  # the first three workflows completed, then the crash
    done = full.admission_order[:crash_at]
    by_name = by_workflow(full)
    charges: dict[str, float] = {}
    for name in done:
        tenant = full.tenant_of[name]
        charges[tenant] = charges.get(tenant, 0.0) + by_name[name].bytes_staged
    remaining = [(t, w) for t, w in subs if w.name not in done]

    resumed = run_tenant_ensemble(
        cfg(),
        THREE_TENANTS,
        remaining,
        admission=AdmissionConfig(max_concurrent=1),
        scheduler="fair",
        initial_charges=charges,
    )
    assert resumed.admission_order == full.admission_order[crash_at:]
    assert all(m.success for m in resumed.metrics)
