"""Tests of concurrent multi-workflow execution on one testbed."""

import pytest

from repro.experiments import ExperimentConfig
from repro.experiments.runner import run_concurrent_workflows
from repro.workflow.montage import MB, MontageConfig, augmented_montage


def two_instances(shared_dataset: bool):
    prefixes = ("", "") if shared_dataset else ("a_", "b_")
    return [
        augmented_montage(
            10 * MB,
            MontageConfig(n_images=12, name=f"m{i}", lfn_prefix=prefixes[i]),
        )
        for i in range(2)
    ]


def cfg(**kw):
    defaults = dict(extra_file_mb=10, n_images=12, seed=13, policy="greedy")
    defaults.update(kw)
    return ExperimentConfig(**defaults)


def test_shared_dataset_second_workflow_stages_nothing():
    results = run_concurrent_workflows(cfg(), two_instances(True), stagger=5.0)
    first, second = results
    assert first.success and second.success
    assert first.transfers_executed > 0
    # Everything the second workflow needs is staged or in flight.
    assert second.transfers_executed == 0
    assert second.transfers_skipped + second.transfers_waited > 0


def test_disjoint_datasets_both_stage():
    results = run_concurrent_workflows(cfg(), two_instances(False), stagger=5.0)
    assert all(m.transfers_executed > 0 for m in results)
    total = sum(m.bytes_staged for m in results)
    # 2 x (12 images x 12 MB + header)
    assert total == pytest.approx(2 * (12 * 12e6 + 1e3), rel=0.03)


def test_separate_policies_do_not_share_memory():
    results = run_concurrent_workflows(
        cfg(), two_instances(True), stagger=5.0, share_policy=False
    )
    # Same dataset, but isolated services: both stage everything.
    assert all(m.transfers_executed > 0 for m in results)
    assert all(m.transfers_skipped == 0 and m.transfers_waited == 0 for m in results)


def test_stagger_delays_second_workflow():
    results = run_concurrent_workflows(cfg(), two_instances(False), stagger=50.0)
    # The staggered workflow cannot beat its own start offset.
    assert results[1].makespan > 0
    # Both complete on the shared fabric.
    assert all(m.success for m in results)


def test_results_align_with_workflow_order():
    results = run_concurrent_workflows(cfg(), two_instances(False), stagger=5.0)
    assert "m0" in results[0].workflow_id
    assert "m1" in results[1].workflow_id
