"""Setuptools shim: lets `pip install -e . --no-use-pep517` work offline
(the sandbox has no `wheel` package, so the PEP 660 editable path fails)."""

from setuptools import setup

setup()
