"""DAGMan-like workflow executor.

Releases jobs as their dependencies complete, subject to per-category
throttles (the paper runs with a *local job limit of 20*, bounding how
many data staging jobs run at once), retries failed jobs (5 retries in
the paper's configuration), and records per-job timings.

Runners are pluggable per :class:`~repro.planner.executable.JobKind`;
each runner is a callable ``runner(workflow_id, job) -> generator`` driven
as a DES process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.des import Environment, PriorityResource
from repro.planner.executable import ExecutableJob, ExecutableWorkflow, JobKind

__all__ = ["DAGMan", "DAGManResult", "JobRecord", "WorkflowFailed"]

Runner = Callable[[str, ExecutableJob], object]


class WorkflowFailed(RuntimeError):
    """A job exhausted its retries; the workflow run is aborted."""

    def __init__(self, job_id: str, attempts: int, cause: BaseException):
        super().__init__(f"job {job_id!r} failed after {attempts} attempts: {cause}")
        self.job_id = job_id
        self.attempts = attempts
        self.cause = cause


@dataclass
class JobRecord:
    """Timing and outcome of one executable job."""

    job_id: str
    kind: str
    t_ready: float = 0.0
    t_start: float = 0.0
    t_end: float = 0.0
    attempts: int = 0
    state: str = "pending"  # -> running -> done | failed

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    @property
    def queue_delay(self) -> float:
        return self.t_start - self.t_ready


@dataclass
class DAGManResult:
    """Outcome of a workflow run."""

    workflow_id: str
    success: bool
    makespan: float
    records: dict[str, JobRecord] = field(default_factory=dict)
    failure: Optional[str] = None

    def by_kind(self, kind: JobKind) -> list[JobRecord]:
        return [r for r in self.records.values() if r.kind == kind.value]


class DAGMan:
    """Executes one planned workflow on the simulation.

    Parameters
    ----------
    env, plan:
        Simulation environment and the planner's output.
    runners:
        ``{JobKind: runner}`` — must cover every kind present in the plan.
    throttles:
        ``{JobKind: limit}`` — per-category concurrent job limits (jobs of
        kinds not listed are unthrottled).  The paper's configuration is
        ``{JobKind.STAGE_IN: 20}``.
    retries:
        Retries per job after the first failure (paper: 5).
    retry_backoff:
        Base delay (seconds) before retry ``n`` — waits
        ``retry_backoff * 2**(n-1)``, capped at ``retry_backoff_max``.
        0 (the default) retries immediately, the seed behaviour.
    retry_jitter:
        Fraction of random inflation added to each backoff delay (needs
        ``rng``) so failed jobs don't retry in lock-step against a
        struggling resource.
    rng:
        Any object with a ``random() -> [0, 1)`` method (e.g. a
        ``random.Random`` or a seeded simulation stream).
    """

    def __init__(
        self,
        env: Environment,
        plan: ExecutableWorkflow,
        runners: dict[JobKind, Runner],
        throttles: Optional[dict[JobKind, int]] = None,
        retries: int = 5,
        retry_backoff: float = 0.0,
        retry_backoff_max: float = 300.0,
        retry_jitter: float = 0.1,
        rng=None,
    ):
        plan.validate()
        missing = {j.kind for j in plan.jobs.values()} - set(runners)
        if missing:
            raise ValueError(f"no runner for job kinds: {sorted(k.value for k in missing)}")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if retry_backoff < 0 or retry_backoff_max < 0:
            raise ValueError("retry backoff delays must be >= 0")
        if not 0 <= retry_jitter <= 1:
            raise ValueError("retry_jitter must be in [0, 1]")
        self.env = env
        self.plan = plan
        self.runners = runners
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.retry_backoff_max = retry_backoff_max
        self.retry_jitter = retry_jitter
        self._rng = rng
        self._throttles: dict[JobKind, PriorityResource] = {}
        for kind, limit in (throttles or {}).items():
            if limit < 1:
                raise ValueError(f"throttle for {kind.value} must be >= 1")
            self._throttles[kind] = PriorityResource(env, capacity=limit)
        self.records: dict[str, JobRecord] = {
            jid: JobRecord(job_id=jid, kind=job.kind.value)
            for jid, job in plan.jobs.items()
        }
        self._failure: Optional[WorkflowFailed] = None

    def _retry_delay(self, attempt: int) -> float:
        """Backoff before retrying a job that has failed ``attempt`` times."""
        if self.retry_backoff <= 0:
            return 0.0
        delay = min(self.retry_backoff * 2 ** (attempt - 1), self.retry_backoff_max)
        if self.retry_jitter and self._rng is not None:
            delay *= 1.0 + self.retry_jitter * self._rng.random()
        return delay

    # ------------------------------------------------------------------ run
    def run(self):
        """Process generator: execute the whole plan; returns DAGManResult.

        Drive it with ``env.process(dagman.run())`` and ``env.run(until=p)``.
        """
        t0 = self.env.now
        graph = self.plan.graph()
        remaining_parents = {
            jid: graph.in_degree(jid) for jid in self.plan.jobs
        }
        ready_events: dict[str, object] = {
            jid: self.env.event() for jid in self.plan.jobs
        }
        for jid, count in remaining_parents.items():
            if count == 0:
                ready_events[jid].succeed()

        done_events = []
        abort = self.env.event()

        tracer = self.env.tracer
        wf_track = f"dagman:{self.plan.workflow_id}"

        def job_process(jid: str):
            job = self.plan.jobs[jid]
            record = self.records[jid]
            yield ready_events[jid]
            record.t_ready = self.env.now
            throttle = self._throttles.get(job.kind)
            request = None
            if throttle is not None:
                request = throttle.request(priority=-job.priority)
                yield request
            record.t_start = self.env.now
            record.state = "running"
            span = None
            if tracer is not None and tracer.enabled:
                if record.t_start > record.t_ready:
                    tracer.instant(
                        "dagman", "dagman.throttled", track=wf_track,
                        job=jid, kind=job.kind.value,
                        queued=record.t_start - record.t_ready,
                    )
                span = tracer.begin(
                    "dagman", f"job:{jid}", track=wf_track,
                    kind=job.kind.value, priority=job.priority,
                )
            try:
                runner = self.runners[job.kind]
                while True:
                    record.attempts += 1
                    try:
                        yield self.env.process(
                            runner(self.plan.workflow_id, job), name=f"run-{jid}"
                        )
                        break
                    except Exception as exc:  # noqa: BLE001 - retry any job error
                        if record.attempts > self.retries:
                            record.state = "failed"
                            record.t_end = self.env.now
                            if tracer is not None:
                                tracer.end(
                                    span, state="failed",
                                    attempts=record.attempts,
                                    error=type(exc).__name__,
                                )
                            failure = WorkflowFailed(jid, record.attempts, exc)
                            self._failure = failure
                            if not abort.triggered:
                                abort.succeed(failure)
                            return
                        delay = self._retry_delay(record.attempts)
                        if delay > 0:
                            yield self.env.timeout(delay)
            finally:
                if throttle is not None and request is not None:
                    throttle.release(request)
            record.state = "done"
            record.t_end = self.env.now
            if tracer is not None:
                tracer.end(span, state="done", attempts=record.attempts)
            for child in graph.successors(jid):
                remaining_parents[child] -= 1
                if remaining_parents[child] == 0:
                    ready_events[child].succeed()

        for jid in self.plan.jobs:
            done_events.append(self.env.process(job_process(jid), name=f"job-{jid}"))

        all_done = self.env.all_of(done_events)
        outcome = yield self.env.any_of([all_done, abort])
        if self._failure is not None:
            # Give no further jobs a chance; report failure.
            return DAGManResult(
                workflow_id=self.plan.workflow_id,
                success=False,
                makespan=self.env.now - t0,
                records=self.records,
                failure=str(self._failure),
            )
        del outcome
        return DAGManResult(
            workflow_id=self.plan.workflow_id,
            success=True,
            makespan=self.env.now - t0,
            records=self.records,
        )
