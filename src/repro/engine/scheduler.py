"""Cluster compute-slot scheduler.

Models the Obelix cluster's batch execution: a fixed pool of slots
(nodes x cores), a per-job submission overhead (scheduler latency), and
deterministic per-job runtimes sampled from the transformation catalog by
the caller.
"""

from __future__ import annotations

from repro.des import Environment, PriorityResource

__all__ = ["ClusterScheduler"]


class ClusterScheduler:
    """A slot pool with submission overhead.

    Parameters
    ----------
    env:
        Simulation environment.
    slots:
        Concurrent job capacity (nodes x cores-per-node).
    submit_overhead:
        Seconds of scheduling latency charged per job before it runs.
    """

    def __init__(self, env: Environment, slots: int, submit_overhead: float = 0.5):
        if slots < 1:
            raise ValueError("slots must be >= 1")
        if submit_overhead < 0:
            raise ValueError("submit_overhead must be >= 0")
        self.env = env
        self.slots = slots
        self.submit_overhead = submit_overhead
        self._pool = PriorityResource(env, capacity=slots)
        self.jobs_run = 0
        self.busy_time = 0.0

    def run_job(self, runtime: float, priority: int = 0):
        """Process generator: occupy one slot for ``runtime`` seconds.

        ``priority``: higher runs earlier when the pool is contended.
        """
        if runtime < 0:
            raise ValueError("runtime must be >= 0")
        request = self._pool.request(priority=-priority)
        yield request
        try:
            start = self.env.now
            yield self.env.timeout(self.submit_overhead + runtime)
            self.busy_time += self.env.now - start
            self.jobs_run += 1
        finally:
            self._pool.release(request)

    @property
    def in_use(self) -> int:
        return self._pool.count

    @property
    def queued(self) -> int:
        return self._pool.queued
