"""The Pegasus cleanup process.

Cleanup jobs delete files no longer needed by the remaining workflow
execution.  With a policy client configured, each cleanup job submits its
file list to the Policy Service first; the service removes duplicates and
protects files still in use by other workflows (staged-file resources with
remaining users).  Deletions and the final completion report follow the
paper's protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.catalogs.replica import ReplicaCatalog
from repro.engine.storage import StorageTracker
from repro.des import Environment
from repro.net.gridftp import parse_url
from repro.planner.executable import ExecutableJob
from repro.policy.client import InProcessPolicyClient, PolicyUnavailableError

__all__ = ["CleanupTool", "CleanupRecord"]


@dataclass
class CleanupRecord:
    """Outcome of one cleanup job."""

    job_id: str
    deleted: int = 0
    skipped: int = 0
    #: files left on disk because the policy service was unreachable —
    #: deleting without advice could destroy files other workflows share
    deferred: int = 0


class CleanupTool:
    """Executes cleanup jobs, optionally under policy advice.

    ``per_file_latency`` models the filesystem unlink + bookkeeping cost.
    """

    def __init__(
        self,
        env: Environment,
        policy: Optional[InProcessPolicyClient] = None,
        per_file_latency: float = 0.05,
        replicas: Optional[ReplicaCatalog] = None,
        host_site: Optional[dict[str, str]] = None,
        storage: Optional[StorageTracker] = None,
    ):
        if per_file_latency < 0:
            raise ValueError("per_file_latency must be >= 0")
        self.env = env
        self.policy = policy
        self.per_file_latency = per_file_latency
        self.replicas = replicas
        self.host_site = host_site or {}
        self.storage = storage
        self.records: list[CleanupRecord] = []

    def execute(self, workflow_id: str, job: ExecutableJob):
        """Process generator: delete the job's files (as advised)."""
        record = CleanupRecord(job_id=job.id)
        tracer = self.env.tracer
        span = None
        if tracer is not None and tracer.enabled:
            span = tracer.begin(
                "cleanup", f"cleanup:{job.id}", track="cleanup",
                files=len(job.cleanup_files),
            )
        if self.policy is None:
            for lfn, url in job.cleanup_files:
                yield from self._delete(lfn, url)
                record.deleted += 1
        else:
            try:
                advice = yield from self.policy.submit_cleanups(
                    workflow_id, job.id, list(job.cleanup_files)
                )
            except PolicyUnavailableError:
                # Unlike staging, deletion is unsafe without advice: the
                # file may be shared with another workflow.  Leave the
                # files in place — a later cleanup (or the operator) gets
                # them once the service is back.
                record.deferred += len(job.cleanup_files)
                self.records.append(record)
                if tracer is not None:
                    tracer.end(span, deferred=record.deferred)
                return record
            done_ids = []
            for item in advice:
                if item.action == "delete":
                    yield from self._delete(item.lfn, item.url)
                    record.deleted += 1
                    done_ids.append(item.cid)
                else:
                    record.skipped += 1
            if done_ids:
                try:
                    yield from self.policy.complete_cleanups(done_ids)
                except PolicyUnavailableError:
                    # The deletions happened; the service's lease reaper
                    # will retire the orphaned cleanup grants.
                    pass
        self.records.append(record)
        if tracer is not None:
            tracer.end(span, deleted=record.deleted, skipped=record.skipped)
        return record

    def _delete(self, lfn: str, url: str):
        if self.per_file_latency > 0:
            yield self.env.timeout(self.per_file_latency)
        host, _ = parse_url(url)
        site = self.host_site.get(host, host)
        if self.replicas is not None:
            self.replicas.unregister(lfn, site=site)
        if self.storage is not None and site == self.storage.site:
            self.storage.remove(lfn)
