"""The Pegasus Transfer Tool (PTT).

The PTT executes the transfer list of a data staging job.  With a policy
client configured (the paper's integration), it first submits the list to
the Policy Service, then acts on the returned advice:

* ``transfer`` items are executed **group by group in the advised order**;
  transfers sharing a group (same source/destination host pair) reuse one
  client session, paying the control-channel setup only once;
* ``skip`` items (duplicates / already-staged files) are not transferred;
* ``wait`` items poll the service until the file another workflow is
  staging becomes ``staged`` (done) or ``unknown`` (the other transfer
  failed — the item is resubmitted for fresh advice);
* after each transfer the PTT reports completion so the service frees the
  transfer's streams; on a failure it reports the failed id *and* the
  not-yet-started ids of the same advice batch, then raises so the
  workflow engine can retry the job (Pegasus' retries-on-failure).

Without a policy client the PTT behaves like default Pegasus: it performs
the transfers serially in list order with its configured default streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.catalogs.replica import ReplicaCatalog
from repro.engine.storage import StorageTracker
from repro.net.gridftp import GridFTPClient, TransferError, parse_url
from repro.planner.executable import ExecutableJob
from repro.policy.client import InProcessPolicyClient
from repro.policy.model import TransferAdvice

__all__ = ["PegasusTransferTool", "StagingRecord"]


@dataclass
class StagingRecord:
    """Outcome of one staging job (for metrics)."""

    job_id: str
    t_start: float
    t_end: float = 0.0
    executed: int = 0
    skipped: int = 0
    waited: int = 0
    bytes_moved: float = 0.0
    streams_used: list[int] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


class PegasusTransferTool:
    """Executes staging jobs' transfers, optionally under policy advice.

    Parameters
    ----------
    gridftp:
        The transfer client bound to the simulated fabric.
    policy:
        ``InProcessPolicyClient`` or None (default-Pegasus behaviour).
    default_streams:
        Parallel streams requested per transfer (the experiments' x-axis).
    poll_interval:
        Seconds between staging-state polls while waiting on another
        workflow's in-flight transfer.
    replicas / host_site:
        When provided, successful transfers are registered in the replica
        catalog at the destination host's site.
    """

    def __init__(
        self,
        gridftp: GridFTPClient,
        policy: Optional[InProcessPolicyClient] = None,
        default_streams: int = 4,
        poll_interval: float = 5.0,
        max_wait: float = 24 * 3600.0,
        replicas: Optional[ReplicaCatalog] = None,
        host_site: Optional[dict[str, str]] = None,
        cluster_scope: str = "job",
        storage: Optional[StorageTracker] = None,
    ):
        if default_streams < 1:
            raise ValueError("default_streams must be >= 1")
        if poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        if cluster_scope not in ("job", "workflow"):
            raise ValueError(f"cluster_scope must be 'job' or 'workflow', got {cluster_scope!r}")
        self.gridftp = gridftp
        self.env = gridftp.env
        self.policy = policy
        self.default_streams = default_streams
        self.poll_interval = poll_interval
        self.max_wait = max_wait
        self.replicas = replicas
        self.host_site = host_site or {}
        #: Balanced-policy cluster identity: the staging job ("job", the
        #: Pegasus clustered-job semantics) or the whole workflow
        #: ("workflow", per-workflow bandwidth reservation).
        self.cluster_scope = cluster_scope
        #: optional scratch-space accounting for transfer destinations
        self.storage = storage
        self.records: list[StagingRecord] = []

    # ------------------------------------------------------------------ public
    def execute(self, workflow_id: str, job: ExecutableJob):
        """Process generator: run all transfers of a staging job."""
        record = StagingRecord(job_id=job.id, t_start=self.env.now)
        try:
            if self.policy is None:
                yield from self._execute_default(job, record)
            else:
                yield from self._execute_with_policy(workflow_id, job, record)
        finally:
            record.t_end = self.env.now
            self.records.append(record)
        return record

    # ----------------------------------------------------------------- default
    def _execute_default(self, job: ExecutableJob, record: StagingRecord):
        """Default Pegasus: serial transfers, list order, default streams."""
        for spec in job.transfers:
            rec = yield from self.gridftp.transfer(
                spec.src_url, spec.dst_url, spec.nbytes, self.default_streams
            )
            record.executed += 1
            record.bytes_moved += rec.nbytes
            record.streams_used.append(self.default_streams)
            self._register(spec.lfn, spec.dst_url, spec.nbytes)

    # ------------------------------------------------------------- with policy
    def _execute_with_policy(self, workflow_id: str, job: ExecutableJob, record: StagingRecord):
        cluster = job.id if self.cluster_scope == "job" else workflow_id
        pending = [
            {
                "lfn": t.lfn,
                "src_url": t.src_url,
                "dst_url": t.dst_url,
                "nbytes": t.nbytes,
                "streams": self.default_streams,
                "priority": job.priority,
                "cluster": cluster,
            }
            for t in job.transfers
        ]
        deadline = self.env.now + self.max_wait
        while pending:
            advice = yield from self.policy.submit_transfers(
                workflow_id, job.id, pending
            )
            denied = [a for a in advice if a.action == "deny"]
            if denied:
                # A denial means the data will never arrive: fail the job.
                raise TransferError(
                    f"transfer of {denied[0].lfn!r} denied by policy: "
                    f"{denied[0].reason}",
                    denied[0].src_url,
                    denied[0].dst_url,
                )
            to_execute = [a for a in advice if a.action == "transfer"]
            waits = [a for a in advice if a.action == "wait"]
            record.skipped += sum(1 for a in advice if a.action == "skip")

            yield from self._run_approved(to_execute, record)

            pending = []
            for item in waits:
                record.waited += 1
                outcome = yield from self._await_staged(item, deadline)
                if outcome == "resubmit":
                    pending.append(
                        {
                            "lfn": item.lfn,
                            "src_url": item.src_url,
                            "dst_url": item.dst_url,
                            "nbytes": item.nbytes,
                            "streams": self.default_streams,
                            "priority": job.priority,
                            "cluster": cluster,
                        }
                    )

    def _run_approved(self, items: list[TransferAdvice], record: StagingRecord):
        """Execute approved transfers group by group, sessions reused."""
        # Preserve the service's ordering; group boundaries reset sessions.
        # Group id 0 means "ungrouped" (the service assigned no host-pair
        # group), so consecutive 0s never share a session.
        current_group: Optional[int] = None
        for idx, item in enumerate(items):
            session_established = item.group_id != 0 and item.group_id == current_group
            current_group = item.group_id
            try:
                rec = yield from self.gridftp.transfer(
                    item.src_url,
                    item.dst_url,
                    item.nbytes,
                    item.streams,
                    session_established=session_established,
                )
            except TransferError:
                # Tell the service about the failure and the abandoned rest
                # of the batch, then let the engine retry the whole job.
                abandoned = [other.tid for other in items[idx:]]
                yield from self.policy.complete_transfers(failed=abandoned)
                raise
            record.executed += 1
            record.bytes_moved += rec.nbytes
            record.streams_used.append(item.streams)
            self._register(item.lfn, item.dst_url, item.nbytes)
            yield from self.policy.complete_transfers(done=[item.tid])

    def _await_staged(self, item: TransferAdvice, deadline: float):
        """Poll until the in-flight duplicate lands; 'done' or 'resubmit'."""
        while True:
            state = yield from self.policy.staging_state(item.lfn, item.dst_url)
            if state == "staged":
                return "done"
            if state == "unknown":
                return "resubmit"  # the other workflow's transfer failed
            if self.env.now >= deadline:
                raise TransferError(
                    f"timed out waiting for {item.lfn!r} to be staged by "
                    f"transfer {item.wait_for}",
                    item.src_url,
                    item.dst_url,
                )
            yield self.env.timeout(self.poll_interval)

    # ------------------------------------------------------------------ helpers
    def _register(self, lfn: str, dst_url: str, nbytes: float = 0.0) -> None:
        host, _ = parse_url(dst_url)
        site = self.host_site.get(host, host)
        if self.replicas is not None:
            self.replicas.register(lfn, site, dst_url)
        if self.storage is not None and site == self.storage.site:
            self.storage.add(lfn, nbytes)
