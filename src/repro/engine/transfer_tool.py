"""The Pegasus Transfer Tool (PTT).

The PTT executes the transfer list of a data staging job.  With a policy
client configured (the paper's integration), it first submits the list to
the Policy Service, then acts on the returned advice:

* ``transfer`` items are executed **group by group in the advised order**;
  transfers sharing a group (same source/destination host pair) reuse one
  client session, paying the control-channel setup only once;
* ``skip`` items (duplicates / already-staged files) are not transferred;
* ``wait`` items poll the service until the file another workflow is
  staging becomes ``staged`` (done) or ``unknown`` (the other transfer
  failed — the item is resubmitted for fresh advice);
* after each transfer the PTT reports completion so the service frees the
  transfer's streams; on a failure it reports the failed id *and* the
  not-yet-started ids of the same advice batch, then raises so the
  workflow engine can retry the job (Pegasus' retries-on-failure).

Without a policy client the PTT behaves like default Pegasus: it performs
the transfers serially in list order with its configured default streams.

When the policy client raises :exc:`PolicyUnavailableError` (service
crashed, circuit open), the PTT **degrades** instead of wedging: the
job's remaining transfers run policy-free like default Pegasus, and the
staged files are remembered per workflow.  Once the service answers
again, the backlog is reconciled (``reconcile_staged``) before the next
advice request, so the shared policy memory regains the resource facts.
Completion reports that could not be delivered are queued and flushed the
same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.catalogs.replica import ReplicaCatalog
from repro.engine.storage import StorageTracker
from repro.net.gridftp import GridFTPClient, TransferError, parse_url
from repro.planner.executable import ExecutableJob
from repro.policy.client import InProcessPolicyClient, PolicyUnavailableError
from repro.policy.model import TransferAdvice

__all__ = ["PegasusTransferTool", "StagingRecord"]


@dataclass
class StagingRecord:
    """Outcome of one staging job (for metrics)."""

    job_id: str
    t_start: float
    t_end: float = 0.0
    executed: int = 0
    skipped: int = 0
    waited: int = 0
    #: transfers executed policy-free because the service was unreachable
    degraded: int = 0
    bytes_moved: float = 0.0
    streams_used: list[int] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


class PegasusTransferTool:
    """Executes staging jobs' transfers, optionally under policy advice.

    Parameters
    ----------
    gridftp:
        The transfer client bound to the simulated fabric.
    policy:
        ``InProcessPolicyClient`` or None (default-Pegasus behaviour).
    default_streams:
        Parallel streams requested per transfer (the experiments' x-axis).
    poll_interval:
        Seconds between staging-state polls while waiting on another
        workflow's in-flight transfer.
    replicas / host_site:
        When provided, successful transfers are registered in the replica
        catalog at the destination host's site.
    """

    def __init__(
        self,
        gridftp: GridFTPClient,
        policy: Optional[InProcessPolicyClient] = None,
        default_streams: int = 4,
        poll_interval: float = 5.0,
        max_wait: float = 24 * 3600.0,
        replicas: Optional[ReplicaCatalog] = None,
        host_site: Optional[dict[str, str]] = None,
        cluster_scope: str = "job",
        storage: Optional[StorageTracker] = None,
    ):
        if default_streams < 1:
            raise ValueError("default_streams must be >= 1")
        if poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        if cluster_scope not in ("job", "workflow"):
            raise ValueError(f"cluster_scope must be 'job' or 'workflow', got {cluster_scope!r}")
        self.gridftp = gridftp
        self.env = gridftp.env
        self.policy = policy
        self.default_streams = default_streams
        self.poll_interval = poll_interval
        self.max_wait = max_wait
        self.replicas = replicas
        self.host_site = host_site or {}
        #: Balanced-policy cluster identity: the staging job ("job", the
        #: Pegasus clustered-job semantics) or the whole workflow
        #: ("workflow", per-workflow bandwidth reservation).
        self.cluster_scope = cluster_scope
        #: optional scratch-space accounting for transfer destinations
        self.storage = storage
        self.records: list[StagingRecord] = []
        #: append-only (lfn, dst_url) log of every file this tool staged —
        #: the ground truth the chaos experiments compare runs with
        self.staged_log: list[tuple[str, str]] = []
        #: append-only (lfn, url) log of catalog-evicted replicas this tool
        #: deleted on the service's behalf
        self.evicted_log: list[tuple[str, str]] = []
        #: files staged policy-free per workflow, awaiting reconciliation
        self._degraded_staged: dict[str, list[tuple[str, str, float]]] = {}
        #: completion reports the service never acknowledged
        self._unreported_done: list[int] = []
        self._unreported_failed: list[int] = []

    # ------------------------------------------------------------------ public
    def execute(self, workflow_id: str, job: ExecutableJob):
        """Process generator: run all transfers of a staging job."""
        record = StagingRecord(job_id=job.id, t_start=self.env.now)
        try:
            if self.policy is None:
                yield from self._execute_default(job, record)
            else:
                yield from self._execute_with_policy(workflow_id, job, record)
        finally:
            record.t_end = self.env.now
            self.records.append(record)
        return record

    # ----------------------------------------------------------------- default
    def _execute_default(self, job: ExecutableJob, record: StagingRecord):
        """Default Pegasus: serial transfers, list order, default streams."""
        tracer = self.env.tracer
        track = f"ptt:{job.id}"
        for spec in job.transfers:
            span = None
            if tracer is not None and tracer.enabled:
                span = tracer.begin(
                    "ptt", f"xfer:{spec.lfn}", track=track,
                    streams=self.default_streams, nbytes=spec.nbytes,
                )
            rec = yield from self.gridftp.transfer(
                spec.src_url, spec.dst_url, spec.nbytes, self.default_streams
            )
            if tracer is not None:
                tracer.end(span, outcome="done")
            record.executed += 1
            record.bytes_moved += rec.nbytes
            record.streams_used.append(self.default_streams)
            self._register(spec.lfn, spec.dst_url, spec.nbytes)

    # ------------------------------------------------------------- with policy
    def _execute_with_policy(self, workflow_id: str, job: ExecutableJob, record: StagingRecord):
        cluster = job.id if self.cluster_scope == "job" else workflow_id

        def spec_of(t) -> dict:
            return {
                "lfn": t.lfn,
                "src_url": t.src_url,
                "dst_url": t.dst_url,
                "nbytes": t.nbytes,
                "streams": self.default_streams,
                "priority": job.priority,
                "cluster": cluster,
            }

        tracer = self.env.tracer
        track = f"ptt:{job.id}"
        pending = [spec_of(t) for t in job.transfers]
        deadline = self.env.now + self.max_wait
        # Settle earlier degraded-mode debts before asking for new advice;
        # if the service is still down, stay policy-free for this job.
        if not (yield from self._reconcile(workflow_id)):
            yield from self._execute_degraded(workflow_id, pending, record, track)
            return
        while pending:
            if tracer is not None and tracer.enabled:
                tracer.instant(
                    "ptt", "ptt.submit", track=track, transfers=len(pending)
                )
            try:
                advice = yield from self.policy.submit_transfers(
                    workflow_id, job.id, pending
                )
            except PolicyUnavailableError:
                if tracer is not None and tracer.enabled:
                    tracer.instant(
                        "ptt", "ptt.degrade", track=track,
                        reason="policy_unavailable", transfers=len(pending),
                    )
                yield from self._execute_degraded(workflow_id, pending, record, track)
                return
            if tracer is not None and tracer.enabled:
                actions: dict[str, int] = {}
                for a in advice:
                    actions[a.action] = actions.get(a.action, 0) + 1
                tracer.instant(
                    "ptt", "ptt.advised", track=track,
                    **dict(sorted(actions.items())),
                )
            denied = [a for a in advice if a.action == "deny"]
            if denied:
                # A denial means the data will never arrive: fail the job.
                raise TransferError(
                    f"transfer of {denied[0].lfn!r} denied by policy: "
                    f"{denied[0].reason}",
                    denied[0].src_url,
                    denied[0].dst_url,
                )
            to_execute = [a for a in advice if a.action == "transfer"]
            waits = [a for a in advice if a.action == "wait"]
            record.skipped += sum(1 for a in advice if a.action == "skip")

            yield from self._run_approved(to_execute, record, track)

            pending = []
            for item in waits:
                record.waited += 1
                item_spec = {
                    "lfn": item.lfn,
                    "src_url": item.src_url,
                    "dst_url": item.dst_url,
                    "nbytes": item.nbytes,
                    "streams": self.default_streams,
                    "priority": job.priority,
                    "cluster": cluster,
                }
                wait_span = None
                if tracer is not None and tracer.enabled:
                    wait_span = tracer.begin(
                        "ptt", f"wait:{item.lfn}", track=track,
                        wait_for=item.wait_for, reason=item.reason,
                    )
                try:
                    outcome = yield from self._await_staged(item, deadline)
                except PolicyUnavailableError:
                    # The service vanished mid-wait: stage the file
                    # ourselves rather than poll a dead endpoint.
                    if tracer is not None:
                        tracer.end(wait_span, outcome="degraded")
                    yield from self._execute_degraded(
                        workflow_id, [item_spec], record, track
                    )
                    continue
                if tracer is not None:
                    tracer.end(wait_span, outcome=outcome)
                if outcome == "resubmit":
                    pending.append(item_spec)

    def _run_approved(
        self, items: list[TransferAdvice], record: StagingRecord, track: str = "ptt"
    ):
        """Execute approved transfers group by group, sessions reused."""
        # Preserve the service's ordering; group boundaries reset sessions.
        # Group id 0 means "ungrouped" (the service assigned no host-pair
        # group), so consecutive 0s never share a session.
        tracer = self.env.tracer
        current_group: Optional[int] = None
        for idx, item in enumerate(items):
            session_established = item.group_id != 0 and item.group_id == current_group
            current_group = item.group_id
            span = None
            if tracer is not None and tracer.enabled:
                span = tracer.begin(
                    "ptt", f"xfer:{item.lfn}", track=track, tid=item.tid,
                    streams=item.streams, group=item.group_id,
                    nbytes=item.nbytes,
                )
            try:
                rec = yield from self.gridftp.transfer(
                    item.src_url,
                    item.dst_url,
                    item.nbytes,
                    item.streams,
                    session_established=session_established,
                )
            except TransferError:
                # Tell the service about the failure and the abandoned rest
                # of the batch, then let the engine retry the whole job.
                if tracer is not None:
                    tracer.end(span, outcome="failed")
                abandoned = [other.tid for other in items[idx:]]
                yield from self._report(failed=abandoned)
                raise
            if tracer is not None:
                tracer.end(span, outcome="done")
            record.executed += 1
            record.bytes_moved += rec.nbytes
            record.streams_used.append(item.streams)
            self._register(item.lfn, item.dst_url, item.nbytes)
            yield from self._report(done=[item.tid])

    def _await_staged(self, item: TransferAdvice, deadline: float):
        """Poll until the in-flight duplicate lands; 'done' or 'resubmit'."""
        while True:
            state = yield from self.policy.staging_state(item.lfn, item.dst_url)
            if state == "staged":
                return "done"
            if state == "unknown":
                return "resubmit"  # the other workflow's transfer failed
            if item.wait_for is not None:
                # The resource still reads "staging", but the transfer it
                # waits on may be gone — failed, lease-reaped, or forgotten
                # by a restarted service.  "unknown" must mean resubmit,
                # not wait-forever: nobody is going to finish that staging.
                tstate = yield from self.policy.transfer_state(item.wait_for)
                if tstate in ("failed", "unknown"):
                    return "resubmit"
            if self.env.now >= deadline:
                raise TransferError(
                    f"timed out waiting for {item.lfn!r} to be staged by "
                    f"transfer {item.wait_for}",
                    item.src_url,
                    item.dst_url,
                )
            yield self.env.timeout(self.poll_interval)

    # ------------------------------------------------------------ degraded mode
    def finalize(self, workflow_id: str):
        """Best-effort flush of queued reports and the degraded backlog.

        Call once when a workflow finishes, so completions that failed to
        be delivered mid-run reach the service before the workflow
        unregisters.  Returns False when the service is still down — the
        service's lease reaper then retires the orphaned grants.
        """
        return (yield from self._reconcile(workflow_id))

    def _execute_degraded(
        self, workflow_id: str, specs: list[dict], record: StagingRecord,
        track: str = "ptt",
    ):
        """Policy-free fallback: serial transfers with default streams.

        Staged files enter the per-workflow backlog so the policy memory
        learns about them once the service is reachable again.
        """
        tracer = self.env.tracer
        backlog = self._degraded_staged.setdefault(workflow_id, [])
        for spec in specs:
            span = None
            if tracer is not None and tracer.enabled:
                span = tracer.begin(
                    "ptt", f"xfer:{spec['lfn']}", track=track, mode="degraded",
                    streams=self.default_streams, nbytes=spec["nbytes"],
                )
            rec = yield from self.gridftp.transfer(
                spec["src_url"], spec["dst_url"], spec["nbytes"], self.default_streams
            )
            if tracer is not None:
                tracer.end(span, outcome="done")
            record.executed += 1
            record.degraded += 1
            record.bytes_moved += rec.nbytes
            record.streams_used.append(self.default_streams)
            self._register(spec["lfn"], spec["dst_url"], spec["nbytes"])
            # Byte counts ride along so the service's staged-data catalog
            # can size the adopted replica at reconciliation.
            backlog.append((spec["lfn"], spec["dst_url"], spec["nbytes"]))

    def _reconcile(self, workflow_id: str):
        """Flush queued completion reports and the degraded-staging backlog.

        Returns True when the service acknowledged everything (or there
        was nothing to flush); False when it is still unreachable.
        """
        done, failed = self._unreported_done, self._unreported_failed
        if done or failed:
            self._unreported_done, self._unreported_failed = [], []
            try:
                result = yield from self.policy.complete_transfers(done=done, failed=failed)
                self._apply_evictions(result)
            except PolicyUnavailableError:
                # Extend, don't assign: a concurrent job may have queued
                # its own ids while this call was in flight.
                self._unreported_done.extend(done)
                self._unreported_failed.extend(failed)
                return False
        backlog = self._degraded_staged.get(workflow_id)
        if backlog:
            try:
                yield from self.policy.reconcile_staged(workflow_id, list(backlog))
            except PolicyUnavailableError:
                return False
            self._degraded_staged[workflow_id] = []
        return True

    def _report(self, done=(), failed=()):
        """Report completions, queueing them if the service is unreachable.

        A lost completion report must not fail the job — the transfer
        itself succeeded; the service learns about it at the next
        reconciliation (and its lease reaper bounds the damage meanwhile).
        """
        done = self._unreported_done + list(done)
        failed = self._unreported_failed + list(failed)
        self._unreported_done, self._unreported_failed = [], []
        if not done and not failed:
            return
        try:
            result = yield from self.policy.complete_transfers(done=done, failed=failed)
        except PolicyUnavailableError:
            # Extend, don't assign: a concurrent job may have queued its
            # own ids while this call was in flight.
            self._unreported_done.extend(done)
            self._unreported_failed.extend(failed)
            return
        self._apply_evictions(result)

    def _apply_evictions(self, result) -> None:
        """Delete replicas the service's catalog evicted over a completion.

        The eviction rule pack only *selects* victims; the PTT owns the
        actual deletion (same division of labour as cleanup advice) —
        drop the simulated replica-catalog entry at the victim's site
        and release its scratch bytes.
        """
        if not isinstance(result, dict):
            return
        for victim in result.get("evicted", ()):
            host, _ = parse_url(victim["url"])
            site = self.host_site.get(host, host)
            if self.replicas is not None:
                self.replicas.unregister(victim["lfn"], site=site)
            if self.storage is not None and site == self.storage.site:
                self.storage.remove(victim["lfn"])
            self.evicted_log.append((victim["lfn"], victim["url"]))

    # ------------------------------------------------------------------ helpers
    def _register(self, lfn: str, dst_url: str, nbytes: float = 0.0) -> None:
        host, _ = parse_url(dst_url)
        self.staged_log.append((lfn, dst_url))
        site = self.host_site.get(host, host)
        if self.replicas is not None:
            self.replicas.register(lfn, site, dst_url)
        if self.storage is not None and site == self.storage.site:
            self.storage.add(lfn, nbytes)
