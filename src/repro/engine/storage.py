"""Scratch-storage accounting.

The paper's motivation for cleanup jobs: "since storage, especially at
computational sites, is finite, the workflow management system also needs
to remove data that are no longer needed".  This tracker records the byte
footprint of a site's scratch space over simulated time — stage-ins and
produced outputs add to it, cleanup deletions remove from it — so the
footprint reduction bought by cleanup (and the safety of policy-protected
cleanup) can be measured.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.des import Environment

__all__ = ["StorageTracker"]


@dataclass
class StorageTracker:
    """Byte-level scratch accounting for one site.

    ``capacity`` is advisory: exceeding it does not fail the simulation,
    but :attr:`over_capacity_time` accumulates how long the footprint
    stayed above it (a feasibility signal for storage-constrained sites).
    """

    env: Environment
    site: str
    capacity: float = float("inf")
    used: float = 0.0
    peak: float = 0.0
    timeline: list[tuple[float, float]] = field(default_factory=list)
    over_capacity_time: float = 0.0
    _over_since: float | None = None
    _files: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError("capacity must be positive")
        self.timeline.append((self.env.now, 0.0))

    # -- events ------------------------------------------------------------
    def add(self, lfn: str, nbytes: float) -> None:
        """A file landed on scratch (stage-in completed / output produced)."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if lfn in self._files:
            return  # already present (restage of an existing file)
        self._files[lfn] = nbytes
        self._set(self.used + nbytes)

    def remove(self, lfn: str) -> float:
        """A file was deleted by cleanup; returns its size (0 if unknown)."""
        nbytes = self._files.pop(lfn, 0.0)
        if nbytes:
            self._set(self.used - nbytes)
        return nbytes

    def holds(self, lfn: str) -> bool:
        return lfn in self._files

    # -- internals ------------------------------------------------------------
    def _set(self, used: float) -> None:
        now = self.env.now
        was_over = self.used > self.capacity
        self.used = max(0.0, used)
        self.peak = max(self.peak, self.used)
        self.timeline.append((now, self.used))
        is_over = self.used > self.capacity
        if is_over and not was_over:
            self._over_since = now
        elif was_over and not is_over and self._over_since is not None:
            self.over_capacity_time += now - self._over_since
            self._over_since = None

    def finish(self) -> None:
        """Close the over-capacity interval at end of run."""
        if self._over_since is not None:
            self.over_capacity_time += self.env.now - self._over_since
            self._over_since = None

    @property
    def file_count(self) -> int:
        return len(self._files)
