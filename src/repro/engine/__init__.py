"""Workflow execution engine (DAGMan/Condor stand-in + Pegasus tools).

* :mod:`repro.engine.scheduler` — cluster compute slots;
* :mod:`repro.engine.transfer_tool` — the Pegasus Transfer Tool (PTT):
  executes a staging job's transfer list, consulting the Policy Service
  for advice when configured (the paper's integration point);
* :mod:`repro.engine.cleanup_tool` — the cleanup process, likewise
  integrated with the Policy Service;
* :mod:`repro.engine.dagman` — dependency-driven job release with
  per-category throttles (the paper's "local job limit of 20" for data
  staging jobs) and per-job retries (5 in the paper's runs).
"""

from repro.engine.cleanup_tool import CleanupTool
from repro.engine.dagman import DAGMan, DAGManResult, JobRecord, WorkflowFailed
from repro.engine.scheduler import ClusterScheduler
from repro.engine.storage import StorageTracker
from repro.engine.transfer_tool import PegasusTransferTool, StagingRecord

__all__ = [
    "CleanupTool",
    "ClusterScheduler",
    "DAGMan",
    "DAGManResult",
    "JobRecord",
    "PegasusTransferTool",
    "StagingRecord",
    "StorageTracker",
    "WorkflowFailed",
]
