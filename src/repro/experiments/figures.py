"""Series builders for the paper's evaluation artifacts (Table IV, Figs 5-9).

Every figure in the paper's evaluation plots *workflow execution time*
against the *default number of parallel streams per transfer*:

* **Fig. 5** fixes the greedy threshold at 50 and varies the size of the
  extra staged file (0 / 10 / 100 / 500 / 1000 MB);
* **Figs. 6-9** fix the extra-file size (10 / 100 / 500 / 1000 MB) and
  compare greedy thresholds 50 / 100 / 200 plus the single no-policy
  point (default Pegasus, 4 streams per transfer);
* **Table IV** is the analytic maximum-streams table
  (:func:`repro.policy.allocation.max_streams_table`), which we also
  cross-check against the streams observed on the simulated WAN.

Each builder returns :class:`~repro.metrics.collectors.Series` objects
with per-replicate samples, matching the paper's mean ± std-dev plots.
"""

from __future__ import annotations

import zlib
from dataclasses import replace
from typing import Optional, Sequence

from repro.experiments.runner import ExperimentConfig, run_replicates
from repro.metrics.collectors import Series


def _seed(*parts) -> int:
    """Stable cross-process seed (``hash()`` is randomized per process)."""
    return zlib.crc32(repr(parts).encode()) % 10_000

__all__ = [
    "DEFAULT_STREAM_SWEEP",
    "FIG5_SIZES_MB",
    "THRESHOLD_SWEEP",
    "fig5_series",
    "fig_threshold_series",
    "no_policy_point",
    "observed_wan_peaks",
]

#: Default-streams-per-transfer sweep used by every figure (paper x-axis).
DEFAULT_STREAM_SWEEP = (4, 6, 8, 10, 12)
#: Extra-file sizes of Fig. 5 (MB).
FIG5_SIZES_MB = (0, 10, 100, 500, 1000)
#: Greedy thresholds compared in Figs. 6-9.
THRESHOLD_SWEEP = (50, 100, 200)
#: Figs. 6-9 fix these sizes respectively.
FIG_SIZE_MB = {6: 10, 7: 100, 8: 500, 9: 1000}


def fig5_series(
    base: Optional[ExperimentConfig] = None,
    sizes_mb: Sequence[float] = FIG5_SIZES_MB,
    defaults: Sequence[int] = DEFAULT_STREAM_SWEEP,
    replicates: int = 3,
) -> list[Series]:
    """Fig. 5: one series per extra-file size, threshold fixed at 50."""
    base = base or ExperimentConfig()
    out = []
    for size in sizes_mb:
        series = Series(label=f"{int(size)} MB extra")
        for streams in defaults:
            cfg = replace(
                base,
                extra_file_mb=size,
                default_streams=streams,
                policy="greedy",
                threshold=50,
                seed=_seed(size, streams),
            )
            metrics = run_replicates(cfg, replicates)
            series.add(streams, [m.makespan for m in metrics])
        out.append(series)
    return out


def fig_threshold_series(
    size_mb: float,
    base: Optional[ExperimentConfig] = None,
    thresholds: Sequence[int] = THRESHOLD_SWEEP,
    defaults: Sequence[int] = DEFAULT_STREAM_SWEEP,
    replicates: int = 3,
) -> list[Series]:
    """Figs. 6-9: one series per greedy threshold at a fixed extra size."""
    base = base or ExperimentConfig()
    out = []
    for threshold in thresholds:
        series = Series(label=f"greedy threshold {threshold}")
        for streams in defaults:
            cfg = replace(
                base,
                extra_file_mb=size_mb,
                default_streams=streams,
                policy="greedy",
                threshold=threshold,
                seed=_seed(size_mb, threshold, streams),
            )
            metrics = run_replicates(cfg, replicates)
            series.add(streams, [m.makespan for m in metrics])
        out.append(series)
    return out


def no_policy_point(
    size_mb: float,
    base: Optional[ExperimentConfig] = None,
    replicates: int = 3,
) -> Series:
    """The figures' single no-policy point: default Pegasus, 4 streams."""
    base = base or ExperimentConfig()
    cfg = replace(
        base,
        extra_file_mb=size_mb,
        default_streams=4,
        policy=None,
        seed=_seed(size_mb, "nopolicy"),
    )
    series = Series(label="no policy (default Pegasus)")
    metrics = run_replicates(cfg, replicates)
    series.add(4, [m.makespan for m in metrics])
    return series


def observed_wan_peaks(
    size_mb: float = 100,
    base: Optional[ExperimentConfig] = None,
    thresholds: Sequence[int] = THRESHOLD_SWEEP,
    defaults: Sequence[int] = DEFAULT_STREAM_SWEEP,
) -> dict:
    """Measured peak WAN streams per (threshold, default) — Table IV check.

    The observed peak can sit slightly below the analytic maximum (jobs
    complete and release streams between arrivals) but must never exceed
    it.
    """
    base = base or ExperimentConfig()
    peaks: dict = {"greedy": {}, "no_policy": None}
    for threshold in thresholds:
        row = {}
        for streams in defaults:
            cfg = replace(
                base,
                extra_file_mb=size_mb,
                default_streams=streams,
                policy="greedy",
                threshold=threshold,
                seed=0,
            )
            from repro.experiments.runner import run_cell

            row[streams] = run_cell(cfg).peak_streams.get("wan", 0)
        peaks["greedy"][threshold] = row
    from repro.experiments.runner import run_cell

    cfg = replace(base, extra_file_mb=size_mb, default_streams=4, policy=None, seed=0)
    peaks["no_policy"] = run_cell(cfg).peak_streams.get("wan", 0)
    return peaks
