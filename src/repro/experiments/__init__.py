"""The paper's evaluation harness.

* :mod:`repro.experiments.environment` — the simulated testbed standing in
  for the paper's: the ISI Obelix cluster (9 nodes x 6 cores, NFS over a
  1 Gbit LAN), a local web server holding Montage input images, and a
  FutureGrid-like VM reached over a WAN whose per-stream throughput
  matches the paper's quoted ~28 Mbit/s for a default 4-stream transfer;
* :mod:`repro.experiments.runner` — runs one experiment cell (one
  combination of policy, threshold, default streams, and extra-file size)
  and returns :class:`~repro.metrics.collectors.RunMetrics`;
* :mod:`repro.experiments.figures` — series builders regenerating
  Table IV and Figs. 5-9.
"""

from repro.experiments.environment import TestbedParams, build_testbed
from repro.experiments.runner import (
    EnsembleResult,
    ExperimentConfig,
    run_cell,
    run_ensemble,
    run_replicates,
    run_tenant_ensemble,
)
from repro.experiments.tracing import (
    TracedEnsemble,
    TracedRun,
    run_traced_cell,
    run_traced_ensemble,
    run_traced_workflow,
)

__all__ = [
    "EnsembleResult",
    "ExperimentConfig",
    "TestbedParams",
    "TracedEnsemble",
    "TracedRun",
    "build_testbed",
    "run_cell",
    "run_ensemble",
    "run_replicates",
    "run_tenant_ensemble",
    "run_traced_cell",
    "run_traced_ensemble",
    "run_traced_workflow",
]
