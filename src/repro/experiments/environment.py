"""The simulated testbed standing in for the paper's physical one.

Paper testbed -> simulation mapping
-----------------------------------
* **Obelix cluster** (9 nodes x 6-core Xeon, NFS over 1 Gbit LAN): a
  54-slot :class:`ClusterScheduler`; the NFS server is a shared link every
  staging route crosses.
* **Montage input images** served by an Apache web server at ISI: host
  ``web-isi`` reached over the LAN.
* **FutureGrid Alamo VM at TACC** running GridFTP 6.5: host ``fg-vm``
  reached over the WAN.
* **WAN calibration**: the paper reports "bandwidth for large transfers
  ... about 28 Mbits/sec"; we take 28 Mbit/s as the per-stream TCP window
  cap (so a lone stream sees the quoted rate and parallel streams help).
  On contended links, stream counts act as max–min fair-share weights.
  The shared path + endpoint ceiling is 40 MB/s, so aggregate throughput
  saturates well before the paper's allocations top out, then degrades
  past a congestion knee of ~70 total streams (endpoint/VM/loss
  pressure) — the regime Table IV's allocations probe: a threshold of 50
  keeps 57-65 streams (below the knee), no-policy sits at 80 (slightly
  past), thresholds 100/200 push 103-203 streams (deep past).  See
  DESIGN.md §5 for how each constant maps to a result shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional


from repro.catalogs import ReplicaCatalog, SiteCatalog, SiteEntry, TransformationCatalog
from repro.des import Environment, RngRegistry
from repro.net import FlowNetwork, GridFTPClient, GridFTPServer, Link, Network, StreamModel
from repro.net.topology import MB, mbit
from repro.workflow.dag import Workflow
from repro.workflow.montage import EXTRA_FILE_PREFIX, montage_transformations

__all__ = ["TestbedParams", "Testbed", "build_testbed"]


@dataclass(frozen=True)
class TestbedParams:
    """All tunables of the simulated testbed (defaults = paper setup)."""

    __test__ = False  # not a pytest test class despite the Test* name

    # -- cluster -----------------------------------------------------------
    nodes: int = 9
    cores_per_node: int = 6
    submit_overhead: float = 0.5

    # -- WAN (fg-vm -> obelix) ----------------------------------------------
    wan_capacity: float = 40 * MB            # shared path + endpoint ceiling
    wan_stream_rate: float = mbit(28)        # one stream's window cap
    wan_knee: int = 70
    wan_slope: float = 0.35
    wan_floor: float = 0.5

    # -- LAN and NFS ----------------------------------------------------------
    lan_capacity: float = mbit(1000)
    nfs_capacity: float = 100 * MB

    # -- transfer setup/ramp ----------------------------------------------------
    session_setup: float = 1.0
    stream_setup: float = 0.15
    ramp_time: float = 1.2
    ramp_ref: float = 50.0

    # -- storage ----------------------------------------------------------------
    scratch_capacity: float = float("inf")

    # -- noise / failures ---------------------------------------------------------
    overhead_jitter: float = 0.02
    failure_rate: float = 0.0

    # -- policy service ---------------------------------------------------------
    policy_latency: float = 0.15


@dataclass
class Testbed:
    """A wired-up simulation environment ready to plan and run workflows."""

    __test__ = False  # not a pytest test class despite the Test* name

    params: TestbedParams
    env: Environment
    rng: RngRegistry
    network: Network
    fabric: FlowNetwork
    gridftp: GridFTPClient
    sites: SiteCatalog
    transformations: TransformationCatalog
    replicas: ReplicaCatalog
    host_site: dict[str, str] = field(default_factory=dict)

    def register_workflow_inputs(self, workflow: Workflow, remote_all: bool = False) -> int:
        """Register replicas for a workflow's external inputs.

        Montage raw images and headers live on the ISI web server; the
        big-data augmentation files live on the FutureGrid-like VM.  With
        ``remote_all`` every input is placed on the remote VM instead —
        used for non-Montage workloads whose whole dataset crosses the
        WAN.  Returns the number of replicas registered.
        """
        count = 0
        for f in workflow.input_files():
            if remote_all or EXTRA_FILE_PREFIX in f.lfn:
                self.replicas.register(f.lfn, "futuregrid", f"gsiftp://fg-vm/data/{f.lfn}")
            else:
                self.replicas.register(f.lfn, "isi-web", f"http://web-isi/images/{f.lfn}")
            count += 1
        return count


def build_testbed(
    params: Optional[TestbedParams] = None, seed: int = 0, tracer=None
) -> Testbed:
    """Construct the simulated paper testbed.

    ``tracer`` (a :class:`repro.obs.Tracer`) is bound to the DES clock and
    threaded to every instrumented component via ``env.tracer``.
    """
    p = params or TestbedParams()
    env = Environment(tracer=tracer)
    rng = RngRegistry(seed=seed)

    network = Network()
    isi = network.add_site("isi")
    tacc = network.add_site("futuregrid")
    obelix = network.add_host("obelix", isi)
    web = network.add_host("web-isi", isi)
    fg_vm = network.add_host("fg-vm", tacc)
    archive = network.add_host("archive-host", isi)

    wan = network.add_link(
        Link(
            "wan",
            capacity=p.wan_capacity,
            stream_rate_cap=p.wan_stream_rate,
            knee=p.wan_knee,
            congestion_slope=p.wan_slope,
            congestion_floor=p.wan_floor,
        )
    )
    lan = network.add_link(Link("lan", capacity=p.lan_capacity))
    nfs = network.add_link(Link("nfs", capacity=p.nfs_capacity))
    archive_lan = network.add_link(Link("archive-lan", capacity=p.lan_capacity))

    network.add_route(fg_vm, obelix, [wan, nfs])
    network.add_route(web, obelix, [lan, nfs])
    network.add_route(obelix, archive, [archive_lan])

    model = StreamModel(
        session_setup=p.session_setup,
        stream_setup=p.stream_setup,
        ramp_time=p.ramp_time,
        ramp_ref=p.ramp_ref,
    )
    fabric = FlowNetwork(env, network, model)
    GridFTPServer(fabric, fg_vm, version="6.5")
    GridFTPServer(fabric, web)
    GridFTPServer(fabric, obelix)
    gridftp = GridFTPClient(
        fabric,
        rng=rng.stream("gridftp"),
        overhead_jitter=p.overhead_jitter,
        failure_rate=p.failure_rate,
    )

    sites = SiteCatalog()
    sites.add(
        SiteEntry(
            name="isi",
            storage_host="obelix",
            scratch_dir="/nfs/scratch",
            nodes=p.nodes,
            cores_per_node=p.cores_per_node,
        )
    )
    sites.add(SiteEntry(name="isi-web", storage_host="web-isi", scratch_dir="/images"))
    sites.add(SiteEntry(name="futuregrid", storage_host="fg-vm", scratch_dir="/data"))
    sites.add(SiteEntry(name="archive", storage_host="archive-host", scratch_dir="/archive"))

    transformations = montage_transformations()
    for generic in ("gen", "proc", "sink", "split", "join", "process"):
        transformations.add(generic, 2.0, 0.3)
    # Epigenomics-like pipeline tasks
    for name, mean, std in (
        ("fastqSplit", 5.0, 0.8), ("filterContams", 3.0, 0.5),
        ("mapReads", 15.0, 2.0), ("pileup", 4.0, 0.6),
        ("mergeBam", 8.0, 1.0), ("mapMerge", 10.0, 1.5),
    ):
        transformations.add(name, mean, std)
    # CyberShake-like seismic tasks
    for name, mean, std in (
        ("SeismogramSynthesis", 12.0, 2.0), ("PeakValCalc", 1.0, 0.2),
        ("HazardCurveCalc", 20.0, 3.0),
    ):
        transformations.add(name, mean, std)

    host_site = {
        "obelix": "isi",
        "web-isi": "isi-web",
        "fg-vm": "futuregrid",
        "archive-host": "archive",
    }

    return Testbed(
        params=p,
        env=env,
        rng=rng,
        network=network,
        fabric=fabric,
        gridftp=gridftp,
        sites=sites,
        transformations=transformations,
        replicas=ReplicaCatalog(),
        host_site=host_site,
    )


def scaled_params(base: Optional[TestbedParams] = None, **overrides) -> TestbedParams:
    """Convenience: derive a variant of the testbed parameters."""
    return replace(base or TestbedParams(), **overrides)
