"""Chaos experiments: Montage under injected faults.

The robustness claim these runs back: a Montage workflow under policy
management **completes with the same staged file set** whether or not the
Policy Service crashes mid-run — provided the service journals its policy
memory (:mod:`repro.policy.journal`), grants carry leases, and the client
degrades gracefully while the service is away.

:func:`run_chaos_montage` wires the standard experiment testbed with a
journal-backed service, a retrying/circuit-breaking client, and a
:class:`~repro.des.faults.FaultInjector` driving a :class:`FaultPlan`;
:func:`compare_with_faultless` runs the same cell twice — once clean,
once under the plan — and reports whether the staged file sets match.

:func:`run_shard_chaos_montage` is the sharded variant: the cell runs
against an N-shard :class:`~repro.policy.sharding.ShardedPolicyService`
with per-shard journals, and the plan may crash / slow / partition
individual shards (``ShardCrash`` replays the victim from its own WAL
mid-run).  :func:`compare_sharded_with_single` proves the robustness
claim end to end: the sharded run under shard chaos stages the same
byte-identical file set as a clean single-service run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.des.faults import FaultInjector, FaultPlan
from repro.experiments.environment import build_testbed
from repro.experiments.runner import ExperimentConfig, WorkflowExecution
from repro.metrics.collectors import RunMetrics
from repro.policy import (
    CircuitBreaker,
    InProcessPolicyClient,
    PolicyConfig,
    PolicyJournal,
    PolicyService,
    RetryPolicy,
)
from repro.policy.model import CleanupFact, TransferFact
from repro.policy.sharding import ShardedPolicyService
from repro.workflow.montage import MB, MontageConfig, augmented_montage

__all__ = [
    "ChaosResult",
    "run_chaos_montage",
    "compare_with_faultless",
    "run_shard_chaos_montage",
    "compare_sharded_with_single",
]


@dataclass
class ChaosResult:
    """Outcome of one chaos run."""

    metrics: RunMetrics
    #: sorted, de-duplicated (lfn, dst_url) set the transfer tool staged —
    #: the equivalence metric between faulted and clean runs
    staged_files: list[tuple[str, str]] = field(default_factory=list)
    #: what the injector did, as (sim time, description)
    fault_log: list[tuple[float, str]] = field(default_factory=list)
    #: transfers executed policy-free while the service was unreachable
    degraded_transfers: int = 0
    #: ids reaped by the final lease sweep
    reaped: dict = field(default_factory=dict)
    #: in-progress transfer/cleanup facts still in policy memory at the end
    leaked_in_progress: int = 0
    #: transactions replayed / snapshots taken by the journal (0 without one)
    journal_commits: int = 0
    #: requests the shard router served degraded (sharded runs only)
    router_degraded: int = 0
    #: per-shard health descriptors at end of run (sharded runs only)
    shard_health: list = field(default_factory=list)
    #: backlog replay failures during shard recovery (sharded runs only)
    recovery_errors: list = field(default_factory=list)
    #: decision-provenance records the service(s) held at end of run —
    #: degraded grants appear as synthetic policy-free records
    decisions: list = field(default_factory=list)
    #: staged-data catalog census at end of run (None = catalog off) —
    #: the byte-identity witness for crash+replay equivalence
    catalog_census: Optional[dict] = None


def _policy_config(cfg: ExperimentConfig, bed=None) -> PolicyConfig:
    if cfg.policy is None:
        raise ValueError("chaos runs need a policy (cfg.policy is None)")
    catalog = cfg.catalog
    if catalog is not None and not catalog.host_site and bed is not None:
        from dataclasses import replace

        catalog = replace(catalog, host_site=dict(bed.host_site))
    return PolicyConfig(
        policy=cfg.policy,
        default_streams=cfg.default_streams,
        max_streams=cfg.threshold,
        cluster_count=cfg.cluster_factor if cfg.policy == "balanced" else None,
        cluster_threshold=cfg.cluster_threshold,
        order_by=cfg.order_by,
        adaptive=cfg.adaptive,
        lease_seconds=cfg.lease_seconds,
        catalog=catalog,
    )


def _census_of(service) -> Optional[dict]:
    """The service's catalog census, or None when the catalog is off."""
    try:
        return service.catalog_census()
    except (RuntimeError, AttributeError):
        return None


def run_chaos_montage(
    cfg: ExperimentConfig,
    plan: Optional[FaultPlan] = None,
    journal_dir=None,
    retry: Optional[RetryPolicy] = None,
    breaker_threshold: int = 3,
    breaker_reset: float = 60.0,
    tracer=None,
    metrics=None,
    profiler=None,
) -> ChaosResult:
    """Run the augmented-Montage cell under a fault plan.

    With ``journal_dir`` set, the service journals every mutation there
    and each :class:`~repro.des.faults.ServiceOutage` ends with
    ``PolicyService.recover`` from that directory — a true crash+restart.
    Without it, outages model a hang (same process resumes).  ``tracer``
    observes the run including the injector's ``fault``-track events.
    """
    workflow = augmented_montage(
        cfg.extra_file_mb * MB,
        MontageConfig(n_images=cfg.n_images, name=f"montage-{cfg.n_images}img"),
    )
    bed = build_testbed(cfg.testbed, seed=cfg.seed, tracer=tracer)
    pconfig = _policy_config(cfg, bed)
    clock = lambda: bed.env.now  # noqa: E731 - tiny closure over the sim clock
    journal = PolicyJournal(journal_dir) if journal_dir is not None else None
    service = PolicyService(
        pconfig, clock=clock, engine=cfg.engine, journal=journal,
        metrics=metrics, tracer=tracer, profiler=profiler,
    )
    client = InProcessPolicyClient(
        service,
        bed.env,
        latency=cfg.testbed.policy_latency,
        retry=retry or RetryPolicy(retries=2, base_delay=1.0, max_delay=30.0),
        breaker=CircuitBreaker(
            failure_threshold=breaker_threshold,
            reset_timeout=breaker_reset,
            clock=clock,
        ),
        rng=bed.rng.stream("policy-retry"),
    )

    plan = plan or FaultPlan()
    injector = FaultInjector(bed.env, plan, rng=bed.rng.stream("faults"))
    restart = None
    if journal_dir is not None:
        def restart():
            return PolicyService.recover(
                journal_dir, config=pconfig, clock=clock, engine=cfg.engine,
                metrics=metrics, tracer=tracer, profiler=profiler,
            )
    injector.attach_policy(client, restart=restart)
    injector.attach_gridftp(bed.gridftp)

    execution = WorkflowExecution(cfg, workflow, bed, client)
    injector.start()
    process = execution.start()
    bed.env.run(until=process)
    metrics = execution.metrics()

    # Post-run hygiene: one unthrottled sweep past every possible lease
    # deadline retires grants orphaned by crashes and dropped reports.
    live_service = client.service
    horizon = bed.env.now + (cfg.lease_seconds or 0.0) + 1.0
    reaped = (
        live_service.reap_expired(horizon)
        if cfg.lease_seconds is not None
        else {"transfers": [], "cleanups": []}
    )
    leaked = sum(
        1
        for fact_type in (TransferFact, CleanupFact)
        for f in live_service.memory.facts_of(fact_type)
        if f.status == "in_progress"
    )
    return ChaosResult(
        metrics=metrics,
        staged_files=sorted(set(execution.ptt.staged_log)),
        fault_log=list(injector.log),
        degraded_transfers=sum(r.degraded for r in execution.ptt.records),
        reaped=reaped,
        leaked_in_progress=leaked,
        journal_commits=journal.commits if journal is not None else 0,
        decisions=live_service.decision_records(),
        catalog_census=_census_of(live_service),
    )


def run_shard_chaos_montage(
    cfg: ExperimentConfig,
    plan: Optional[FaultPlan] = None,
    num_shards: int = 2,
    journal_root=None,
    breaker_threshold: int = 3,
    breaker_reset: float = 60.0,
    tracer=None,
    metrics=None,
) -> ChaosResult:
    """Run the augmented-Montage cell against a sharded policy fleet.

    Shard *i* journals under ``<journal_root>/shard-i``; a
    :class:`~repro.des.faults.ShardCrash` in ``plan`` destroys that
    shard's working memory mid-run and replays it from its own
    WAL/snapshot while every other shard serves uninterrupted.  The
    returned :class:`ChaosResult` carries the same staged-set /
    leaked-grant evidence as the single-service runs plus the router's
    degraded-request count and final shard health.
    """
    workflow = augmented_montage(
        cfg.extra_file_mb * MB,
        MontageConfig(n_images=cfg.n_images, name=f"montage-{cfg.n_images}img"),
    )
    bed = build_testbed(cfg.testbed, seed=cfg.seed, tracer=tracer)
    pconfig = _policy_config(cfg, bed)
    clock = lambda: bed.env.now  # noqa: E731 - tiny closure over the sim clock
    router = ShardedPolicyService(
        pconfig,
        num_shards=num_shards,
        engine=cfg.engine,
        clock=clock,
        journal_root=journal_root,
        metrics=metrics,
        tracer=tracer,
        breaker_threshold=breaker_threshold,
        breaker_reset=breaker_reset,
    )
    client = InProcessPolicyClient(
        router, bed.env, latency=cfg.testbed.policy_latency
    )

    plan = plan or FaultPlan()
    injector = FaultInjector(bed.env, plan, rng=bed.rng.stream("faults"))
    injector.attach_policy(client)
    injector.attach_gridftp(bed.gridftp)
    injector.attach_router(router)

    execution = WorkflowExecution(cfg, workflow, bed, client)
    injector.start()
    process = execution.start()
    bed.env.run(until=process)
    run_metrics = execution.metrics()

    # Post-run hygiene, fleet-wide: reap any grant orphaned by degraded
    # advice or lost completion reports past every possible deadline.
    horizon = bed.env.now + (cfg.lease_seconds or 0.0) + 1.0
    reaped = (
        router.reap_expired(horizon)
        if cfg.lease_seconds is not None
        else {"transfers": [], "cleanups": []}
    )
    leaked = sum(
        1
        for fact_type in (TransferFact, CleanupFact)
        for f in router.memory.facts_of(fact_type)
        if f.status == "in_progress"
    )
    degraded = sum(
        int(value)
        for (_name, _suffix, value) in router._m_degraded.samples()
    )
    return ChaosResult(
        metrics=run_metrics,
        staged_files=sorted(set(execution.ptt.staged_log)),
        fault_log=list(injector.log),
        degraded_transfers=sum(r.degraded for r in execution.ptt.records),
        reaped=reaped,
        leaked_in_progress=leaked,
        journal_commits=sum(
            handle.backend.service.journal.commits
            for handle in router.shards
            if getattr(handle.backend, "service", None) is not None
            and handle.backend.service.journal is not None
        ),
        router_degraded=degraded,
        shard_health=router.shard_health(),
        recovery_errors=list(router.recovery_errors),
        decisions=router.decision_records(),
        catalog_census=_census_of(router),
    )


def compare_sharded_with_single(
    cfg: ExperimentConfig,
    plan: FaultPlan,
    num_shards: int = 2,
    journal_root=None,
    **kwargs,
) -> dict:
    """Clean single-service run vs sharded run under shard chaos.

    The acceptance check for the sharded fleet: byte-identical staged
    sets and zero leaked in-progress grants even when a shard crashes
    and replays mid-run.
    """
    clean = run_chaos_montage(cfg, plan=None, journal_dir=None)
    chaotic = run_shard_chaos_montage(
        cfg, plan=plan, num_shards=num_shards, journal_root=journal_root,
        **kwargs,
    )
    return {
        "clean": clean,
        "chaotic": chaotic,
        "staged_sets_equal": clean.staged_files == chaotic.staged_files,
        "both_succeeded": clean.metrics.success and chaotic.metrics.success,
        "leaked_in_progress": chaotic.leaked_in_progress,
    }


def compare_with_faultless(
    cfg: ExperimentConfig,
    plan: FaultPlan,
    journal_dir=None,
    **kwargs,
) -> dict:
    """Run the cell clean and under ``plan``; compare staged file sets."""
    clean = run_chaos_montage(cfg, plan=None, journal_dir=None, **kwargs)
    chaotic = run_chaos_montage(cfg, plan=plan, journal_dir=journal_dir, **kwargs)
    return {
        "clean": clean,
        "chaotic": chaotic,
        "staged_sets_equal": clean.staged_files == chaotic.staged_files,
        "both_succeeded": clean.metrics.success and chaotic.metrics.success,
    }
