"""Traced experiment runs: one call, a full set of trace artifacts.

:func:`run_traced_cell` is :func:`~repro.experiments.runner.run_cell`
with the observability stack attached: a :class:`~repro.obs.Tracer`
bound to the DES clock, a shared :class:`~repro.obs.MetricsRegistry`,
and a :class:`~repro.obs.RuleProfiler` on every rule session.  The
returned :class:`TracedRun` holds the live objects and writes the
standard artifact set:

========================  ==================================================
``trace.json``            Chrome ``trace_event`` JSON — open in Perfetto
                          (https://ui.perfetto.dev) or ``chrome://tracing``
``events.jsonl``          canonical JSONL event log, byte-identical across
                          runs with the same seed and configuration
``metrics.prom``          Prometheus text exposition of the registry
``rule_profile.txt``      per-rule activation/fire/elapsed report
``provenance.json``       provenance document with a ``trace`` summary
``decisions.jsonl``       decision-provenance records, one canonical JSON
                          object per line, cross-referenced to the Chrome
                          trace by span sequence (``meta.span_seq``)
========================  ==================================================

Because trace events carry only simulation-derived data (wall-clock
timings live in the registry and profiler), ``events.jsonl`` is a
deterministic function of (workflow, config, seed) — including across
``engine="seed"`` and ``engine="indexed"``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.experiments.environment import build_testbed
from repro.experiments.runner import (
    EnsembleResult,
    ExperimentConfig,
    WorkflowExecution,
    build_policy_client,
    run_tenant_ensemble,
)
from repro.metrics.collectors import RunMetrics
from repro.metrics.provenance import run_provenance
from repro.obs import (
    MetricsRegistry,
    RuleProfiler,
    Tracer,
    jsonl_lines,
    write_chrome_trace,
    write_decisions,
    write_jsonl,
    write_prometheus,
    write_rule_profile,
)
from repro.policy.provenance import link_decisions_to_trace
from repro.planner.planner import fresh_plan_ids
from repro.workflow.dag import Workflow
from repro.workflow.montage import MB, MontageConfig, augmented_montage

__all__ = [
    "TracedEnsemble",
    "TracedRun",
    "run_traced_cell",
    "run_traced_chaos",
    "run_traced_ensemble",
    "run_traced_workflow",
]


def _write_artifact_set(
    tracer, registry, profiler, provenance, outdir, decisions=(),
    catalog_census=None,
) -> dict[str, str]:
    """Write the standard artifact set; returns {artifact: path}."""
    out = Path(outdir)
    out.mkdir(parents=True, exist_ok=True)
    paths = {
        "trace.json": out / "trace.json",
        "events.jsonl": out / "events.jsonl",
        "metrics.prom": out / "metrics.prom",
        "rule_profile.txt": out / "rule_profile.txt",
        "provenance.json": out / "provenance.json",
        "decisions.jsonl": out / "decisions.jsonl",
    }
    write_chrome_trace(tracer, paths["trace.json"])
    write_jsonl(tracer, paths["events.jsonl"])
    write_prometheus(registry, paths["metrics.prom"])
    write_rule_profile(profiler, paths["rule_profile.txt"])
    paths["provenance.json"].write_text(
        json.dumps(provenance, indent=2, sort_keys=True, default=repr) + "\n"
    )
    write_decisions(list(decisions), paths["decisions.jsonl"])
    if catalog_census is not None:
        # Canonical JSON (sorted keys, no indent-dependent whitespace
        # inside values): equal catalogs produce byte-equal artifacts.
        paths["catalog_census.json"] = out / "catalog_census.json"
        paths["catalog_census.json"].write_text(
            json.dumps(catalog_census, indent=2, sort_keys=True) + "\n"
        )
    return {name: str(path) for name, path in paths.items()}


@dataclass
class TracedRun:
    """A finished run plus the live observability objects."""

    metrics: RunMetrics
    tracer: Tracer
    registry: MetricsRegistry
    profiler: RuleProfiler
    provenance: dict
    #: decision-provenance records, span-linked to the trace
    decisions: list = field(default_factory=list)
    #: staged-data catalog census at end of run (None = catalog off)
    catalog_census: Optional[dict] = None

    def jsonl(self) -> list[str]:
        """The canonical JSONL event lines (deterministic per seed)."""
        return jsonl_lines(self.tracer)

    def write_artifacts(self, outdir) -> dict[str, str]:
        """Write the standard artifact set; returns {artifact: path}."""
        return _write_artifact_set(
            self.tracer, self.registry, self.profiler, self.provenance, outdir,
            decisions=self.decisions, catalog_census=self.catalog_census,
        )


def run_traced_workflow(
    cfg: ExperimentConfig,
    workflow: Workflow,
    tracer: Optional[Tracer] = None,
) -> TracedRun:
    """Plan + execute one workflow with the observability stack attached."""
    tracer = tracer if tracer is not None else Tracer()
    registry = MetricsRegistry()
    profiler = RuleProfiler()
    bed = build_testbed(cfg.testbed, seed=cfg.seed, tracer=tracer)
    policy = build_policy_client(cfg, bed, metrics=registry, profiler=profiler)
    # Workflow ids carry a process-global plan sequence; restart it so the
    # event stream is identical no matter what was planned before.
    with fresh_plan_ids():
        execution = WorkflowExecution(cfg, workflow, bed, policy)
        process = execution.start()
        bed.env.run(until=process)
    metrics = execution.metrics()
    provenance = run_provenance(
        metrics, result=execution.result, config=cfg, tracer=tracer,
        frontend="in-process",
    )
    decisions = link_decisions_to_trace(
        policy.service.decision_records(), tracer
    )
    catalog_census = None
    if policy is not None:
        try:
            catalog_census = policy.service.catalog_census()
        except (RuntimeError, AttributeError):
            catalog_census = None
    return TracedRun(
        metrics=metrics,
        tracer=tracer,
        registry=registry,
        profiler=profiler,
        provenance=provenance,
        decisions=decisions,
        catalog_census=catalog_census,
    )


@dataclass
class TracedEnsemble:
    """A finished multi-tenant ensemble plus the observability objects."""

    result: EnsembleResult
    tracer: Tracer
    registry: MetricsRegistry
    profiler: RuleProfiler
    provenance: dict
    #: decision-provenance records, span-linked to the trace
    decisions: list = field(default_factory=list)
    #: staged-data catalog census at end of run (None = catalog off)
    catalog_census: Optional[dict] = None

    def jsonl(self) -> list[str]:
        """The canonical JSONL event lines (deterministic per seed)."""
        return jsonl_lines(self.tracer)

    def write_artifacts(self, outdir) -> dict[str, str]:
        """Write the standard artifact set; returns {artifact: path}."""
        return _write_artifact_set(
            self.tracer, self.registry, self.profiler, self.provenance, outdir,
            decisions=self.decisions, catalog_census=self.catalog_census,
        )


def run_traced_ensemble(
    cfg: ExperimentConfig,
    tenants,
    submissions,
    admission=None,
    scheduler: str = "fair",
    initial_charges: Optional[dict] = None,
) -> TracedEnsemble:
    """Run a tenant ensemble with the observability stack attached.

    The trace gains the ``tenant`` category (submit/admit/reject
    instants, per-workflow ``tenant.run`` spans, queue counters) next to
    the usual staging and rule spans; ``events.jsonl`` stays a
    deterministic function of (workflows, config, seed).
    """
    tracer = Tracer()
    registry = MetricsRegistry()
    profiler = RuleProfiler()
    with fresh_plan_ids():
        result = run_tenant_ensemble(
            cfg,
            tenants,
            submissions,
            admission=admission,
            scheduler=scheduler,
            initial_charges=initial_charges,
            tracer=tracer,
            metrics=registry,
            profiler=profiler,
        )
    provenance = {
        "kind": "tenant-ensemble",
        "scheduler": scheduler,
        "config": {
            "extra_file_mb": cfg.extra_file_mb,
            "default_streams": cfg.default_streams,
            "policy": cfg.policy,
            "threshold": cfg.threshold,
            "engine": cfg.engine,
            "seed": cfg.seed,
        },
        "admission_order": list(result.admission_order),
        "completed_order": list(result.completed_order),
        "rejected": [list(r) for r in result.rejected],
        "tenant_bytes": dict(sorted(result.tenant_bytes.items())),
        "tenant_shares": dict(sorted(result.tenant_shares.items())),
        "workflows": [m.workflow_id for m in result.metrics],
        "trace": tracer.summary(),
    }
    return TracedEnsemble(
        result=result,
        tracer=tracer,
        registry=registry,
        profiler=profiler,
        provenance=provenance,
        decisions=link_decisions_to_trace(list(result.decisions), tracer),
        catalog_census=result.catalog_census,
    )


def run_traced_cell(cfg: ExperimentConfig) -> TracedRun:
    """Run the augmented-Montage cell for ``cfg`` with tracing on."""
    workflow = augmented_montage(
        cfg.extra_file_mb * MB,
        MontageConfig(n_images=cfg.n_images, name=f"montage-{cfg.n_images}img"),
    )
    return run_traced_workflow(cfg, workflow)


def run_traced_chaos(cfg: ExperimentConfig, plan=None, journal_dir=None) -> TracedRun:
    """Run the chaos-Montage cell (mid-run service outage) with tracing on.

    The trace gains a ``fault`` track marking outage/drop/storm windows
    alongside the spans they perturb.  Without an explicit ``plan``, a
    single 30 s service outage hits 60 s into the run.
    """
    from repro.des.faults import FaultPlan
    from repro.experiments.chaos import run_chaos_montage

    tracer = Tracer()
    registry = MetricsRegistry()
    profiler = RuleProfiler()
    plan = plan if plan is not None else FaultPlan.single_crash(at=60.0, duration=30.0)
    with fresh_plan_ids():
        result = run_chaos_montage(
            cfg, plan=plan, journal_dir=journal_dir,
            tracer=tracer, metrics=registry, profiler=profiler,
        )
    provenance = run_provenance(
        result.metrics, config=cfg, tracer=tracer, frontend="in-process"
    )
    provenance["fault_log"] = [[t, what] for t, what in result.fault_log]
    return TracedRun(
        metrics=result.metrics,
        tracer=tracer,
        registry=registry,
        profiler=profiler,
        provenance=provenance,
        decisions=link_decisions_to_trace(list(result.decisions), tracer),
        catalog_census=result.catalog_census,
    )
