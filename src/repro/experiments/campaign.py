"""Steady-state staging campaigns.

A *campaign* is a long sequence of large transfers executed by a fixed
pool of staging workers — the "emerging big data applications that will
stage increasing amounts of data" the paper motivates with, without a
compute DAG around it.  Unlike the wave-synchronized Montage staging
phase, a campaign applies steady load to the WAN, which is the setting
where the runtime-adaptive threshold controller has a clean throughput
signal to learn from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.experiments.environment import Testbed, TestbedParams, build_testbed
from repro.policy import InProcessPolicyClient, PolicyConfig, PolicyService

__all__ = ["CampaignConfig", "CampaignResult", "run_staging_campaign"]

MB = 1_000_000


@dataclass(frozen=True)
class CampaignConfig:
    """A staging campaign: ``n_transfers`` files of ``transfer_mb`` MB moved
    from the remote site by ``workers`` concurrent staging workers."""

    n_transfers: int = 200
    transfer_mb: float = 200.0
    workers: int = 20
    default_streams: int = 8
    policy: Optional[str] = "greedy"
    threshold: int = 50
    adaptive: bool = False
    seed: int = 0
    testbed: TestbedParams = TestbedParams()

    def __post_init__(self) -> None:
        if self.n_transfers < 1 or self.workers < 1:
            raise ValueError("n_transfers and workers must be >= 1")
        if self.transfer_mb <= 0:
            raise ValueError("transfer_mb must be positive")


@dataclass
class CampaignResult:
    """Outcome of a campaign run."""

    duration: float
    bytes_moved: float
    transfers_done: int
    peak_streams: int
    threshold_history: list[tuple[float, int, float]]
    final_threshold: Optional[int]

    @property
    def aggregate_throughput(self) -> float:
        return self.bytes_moved / self.duration if self.duration > 0 else 0.0


def run_staging_campaign(cfg: CampaignConfig, bed: Optional[Testbed] = None) -> CampaignResult:
    """Run a campaign; returns aggregate results + the adaptation trace."""
    bed = bed or build_testbed(cfg.testbed, seed=cfg.seed)
    env = bed.env

    policy_client: Optional[InProcessPolicyClient] = None
    if cfg.policy is not None:
        service = PolicyService(
            PolicyConfig(
                policy=cfg.policy,
                default_streams=cfg.default_streams,
                max_streams=cfg.threshold,
                adaptive=cfg.adaptive,
            ),
            clock=lambda: env.now,
        )
        policy_client = InProcessPolicyClient(
            service, env, latency=cfg.testbed.policy_latency
        )

    nbytes = cfg.transfer_mb * MB
    queue = list(range(cfg.n_transfers))
    done_count = [0]

    def worker(worker_id: int):
        while queue:
            index = queue.pop(0)
            lfn = f"campaign_{index:05d}.dat"
            src = f"gsiftp://fg-vm/data/{lfn}"
            dst = f"gsiftp://obelix/nfs/scratch/{lfn}"
            if policy_client is None:
                yield from bed.gridftp.transfer(src, dst, nbytes, cfg.default_streams)
            else:
                advice = yield from policy_client.submit_transfers(
                    f"campaign-w{worker_id}",
                    f"transfer_{index}",
                    [{"lfn": lfn, "src_url": src, "dst_url": dst,
                      "nbytes": nbytes, "streams": cfg.default_streams}],
                )
                for item in advice:
                    if item.action != "transfer":  # pragma: no cover
                        continue
                    yield from bed.gridftp.transfer(
                        item.src_url, item.dst_url, item.nbytes, item.streams
                    )
                    yield from policy_client.complete_transfers(done=[item.tid])
            done_count[0] += 1

    processes = [
        env.process(worker(i), name=f"campaign-worker-{i}")
        for i in range(cfg.workers)
    ]
    env.run(until=env.all_of(processes))

    history: list[tuple[float, int, float]] = []
    final_threshold: Optional[int] = None
    if policy_client is not None and policy_client.service.adaptive is not None:
        controller = policy_client.service.adaptive
        history = controller.history("fg-vm", "obelix")
        final_threshold = controller.threshold_for("fg-vm", "obelix", env.now)

    return CampaignResult(
        duration=env.now,
        bytes_moved=bed.fabric.bytes_moved,
        transfers_done=done_count[0],
        peak_streams=bed.fabric.peak_streams.get("wan", 0),
        threshold_history=history,
        final_threshold=final_threshold,
    )
