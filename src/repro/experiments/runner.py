"""Run experiment cells: workflows under one policy configuration.

A *cell* is a point on one of the paper's figures: (extra-file size,
default streams per transfer, policy on/off, greedy threshold).  The
runner wires the testbed, plans the augmented Montage workflow with the
paper's Pegasus options (no clustering, cleanup on, job limit 20, five
retries), executes it, and reports :class:`RunMetrics`.

:class:`WorkflowExecution` is the reusable unit: several executions can
share one testbed and one policy service, which is how the multi-workflow
experiments (cross-workflow de-duplication, shared staged files, cleanup
protection) are run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from repro.datacatalog.model import CatalogConfig
from repro.engine import CleanupTool, ClusterScheduler, DAGMan, PegasusTransferTool, StorageTracker
from repro.experiments.environment import Testbed, TestbedParams, build_testbed
from repro.metrics.collectors import RunMetrics
from repro.planner import JobKind, Planner, PlanOptions
from repro.policy import (
    InProcessPolicyClient,
    PolicyConfig,
    PolicyService,
    ShardedPolicyService,
)
from repro.workflow.dag import Workflow
from repro.workflow.montage import MB, MontageConfig, augmented_montage

__all__ = [
    "EnsembleResult",
    "ExperimentConfig",
    "WorkflowExecution",
    "run_cell",
    "run_replicates",
    "run_workflow",
    "run_concurrent_workflows",
    "run_ensemble",
    "run_tenant_ensemble",
]


@dataclass(frozen=True)
class ExperimentConfig:
    """One experiment cell (defaults = the paper's Pegasus configuration)."""

    extra_file_mb: float = 100.0
    default_streams: int = 4
    policy: Optional[str] = "greedy"      # None = default Pegasus (no policy)
    threshold: int = 50
    cluster_factor: Optional[int] = None  # paper: no clustering
    cluster_threshold: Optional[int] = None
    priority_algorithm: Optional[str] = None
    order_by: str = "urls"
    job_limit: int = 20                   # paper: local job limit of 20
    retries: int = 5                      # paper: five retries per job
    cleanup: bool = True                  # paper: cleanup enabled
    cluster_scope: str = "job"            # balanced cluster identity
    adaptive: bool = False                # runtime threshold adaptation
    remote_inputs: bool = False           # place ALL inputs on the remote VM
    max_staging_bytes: Optional[float] = None  # storage-constrained staging
    output_site: Optional[str] = None     # stage final outputs to this site
    lease_seconds: Optional[float] = None # grant leases (None = no leasing)
    catalog: Optional[CatalogConfig] = None  # staged-data catalog (None = off)
    retry_backoff: float = 0.0            # base delay between job retries
    n_images: int = 89                    # paper: 89 data staging jobs
    engine: str = "indexed"               # rule engine: "indexed" or "seed"
    shards: int = 0                       # 0 = single service, N >= 1 = sharded router
    journal_root: Optional[str] = None    # per-shard journals under this dir
    seed: int = 0
    testbed: TestbedParams = field(default_factory=TestbedParams)

    def with_seed(self, seed: int) -> "ExperimentConfig":
        return replace(self, seed=seed)


def build_policy_client(
    cfg: ExperimentConfig,
    bed: Testbed,
    metrics=None,
    profiler=None,
) -> Optional[InProcessPolicyClient]:
    """The in-simulation policy client for a cell (None when policy off).

    The service inherits the testbed's tracer (``bed.env.tracer``) plus
    an optional shared :class:`~repro.obs.MetricsRegistry` and
    :class:`~repro.obs.RuleProfiler`.
    """
    if cfg.policy is None:
        return None
    catalog = cfg.catalog
    if catalog is not None and not catalog.host_site:
        # Inherit the testbed's host->site map so the catalog places
        # replica URLs at the same sites the simulator does.
        catalog = replace(catalog, host_site=dict(bed.host_site))
    policy_config = PolicyConfig(
        policy=cfg.policy,
        default_streams=cfg.default_streams,
        max_streams=cfg.threshold,
        cluster_count=cfg.cluster_factor if cfg.policy == "balanced" else None,
        cluster_threshold=cfg.cluster_threshold,
        order_by=cfg.order_by,
        adaptive=cfg.adaptive,
        lease_seconds=cfg.lease_seconds,
        catalog=catalog,
    )
    if cfg.shards >= 1:
        service = ShardedPolicyService(
            policy_config,
            num_shards=cfg.shards,
            engine=cfg.engine,
            clock=lambda: bed.env.now,
            journal_root=cfg.journal_root,
            metrics=metrics,
            tracer=bed.env.tracer,
            profiler=profiler,
        )
    else:
        service = PolicyService(
            policy_config,
            clock=lambda: bed.env.now,
            engine=cfg.engine,
            metrics=metrics,
            tracer=bed.env.tracer,
            profiler=profiler,
        )
    return InProcessPolicyClient(service, bed.env, latency=cfg.testbed.policy_latency)


class WorkflowExecution:
    """One planned workflow wired to a testbed, ready to execute.

    Several executions may share a testbed (same fabric/clock) and a
    policy client (same policy memory) — the multi-workflow setting of
    the paper.

    ``policy`` may also be a zero-argument *factory*: the client is then
    built when the execution starts, so a queued ensemble member holds
    no policy client (or its journal state) while it waits for a slot.
    """

    def __init__(
        self,
        cfg: ExperimentConfig,
        workflow: Workflow,
        bed: Testbed,
        policy=None,
    ):
        self.cfg = cfg
        self.bed = bed
        self._policy_factory = policy if callable(policy) else None
        self.policy: Optional[InProcessPolicyClient] = (
            None if self._policy_factory is not None else policy
        )
        bed.register_workflow_inputs(workflow, remote_all=cfg.remote_inputs)

        planner = Planner(bed.sites, bed.transformations, bed.replicas)
        self.plan = planner.plan(
            workflow,
            "isi",
            PlanOptions(
                cleanup=cfg.cleanup,
                cluster_factor=cfg.cluster_factor,
                priority_algorithm=cfg.priority_algorithm,
                max_staging_bytes=cfg.max_staging_bytes,
                output_site=cfg.output_site,
            ),
        )
        if self.policy is not None:
            self._register_priorities()

        self.scheduler = ClusterScheduler(
            bed.env, bed.sites.get("isi").slots, submit_overhead=cfg.testbed.submit_overhead
        )
        self.storage = StorageTracker(
            bed.env, site="isi", capacity=cfg.testbed.scratch_capacity
        )
        self.ptt = PegasusTransferTool(
            bed.gridftp,
            policy=self.policy,
            default_streams=cfg.default_streams,
            replicas=bed.replicas,
            host_site=bed.host_site,
            cluster_scope=cfg.cluster_scope,
            storage=self.storage,
        )
        self.cleaner = CleanupTool(
            bed.env,
            policy=self.policy,
            replicas=bed.replicas,
            host_site=bed.host_site,
            storage=self.storage,
        )
        # Keyed by workflow *name* (not the globally-counted plan id) so a
        # given seed reproduces identical runtimes across process lifetimes.
        compute_rng = bed.rng.stream(f"compute:{self.plan.name}")

        def run_compute(workflow_id: str, job):
            runtime = bed.transformations.get(job.transform).sample(compute_rng)
            yield from self.scheduler.run_job(runtime, priority=job.priority)
            for lfn, nbytes in job.output_files:
                self.storage.add(lfn, nbytes)

        def run_staging(workflow_id: str, job):
            yield from self.ptt.execute(workflow_id, job)

        def run_cleanup(workflow_id: str, job):
            yield from self.cleaner.execute(workflow_id, job)

        self.dagman = DAGMan(
            bed.env,
            self.plan,
            runners={
                JobKind.COMPUTE: run_compute,
                JobKind.STAGE_IN: run_staging,
                JobKind.STAGE_OUT: run_staging,
                JobKind.CLEANUP: run_cleanup,
            },
            throttles={JobKind.STAGE_IN: cfg.job_limit},
            retries=cfg.retries,
            retry_backoff=cfg.retry_backoff,
            rng=bed.rng.stream(f"retry:{self.plan.name}"),
        )
        self.result = None

    def _register_priorities(self) -> None:
        if self.cfg.priority_algorithm is None:
            return
        priorities = {
            job.id: job.priority for job in self.plan.jobs.values() if job.priority
        }
        self.policy.service.register_priorities(self.plan.workflow_id, priorities)

    def attach_policy(self, client: Optional[InProcessPolicyClient]) -> None:
        """Wire a (lazily built) policy client into the staging tools."""
        self.policy = client
        self.ptt.policy = client
        self.cleaner.policy = client
        if client is not None:
            self._register_priorities()

    def start(self, delay: float = 0.0):
        """Launch the run as a DES process; returns the process event."""
        def driver():
            if delay > 0:
                yield self.bed.env.timeout(delay)
            if self._policy_factory is not None and self.policy is None:
                self.attach_policy(self._policy_factory())
            self.result = yield self.bed.env.process(
                self.dagman.run(), name=f"dagman-{self.plan.workflow_id}"
            )
            if self.policy is not None:
                # Deliver completion reports / degraded staging the service
                # missed while unreachable (best effort — lease reaping
                # covers whatever still cannot be delivered).
                yield from self.ptt.finalize(self.plan.workflow_id)
                # Without cleanup the staged files stay on disk for later
                # ensemble members to share; keep tracking them.
                self.policy.service.unregister_workflow(
                    self.plan.workflow_id, retain_staged=not self.cfg.cleanup
                )
            return self.result

        return self.bed.env.process(driver(), name=f"exec-{self.plan.workflow_id}")

    def metrics(self) -> RunMetrics:
        """Collect metrics (after the run's process completed)."""
        if self.result is None:
            raise RuntimeError("execution has not finished")
        result, ptt, policy = self.result, self.ptt, self.policy
        self.storage.finish()
        stage_records = list(ptt.records)
        staging_time = (
            max(r.t_end for r in stage_records) - min(r.t_start for r in stage_records)
            if stage_records
            else 0.0
        )
        compute_records = result.by_kind(JobKind.COMPUTE)
        return RunMetrics(
            workflow_id=self.plan.workflow_id,
            success=result.success,
            makespan=result.makespan,
            staging_time=staging_time,
            compute_time=sum(r.duration for r in compute_records),
            bytes_staged=sum(r.bytes_moved for r in stage_records),
            transfers_executed=sum(r.executed for r in stage_records),
            transfers_skipped=sum(r.skipped for r in stage_records),
            transfers_waited=sum(r.waited for r in stage_records),
            peak_streams=dict(self.bed.fabric.peak_streams),
            stream_grants=[
                s
                for r in sorted(stage_records, key=lambda r: r.t_start)
                for s in r.streams_used
            ],
            policy_calls=policy.calls if policy else 0,
            policy_overhead=policy.time_in_calls if policy else 0.0,
            policy_stats=dict(policy.service.stats) if policy else {},
            job_durations={
                kind.value: [r.duration for r in result.by_kind(kind)]
                for kind in JobKind
            },
            peak_footprint=self.storage.peak,
            final_footprint=self.storage.used,
            over_capacity_time=self.storage.over_capacity_time,
        )


def run_workflow(
    cfg: ExperimentConfig,
    workflow: Workflow,
    bed: Optional[Testbed] = None,
    policy_client: Optional[InProcessPolicyClient] = None,
) -> RunMetrics:
    """Plan + execute one workflow; fresh testbed/policy unless provided."""
    bed = bed or build_testbed(cfg.testbed, seed=cfg.seed)
    policy = policy_client if policy_client is not None else build_policy_client(cfg, bed)
    execution = WorkflowExecution(cfg, workflow, bed, policy)
    process = execution.start()
    bed.env.run(until=process)
    return execution.metrics()


def run_concurrent_workflows(
    cfg: ExperimentConfig,
    workflows: Sequence[Workflow],
    stagger: float = 0.0,
    share_policy: bool = True,
) -> list[RunMetrics]:
    """Run several workflows concurrently on one testbed.

    With ``share_policy`` they all consult one Policy Service instance —
    the setting in which cross-workflow de-duplication and cleanup
    protection matter.  ``stagger`` delays each workflow's start by its
    index times that many seconds.
    """
    bed = build_testbed(cfg.testbed, seed=cfg.seed)
    shared = build_policy_client(cfg, bed) if share_policy else None
    executions = []
    processes = []
    for idx, workflow in enumerate(workflows):
        policy = shared if share_policy else build_policy_client(cfg, bed)
        execution = WorkflowExecution(cfg, workflow, bed, policy)
        executions.append(execution)
        processes.append(execution.start(delay=idx * stagger))
    done = bed.env.all_of(processes)
    bed.env.run(until=done)
    return [execution.metrics() for execution in executions]


def run_cell(cfg: ExperimentConfig) -> RunMetrics:
    """Run the paper's augmented Montage workload for one cell."""
    workflow = augmented_montage(
        cfg.extra_file_mb * MB,
        MontageConfig(n_images=cfg.n_images, name=f"montage-{cfg.n_images}img"),
    )
    return run_workflow(cfg, workflow)


def run_replicates(cfg: ExperimentConfig, replicates: int = 3) -> list[RunMetrics]:
    """Run a cell several times with distinct seeds (paper: >= 5 runs)."""
    if replicates < 1:
        raise ValueError("replicates must be >= 1")
    return [run_cell(cfg.with_seed(cfg.seed * 1000 + i)) for i in range(replicates)]


@dataclass
class EnsembleResult:
    """What a tenant-aware ensemble run produced.

    ``metrics`` is in submission order (rejected submissions excluded);
    ``admission_order`` is the determinism witness — the same seed must
    reproduce it byte-identically, including after a crash + journal
    recovery (seed the scheduler with the recovered byte ledgers).
    """

    metrics: list[RunMetrics]
    admission_order: list[str]
    completed_order: list[str]
    rejected: list[tuple[str, str, str]]
    tenant_of: dict[str, str]
    tenant_bytes: dict[str, float]
    tenant_shares: dict[str, float]
    #: decision-provenance records from the shared policy service
    #: (empty without ``share_policy``)
    decisions: list = field(default_factory=list)
    #: staged-data catalog census of the shared policy service at end of
    #: run (None when the catalog — or ``share_policy`` — is off)
    catalog_census: Optional[dict] = None


def run_tenant_ensemble(
    cfg: ExperimentConfig,
    tenants: Sequence,
    submissions: Sequence[tuple[str, Workflow]],
    admission: Optional["AdmissionConfig"] = None,
    scheduler: str = "fair",
    share_policy: bool = True,
    initial_charges: Optional[dict[str, float]] = None,
    tracer=None,
    metrics=None,
    profiler=None,
) -> EnsembleResult:
    """Run a multi-tenant ensemble against one testbed and Policy Service.

    ``tenants`` is a sequence of :class:`~repro.tenancy.TenantSpec` (or
    keyword dicts); ``submissions`` pairs each workflow with its owning
    tenant.  All workflows are planned up front (so plan ids and replica
    decisions depend only on submission order), but each policy client is
    built lazily when the admission controller grants a slot, and with
    ``share_policy`` every workflow is bound to its tenant on the shared
    service so the fair-share rules can meter aggregate stream budgets.

    ``initial_charges`` seeds the scheduler's per-tenant byte ledgers —
    pass a recovered service's ``bytes_staged`` census to reproduce the
    admission decisions an uninterrupted run would have made.
    """
    from repro.tenancy import (
        AdmissionConfig,
        AdmissionController,
        TenantRegistry,
        TenantSpec,
        make_scheduler,
    )

    admission = admission or AdmissionConfig()
    registry = TenantRegistry()
    for spec in tenants:
        registry.register(spec if isinstance(spec, TenantSpec) else TenantSpec(**spec))

    bed = build_testbed(cfg.testbed, seed=cfg.seed, tracer=tracer)
    shared = (
        build_policy_client(cfg, bed, metrics=metrics, profiler=profiler)
        if share_policy
        else None
    )
    if shared is not None:
        for spec in registry:
            shared.service.register_tenant(
                spec.tenant,
                weight=spec.weight,
                priority_class=spec.priority_class,
                max_bytes=spec.max_bytes,
                max_streams=spec.max_streams,
                max_concurrent=spec.max_concurrent,
            )

    sched = make_scheduler(scheduler, registry)
    if initial_charges:
        sched.seed_charges(initial_charges)
    probe = None
    if shared is not None and admission.backpressure_high is not None:
        probe = lambda: float(len(shared.service.memory))
    controller = AdmissionController(
        bed.env, sched, admission, tracer=bed.env.tracer, pressure_probe=probe
    )

    executions: dict[int, WorkflowExecution] = {}
    accepted: list = []

    def make_starter(execution: WorkflowExecution):
        def starter(sub):
            yield execution.start()
            return float(sum(r.bytes_moved for r in execution.ptt.records))

        return starter

    for tenant, workflow in submissions:
        if share_policy:
            policy = shared
        else:
            # Satellite of the tenancy work: per-workflow clients (and any
            # journal state) are built at admission, not while queued.
            policy = lambda: build_policy_client(
                cfg, bed, metrics=metrics, profiler=profiler
            )
        execution = WorkflowExecution(cfg, workflow, bed, policy)
        if shared is not None:
            shared.service.bind_workflow(execution.plan.workflow_id, tenant)
        est = float(sum(f.size for f in workflow.input_files()))
        sub = controller.submit(
            tenant, workflow.name, make_starter(execution), est_bytes=est
        )
        if sub is not None:
            executions[sub.seq] = execution
            accepted.append(sub)

    bed.env.run(until=controller.run())

    run_metrics = [executions[sub.seq].metrics() for sub in accepted]
    tenant_bytes: dict[str, float] = {spec.tenant: 0.0 for spec in registry}
    tenant_of: dict[str, str] = {}
    for sub, m in zip(accepted, run_metrics):
        tenant_bytes[sub.tenant] = tenant_bytes.get(sub.tenant, 0.0) + m.bytes_staged
        tenant_of[sub.name] = sub.tenant
    catalog_census = None
    if shared is not None and cfg.catalog is not None:
        try:
            catalog_census = shared.service.catalog_census()
        except (RuntimeError, AttributeError):
            catalog_census = None
    return EnsembleResult(
        metrics=run_metrics,
        admission_order=list(controller.admission_order),
        completed_order=list(controller.completed),
        rejected=list(controller.rejected),
        tenant_of=tenant_of,
        tenant_bytes=tenant_bytes,
        tenant_shares={spec.tenant: registry.share(spec.tenant) for spec in registry},
        decisions=(
            shared.service.decision_records() if shared is not None else []
        ),
        catalog_census=catalog_census,
    )


def run_ensemble(
    cfg: ExperimentConfig,
    workflows: Sequence[Workflow],
    max_concurrent: int = 2,
    share_policy: bool = True,
) -> list[RunMetrics]:
    """Run a queue of workflows with bounded concurrency on one testbed.

    The ensemble manager admits the next queued workflow as soon as a
    running one finishes (FIFO), all against one fabric and — with
    ``share_policy`` — one Policy Service, the multi-workflow deployment
    the paper's future work targets.  This is the single-tenant face of
    :func:`run_tenant_ensemble`: one implicit tenant, FIFO order, no
    budgets.
    """
    from repro.tenancy import AdmissionConfig, TenantSpec

    if max_concurrent < 1:
        raise ValueError("max_concurrent must be >= 1")
    result = run_tenant_ensemble(
        cfg,
        tenants=[TenantSpec("default")],
        submissions=[("default", workflow) for workflow in workflows],
        admission=AdmissionConfig(max_concurrent=max_concurrent),
        scheduler="fifo",
        share_policy=share_policy,
    )
    return result.metrics
