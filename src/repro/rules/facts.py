"""Facts and working memory for the rule engine.

Facts are plain mutable objects; the working memory assigns them handles
(ids) and version numbers.  Rules never see retracted facts, and updates
bump the version so refraction (fire-once-per-version) works like Drools.

The memory keeps **hash indexes** over attribute tuples, built lazily the
first time :meth:`WorkingMemory.lookup` is called for a given
``(fact type, attributes)`` combination and maintained incrementally on
every insert / update / retract afterwards.  Rule condition elements use
``lookup`` (via their ``keys`` parameter) to fetch only the facts that can
possibly join instead of scanning the whole type extent, and sessions use
the memory's **change log** to re-match only what actually changed.

Constructing the memory with ``indexed=False`` degrades ``lookup`` to a
linear scan with the exact same results — that is the seed engine used as
the baseline by ``benchmarks/bench_rules.py`` and the equivalence tests.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterator, Optional, Type, TypeVar

__all__ = ["Fact", "WorkingMemory"]

F = TypeVar("F", bound="Fact")

_MISSING = object()

#: Mutations remembered for :meth:`WorkingMemory.changes_since`.  Sessions
#: that fall behind further than this simply rebuild their agendas.
_CHANGELOG_CAP = 65_536


class Fact:
    """Base class for working-memory facts.

    Subclasses are ordinary classes (dataclasses work well).  Identity is
    object identity; equality of attribute values does *not* merge facts.
    """

    __slots__ = ()

    def describe(self) -> str:
        """Human-readable one-liner used in engine traces."""
        attrs = getattr(self, "__dict__", None)
        if attrs:
            inner = ", ".join(f"{k}={v!r}" for k, v in list(attrs.items())[:6])
        else:
            inner = ""
        return f"{type(self).__name__}({inner})"


class _Entry:
    __slots__ = ("fact", "fid", "version", "last_modifier")

    def __init__(self, fact: Fact, fid: int):
        self.fact = fact
        self.fid = fid
        self.version = 0
        self.last_modifier: Optional[str] = None


class WorkingMemory:
    """Fact store with per-type extents and lazy hash indexes.

    Lookup by type returns facts of that type *or any subclass* so rules can
    match on base classes (mirrors Drools' class-based patterns).

    Parameters
    ----------
    indexed:
        When True (default), :meth:`lookup` answers from incrementally
        maintained hash indexes; when False it linearly scans the type
        extent — same results, seed-engine cost.  Used for benchmarking
        and equivalence testing.
    """

    def __init__(self, indexed: bool = True) -> None:
        self._entries: dict[int, _Entry] = {}   # id(fact) -> entry
        self._by_type: dict[type, list[Fact]] = {}
        self._by_fid: dict[int, Fact] = {}
        self._next_fid = 0
        self._clock = 0
        self._type_clock: dict[type, int] = {}
        self._indexed = bool(indexed)
        #: optional ``observer(fact, fid, op)`` invoked after every mutation
        #: has been applied — the hook the policy journal records through.
        self.observer: Optional[Any] = None
        # (fact type, sorted attr names) -> key tuple -> {id(fact): fact}
        self._indexes: dict[tuple[type, tuple[str, ...]], dict[tuple, dict[int, Fact]]] = {}
        # (clock, fid, fact, op) log feeding incremental agendas.  A ring
        # buffer: appending beyond the cap drops the oldest entry in O(1)
        # instead of the O(cap) copy-shift a list compaction would cost on
        # the mutation hot path.  Clock ticks once per entry, so the
        # retained window is always the last ``_CHANGELOG_CAP`` sequences.
        self._log: deque[tuple[int, int, Fact, str, Optional[frozenset]]] = deque(
            maxlen=_CHANGELOG_CAP
        )

    @property
    def indexed(self) -> bool:
        return self._indexed

    @property
    def clock(self) -> int:
        """Monotonic mutation counter (one tick per insert/update/retract)."""
        return self._clock

    def _touch(
        self, fact: Fact, fid: int, op: str, changed: Optional[frozenset] = None
    ) -> None:
        self._clock += 1
        for klass in type(fact).__mro__:
            if klass is object:
                break
            self._type_clock[klass] = self._clock
        self._log.append((self._clock, fid, fact, op, changed))
        if self.observer is not None:
            self.observer(fact, fid, op)

    def stamp(self, types: tuple[type, ...]) -> int:
        """Monotonic change stamp over a set of fact types.

        Unchanged stamp guarantees no fact of those types was inserted,
        updated, or retracted — used by sessions to cache rule matches.
        """
        return max((self._type_clock.get(t, 0) for t in types), default=0)

    def changes_since(self, seq: int) -> Optional[list[tuple[int, Fact, str]]]:
        """``(fid, fact, op)`` mutations after clock ``seq``, oldest first.

        ``op`` is ``"i"`` (insert), ``"u"`` (update) or ``"r"`` (retract).
        Returns ``None`` when the requested range has been evicted from
        the bounded change log (caller must fall back to a full rebuild).
        A fact appears once per mutation; retracted facts are included —
        check :meth:`contains` for liveness.
        """
        if seq >= self._clock:
            return []
        log = self._log
        if not log or log[0][0] > seq + 1:
            return None
        # Walk back from the newest entry: the tail after ``seq`` is the
        # common case (a session catching up after one firing), so cost is
        # proportional to the answer, not to the window size.
        out = []
        for s, fid, fact, op, _changed in reversed(log):
            if s <= seq:
                break
            out.append((fid, fact, op))
        out.reverse()
        return out

    def changes_since_verbose(
        self, seq: int
    ) -> Optional[list[tuple[int, Fact, str, Optional[frozenset]]]]:
        """Like :meth:`changes_since` but with a fourth element: the set
        of attribute names an update actually changed (value really
        differed), ``None`` when unknown (inserts, retracts, or in-place
        mutation the memory could not observe).  Lets incremental engines
        prove an update cannot have flipped a condition that only reads
        other attributes.
        """
        if seq >= self._clock:
            return []
        log = self._log
        if not log or log[0][0] > seq + 1:
            return None
        out = []
        for s, fid, fact, op, changed in reversed(log):
            if s <= seq:
                break
            out.append((fid, fact, op, changed))
        out.reverse()
        return out

    # -- index maintenance ---------------------------------------------------
    def _applicable_indexes(self, fact: Fact):
        for (klass, attrs), buckets in self._indexes.items():
            if isinstance(fact, klass):
                yield attrs, buckets

    @staticmethod
    def _index_key(fact: Fact, attrs: tuple[str, ...]):
        key = []
        for attr in attrs:
            value = getattr(fact, attr, _MISSING)
            if value is _MISSING:
                return None
            key.append(value)
        return tuple(key)

    def _index_add(self, fact: Fact, fid: int, attrs: tuple[str, ...], buckets) -> None:
        key = self._index_key(fact, attrs)
        if key is None:
            return
        bucket = buckets.get(key)
        if bucket is None:
            buckets[key] = {fid: fact}
            return
        # Keep buckets sorted by fid so lookups need no sort.  New facts
        # have the highest fid (plain append); only re-slotting an old
        # fact after an update pays a re-sort of its bucket.
        if next(reversed(bucket)) < fid:
            bucket[fid] = fact
        else:
            bucket[fid] = fact
            buckets[key] = {k: bucket[k] for k in sorted(bucket)}

    def _index_discard(self, fact: Fact, fid: int, attrs: tuple[str, ...], buckets) -> None:
        key = self._index_key(fact, attrs)
        if key is None:
            return
        bucket = buckets.get(key)
        if bucket is not None:
            bucket.pop(fid, None)
            if not bucket:
                del buckets[key]

    def _build_index(self, fact_type: type, attrs: tuple[str, ...]):
        buckets: dict[tuple, dict[int, Fact]] = {}
        entries = self._entries
        for fact in self._by_type.get(fact_type, ()):
            key = self._index_key(fact, attrs)
            if key is not None:
                buckets.setdefault(key, {})[entries[id(fact)].fid] = fact
        self._indexes[(fact_type, attrs)] = buckets
        return buckets

    # -- mutation -----------------------------------------------------------
    def insert(self, fact: Fact, modifier: Optional[str] = None) -> Fact:
        """Add a fact; returns it for chaining.  Re-inserting is an error."""
        if not isinstance(fact, Fact):
            raise TypeError(f"working memory accepts Fact instances, got {fact!r}")
        if id(fact) in self._entries:
            raise ValueError(f"fact already in working memory: {fact.describe()}")
        entry = _Entry(fact, self._next_fid)
        self._next_fid += 1
        entry.last_modifier = modifier
        self._entries[id(fact)] = entry
        self._by_fid[entry.fid] = fact
        for klass in type(fact).__mro__:
            if klass is object:
                break
            self._by_type.setdefault(klass, []).append(fact)
        if self._indexes:
            for attrs, buckets in self._applicable_indexes(fact):
                self._index_add(fact, entry.fid, attrs, buckets)
        self._touch(fact, entry.fid, "i")
        return fact

    def update(self, fact: Fact, modifier: Optional[str] = None, **changes: Any) -> Fact:
        """Apply attribute changes and bump the fact's version."""
        entry = self._entries.get(id(fact))
        if entry is None:
            raise KeyError(f"fact not in working memory: {fact.describe()}")
        changed = set()
        for key, value in changes.items():
            if not hasattr(fact, key):
                raise AttributeError(f"{type(fact).__name__} has no attribute {key!r}")
            try:
                if getattr(fact, key) != value:
                    changed.add(key)
            except Exception:
                changed.add(key)  # incomparable value: assume it changed
        # Re-slot the fact in any index whose key attributes are changing;
        # the old key must be read before the attributes are assigned.
        touched_indexes = []
        if self._indexes:
            for attrs, buckets in self._applicable_indexes(fact):
                if any(a in changes for a in attrs):
                    self._index_discard(fact, entry.fid, attrs, buckets)
                    touched_indexes.append((attrs, buckets))
        for key, value in changes.items():
            setattr(fact, key, value)
        for attrs, buckets in touched_indexes:
            self._index_add(fact, entry.fid, attrs, buckets)
        entry.version += 1
        entry.last_modifier = modifier
        # No kwargs means the caller mutated the fact in place before
        # announcing the update — the changed set is unknowable, not empty.
        self._touch(fact, entry.fid, "u", frozenset(changed) if changes else None)
        return fact

    def retract(self, fact: Fact) -> None:
        """Remove a fact from memory."""
        entry = self._entries.pop(id(fact), None)
        if entry is None:
            raise KeyError(f"fact not in working memory: {fact.describe()}")
        self._by_fid.pop(entry.fid, None)
        for klass in type(fact).__mro__:
            if klass is object:
                break
            bucket = self._by_type.get(klass)
            if bucket is not None:
                bucket.remove(fact)
        if self._indexes:
            for attrs, buckets in self._applicable_indexes(fact):
                self._index_discard(fact, entry.fid, attrs, buckets)
        self._touch(fact, entry.fid, "r")

    # -- queries ------------------------------------------------------------
    def contains(self, fact: Fact) -> bool:
        return id(fact) in self._entries

    def facts_of(self, fact_type: Type[F]) -> list[F]:
        """All live facts of ``fact_type`` (including subclasses), in
        insertion order."""
        return list(self._by_type.get(fact_type, ()))

    def lookup(self, fact_type: Type[F], **keys: Any) -> list[F]:
        """Live facts of ``fact_type`` whose attributes equal ``keys``.

        Results are in insertion order, identical to filtering
        :meth:`facts_of` on attribute equality.  With ``indexed=True``
        this answers from a hash index on the key attributes (built
        lazily, maintained incrementally); otherwise it scans.
        """
        if not keys:
            return self.facts_of(fact_type)
        attrs = tuple(sorted(keys))
        if not self._indexed:
            values = tuple(keys[a] for a in attrs)
            return [
                f
                for f in self._by_type.get(fact_type, ())
                if all(getattr(f, a, _MISSING) == v for a, v in zip(attrs, values))
            ]
        buckets = self._indexes.get((fact_type, attrs))
        if buckets is None:
            buckets = self._build_index(fact_type, attrs)
        bucket = buckets.get(tuple(keys[a] for a in attrs))
        if not bucket:
            return []
        return list(bucket.values())  # buckets are kept in fid order

    def single(self, fact_type: Type[F]) -> Optional[F]:
        """The unique fact of a type, or None (error if several)."""
        found = self._by_type.get(fact_type, [])
        if len(found) > 1:
            raise ValueError(f"multiple {fact_type.__name__} facts in memory")
        return found[0] if found else None

    def version_of(self, fact: Fact) -> int:
        return self._entries[id(fact)].version

    def fid_of(self, fact: Fact) -> int:
        return self._entries[id(fact)].fid

    def fact_with_fid(self, fid: int) -> Optional[Fact]:
        """The live fact with handle ``fid``, or None if retracted."""
        return self._by_fid.get(fid)

    def modifier_of(self, fact: Fact) -> Optional[str]:
        return self._entries[id(fact)].last_modifier

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Fact]:
        return iter(entry.fact for entry in self._entries.values())

    def snapshot(self) -> dict[str, int]:
        """Count of live facts per concrete type name (for diagnostics)."""
        counts: dict[str, int] = {}
        for entry in self._entries.values():
            name = type(entry.fact).__name__
            counts[name] = counts.get(name, 0) + 1
        return counts
