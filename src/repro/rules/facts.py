"""Facts and working memory for the rule engine.

Facts are plain mutable objects; the working memory assigns them handles
(ids) and version numbers.  Rules never see retracted facts, and updates
bump the version so refraction (fire-once-per-version) works like Drools.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Type, TypeVar

__all__ = ["Fact", "WorkingMemory"]

F = TypeVar("F", bound="Fact")


class Fact:
    """Base class for working-memory facts.

    Subclasses are ordinary classes (dataclasses work well).  Identity is
    object identity; equality of attribute values does *not* merge facts.
    """

    __slots__ = ()

    def describe(self) -> str:
        """Human-readable one-liner used in engine traces."""
        attrs = getattr(self, "__dict__", None)
        if attrs:
            inner = ", ".join(f"{k}={v!r}" for k, v in list(attrs.items())[:6])
        else:
            inner = ""
        return f"{type(self).__name__}({inner})"


class _Entry:
    __slots__ = ("fact", "fid", "version", "last_modifier")

    def __init__(self, fact: Fact, fid: int):
        self.fact = fact
        self.fid = fid
        self.version = 0
        self.last_modifier: Optional[str] = None


class WorkingMemory:
    """Fact store with per-type indexes.

    Lookup by type returns facts of that type *or any subclass* so rules can
    match on base classes (mirrors Drools' class-based patterns).
    """

    def __init__(self) -> None:
        self._entries: dict[int, _Entry] = {}   # id(fact) -> entry
        self._by_type: dict[type, list[Fact]] = {}
        self._next_fid = 0
        self._clock = 0
        self._type_clock: dict[type, int] = {}

    def _touch(self, fact: Fact) -> None:
        self._clock += 1
        for klass in type(fact).__mro__:
            if klass is object:
                break
            self._type_clock[klass] = self._clock

    def stamp(self, types: tuple[type, ...]) -> int:
        """Monotonic change stamp over a set of fact types.

        Unchanged stamp guarantees no fact of those types was inserted,
        updated, or retracted — used by sessions to cache rule matches.
        """
        return max((self._type_clock.get(t, 0) for t in types), default=0)

    # -- mutation -----------------------------------------------------------
    def insert(self, fact: Fact, modifier: Optional[str] = None) -> Fact:
        """Add a fact; returns it for chaining.  Re-inserting is an error."""
        if not isinstance(fact, Fact):
            raise TypeError(f"working memory accepts Fact instances, got {fact!r}")
        if id(fact) in self._entries:
            raise ValueError(f"fact already in working memory: {fact.describe()}")
        entry = _Entry(fact, self._next_fid)
        self._next_fid += 1
        entry.last_modifier = modifier
        self._entries[id(fact)] = entry
        for klass in type(fact).__mro__:
            if klass is object:
                break
            self._by_type.setdefault(klass, []).append(fact)
        self._touch(fact)
        return fact

    def update(self, fact: Fact, modifier: Optional[str] = None, **changes: Any) -> Fact:
        """Apply attribute changes and bump the fact's version."""
        entry = self._entries.get(id(fact))
        if entry is None:
            raise KeyError(f"fact not in working memory: {fact.describe()}")
        for key, value in changes.items():
            if not hasattr(fact, key):
                raise AttributeError(f"{type(fact).__name__} has no attribute {key!r}")
            setattr(fact, key, value)
        entry.version += 1
        entry.last_modifier = modifier
        self._touch(fact)
        return fact

    def retract(self, fact: Fact) -> None:
        """Remove a fact from memory."""
        entry = self._entries.pop(id(fact), None)
        if entry is None:
            raise KeyError(f"fact not in working memory: {fact.describe()}")
        for klass in type(fact).__mro__:
            if klass is object:
                break
            bucket = self._by_type.get(klass)
            if bucket is not None:
                bucket.remove(fact)
        self._touch(fact)

    # -- queries ------------------------------------------------------------
    def contains(self, fact: Fact) -> bool:
        return id(fact) in self._entries

    def facts_of(self, fact_type: Type[F]) -> list[F]:
        """All live facts of ``fact_type`` (including subclasses), in
        insertion order."""
        return list(self._by_type.get(fact_type, ()))

    def single(self, fact_type: Type[F]) -> Optional[F]:
        """The unique fact of a type, or None (error if several)."""
        found = self._by_type.get(fact_type, [])
        if len(found) > 1:
            raise ValueError(f"multiple {fact_type.__name__} facts in memory")
        return found[0] if found else None

    def version_of(self, fact: Fact) -> int:
        return self._entries[id(fact)].version

    def fid_of(self, fact: Fact) -> int:
        return self._entries[id(fact)].fid

    def modifier_of(self, fact: Fact) -> Optional[str]:
        return self._entries[id(fact)].last_modifier

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Fact]:
        return iter(entry.fact for entry in self._entries.values())

    def snapshot(self) -> dict[str, int]:
        """Count of live facts per concrete type name (for diagnostics)."""
        counts: dict[str, int] = {}
        for entry in self._entries.values():
            name = type(entry.fact).__name__
            counts[name] = counts.get(name, 0) + 1
        return counts
