"""Compilation pass: rule packs -> join-network execution plans.

The compiled engine (``engine="compiled"`` on the Policy Service) does
not interpret a rule's condition elements from scratch on every firing.
This module analyses each rule **once** and assigns it an execution plan
that the :class:`~repro.rules.network.JoinNetwork` runs:

``join``
    Every condition element is a bound :class:`~repro.rules.patterns.Pattern`
    and there are at least two of them.  The network keeps *beta memories*
    (memoized partial matches for every join prefix) bucketed by the next
    position's join-key values, and drives re-matching from the working
    memory's change log.  A change to a fact matched at the **last**
    position — the hot case in every allocation rule, where a counter
    fact is updated on each firing — does not eagerly re-join the whole
    prefix frontier; it creates a *lazy probe* that walks the matching
    bucket in activation-rank order and only ever materializes the
    single next candidate (see :class:`~repro.rules.network.JoinNetwork`).

``delta``
    Everything else (rules using ``Absent`` / ``Exists`` / ``Collect`` /
    ``Test``, single-Pattern rules, or rules with unbound patterns).
    These fall back to the dirty-set delta/rebuild strategy of the
    incremental agenda, feeding the same candidate heap, so mixed rule
    packs behave identically to the interpreted engines.

The plan assignment (and the reason a rule fell off the fast path) is
exposed through :func:`fast_path_report` so the rule linter can flag
packs that will not compile to the join network.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.rules.engine import Rule
from repro.rules.patterns import Absent, Collect, Exists, Pattern, Test

__all__ = [
    "PLAN_JOIN",
    "PLAN_DELTA",
    "PositionPlan",
    "RulePlan",
    "CompiledRuleset",
    "compile_rules",
    "fast_path_report",
]

PLAN_JOIN = "join"
PLAN_DELTA = "delta"


class PositionPlan:
    """Static join information for one Pattern position of a rule."""

    __slots__ = ("index", "element", "fact_type", "binding", "key_attrs")

    def __init__(self, index: int, element: Pattern):
        self.index = index
        self.element = element
        self.fact_type = element.fact_type
        self.binding = element.binding
        #: sorted attribute names of the position's join key (the bucket
        #: key of the beta memory feeding this position), None when the
        #: pattern declares no access-path keys.
        self.key_attrs: Optional[tuple[str, ...]] = (
            tuple(sorted(element.keys)) if element.keys is not None else None
        )


class RulePlan:
    """One rule's compiled execution plan."""

    __slots__ = ("rule", "order", "kind", "reason", "positions",
                 "pattern_types", "gates")

    def __init__(self, rule: Rule, order: int, kind: str, reason: str,
                 positions: list[PositionPlan]):
        self.rule = rule
        #: definition index — the salience tie-breaker, identical to the
        #: interpreted engines.
        self.order = order
        self.kind = kind
        #: why the rule fell off the join fast path ("" when it didn't)
        self.reason = reason
        #: Pattern positions in condition order (join plans: all of them)
        self.positions = positions
        self.pattern_types: tuple[type, ...] = tuple(
            {p.fact_type for p in positions}
        )
        #: typed non-Pattern elements (Absent / Exists / Collect) — the
        #: gates whose truth a mutation of their fact type may flip.
        self.gates: tuple = tuple(
            el for el in rule.when
            if isinstance(el, (Absent, Exists, Collect))
        )


def _classify(rule: Rule, order: int) -> RulePlan:
    positions = [
        PositionPlan(i, el)
        for i, el in enumerate(rule.when)
        if isinstance(el, Pattern)
    ]
    for el in rule.when:
        if isinstance(el, (Absent, Exists, Collect, Test)):
            return RulePlan(
                rule, order, PLAN_DELTA,
                f"condition {type(el).__name__} is not a join-network element",
                positions,
            )
        if not isinstance(el, Pattern):
            return RulePlan(
                rule, order, PLAN_DELTA,
                f"unknown condition element {type(el).__name__}",
                positions,
            )
    if len(rule.when) < 2:
        return RulePlan(
            rule, order, PLAN_DELTA, "single-pattern rule needs no join network",
            positions,
        )
    for el in rule.when:
        if not el.binding:
            return RulePlan(
                rule, order, PLAN_DELTA,
                "unbound pattern: activation identity ignores the matched fact",
                positions,
            )
    return RulePlan(rule, order, PLAN_JOIN, "", positions)


class CompiledRuleset:
    """Plans for a rule pack, grouped into salience tiers.

    Immutable once built; a :class:`~repro.rules.network.JoinNetwork`
    holds the per-evaluation runtime state (beta memories, candidate
    heaps, probes) and many networks may share one ruleset — the Policy
    Service compiles its pack once and reuses it for every request.
    """

    def __init__(self, rules: Sequence[Rule]):
        self.rules = list(rules)
        self.plans = [_classify(rule, order) for order, rule in enumerate(self.rules)]
        tiers: dict[int, list[RulePlan]] = {}
        for plan in self.plans:
            tiers.setdefault(plan.rule.salience, []).append(plan)
        #: plans grouped by salience, highest first (definition order kept
        #: inside a tier) — the firing order skeleton.
        self.tiers: list[list[RulePlan]] = [
            tiers[s] for s in sorted(tiers, reverse=True)
        ]
        self._tier_of = {
            plan.rule.name: i for i, tier in enumerate(self.tiers) for plan in tier
        }
        # concrete fact type -> [(plan, dispatch info)], filled lazily:
        # the set of concrete types is only known at runtime.
        self._dispatch: dict[type, list[tuple[RulePlan, dict]]] = {}

    def tier_of(self, rule_name: str) -> int:
        return self._tier_of[rule_name]

    def dispatch(self, fact_type: type) -> list[tuple[RulePlan, dict]]:
        """Plans interested in mutations of ``fact_type`` plus how the
        type participates: Pattern positions, Absent / hard-gate roles."""
        cached = self._dispatch.get(fact_type)
        if cached is not None:
            return cached
        out: list[tuple[RulePlan, dict]] = []
        for plan in self.plans:
            rule = plan.rule
            if not issubclass(fact_type, rule.types):
                continue
            info = {
                "positions": [
                    p.index for p in plan.positions
                    if issubclass(fact_type, p.fact_type)
                ],
                "absent": bool(rule.absent_types)
                and issubclass(fact_type, rule.absent_types),
                "hard": bool(rule.hard_gate_types)
                and issubclass(fact_type, rule.hard_gate_types),
            }
            out.append((plan, info))
        self._dispatch[fact_type] = out
        return out


def compile_rules(rules: Sequence[Rule]) -> CompiledRuleset:
    """Compile a rule pack into join-network execution plans."""
    return CompiledRuleset(rules)


def fast_path_report(rules: Sequence[Rule]) -> list[dict]:
    """Per-rule plan assignment for static analysis / the rule linter.

    Each row carries the rule name, the assigned plan kind, the reason a
    rule fell back to the ``delta`` plan, and whether the rule's *last*
    pattern declares join keys (an unkeyed last position makes the lazy
    probe walk the whole prefix frontier instead of one bucket).
    """
    report = []
    for order, rule in enumerate(rules):
        plan = _classify(rule, order)
        last_keyed = None
        if plan.kind == PLAN_JOIN:
            last_keyed = plan.positions[-1].key_attrs is not None
        report.append({
            "rule": rule.name,
            "salience": rule.salience,
            "plan": plan.kind,
            "reason": plan.reason,
            "last_position_keyed": last_keyed,
        })
    return report
