"""Condition elements for rules.

A rule's left-hand side is an ordered list of condition elements, evaluated
left to right with accumulated bindings (a nested-loop join over indexed
candidate sets):

``Pattern(T, binding="x", where=guard, keys=...)``
    Matches each live fact of type ``T`` for which ``guard(fact, bindings)``
    is true, binding it under ``binding``.
``Absent(T, where=guard, keys=...)``
    Matches when *no* live fact of ``T`` satisfies the guard (negation as
    failure, Drools ``not``).
``Collect(T, binding="xs", where=guard, min_count=0, keys=...)``
    Binds the list of all matching facts (Drools ``collect`` /
    ``accumulate``); fails when fewer than ``min_count`` match.
``Exists(T, where=guard, keys=...)``
    Succeeds once (no binding) when at least one fact matches (Drools
    ``exists``).
``Test(predicate)``
    A pure guard over the bindings gathered so far (Drools ``eval``).

Guards take ``(fact, bindings)`` — bindings is a dict of previously bound
names.  ``Test`` predicates take ``(bindings,)``.

Indexed candidate selection
---------------------------
``keys`` is an optional ``{attribute: key_fn}`` dict where each
``key_fn(bindings)`` computes the value the fact's attribute must equal.
The element then fetches its candidates with
:meth:`~repro.rules.facts.WorkingMemory.lookup` (a hash-index probe)
instead of scanning the whole type extent.  The guard still runs over the
candidates, so ``keys`` is purely an access-path hint — but it MUST be
implied by the guard (every fact the guard accepts must also satisfy the
key equalities), otherwise matches are silently lost.  A ``key_fn``
raising :class:`AttributeError` falls back to the full scan, mirroring the
guard semantics below.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, Type

from repro.rules.facts import Fact

__all__ = ["Pattern", "Absent", "Collect", "Exists", "Test"]

Guard = Callable[[Fact, dict], bool]
KeySpec = Optional[dict[str, Callable[[dict], Any]]]


class ConditionElement:
    """Base class; subclasses implement ``expand(memory, bindings)``."""

    __slots__ = ()

    def expand(self, memory, bindings: dict) -> list[dict]:  # pragma: no cover
        """Yield extended binding dicts for each way this element matches."""
        raise NotImplementedError


def _check(guard: Optional[Guard], fact: Fact, bindings: dict) -> bool:
    if guard is None:
        return True
    try:
        return bool(guard(fact, bindings))
    except AttributeError:
        # A guard probing attributes absent on a subclass simply fails to
        # match rather than crashing rule evaluation.
        return False


def _validate_keys(name: str, keys: KeySpec) -> KeySpec:
    if keys is None:
        return None
    if not isinstance(keys, dict) or not keys:
        raise TypeError(f"{name} keys must be a non-empty dict of attr -> key_fn")
    for attr, fn in keys.items():
        if not isinstance(attr, str) or not attr:
            raise TypeError(f"{name} keys attribute names must be strings")
        if not callable(fn):
            raise TypeError(f"{name} keys[{attr!r}] must be callable(bindings)")
    return dict(keys)


class _TypedElement(ConditionElement):
    """Shared candidate selection for the typed condition elements."""

    __slots__ = ("fact_type", "where", "keys", "reads")

    def __init__(
        self,
        fact_type: Type[Fact],
        where: Optional[Guard],
        keys: KeySpec,
        reads: Optional[Iterable[str]] = None,
    ):
        name = type(self).__name__
        if not (isinstance(fact_type, type) and issubclass(fact_type, Fact)):
            raise TypeError(f"{name} requires a Fact subclass, got {fact_type!r}")
        self.fact_type = fact_type
        self.where = where
        self.keys = _validate_keys(name, keys)
        #: optional declaration of the fact attributes the guard (and the
        #: key equalities) consult.  When set, incremental engines may
        #: skip re-evaluating this element for an update that changed
        #: none of the listed attributes — the element's truth value
        #: provably cannot have flipped.  MUST cover everything the guard
        #: reads from the candidate fact, else matches are silently
        #: stale.  ``None`` (default) means unknown: always re-evaluate.
        if reads is not None:
            reads = frozenset(reads)
            if not reads or not all(
                isinstance(a, str) and a for a in reads
            ):
                raise TypeError(
                    f"{name} reads must be a non-empty iterable of attribute names"
                )
        self.reads: Optional[frozenset] = reads

    def candidates(self, memory, bindings: dict) -> list[Fact]:
        """Facts this element may match, narrowed via the key index."""
        if self.keys is not None:
            try:
                values = {attr: fn(bindings) for attr, fn in self.keys.items()}
            except AttributeError:
                values = None
            if values is not None:
                return memory.lookup(self.fact_type, **values)
        return memory.facts_of(self.fact_type)


class Pattern(_TypedElement):
    """Positive match on one fact of a type."""

    __slots__ = ("binding",)

    def __init__(
        self,
        fact_type: Type[Fact],
        binding: Optional[str] = None,
        where: Optional[Guard] = None,
        keys: KeySpec = None,
        reads: Optional[Iterable[str]] = None,
    ):
        super().__init__(fact_type, where, keys, reads)
        self.binding = binding

    def expand(self, memory, bindings: dict) -> list[dict]:
        return self.expand_over(self.candidates(memory, bindings), bindings)

    def expand_over(self, facts, bindings: dict) -> list[dict]:
        """Expand over an explicit candidate list (incremental matching)."""
        out = []
        for fact in facts:
            if _check(self.where, fact, bindings):
                if self.binding:
                    new = dict(bindings)
                    new[self.binding] = fact
                    out.append(new)
                else:
                    out.append(dict(bindings))
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return f"Pattern({self.fact_type.__name__}, binding={self.binding!r})"


class Absent(_TypedElement):
    """Negation: succeeds when no fact of the type passes the guard."""

    __slots__ = ()

    def __init__(
        self,
        fact_type: Type[Fact],
        where: Optional[Guard] = None,
        keys: KeySpec = None,
        reads: Optional[Iterable[str]] = None,
    ):
        super().__init__(fact_type, where, keys, reads)

    def expand(self, memory, bindings: dict) -> list[dict]:
        for fact in self.candidates(memory, bindings):
            if _check(self.where, fact, bindings):
                return []
        return [dict(bindings)]

    def __repr__(self) -> str:  # pragma: no cover
        return f"Absent({self.fact_type.__name__})"


class Exists(_TypedElement):
    """Existential quantifier: succeeds (once, without binding) when at
    least one fact of the type passes the guard (Drools ``exists``).

    Unlike a :class:`Pattern`, the rule fires a single activation no
    matter how many facts match — use it for "is there any X?" guards
    that should not multiply firings.
    """

    __slots__ = ()

    def __init__(
        self,
        fact_type: Type[Fact],
        where: Optional[Guard] = None,
        keys: KeySpec = None,
        reads: Optional[Iterable[str]] = None,
    ):
        super().__init__(fact_type, where, keys, reads)

    def expand(self, memory, bindings: dict) -> list[dict]:
        for fact in self.candidates(memory, bindings):
            if _check(self.where, fact, bindings):
                return [dict(bindings)]
        return []

    def __repr__(self) -> str:  # pragma: no cover
        return f"Exists({self.fact_type.__name__})"


class Collect(_TypedElement):
    """Bind the list of all matching facts."""

    __slots__ = ("binding", "min_count")

    def __init__(
        self,
        fact_type: Type[Fact],
        binding: str,
        where: Optional[Guard] = None,
        min_count: int = 0,
        keys: KeySpec = None,
        reads: Optional[Iterable[str]] = None,
    ):
        super().__init__(fact_type, where, keys, reads)
        if not binding:
            raise ValueError("Collect requires a binding name")
        self.binding = binding
        self.min_count = int(min_count)

    def expand(self, memory, bindings: dict) -> list[dict]:
        matches = [
            fact
            for fact in self.candidates(memory, bindings)
            if _check(self.where, fact, bindings)
        ]
        if len(matches) < self.min_count:
            return []
        new = dict(bindings)
        new[self.binding] = matches
        return [new]

    def __repr__(self) -> str:  # pragma: no cover
        return f"Collect({self.fact_type.__name__} as {self.binding!r})"


class Test(ConditionElement):
    """Pure guard over bindings (no new facts matched)."""

    __test__ = False  # not a pytest test class despite the name
    __slots__ = ("predicate",)

    def __init__(self, predicate: Callable[[dict], Any]):
        if not callable(predicate):
            raise TypeError("Test requires a callable")
        self.predicate = predicate

    def expand(self, memory, bindings: dict) -> list[dict]:
        return [dict(bindings)] if self.predicate(bindings) else []

    def __repr__(self) -> str:  # pragma: no cover
        return "Test(...)"
