"""Condition elements for rules.

A rule's left-hand side is an ordered list of condition elements, evaluated
left to right with accumulated bindings (a nested-loop join, adequate for
policy-sized fact bases):

``Pattern(T, binding="x", where=guard)``
    Matches each live fact of type ``T`` for which ``guard(fact, bindings)``
    is true, binding it under ``binding``.
``Absent(T, where=guard)``
    Matches when *no* live fact of ``T`` satisfies the guard (negation as
    failure, Drools ``not``).
``Collect(T, binding="xs", where=guard, min_count=0)``
    Binds the list of all matching facts (Drools ``collect`` /
    ``accumulate``); fails when fewer than ``min_count`` match.
``Exists(T, where=guard)``
    Succeeds once (no binding) when at least one fact matches (Drools
    ``exists``).
``Test(predicate)``
    A pure guard over the bindings gathered so far (Drools ``eval``).

Guards take ``(fact, bindings)`` — bindings is a dict of previously bound
names.  ``Test`` predicates take ``(bindings,)``.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Type

from repro.rules.facts import Fact

__all__ = ["Pattern", "Absent", "Collect", "Exists", "Test"]

Guard = Callable[[Fact, dict], bool]


class ConditionElement:
    """Base class; subclasses implement ``expand(memory, bindings)``."""

    __slots__ = ()

    def expand(self, memory, bindings: dict) -> list[dict]:  # pragma: no cover
        """Yield extended binding dicts for each way this element matches."""
        raise NotImplementedError


def _check(guard: Optional[Guard], fact: Fact, bindings: dict) -> bool:
    if guard is None:
        return True
    try:
        return bool(guard(fact, bindings))
    except AttributeError:
        # A guard probing attributes absent on a subclass simply fails to
        # match rather than crashing rule evaluation.
        return False


class Pattern(ConditionElement):
    """Positive match on one fact of a type."""

    __slots__ = ("fact_type", "binding", "where")

    def __init__(
        self,
        fact_type: Type[Fact],
        binding: Optional[str] = None,
        where: Optional[Guard] = None,
    ):
        if not (isinstance(fact_type, type) and issubclass(fact_type, Fact)):
            raise TypeError(f"Pattern requires a Fact subclass, got {fact_type!r}")
        self.fact_type = fact_type
        self.binding = binding
        self.where = where

    def expand(self, memory, bindings: dict) -> list[dict]:
        out = []
        for fact in memory.facts_of(self.fact_type):
            if _check(self.where, fact, bindings):
                if self.binding:
                    new = dict(bindings)
                    new[self.binding] = fact
                    out.append(new)
                else:
                    out.append(dict(bindings))
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return f"Pattern({self.fact_type.__name__}, binding={self.binding!r})"


class Absent(ConditionElement):
    """Negation: succeeds when no fact of the type passes the guard."""

    __slots__ = ("fact_type", "where")

    def __init__(self, fact_type: Type[Fact], where: Optional[Guard] = None):
        if not (isinstance(fact_type, type) and issubclass(fact_type, Fact)):
            raise TypeError(f"Absent requires a Fact subclass, got {fact_type!r}")
        self.fact_type = fact_type
        self.where = where

    def expand(self, memory, bindings: dict) -> list[dict]:
        for fact in memory.facts_of(self.fact_type):
            if _check(self.where, fact, bindings):
                return []
        return [dict(bindings)]

    def __repr__(self) -> str:  # pragma: no cover
        return f"Absent({self.fact_type.__name__})"


class Exists(ConditionElement):
    """Existential quantifier: succeeds (once, without binding) when at
    least one fact of the type passes the guard (Drools ``exists``).

    Unlike a :class:`Pattern`, the rule fires a single activation no
    matter how many facts match — use it for "is there any X?" guards
    that should not multiply firings.
    """

    __slots__ = ("fact_type", "where")

    def __init__(self, fact_type: Type[Fact], where: Optional[Guard] = None):
        if not (isinstance(fact_type, type) and issubclass(fact_type, Fact)):
            raise TypeError(f"Exists requires a Fact subclass, got {fact_type!r}")
        self.fact_type = fact_type
        self.where = where

    def expand(self, memory, bindings: dict) -> list[dict]:
        for fact in memory.facts_of(self.fact_type):
            if _check(self.where, fact, bindings):
                return [dict(bindings)]
        return []

    def __repr__(self) -> str:  # pragma: no cover
        return f"Exists({self.fact_type.__name__})"


class Collect(ConditionElement):
    """Bind the list of all matching facts."""

    __slots__ = ("fact_type", "binding", "where", "min_count")

    def __init__(
        self,
        fact_type: Type[Fact],
        binding: str,
        where: Optional[Guard] = None,
        min_count: int = 0,
    ):
        if not (isinstance(fact_type, type) and issubclass(fact_type, Fact)):
            raise TypeError(f"Collect requires a Fact subclass, got {fact_type!r}")
        if not binding:
            raise ValueError("Collect requires a binding name")
        self.fact_type = fact_type
        self.binding = binding
        self.where = where
        self.min_count = int(min_count)

    def expand(self, memory, bindings: dict) -> list[dict]:
        matches = [
            fact
            for fact in memory.facts_of(self.fact_type)
            if _check(self.where, fact, bindings)
        ]
        if len(matches) < self.min_count:
            return []
        new = dict(bindings)
        new[self.binding] = matches
        return [new]

    def __repr__(self) -> str:  # pragma: no cover
        return f"Collect({self.fact_type.__name__} as {self.binding!r})"


class Test(ConditionElement):
    """Pure guard over bindings (no new facts matched)."""

    __test__ = False  # not a pytest test class despite the name
    __slots__ = ("predicate",)

    def __init__(self, predicate: Callable[[dict], Any]):
        if not callable(predicate):
            raise TypeError("Test requires a callable")
        self.predicate = predicate

    def expand(self, memory, bindings: dict) -> list[dict]:
        return [dict(bindings)] if self.predicate(bindings) else []

    def __repr__(self) -> str:  # pragma: no cover
        return "Test(...)"
