"""The rule engine: rules, agenda, activations, sessions.

Semantics (modelled on Drools):

* ``Session.fire_all()`` repeatedly (1) matches all rules against working
  memory producing *activations*, (2) orders them by (salience desc, fact
  arrival order, rule-definition order), (3) fires the first un-fired
  activation, then re-matches.  It stops when no new activation exists.
* **Refraction**: an activation is identified by (rule, matched fact ids,
  fact versions).  Once fired it never fires again unless one of its facts
  is updated (version bump) — exactly like Drools' tuple memory.
* **no_loop**: a rule marked ``no_loop=True`` will not re-activate when the
  only change to its matched facts since its last firing was made by the
  rule itself (prevents trivial self-loops on ``ctx.update``).
* A ``max_firings`` guard raises :class:`RuleEngineError` instead of
  spinning forever if a rule set diverges.

Actions receive an :class:`ActivationContext` giving attribute access to the
bindings plus ``insert`` / ``update`` / ``retract`` / ``halt`` and the
session ``globals`` dict (configuration values such as stream thresholds).

Incremental agenda
------------------
By default (``incremental=True``) a session maintains one *agenda* per
rule — the set of computed, not-yet-fired activations — and after each
firing re-derives only what the firing's mutations can have changed:

* a rule none of whose referenced fact types changed is untouched
  (type-stamp check, as before);
* a dirty fact only matched by :class:`~repro.rules.patterns.Pattern`
  elements triggers a *delta* update: activations referencing the fact are
  dropped and the rule is re-joined with each Pattern position restricted
  to the dirty facts (index-accelerated through the patterns' ``keys``);
* a dirty fact of a type referenced by ``Absent`` / ``Exists`` /
  ``Collect`` forces a full re-match of that rule, because negations and
  aggregates can flip activations that do not reference the fact at all.

``incremental=False`` preserves the seed engine's re-enumerate-everything
behaviour for benchmarking and equivalence tests; both modes fire the
same activations in the same order.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, Sequence

from repro.rules.facts import Fact, WorkingMemory
from repro.rules.patterns import Absent, ConditionElement, Pattern

__all__ = ["Rule", "Session", "RuleEngineError", "ActivationContext"]


class RuleEngineError(RuntimeError):
    """Raised for diverging rule sets or malformed rules."""


class Rule:
    """A named production: condition elements + action.

    Parameters
    ----------
    name:
        Unique rule name (used in traces and refraction bookkeeping).
    when:
        Ordered condition elements (see :mod:`repro.rules.patterns`).
    then:
        ``action(ctx)`` callable run for each activation.
    salience:
        Higher fires earlier (Drools convention).  Default 0.
    no_loop:
        Suppress re-activation caused solely by this rule's own updates.
    """

    def __init__(
        self,
        name: str,
        when: Sequence[ConditionElement],
        then: Callable[["ActivationContext"], None],
        salience: int = 0,
        no_loop: bool = False,
    ):
        if not name:
            raise ValueError("rules require a name")
        if not callable(then):
            raise TypeError(f"rule {name!r}: action must be callable")
        when = list(when)
        if not when:
            raise ValueError(f"rule {name!r}: needs at least one condition element")
        for element in when:
            if not isinstance(element, ConditionElement):
                raise TypeError(
                    f"rule {name!r}: condition {element!r} is not a ConditionElement"
                )
        self.name = name
        self.when = when
        self.then = then
        self.salience = int(salience)
        self.no_loop = bool(no_loop)
        #: fact types this rule's conditions reference (for match caching)
        self.types: tuple[type, ...] = tuple(
            {element.fact_type for element in when if hasattr(element, "fact_type")}
        )
        #: types referenced by non-Pattern elements (Absent/Exists/Collect):
        #: changes to these cannot be handled by a positional delta join.
        self.gate_types: tuple[type, ...] = tuple(
            {
                element.fact_type
                for element in when
                if hasattr(element, "fact_type") and not isinstance(element, Pattern)
            }
        )
        #: Absent-only gate types: an *insert* of one of these can only
        #: invalidate existing activations (negation is anti-monotone), so
        #: the agenda may keep its entries and re-verify them lazily.
        self.absent_types: tuple[type, ...] = tuple(
            {element.fact_type for element in when if isinstance(element, Absent)}
        )
        #: gates where any change forces a rebuild (Exists can enable new
        #: activations on insert; Collect rebinds on every change).
        self.hard_gate_types: tuple[type, ...] = tuple(
            {
                element.fact_type
                for element in when
                if hasattr(element, "fact_type")
                and not isinstance(element, (Pattern, Absent))
            }
        )

    def matches(
        self,
        memory: WorkingMemory,
        seed: Optional[dict] = None,
        restrict: Optional[tuple[int, Sequence[Fact]]] = None,
    ) -> list[dict]:
        """All binding dicts satisfying the full LHS.

        ``seed`` pre-populates the bindings every guard sees; sessions seed
        ``{"_globals": session.globals}`` so guards can reference
        configuration (thresholds etc.) just like Drools globals.

        ``restrict=(position, facts)`` limits the Pattern at that condition
        index to the given candidate facts — the delta-join primitive of
        the incremental agenda.
        """
        frontier: list[dict] = [dict(seed) if seed else {}]
        restrict_ids: Optional[set] = None
        if restrict is not None and len(restrict[1]) > 16:
            restrict_ids = {id(f) for f in restrict[1]}
        for position, element in enumerate(self.when):
            next_frontier: list[dict] = []
            if restrict is not None and position == restrict[0]:
                if restrict_ids is None:
                    # Few dirty facts: probing them directly is cheaper
                    # than an index lookup per binding.
                    for bindings in frontier:
                        next_frontier.extend(
                            element.expand_over(restrict[1], bindings)
                        )
                else:
                    # Large dirty set (batch insert): probe the element's
                    # (possibly keyed) access path and intersect — walking
                    # the whole dirty set per binding would be quadratic.
                    for bindings in frontier:
                        candidates = [
                            f
                            for f in element.candidates(memory, bindings)
                            if id(f) in restrict_ids
                        ]
                        next_frontier.extend(element.expand_over(candidates, bindings))
            else:
                for bindings in frontier:
                    next_frontier.extend(element.expand(memory, bindings))
            if not next_frontier:
                return []
            frontier = next_frontier
        return frontier

    def __repr__(self) -> str:  # pragma: no cover
        return f"Rule({self.name!r}, salience={self.salience})"


class ActivationContext:
    """What a rule action sees when it fires."""

    def __init__(self, session: "Session", rule: Rule, bindings: dict):
        self._session = session
        self.rule = rule
        self.bindings = bindings
        self.globals = session.globals

    def __getattr__(self, name: str) -> Any:
        try:
            return self.bindings[name]
        except KeyError:
            raise AttributeError(f"no binding named {name!r} in rule {self.rule.name!r}")

    # -- working-memory operations (attributed to the firing rule) ---------
    def insert(self, fact: Fact) -> Fact:
        return self._session.insert(fact, _modifier=self.rule.name)

    def update(self, fact: Fact, **changes: Any) -> Fact:
        return self._session.update(fact, _modifier=self.rule.name, **changes)

    def retract(self, fact: Fact) -> None:
        self._session.retract(fact)

    def halt(self) -> None:
        """Stop ``fire_all`` after this action returns."""
        self._session._halted = True


def _activation_key(memory: WorkingMemory, rule: Rule, bindings: dict):
    """Stable identity of an activation: rule + sorted matched fact ids."""
    fids = []
    versions = []
    for value in bindings.values():
        facts: Iterable[Fact]
        if isinstance(value, Fact):
            facts = (value,)
        elif isinstance(value, list):  # Collect binding
            facts = tuple(f for f in value if isinstance(f, Fact))
        else:
            continue
        for fact in facts:
            if memory.contains(fact):
                fids.append(memory.fid_of(fact))
                versions.append(memory.version_of(fact))
    order = sorted(range(len(fids)), key=lambda i: fids[i])
    return (
        rule.name,
        tuple(fids[i] for i in order),
        tuple(versions[i] for i in order),
    )


class _Agenda:
    """Computed activations of one rule, kept in sync with the memory."""

    __slots__ = ("stamp", "seq", "entries", "by_fid", "verify_gates")

    def __init__(self) -> None:
        self.stamp = -1
        self.seq = -1
        #: activation key -> bindings (insertion order = discovery order)
        self.entries: dict[tuple, dict] = {}
        #: fid -> set of activation keys referencing that fact
        self.by_fid: dict[int, set] = {}
        #: an Absent-gated fact was inserted since the last rebuild:
        #: entries must re-check their Absent gates before firing
        self.verify_gates = False

    def add(self, key: tuple, bindings: dict) -> None:
        if key in self.entries:
            return
        self.entries[key] = bindings
        for fid in key[1]:
            self.by_fid.setdefault(fid, set()).add(key)

    def drop_fact(self, fid: int) -> None:
        for key in self.by_fid.pop(fid, ()):
            if self.entries.pop(key, None) is not None:
                for other in key[1]:
                    if other != fid:
                        refs = self.by_fid.get(other)
                        if refs is not None:
                            refs.discard(key)

    def drop_key(self, key: tuple) -> None:
        if self.entries.pop(key, None) is not None:
            for fid in key[1]:
                refs = self.by_fid.get(fid)
                if refs is not None:
                    refs.discard(key)


class Session:
    """A stateful rule session over a working memory.

    Parameters
    ----------
    rules:
        The rule pack(s) to evaluate.  Definition order breaks salience ties.
    memory:
        An existing :class:`WorkingMemory` to share (the Policy Service keeps
        one long-lived memory across requests); a fresh one by default.
    globals:
        Named configuration values visible to actions via ``ctx.globals``.
    max_firings:
        Divergence guard per ``fire_all`` call.
    incremental:
        Maintain per-rule agendas updated from the memory change log
        (default).  ``False`` re-enumerates every match on every firing —
        the seed engine's behaviour, kept for benchmarks and equivalence
        tests.
    profiler:
        Optional :class:`repro.obs.profiler.RuleProfiler`.  When attached
        the session tallies per-rule match/action wall time, activation
        and fire counts, and samples the agenda size at each firing.
        ``None`` (the default) adds no timing calls to the hot path.
    tie_break:
        Optional ``(rule, order, key) -> rank`` hook replacing the default
        within-tier activation rank ``(fact-id tuple, definition order)``.
        The returned ranks must be mutually comparable; lower fires first.
        Used by the confluence verifier to permute agenda tie-breaks
        deterministically — production sessions leave it ``None``.
    """

    def __init__(
        self,
        rules: Sequence[Rule],
        memory: Optional[WorkingMemory] = None,
        globals: Optional[dict] = None,
        max_firings: int = 100_000,
        incremental: bool = True,
        profiler: Optional[Any] = None,
        tie_break: Optional[Callable[[Rule, int, tuple], Any]] = None,
    ):
        names = [r.name for r in rules]
        dupes = {n for n in names if names.count(n) > 1}
        if dupes:
            raise RuleEngineError(f"duplicate rule names: {sorted(dupes)}")
        self.rules = list(rules)
        self.memory = memory if memory is not None else WorkingMemory()
        # The dict is shared, not copied: long-lived state (e.g. the policy
        # service's group-id counter) must survive across sessions, and
        # actions mutate it via ``ctx.globals``.
        self.globals = globals if globals is not None else {}
        self.max_firings = int(max_firings)
        self.incremental = bool(incremental)
        self._fired: set = set()
        # rule name -> {fact-id tuple: versions at last firing}
        self._last_fired_versions: dict[str, dict[tuple, tuple]] = {}
        # rules grouped by salience (descending), definition order kept
        tiers: dict[int, list[tuple[int, Rule]]] = {}
        for order, rule in enumerate(self.rules):
            tiers.setdefault(rule.salience, []).append((order, rule))
        self._tiers = [tiers[s] for s in sorted(tiers, reverse=True)]
        self._match_cache: dict[str, tuple[int, list[dict]]] = {}
        self._agendas: dict[str, _Agenda] = {}
        self._halted = False
        self._tie_break = tie_break
        self.trace: list[str] = []
        self.trace_enabled = False
        #: optional ``(rule, bindings, ops)`` callback invoked after every
        #: firing with the change-log slice the action produced — the
        #: decision-provenance hook.  Lives here (not in subclasses) so
        #: all engines report identically.
        self.firing_listener: Optional[Callable[[Rule, dict, list], None]] = None
        self.profiler = profiler
        if profiler is not None:
            profiler.register(rule.name for rule in self.rules)

    # -- memory passthrough --------------------------------------------------
    def insert(self, fact: Fact, _modifier: Optional[str] = None) -> Fact:
        return self.memory.insert(fact, modifier=_modifier)

    def update(self, fact: Fact, _modifier: Optional[str] = None, **changes: Any) -> Fact:
        return self.memory.update(fact, modifier=_modifier, **changes)

    def retract(self, fact: Fact) -> None:
        self.memory.retract(fact)

    def insert_all(self, facts: Iterable[Fact]) -> None:
        for fact in facts:
            self.insert(fact)

    # -- firing ----------------------------------------------------------------
    def _suppressed_by_no_loop(self, rule: Rule, key: tuple) -> bool:
        if not rule.no_loop:
            return False
        prior = self._last_fired_versions.get(rule.name, {}).get(key[1])
        if prior is None:
            return False
        # Re-activation allowed only if some matched fact changed since the
        # last firing by someone other than this rule.
        changed_by_other = False
        for fid, old_v, new_v in zip(key[1], prior, key[2]):
            if new_v != old_v:
                fact = self.memory.fact_with_fid(fid)
                if fact is None:
                    return False  # fact replaced; treat as fresh
                if self.memory.modifier_of(fact) != rule.name:
                    changed_by_other = True
        return not changed_by_other

    # -- seed (full re-enumeration) matching ----------------------------------
    def _rule_matches(self, rule: Rule, seed: dict) -> list[dict]:
        """Match with type-stamp caching: a rule only re-matches after a
        fact of one of its referenced types changed."""
        stamp = self.memory.stamp(rule.types)
        cached = self._match_cache.get(rule.name)
        if cached is not None and cached[0] == stamp:
            return cached[1]
        profiler = self.profiler
        if profiler is not None:
            t0 = profiler.clock()
            matches = rule.matches(self.memory, seed)
            profiler.record_match(rule.name, len(matches), profiler.clock() - t0)
        else:
            matches = rule.matches(self.memory, seed)
        self._match_cache[rule.name] = (stamp, matches)
        return matches

    def _next_activation_full(self, seed: dict):
        # Rules grouped by salience tier, highest first; lower tiers are
        # only evaluated when every higher tier is quiescent.
        tie_break = self._tie_break
        for tier in self._tiers:
            best = None
            for order, rule in tier:
                for bindings in self._rule_matches(rule, seed):
                    key = _activation_key(self.memory, rule, bindings)
                    if key in self._fired:
                        continue
                    if self._suppressed_by_no_loop(rule, key):
                        continue
                    # Within a salience tier the oldest matched fact set
                    # fires first (FIFO); definition order breaks ties.
                    if tie_break is None:
                        rank = (key[1], order)
                    else:
                        rank = tie_break(rule, order, key)
                    if best is None or rank < best[0]:
                        best = (rank, rule, bindings, key)
            if best is not None:
                return best
        return None

    # -- incremental agenda ----------------------------------------------------
    def _rebuild_agenda(self, agenda: _Agenda, rule: Rule, seed: dict) -> None:
        agenda.entries.clear()
        agenda.by_fid.clear()
        agenda.verify_gates = False
        for bindings in rule.matches(self.memory, seed):
            agenda.add(_activation_key(self.memory, rule, bindings), bindings)

    def _delta_agenda(
        self, agenda: _Agenda, rule: Rule, seed: dict, dirty: list[tuple[int, Fact]]
    ) -> None:
        # 1. Any activation referencing a dirty fact is stale: its version
        #    changed (update), it is gone (retract), or its guards may now
        #    disagree.  Drop them all; step 2 re-derives the survivors.
        for fid, _fact in dirty:
            agenda.drop_fact(fid)
        # 2. Every new activation must bind at least one dirty fact at some
        #    Pattern position (gate elements force a full rebuild instead),
        #    so re-join with each position restricted to the dirty facts.
        live: list[Fact] = []
        seen_ids = set()
        for _fid, fact in dirty:
            if id(fact) not in seen_ids and self.memory.contains(fact):
                seen_ids.add(id(fact))
                live.append(fact)
        if not live:
            return
        for position, element in enumerate(rule.when):
            if not isinstance(element, Pattern):
                continue
            candidates = [f for f in live if isinstance(f, element.fact_type)]
            if not candidates:
                continue
            for bindings in rule.matches(self.memory, seed, restrict=(position, candidates)):
                agenda.add(_activation_key(self.memory, rule, bindings), bindings)

    def _sync_agenda(self, rule: Rule, seed: dict) -> _Agenda:
        agenda = self._agendas.get(rule.name)
        if agenda is None:
            agenda = self._agendas[rule.name] = _Agenda()
        stamp = self.memory.stamp(rule.types)
        if agenda.stamp == stamp:
            return agenda
        dirty: Optional[list[tuple[int, Fact]]] = None
        verify = False
        if agenda.seq >= 0:
            changes = self.memory.changes_since(agenda.seq)
            if changes is not None:
                relevant = [
                    (fid, fact, op)
                    for fid, fact, op in changes
                    if isinstance(fact, rule.types)
                ]
                rebuild = False
                for _fid, fact, op in relevant:
                    if rule.hard_gate_types and isinstance(fact, rule.hard_gate_types):
                        # Exists can be newly satisfied by an insert and
                        # Collect rebinds on any change: no delta possible.
                        rebuild = True
                        break
                    if rule.absent_types and isinstance(fact, rule.absent_types):
                        if op == "i" and self.memory.contains(fact):
                            # A new blocker can only invalidate existing
                            # activations — keep them, re-verify at fire
                            # time instead of rebuilding.
                            verify = True
                        else:
                            # An update may flip the Absent guard either
                            # way; a retract can enable activations that
                            # bind no dirty fact.  Only a rebuild finds
                            # those.
                            rebuild = True
                            break
                if not rebuild:
                    dirty = [(fid, fact) for fid, fact, _op in relevant]
        profiler = self.profiler
        before = len(agenda.entries)
        t0 = profiler.clock() if profiler is not None else 0.0
        if dirty is None:
            self._rebuild_agenda(agenda, rule, seed)
        else:
            self._delta_agenda(agenda, rule, seed, dirty)
            if verify:
                agenda.verify_gates = True
        if profiler is not None:
            profiler.record_match(
                rule.name,
                max(len(agenda.entries) - before, 0),
                profiler.clock() - t0,
            )
        agenda.stamp = stamp
        agenda.seq = self.memory.clock
        return agenda

    def _gates_still_pass(self, rule: Rule, bindings: dict) -> bool:
        """Re-check a stored activation's Absent gates against the memory."""
        for element in rule.when:
            if isinstance(element, Absent) and not element.expand(self.memory, bindings):
                return False
        return True

    def _next_activation_incremental(self, seed: dict):
        tie_break = self._tie_break
        for tier in self._tiers:
            best = None
            for order, rule in tier:
                agenda = self._sync_agenda(rule, seed)
                if not agenda.entries:
                    continue
                fired = self._fired
                stale: list[tuple] = []
                for key, bindings in agenda.entries.items():
                    if key in fired:
                        continue
                    if tie_break is None:
                        rank = (key[1], order)
                    else:
                        rank = tie_break(rule, order, key)
                    if best is not None and rank >= best[0]:
                        continue
                    if self._suppressed_by_no_loop(rule, key):
                        continue
                    if agenda.verify_gates and not self._gates_still_pass(
                        rule, bindings
                    ):
                        stale.append(key)
                        continue
                    best = (rank, rule, bindings, key)
                for key in stale:
                    agenda.drop_key(key)
            if best is not None:
                return best
        return None

    def _next_activation(self):
        seed = {"_globals": self.globals}
        if self.incremental:
            return self._next_activation_incremental(seed)
        return self._next_activation_full(seed)

    def _agenda_sample_size(self) -> int:
        """Computed-but-unfired activation count for profiler sampling.
        Subclasses with their own agenda representation override this."""
        if self.incremental:
            return sum(len(a.entries) for a in self._agendas.values())
        return sum(len(c[1]) for c in self._match_cache.values())

    def fire_all(self) -> int:
        """Fire activations until quiescence; returns the firing count."""
        fired = 0
        self._halted = False
        while not self._halted:
            chosen = self._next_activation()
            if chosen is None:
                break
            _rank, rule, bindings, key = chosen
            self._fired.add(key)
            self._last_fired_versions.setdefault(rule.name, {})[key[1]] = key[2]
            if self.trace_enabled:
                bound = {
                    k: (v.describe() if isinstance(v, Fact) else f"[{len(v)} facts]")
                    for k, v in bindings.items()
                    if isinstance(v, (Fact, list))
                }
                self.trace.append(f"FIRE {rule.name} {bound}")
            listener = self.firing_listener
            seq0 = self.memory.clock if listener is not None else 0
            profiler = self.profiler
            if profiler is not None:
                profiler.sample_agenda(self._agenda_sample_size())
                t0 = profiler.clock()
                rule.then(ActivationContext(self, rule, bindings))
                profiler.record_fire(rule.name, profiler.clock() - t0)
            else:
                rule.then(ActivationContext(self, rule, bindings))
            if listener is not None:
                listener(rule, bindings, self.memory.changes_since_verbose(seq0) or [])
            fired += 1
            if fired > self.max_firings:
                raise RuleEngineError(
                    f"fire_all exceeded {self.max_firings} firings; "
                    f"last rule: {rule.name!r} (diverging rule set?)"
                )
        return fired
