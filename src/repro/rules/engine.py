"""The rule engine: rules, agenda, activations, sessions.

Semantics (modelled on Drools):

* ``Session.fire_all()`` repeatedly (1) matches all rules against working
  memory producing *activations*, (2) orders them by (salience desc, fact
  arrival order, rule-definition order), (3) fires the first un-fired
  activation, then re-matches.  It stops when no new activation exists.
* **Refraction**: an activation is identified by (rule, matched fact ids,
  fact versions).  Once fired it never fires again unless one of its facts
  is updated (version bump) — exactly like Drools' tuple memory.
* **no_loop**: a rule marked ``no_loop=True`` will not re-activate when the
  only change to its matched facts since its last firing was made by the
  rule itself (prevents trivial self-loops on ``ctx.update``).
* A ``max_firings`` guard raises :class:`RuleEngineError` instead of
  spinning forever if a rule set diverges.

Actions receive an :class:`ActivationContext` giving attribute access to the
bindings plus ``insert`` / ``update`` / ``retract`` / ``halt`` and the
session ``globals`` dict (configuration values such as stream thresholds).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, Sequence

from repro.rules.facts import Fact, WorkingMemory
from repro.rules.patterns import Collect, ConditionElement

__all__ = ["Rule", "Session", "RuleEngineError", "ActivationContext"]


class RuleEngineError(RuntimeError):
    """Raised for diverging rule sets or malformed rules."""


class Rule:
    """A named production: condition elements + action.

    Parameters
    ----------
    name:
        Unique rule name (used in traces and refraction bookkeeping).
    when:
        Ordered condition elements (see :mod:`repro.rules.patterns`).
    then:
        ``action(ctx)`` callable run for each activation.
    salience:
        Higher fires earlier (Drools convention).  Default 0.
    no_loop:
        Suppress re-activation caused solely by this rule's own updates.
    """

    def __init__(
        self,
        name: str,
        when: Sequence[ConditionElement],
        then: Callable[["ActivationContext"], None],
        salience: int = 0,
        no_loop: bool = False,
    ):
        if not name:
            raise ValueError("rules require a name")
        if not callable(then):
            raise TypeError(f"rule {name!r}: action must be callable")
        when = list(when)
        if not when:
            raise ValueError(f"rule {name!r}: needs at least one condition element")
        for element in when:
            if not isinstance(element, ConditionElement):
                raise TypeError(
                    f"rule {name!r}: condition {element!r} is not a ConditionElement"
                )
        self.name = name
        self.when = when
        self.then = then
        self.salience = int(salience)
        self.no_loop = bool(no_loop)
        #: fact types this rule's conditions reference (for match caching)
        self.types: tuple[type, ...] = tuple(
            {element.fact_type for element in when if hasattr(element, "fact_type")}
        )

    def matches(self, memory: WorkingMemory, seed: Optional[dict] = None) -> list[dict]:
        """All binding dicts satisfying the full LHS.

        ``seed`` pre-populates the bindings every guard sees; sessions seed
        ``{"_globals": session.globals}`` so guards can reference
        configuration (thresholds etc.) just like Drools globals.
        """
        frontier: list[dict] = [dict(seed) if seed else {}]
        for element in self.when:
            next_frontier: list[dict] = []
            for bindings in frontier:
                next_frontier.extend(element.expand(memory, bindings))
            if not next_frontier:
                return []
            frontier = next_frontier
        return frontier

    def __repr__(self) -> str:  # pragma: no cover
        return f"Rule({self.name!r}, salience={self.salience})"


class ActivationContext:
    """What a rule action sees when it fires."""

    def __init__(self, session: "Session", rule: Rule, bindings: dict):
        self._session = session
        self.rule = rule
        self.bindings = bindings
        self.globals = session.globals

    def __getattr__(self, name: str) -> Any:
        try:
            return self.bindings[name]
        except KeyError:
            raise AttributeError(f"no binding named {name!r} in rule {self.rule.name!r}")

    # -- working-memory operations (attributed to the firing rule) ---------
    def insert(self, fact: Fact) -> Fact:
        return self._session.insert(fact, _modifier=self.rule.name)

    def update(self, fact: Fact, **changes: Any) -> Fact:
        return self._session.update(fact, _modifier=self.rule.name, **changes)

    def retract(self, fact: Fact) -> None:
        self._session.retract(fact)

    def halt(self) -> None:
        """Stop ``fire_all`` after this action returns."""
        self._session._halted = True


def _activation_key(memory: WorkingMemory, rule: Rule, bindings: dict):
    """Stable identity of an activation: rule + sorted matched fact ids."""
    fids = []
    versions = []
    for value in bindings.values():
        facts: Iterable[Fact]
        if isinstance(value, Fact):
            facts = (value,)
        elif isinstance(value, list):  # Collect binding
            facts = tuple(f for f in value if isinstance(f, Fact))
        else:
            continue
        for fact in facts:
            if memory.contains(fact):
                fids.append(memory.fid_of(fact))
                versions.append(memory.version_of(fact))
    order = sorted(range(len(fids)), key=lambda i: fids[i])
    return (
        rule.name,
        tuple(fids[i] for i in order),
        tuple(versions[i] for i in order),
    )


class Session:
    """A stateful rule session over a working memory.

    Parameters
    ----------
    rules:
        The rule pack(s) to evaluate.  Definition order breaks salience ties.
    memory:
        An existing :class:`WorkingMemory` to share (the Policy Service keeps
        one long-lived memory across requests); a fresh one by default.
    globals:
        Named configuration values visible to actions via ``ctx.globals``.
    max_firings:
        Divergence guard per ``fire_all`` call.
    """

    def __init__(
        self,
        rules: Sequence[Rule],
        memory: Optional[WorkingMemory] = None,
        globals: Optional[dict] = None,
        max_firings: int = 100_000,
    ):
        names = [r.name for r in rules]
        dupes = {n for n in names if names.count(n) > 1}
        if dupes:
            raise RuleEngineError(f"duplicate rule names: {sorted(dupes)}")
        self.rules = list(rules)
        self.memory = memory if memory is not None else WorkingMemory()
        # The dict is shared, not copied: long-lived state (e.g. the policy
        # service's group-id counter) must survive across sessions, and
        # actions mutate it via ``ctx.globals``.
        self.globals = globals if globals is not None else {}
        self.max_firings = int(max_firings)
        self._fired: set = set()
        # rule name -> {fact-id tuple: versions at last firing}
        self._last_fired_versions: dict[str, dict[tuple, tuple]] = {}
        # rules grouped by salience (descending), definition order kept
        tiers: dict[int, list[tuple[int, Rule]]] = {}
        for order, rule in enumerate(self.rules):
            tiers.setdefault(rule.salience, []).append((order, rule))
        self._tiers = [tiers[s] for s in sorted(tiers, reverse=True)]
        self._match_cache: dict[str, tuple[int, list[dict]]] = {}
        self._halted = False
        self.trace: list[str] = []
        self.trace_enabled = False

    # -- memory passthrough --------------------------------------------------
    def insert(self, fact: Fact, _modifier: Optional[str] = None) -> Fact:
        return self.memory.insert(fact, modifier=_modifier)

    def update(self, fact: Fact, _modifier: Optional[str] = None, **changes: Any) -> Fact:
        return self.memory.update(fact, modifier=_modifier, **changes)

    def retract(self, fact: Fact) -> None:
        self.memory.retract(fact)

    def insert_all(self, facts: Iterable[Fact]) -> None:
        for fact in facts:
            self.insert(fact)

    # -- firing ----------------------------------------------------------------
    def _suppressed_by_no_loop(self, rule: Rule, key: tuple) -> bool:
        if not rule.no_loop:
            return False
        prior = self._last_fired_versions.get(rule.name, {}).get(key[1])
        if prior is None:
            return False
        # Re-activation allowed only if some matched fact changed since the
        # last firing by someone other than this rule.
        changed_by_other = False
        for fid, old_v, new_v in zip(key[1], prior, key[2]):
            if new_v != old_v:
                fact = next(
                    (f for f in self.memory if self.memory.fid_of(f) == fid), None
                )
                if fact is None:
                    return False  # fact replaced; treat as fresh
                if self.memory.modifier_of(fact) != rule.name:
                    changed_by_other = True
        return not changed_by_other

    def _rule_matches(self, rule: Rule, seed: dict) -> list[dict]:
        """Match with type-stamp caching: a rule only re-matches after a
        fact of one of its referenced types changed."""
        stamp = self.memory.stamp(rule.types)
        cached = self._match_cache.get(rule.name)
        if cached is not None and cached[0] == stamp:
            return cached[1]
        matches = rule.matches(self.memory, seed)
        self._match_cache[rule.name] = (stamp, matches)
        return matches

    def _next_activation(self):
        seed = {"_globals": self.globals}
        # Rules grouped by salience tier, highest first; lower tiers are
        # only evaluated when every higher tier is quiescent.
        for tier in self._tiers:
            best = None
            for order, rule in tier:
                for bindings in self._rule_matches(rule, seed):
                    key = _activation_key(self.memory, rule, bindings)
                    if key in self._fired:
                        continue
                    if self._suppressed_by_no_loop(rule, key):
                        continue
                    # Within a salience tier the oldest matched fact set
                    # fires first (FIFO); definition order breaks ties.
                    rank = (key[1], order)
                    if best is None or rank < best[0]:
                        best = (rank, rule, bindings, key)
            if best is not None:
                return best
        return None

    def fire_all(self) -> int:
        """Fire activations until quiescence; returns the firing count."""
        fired = 0
        self._halted = False
        while not self._halted:
            chosen = self._next_activation()
            if chosen is None:
                break
            _rank, rule, bindings, key = chosen
            self._fired.add(key)
            self._last_fired_versions.setdefault(rule.name, {})[key[1]] = key[2]
            if self.trace_enabled:
                bound = {
                    k: (v.describe() if isinstance(v, Fact) else f"[{len(v)} facts]")
                    for k, v in bindings.items()
                    if isinstance(v, (Fact, list))
                }
                self.trace.append(f"FIRE {rule.name} {bound}")
            rule.then(ActivationContext(self, rule, bindings))
            fired += 1
            if fired > self.max_firings:
                raise RuleEngineError(
                    f"fire_all exceeded {self.max_firings} firings; "
                    f"last rule: {rule.name!r} (diverging rule set?)"
                )
        return fired
