"""A forward-chaining production rule engine (Drools-flavoured).

The paper implements its Policy Service on the Drools open-source rule
engine: policies are declarative rules evaluated against facts held in a
persistent *policy memory*.  This package is our from-scratch substrate for
that role.

Concepts
--------
``Fact``
    Base class for objects placed in working memory.  Facts are mutable;
    every update bumps a version counter used for refraction.
``WorkingMemory``
    The fact store with per-type indexes and insert/update/retract.
``Pattern`` / ``Absent`` / ``Collect`` / ``Test``
    Rule condition elements: positive match, negation-as-absence,
    collect-all (Drools ``collect``), and pure guard over bindings.
``Rule``
    Named conditions + action with a salience (priority) and optional
    ``no_loop`` protection.
``Session``
    A stateful engine session: insert facts, ``fire_all()`` until quiescent.
    Matches Drools' KieSession in spirit (agenda, salience order,
    refraction so an activation fires once per fact-version combination).
"""

from repro.rules.compiler import CompiledRuleset, compile_rules, fast_path_report
from repro.rules.engine import Rule, RuleEngineError, Session
from repro.rules.facts import Fact, WorkingMemory
from repro.rules.network import CompiledSession, JoinNetwork
from repro.rules.patterns import Absent, Collect, Exists, Pattern, Test

__all__ = [
    "Absent",
    "Collect",
    "CompiledRuleset",
    "CompiledSession",
    "Exists",
    "Fact",
    "JoinNetwork",
    "Pattern",
    "Rule",
    "RuleEngineError",
    "Session",
    "Test",
    "WorkingMemory",
    "compile_rules",
    "fast_path_report",
]
