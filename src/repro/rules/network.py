"""TREAT-style join network with memoized partial matches and lazy probes.

This is the runtime of the compiled engine (see
:mod:`repro.rules.compiler` for the static pass).  One
:class:`JoinNetwork` evaluates one rule pack against one working memory,
driven by the memory's change log:

* **Beta memories** — for every ``join``-plan rule and every position
  ``p``, the network memoizes the binding prefixes that satisfy
  positions ``0..p-1``, bucketed by the values position ``p``'s join key
  computes from the prefix.  A dirty fact at position ``p`` joins only
  its bucket instead of re-enumerating the frontier.
* **Lazy probes** — a dirty fact at the **last** position (the
  allocation counters updated by every firing) does not join its bucket
  eagerly.  A probe walks the bucket in activation-rank order and only
  materializes the next candidate; each firing therefore costs
  ``O(log n)`` bookkeeping instead of the ``O(n)`` frontier re-join that
  made the indexed engine quadratic over a batch.
* **Candidate heap** — candidates from all rules land in per-salience
  rank heaps keyed ``(sorted fact ids, definition order)``, the exact
  activation order of the interpreted engines.  Entries are validated at
  pop time (facts live, guards and gates re-evaluated against current
  memory), so the store only ever needs to be a *superset* of the true
  activations: the first valid pop is provably the same activation the
  seed and indexed engines would fire.

:class:`CompiledSession` plugs the network into the ordinary
:class:`~repro.rules.engine.Session` firing loop, inheriting refraction,
``no_loop`` suppression, tracing, profiling, and the divergence guard —
advice is byte-identical across ``seed``, ``indexed``, and ``compiled``.
"""

from __future__ import annotations

import heapq
from bisect import bisect_right, insort
from typing import Any, Optional, Sequence

from repro.rules.compiler import (
    PLAN_JOIN,
    CompiledRuleset,
    RulePlan,
    compile_rules,
)
from repro.rules.engine import Rule, Session, _activation_key
from repro.rules.facts import Fact, WorkingMemory
from repro.rules.patterns import Absent, Pattern, _check

__all__ = ["JoinNetwork", "CompiledSession"]

_MISSING = object()


class _PrefixEntry:
    """A memoized partial match: bindings satisfying positions 0..p-1."""

    __slots__ = ("fids", "rank", "bindings", "facts", "bucket_key", "alive")

    def __init__(self, fids: tuple, bindings: dict, facts: tuple, bucket_key):
        self.fids = fids                     # position-ordered fact ids
        self.rank = tuple(sorted(fids))      # activation-rank prefix
        self.bindings = bindings
        self.facts = facts                   # position-ordered facts
        self.bucket_key = bucket_key
        self.alive = True


class _Bucket:
    """Rank-sorted slots of one beta-memory bucket, with tombstones.

    ``gen`` counts structural changes (inserts and compactions) so probe
    cursors know when their saved index into ``ranked`` went stale and a
    marker re-bisect is needed; between changes a cursor walks by plain
    index increments.
    """

    __slots__ = ("ranked", "inlist", "dead", "gen")

    def __init__(self) -> None:
        self.ranked: list[tuple[tuple, tuple]] = []  # (rank, fids), sorted
        self.inlist: set = set()
        self.dead = 0
        self.gen = 0

    def add(self, entry: _PrefixEntry) -> None:
        if entry.fids in self.inlist:
            return
        insort(self.ranked, (entry.rank, entry.fids))
        self.inlist.add(entry.fids)
        self.gen += 1

    def compact(self, entries: dict) -> None:
        live = [
            slot for slot in self.ranked
            if (e := entries.get(slot[1])) is not None
            and e.alive and e.rank == slot[0]
        ]
        self.ranked = live
        self.inlist = {fids for _rank, fids in live}
        self.dead = 0
        self.gen += 1


class _PrefixStore:
    """Beta memory feeding one join position of one rule."""

    __slots__ = ("key_attrs", "key_fns", "entries", "by_fid", "buckets", "wildcard")

    def __init__(self, position) -> None:
        element = position.element
        self.key_attrs = position.key_attrs
        self.key_fns = (
            [element.keys[a] for a in position.key_attrs]
            if position.key_attrs is not None else None
        )
        self.entries: dict[tuple, _PrefixEntry] = {}
        self.by_fid: dict[int, set] = {}
        self.buckets: dict[tuple, _Bucket] = {}
        self.wildcard = _Bucket()

    def _entry_bucket(self, bindings: dict) -> tuple[Optional[tuple], _Bucket]:
        if self.key_fns is None:
            return None, self.wildcard
        try:
            key = tuple(fn(bindings) for fn in self.key_fns)
        except AttributeError:
            # Mirrors Pattern.candidates: a key fn that cannot be computed
            # falls back to the unkeyed path (the guard still decides).
            return None, self.wildcard
        bucket = self.buckets.get(key)
        if bucket is None:
            bucket = self.buckets[key] = _Bucket()
        return key, bucket

    def add(self, fids: tuple, bindings: dict, facts: tuple) -> Optional[_PrefixEntry]:
        existing = self.entries.get(fids)
        if existing is not None and existing.alive:
            return None
        key, bucket = self._entry_bucket(bindings)
        entry = _PrefixEntry(fids, bindings, facts, key)
        self.entries[fids] = entry
        for fid in fids:
            self.by_fid.setdefault(fid, set()).add(fids)
        bucket.add(entry)
        return entry

    def discard_fid(self, fid: int) -> None:
        for fids in self.by_fid.pop(fid, ()):
            entry = self.entries.get(fids)
            if entry is None or not entry.alive:
                continue
            entry.alive = False
            del self.entries[fids]
            for other in fids:
                if other != fid:
                    refs = self.by_fid.get(other)
                    if refs is not None:
                        refs.discard(fids)
            bucket = (
                self.wildcard if entry.bucket_key is None
                else self.buckets.get(entry.bucket_key)
            )
            if bucket is not None:
                bucket.dead += 1
                # Fired prefixes die in rank order, piling tombstones at
                # the front of the ranked list where every fresh probe
                # starts its walk — compact early (bounds a probe's dead
                # skips at len/16) but proportionally (a big bucket with
                # scattered deaths still compacts only O(log) times).
                if bucket.dead > 8 and bucket.dead * 16 >= len(bucket.ranked):
                    bucket.compact(self.entries)

    def buckets_for_fact(self, fact: Fact) -> tuple[_Bucket, _Bucket]:
        """The keyed bucket matching ``fact`` plus the wildcard bucket."""
        if self.key_attrs is None:
            return self.wildcard, self.wildcard
        key = tuple(getattr(fact, a, _MISSING) for a in self.key_attrs)
        bucket = self.buckets.get(key)
        if bucket is None or bucket is self.wildcard:
            return self.wildcard, self.wildcard
        return bucket, self.wildcard

    def live_in(self, bucket: _Bucket):
        entries = self.entries
        for _rank, fids in bucket.ranked:
            entry = entries.get(fids)
            if entry is not None and entry.alive:
                yield entry


class _Cand:
    """A stored candidate activation (a superset member, validated at pop)."""

    __slots__ = ("key_fids", "facts", "bindings", "alive")

    def __init__(self, key_fids: tuple, facts: tuple, bindings: dict):
        self.key_fids = key_fids   # sorted bound fids = agenda rank
        self.facts = facts         # position-ordered Pattern facts (None if unbound)
        self.bindings = bindings
        self.alive = True


class _Probe:
    """Lazy enumeration of one dirty last-position fact against the
    prefix frontier, in activation-rank order.

    The cursor into each bucket is a plain index validated against the
    bucket's ``gen``; the rank marker (last consumed slot) is only used
    to re-bisect after the bucket mutated underneath the probe, so the
    steady-state walk costs O(1) per slot instead of O(log n)."""

    __slots__ = ("driver", "fid", "store", "bucket", "wildcard",
                 "marker_b", "marker_w", "gen_b", "gen_w",
                 "next_b", "next_w", "alive")

    def __init__(self, driver: Fact, fid: int, store: _PrefixStore):
        self.driver = driver
        self.fid = fid
        self.store = store
        self.bucket, self.wildcard = store.buckets_for_fact(driver)
        start = ((), ())
        self.marker_b = start
        self.marker_w = start
        self.gen_b = -1
        self.gen_w = -1
        self.next_b = 0
        self.next_w = 0
        self.alive = True

    def next_entry(self) -> Optional[_PrefixEntry]:
        """The next live prefix entry in rank order (guards not applied)."""
        bucket, wildcard = self.bucket, self.wildcard
        same = bucket is wildcard
        if self.gen_b != bucket.gen:
            self.gen_b = bucket.gen
            self.next_b = bisect_right(bucket.ranked, self.marker_b)
        if not same and self.gen_w != wildcard.gen:
            self.gen_w = wildcard.gen
            self.next_w = bisect_right(wildcard.ranked, self.marker_w)
        ranked_b = bucket.ranked
        ranked_w = wildcard.ranked
        entries = self.store.entries
        while True:
            slot_b = ranked_b[self.next_b] if self.next_b < len(ranked_b) else None
            slot_w = (
                None if same
                else ranked_w[self.next_w] if self.next_w < len(ranked_w) else None
            )
            if slot_b is None and slot_w is None:
                return None
            if slot_w is None or (slot_b is not None and slot_b <= slot_w):
                slot = slot_b
                self.marker_b = slot
                self.next_b += 1
                if same:
                    self.marker_w = slot
            else:
                slot = slot_w
                self.marker_w = slot
                self.next_w += 1
            entry = entries.get(slot[1])
            if entry is not None and entry.alive and entry.rank == slot[0]:
                return entry


class _RuleState:
    """Per-network runtime state of one rule."""

    __slots__ = ("plan", "tier", "cands", "by_fid", "stores", "probes")

    def __init__(self, plan: RulePlan, tier: int):
        self.plan = plan
        self.tier = tier
        self.cands: dict[tuple, _Cand] = {}
        self.by_fid: dict[int, set] = {}
        # join plans: beta memory feeding position p lives at stores[p]
        # (prefixes over positions 0..p-1); stores[0] is unused.
        self.stores: list[Optional[_PrefixStore]] = []
        self.probes: dict[int, _Probe] = {}


class JoinNetwork:
    """Runtime join network over one working memory (see module docs)."""

    def __init__(
        self,
        ruleset: CompiledRuleset,
        memory: WorkingMemory,
        globals_dict: dict,
        profiler: Optional[Any] = None,
    ):
        self.ruleset = ruleset
        self.memory = memory
        self.seed = {"_globals": globals_dict}
        self.profiler = profiler
        self._serial = 0
        self._seq = -1
        self._states: dict[str, _RuleState] = {}
        self._heaps: list[list] = [[] for _ in ruleset.tiers]
        self._build_all()

    # ------------------------------------------------------------- build
    def _build_all(self) -> None:
        self._states.clear()
        self._heaps = [[] for _ in self.ruleset.tiers]
        for tier_index, tier in enumerate(self.ruleset.tiers):
            for plan in tier:
                state = _RuleState(plan, tier_index)
                self._states[plan.rule.name] = state
        # Build in definition order so candidate discovery order (the
        # heap tie-breaker) matches the interpreted engines' enumeration.
        for plan in self.ruleset.plans:
            self._build_rule(self._states[plan.rule.name])
        self._seq = self.memory.clock

    def _build_rule(self, state: _RuleState) -> None:
        plan = state.plan
        profiler = self.profiler
        t0 = profiler.clock() if profiler is not None else 0.0
        before = len(state.cands)
        if plan.kind == PLAN_JOIN:
            state.stores = [None] + [
                _PrefixStore(pos) for pos in plan.positions[1:]
            ]
            memory = self.memory
            frontier = [((), self.seed, ())]
            for pos in plan.positions[:-1]:
                element = pos.element
                store = state.stores[pos.index + 1]
                nxt = []
                for fids, bindings, facts in frontier:
                    for fact in element.candidates(memory, bindings):
                        if not _check(element.where, fact, bindings):
                            continue
                        nb = dict(bindings)
                        nb[element.binding] = fact
                        child = (fids + (memory.fid_of(fact),), nb, facts + (fact,))
                        store.add(*child)
                        nxt.append(child)
                frontier = nxt
                if not frontier:
                    break
            last = plan.positions[-1].element
            for fids, bindings, facts in frontier:
                for fact in last.candidates(memory, bindings):
                    if _check(last.where, fact, bindings):
                        nb = dict(bindings)
                        nb[last.binding] = fact
                        self._add_cand(state, facts + (fact,), nb)
        else:
            self._rebuild_delta(state)
        if profiler is not None:
            profiler.record_match(
                plan.rule.name, len(state.cands) - before, profiler.clock() - t0
            )

    def _rebuild_delta(self, state: _RuleState) -> None:
        """(Re)enumerate a delta-plan rule from scratch."""
        self._drop_all(state)
        rule = state.plan.rule
        for bindings in rule.matches(self.memory, self.seed):
            facts = tuple(
                bindings.get(pos.binding) if pos.binding else None
                for pos in state.plan.positions
            )
            self._add_cand(state, facts, bindings)

    # ------------------------------------------------------- candidates
    def _add_cand(self, state: _RuleState, facts: tuple, bindings: dict) -> None:
        memory = self.memory
        key_fids = _activation_key(memory, state.plan.rule, bindings)[1]
        existing = state.cands.get(key_fids)
        if existing is not None and existing.alive:
            return
        cand = _Cand(key_fids, facts, bindings)
        state.cands[key_fids] = cand
        for fid in key_fids:
            state.by_fid.setdefault(fid, set()).add(key_fids)
        self._push(state, key_fids, ("c", state, cand))

    def _push(self, state: _RuleState, rank: tuple, payload: tuple) -> None:
        self._serial += 1
        heapq.heappush(
            self._heaps[state.tier],
            (rank, state.plan.order, self._serial, payload),
        )

    def _drop_fid(self, state: _RuleState, fid: int) -> None:
        for key_fids in state.by_fid.pop(fid, ()):
            cand = state.cands.get(key_fids)
            if cand is None or not cand.alive:
                continue
            cand.alive = False
            del state.cands[key_fids]
            for other in key_fids:
                if other != fid:
                    refs = state.by_fid.get(other)
                    if refs is not None:
                        refs.discard(key_fids)

    def _drop_all(self, state: _RuleState) -> None:
        for cand in state.cands.values():
            cand.alive = False
        state.cands.clear()
        state.by_fid.clear()

    # ------------------------------------------------------------- sync
    def sync(self) -> None:
        memory = self.memory
        if self._seq == memory.clock:
            return
        changes = memory.changes_since_verbose(self._seq)
        if changes is None:
            # Fell behind the bounded change log: rebuild everything.
            self._build_all()
            return
        self._seq = memory.clock
        # Group mutations per rule, preserving arrival order.
        per_rule: dict[str, list] = {}
        dispatch = self.ruleset.dispatch
        for change in changes:
            for plan, info in dispatch(type(change[1])):
                per_rule.setdefault(plan.rule.name, []).append(change)
        profiler = self.profiler
        for name, dirty in per_rule.items():
            state = self._states[name]
            t0 = profiler.clock() if profiler is not None else 0.0
            before = len(state.cands)
            self._sync_rule(state, dirty)
            if profiler is not None:
                profiler.record_match(
                    name, max(len(state.cands) - before, 0), profiler.clock() - t0
                )

    def _sync_rule(self, state: _RuleState, dirty: list) -> None:
        plan = state.plan
        rule = plan.rule
        if plan.kind != PLAN_JOIN:
            if self._gates_dirty(plan, dirty):
                self._rebuild_delta(state)
                return
            self._delta_patterns(state, dirty)
            return
        self._sync_join(state, dirty)

    @staticmethod
    def _gates_dirty(plan: RulePlan, dirty: list) -> bool:
        """Could any of these mutations flip an Absent/Exists/Collect gate?

        Only a flip *towards* matching forces a rebuild — gates flipping
        away are caught by pop-time validation.  An ``Absent`` insert can
        only invalidate, and an update whose changed attributes are
        disjoint from the gate's declared ``reads`` provably leaves the
        gate's truth (and a Collect's membership) untouched.
        """
        for _fid, fact, op, changed in dirty:
            for gate in plan.gates:
                if not isinstance(fact, gate.fact_type):
                    continue
                if op == "i" and isinstance(gate, Absent):
                    continue
                if (
                    op == "u"
                    and changed is not None
                    and gate.reads is not None
                    and changed.isdisjoint(gate.reads)
                ):
                    continue
                return True
        return False

    def _delta_patterns(self, state: _RuleState, dirty: list) -> None:
        """Delta plan: drop touched candidates, re-join dirty facts at
        every Pattern position (the incremental agenda's strategy)."""
        memory = self.memory
        rule = state.plan.rule
        for fid, _fact, _op, _ch in dirty:
            self._drop_fid(state, fid)
        live: list[Fact] = []
        seen: set[int] = set()
        for _fid, fact, _op, _ch in dirty:
            if id(fact) not in seen and memory.contains(fact):
                seen.add(id(fact))
                live.append(fact)
        if not live:
            return
        for pos in state.plan.positions:
            candidates = [f for f in live if isinstance(f, pos.fact_type)]
            if not candidates:
                continue
            for bindings in rule.matches(
                memory, self.seed, restrict=(pos.index, candidates)
            ):
                facts = tuple(
                    bindings.get(p.binding) if p.binding else None
                    for p in state.plan.positions
                )
                self._add_cand(state, facts, bindings)

    def _sync_join(self, state: _RuleState, dirty: list) -> None:
        memory = self.memory
        plan = state.plan
        positions = plan.positions
        last_index = len(positions) - 1
        # 1. Tombstone everything referencing a dirty fact.
        seen_fids: set[int] = set()
        for fid, _fact, _op, _ch in dirty:
            if fid in seen_fids:
                continue
            seen_fids.add(fid)
            self._drop_fid(state, fid)
            for store in state.stores[1:]:
                store.discard_fid(fid)
            probe = state.probes.pop(fid, None)
            if probe is not None:
                probe.alive = False
        # 2. Live dirty facts per position.
        live: list[Fact] = []
        seen_ids: set[int] = set()
        for _fid, fact, _op, _ch in dirty:
            if id(fact) not in seen_ids and memory.contains(fact):
                seen_ids.add(id(fact))
                live.append(fact)
        if not live:
            return
        # 3. Re-derive prefixes left to right; cascades stay eager (a
        #    dirty transfer joins few counters), only the last position's
        #    dirt goes lazy (a dirty counter joins the whole frontier).
        added: list[list[_PrefixEntry]] = [[] for _ in range(len(positions) + 1)]
        for p, pos in enumerate(positions[:-1]):
            element = pos.element
            store = state.stores[p + 1]
            if p == 0:
                for fact in live:
                    if not isinstance(fact, pos.fact_type):
                        continue
                    if _check(element.where, fact, self.seed):
                        nb = dict(self.seed)
                        nb[element.binding] = fact
                        entry = store.add(
                            (memory.fid_of(fact),), nb, (fact,)
                        )
                        if entry is not None:
                            added[1].append(entry)
            else:
                source = state.stores[p]
                for fact in live:
                    if not isinstance(fact, pos.fact_type):
                        continue
                    bucket, wildcard = source.buckets_for_fact(fact)
                    seen_prefix: set = set()
                    for b in (bucket, wildcard):
                        for prefix in source.live_in(b):
                            if prefix.fids in seen_prefix:
                                continue
                            seen_prefix.add(prefix.fids)
                            if _check(element.where, fact, prefix.bindings):
                                nb = dict(prefix.bindings)
                                nb[element.binding] = fact
                                entry = store.add(
                                    prefix.fids + (memory.fid_of(fact),),
                                    nb, prefix.facts + (fact,),
                                )
                                if entry is not None:
                                    added[p + 1].append(entry)
                # New prefixes from earlier positions extend over the full
                # extent at this position.
                for prefix in added[p]:
                    if not prefix.alive:
                        continue
                    for fact in element.candidates(memory, prefix.bindings):
                        if _check(element.where, fact, prefix.bindings):
                            nb = dict(prefix.bindings)
                            nb[element.binding] = fact
                            entry = store.add(
                                prefix.fids + (memory.fid_of(fact),),
                                nb, prefix.facts + (fact,),
                            )
                            if entry is not None:
                                added[p + 1].append(entry)
        # 4. Last position: eager extension of new prefixes...
        last = positions[-1].element
        for prefix in added[last_index]:
            if not prefix.alive:
                continue
            for fact in last.candidates(memory, prefix.bindings):
                if _check(last.where, fact, prefix.bindings):
                    nb = dict(prefix.bindings)
                    nb[last.binding] = fact
                    self._add_cand(state, prefix.facts + (fact,), nb)
        # ... and a lazy probe per dirty last-position fact.
        for fact in live:
            if not isinstance(fact, positions[-1].fact_type):
                continue
            fid = memory.fid_of(fact)
            probe = _Probe(fact, fid, state.stores[last_index])
            state.probes[fid] = probe
            self._advance_probe(state, probe)

    def _advance_probe(self, state: _RuleState, probe: _Probe) -> None:
        """Push the probe's next head into the heap, guard *unchecked*.

        The head is only a rank claim — pop-time validation applies the
        guard.  Deferring the check is what makes probes O(1) per
        firing: a rule whose guard currently rejects everything (e.g. a
        partial-grant variant while the pool still has room) never pops,
        because a better candidate of equal rank and earlier definition
        order wins the heap, so its probe never walks the frontier."""
        if not probe.alive:
            return
        entry = probe.next_entry()
        if entry is None:
            return
        if self.profiler is not None:
            self.profiler.record_node(state.plan.rule.name, "probe_steps")
        rank = tuple(sorted(entry.fids + (probe.fid,)))
        self._push(state, rank, ("p", state, probe, entry))

    # -------------------------------------------------------------- pop
    def next_activation(self, session: Session):
        """The next fireable activation, or None — same contract as
        ``Session._next_activation_incremental``."""
        self.sync()
        memory = self.memory
        for heap in self._heaps:
            while heap:
                rank, order, _serial, payload = heapq.heappop(heap)
                kind = payload[0]
                if kind == "c":
                    _tag, state, cand = payload
                    if not cand.alive:
                        continue
                    result = self._validate(session, state, cand.facts, rank, order)
                    if result == "dead":
                        cand.alive = False
                        state.cands.pop(cand.key_fids, None)
                        for fid in cand.key_fids:
                            refs = state.by_fid.get(fid)
                            if refs is not None:
                                refs.discard(cand.key_fids)
                        continue
                    if result == "skip":
                        continue
                    if result is not None:
                        return result
                    continue
                _tag, state, probe, entry = payload
                if not probe.alive:
                    continue
                # Keep the probe chain alive before handling this head.
                self._advance_probe(state, probe)
                if not entry.alive:
                    continue
                existing = state.cands.get(rank)
                if existing is not None and existing.alive:
                    continue  # already covered by an eager candidate
                result = self._validate(
                    session, state, entry.facts + (probe.driver,), rank, order
                )
                if result in ("dead", "skip"):
                    continue
                if result is not None:
                    return result
        return None

    def _validate(self, session: Session, state: _RuleState, facts: tuple,
                  rank: tuple, order: int):
        """Re-evaluate a candidate against current memory.

        Returns the ``(rank, rule, bindings, key)`` tuple when the
        activation is live and fireable, ``"dead"`` when it is no longer
        a match (drop and await re-derivation), ``"skip"`` when it is a
        match but must not fire now (refraction / ``no_loop``)."""
        memory = self.memory
        rule = state.plan.rule
        bindings = dict(self.seed)
        pattern_at = {pos.index: i for i, pos in enumerate(state.plan.positions)}
        for index, element in enumerate(rule.when):
            if isinstance(element, Pattern):
                i = pattern_at[index]
                fact = facts[i] if i < len(facts) else None
                if fact is None:
                    # Unbound pattern (delta plan): existential re-check.
                    if not element.expand(memory, bindings):
                        return "dead"
                    continue
                if not memory.contains(fact):
                    return "dead"
                if not _check(element.where, fact, bindings):
                    return "dead"
                if element.binding:
                    bindings[element.binding] = fact
            else:
                expanded = element.expand(memory, bindings)
                if not expanded:
                    return "dead"
                bindings = expanded[0]
        key = _activation_key(memory, rule, bindings)
        if key in session._fired:
            return "skip"
        if session._suppressed_by_no_loop(rule, key):
            return "dead"
        return ((key[1], order), rule, bindings, key)

    # ------------------------------------------------------------ stats
    def candidate_count(self) -> int:
        return sum(len(s.cands) for s in self._states.values())


class CompiledSession(Session):
    """A :class:`~repro.rules.engine.Session` whose agenda is a
    :class:`JoinNetwork` (the ``engine="compiled"`` runtime).

    Accepts a pre-built :class:`~repro.rules.compiler.CompiledRuleset`
    so long-lived callers (the Policy Service) compile their pack once;
    compiles on the fly otherwise.  Everything else — refraction,
    ``no_loop``, tracing, profiler hooks, ``max_firings`` — is inherited,
    and the firing sequence is identical to the interpreted engines.
    """

    def __init__(
        self,
        rules: Sequence[Rule],
        memory: Optional[WorkingMemory] = None,
        globals: Optional[dict] = None,
        max_firings: int = 100_000,
        profiler: Optional[Any] = None,
        ruleset: Optional[CompiledRuleset] = None,
    ):
        super().__init__(
            rules, memory=memory, globals=globals, max_firings=max_firings,
            incremental=False, profiler=profiler,
        )
        if ruleset is not None and ruleset.rules != list(rules):
            raise ValueError("ruleset was compiled from a different rule pack")
        self.ruleset = ruleset if ruleset is not None else compile_rules(self.rules)
        self.network: Optional[JoinNetwork] = None

    def _next_activation(self):
        if self.network is None:
            self.network = JoinNetwork(
                self.ruleset, self.memory, self.globals, profiler=self.profiler
            )
        return self.network.next_activation(self)

    def _agenda_sample_size(self) -> int:
        return self.network.candidate_count() if self.network is not None else 0
