"""The Policy Service (the paper's primary contribution).

A service that advises a workflow manager's transfer tool on *how to stage
data*: which transfers to skip (duplicates across and within workflows),
how to group them (by source/destination host pair), in what order, and
with how many parallel streams (greedy / balanced allocation against an
administrator-set threshold).  State about pending transfers and staged
files persists in **policy memory** across requests and across workflows.

Layering (paper Fig. 1):

* :mod:`repro.policy.model` — fact types and request/advice DTOs;
* :mod:`repro.policy.rules_common` — Table I rules (apply to all transfers);
* :mod:`repro.policy.rules_greedy` — Table II greedy stream allocation;
* :mod:`repro.policy.rules_balanced` — Table III balanced per-cluster
  allocation;
* :mod:`repro.policy.rules_priority` — structure-based ordering (paper
  future work, implemented here);
* :mod:`repro.policy.service` — the policy engine: sessions over the
  persistent memory;
* :mod:`repro.policy.controller` — request validation/translation (the
  paper's Policy Controller);
* :mod:`repro.policy.rest` / :mod:`repro.policy.client` — the RESTful
  web interface and clients (real HTTP on localhost, plus an in-process
  adapter that charges simulated service-call latency);
* :mod:`repro.policy.journal` — durable policy memory: a write-ahead
  journal + snapshots from which :meth:`PolicyService.recover` rebuilds
  the service after a crash;
* :mod:`repro.policy.allocation` — the analytic allocator (Table IV);
* :mod:`repro.policy.tuning` — threshold auto-tuning (paper future work);
* :mod:`repro.policy.sharding` — the consistent-hash shard router:
  N independent policy shards with per-shard journals, circuit
  breakers, degraded keyspace advice, and independent recovery (see
  ``docs/sharding.md``).
"""

from repro.policy.allocation import greedy_allocation_trace, max_streams_table
from repro.policy.client import (
    CircuitBreaker,
    CircuitOpenError,
    InProcessPolicyClient,
    PolicyUnavailableError,
    RetryPolicy,
)
from repro.policy.controller import PolicyController, PolicyRequestError
from repro.policy.journal import JournalError, PolicyJournal
from repro.policy.model import PolicyConfig, TransferAdvice
from repro.policy.rest import PolicyRestServer
from repro.policy.rest_async import AsyncPolicyRestServer
from repro.policy.service import PolicyService
from repro.policy.sharding import (
    HashRing,
    ShardedPolicyService,
    ShardUnavailableError,
)

__all__ = [
    "AsyncPolicyRestServer",
    "CircuitBreaker",
    "CircuitOpenError",
    "HashRing",
    "InProcessPolicyClient",
    "JournalError",
    "PolicyConfig",
    "PolicyController",
    "PolicyJournal",
    "PolicyRequestError",
    "PolicyRestServer",
    "PolicyService",
    "PolicyUnavailableError",
    "RetryPolicy",
    "ShardUnavailableError",
    "ShardedPolicyService",
    "TransferAdvice",
    "greedy_allocation_trace",
    "max_streams_table",
]
