"""Runtime-adaptive stream thresholds.

The paper's service gives advice "based on its knowledge of ongoing
transfers, recent data transfer performance, and the current allocation of
resources", and its future work proposes learning the best threshold.
:class:`AdaptiveThresholdController` implements the runtime half of that:
a per-host-pair duplex hill climber that compares the aggregate throughput
achieved over successive *byte quotas* and moves the pair's threshold in
whichever direction improved it — no prior knowledge of the path's
congestion knee required.

Byte-quota epochs (close an epoch after ``epoch_bytes`` of completed
transfers, not after fixed wall time) make the throughput signal robust to
the bursty, wave-like completion pattern of throttled staging: every
measurement spans a substantial amount of data.

Movement is AIMD-flavoured: decreases are multiplicative (escape an
over-allocated regime quickly — the dangerous side, where congestion
collapses throughput), increases are additive (probe for spare capacity
gently).

The controller plugs into :class:`~repro.policy.service.PolicyService`
(enable with ``PolicyConfig(adaptive=True)``): every completion report
feeds it, and its decisions update the ``HostPairFact.threshold`` that the
greedy rules enforce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["AdaptiveThresholdController", "AdaptiveSettings"]


@dataclass(frozen=True)
class AdaptiveSettings:
    """Tuning constants of the adaptive controller.

    ``epoch_bytes``: completed-transfer bytes per decision epoch.
    ``min_epoch``: minimum seconds per epoch (guards tiny-interval noise).
    ``step_up``: additive threshold increase when probing upward.
    ``down_factor``: multiplicative decrease fraction when moving down.
    ``tolerance``: relative throughput drop treated as a real regression.
    ``min_threshold`` / ``max_threshold``: search bounds.
    """

    epoch_bytes: float = 2e9
    min_epoch: float = 20.0
    step_up: int = 10
    down_factor: float = 0.15
    tolerance: float = 0.05
    min_threshold: int = 10
    max_threshold: int = 300

    def __post_init__(self) -> None:
        if self.epoch_bytes <= 0:
            raise ValueError("epoch_bytes must be positive")
        if self.min_epoch < 0:
            raise ValueError("min_epoch must be >= 0")
        if self.step_up < 1:
            raise ValueError("step_up must be >= 1")
        if not 0 < self.down_factor < 1:
            raise ValueError("down_factor must be in (0, 1)")
        if self.tolerance < 0:
            raise ValueError("tolerance must be >= 0")
        if not 1 <= self.min_threshold <= self.max_threshold:
            raise ValueError("need 1 <= min_threshold <= max_threshold")


@dataclass
class _PairState:
    threshold: int
    epoch_start: float
    epoch_bytes: float = 0.0
    prev_rate: Optional[float] = None
    direction: int = -1  # first move probes downward (the safe side)
    history: list[tuple[float, int, float]] = field(default_factory=list)


class AdaptiveThresholdController:
    """Duplex threshold search from observed aggregate throughput."""

    def __init__(self, initial_threshold: int, settings: Optional[AdaptiveSettings] = None):
        if initial_threshold < 1:
            raise ValueError("initial_threshold must be >= 1")
        self.initial_threshold = initial_threshold
        self.settings = settings if settings is not None else AdaptiveSettings()
        if not isinstance(self.settings, AdaptiveSettings):
            raise TypeError("settings must be an AdaptiveSettings instance")
        self._pairs: dict[tuple[str, str], _PairState] = {}
        self.adjustments = 0

    def threshold_for(self, src_host: str, dst_host: str, now: float) -> int:
        """Current threshold for a pair (creates tracking state lazily)."""
        return self._state((src_host, dst_host), now).threshold

    def observe(self, src_host: str, dst_host: str, nbytes: float, now: float) -> Optional[int]:
        """Feed one completed transfer; returns the new threshold when the
        epoch's byte quota closed and the controller moved, else None."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        cfg = self.settings
        state = self._state((src_host, dst_host), now)
        state.epoch_bytes += nbytes
        elapsed = now - state.epoch_start
        if state.epoch_bytes < cfg.epoch_bytes or elapsed < cfg.min_epoch or elapsed <= 0:
            return None

        rate = state.epoch_bytes / elapsed
        if state.prev_rate is not None:
            if rate < state.prev_rate * (1.0 - cfg.tolerance):
                state.direction = -state.direction  # last move hurt: reverse
            elif rate <= state.prev_rate * (1.0 + cfg.tolerance) and state.direction > 0:
                # Plateau while probing upward: more streams bought nothing,
                # so prefer the cheaper side (fewer resources, same rate).
                state.direction = -1
        if state.direction < 0:
            decrease = max(cfg.step_up, int(cfg.down_factor * state.threshold))
            new_threshold = max(cfg.min_threshold, state.threshold - decrease)
        else:
            new_threshold = min(cfg.max_threshold, state.threshold + cfg.step_up)

        decided: Optional[int] = None
        if new_threshold != state.threshold:
            state.threshold = new_threshold
            decided = new_threshold
            self.adjustments += 1
        state.prev_rate = rate
        state.epoch_start = now
        state.epoch_bytes = 0.0
        state.history.append((now, state.threshold, rate))
        return decided

    def history(self, src_host: str, dst_host: str) -> list[tuple[float, int, float]]:
        """(time, threshold, epoch throughput) decision trace for a pair."""
        state = self._pairs.get((src_host, dst_host))
        return list(state.history) if state else []

    def _state(self, key: tuple[str, str], now: float) -> _PairState:
        state = self._pairs.get(key)
        if state is None:
            state = _PairState(threshold=self.initial_threshold, epoch_start=now)
            self._pairs[key] = state
        return state
