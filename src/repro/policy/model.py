"""Fact types and DTOs of the Policy Service.

Facts live in the persistent policy memory and are what the rule packs
match on; DTOs (:class:`TransferAdvice`, plain dicts over REST) are what
crosses the service boundary.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Optional

from repro.datacatalog.model import CatalogConfig
from repro.net.gridftp import parse_url
from repro.rules import Fact

__all__ = [
    "PolicyConfig",
    "TransferFact",
    "StagedFileFact",
    "HostPairFact",
    "ClusterAllocationFact",
    "CleanupFact",
    "LeaseSweepFact",
    "TransferAdvice",
    "CleanupAdvice",
]


# --------------------------------------------------------------------------
# Configuration
# --------------------------------------------------------------------------
@dataclass
class PolicyConfig:
    """Administrator-provided policy settings (paper §III).

    Parameters
    ----------
    policy:
        ``"greedy"`` (Table II), ``"balanced"`` (Table III), or ``"fifo"``
        (Table I common rules only: dedup/group/defaults, no stream cap).
    default_streams:
        Streams requested per transfer when the client does not specify
        ("default number of parallel streams to use for each transfer").
    max_streams:
        The threshold of total parallel streams allowed between a source
        and destination host pair (greedy), or the pool that balanced
        splits across clusters when ``cluster_threshold`` is unset.
    pair_thresholds:
        Optional per-(src_host, dst_host) overrides of ``max_streams``.
    cluster_count / cluster_threshold:
        Balanced policy inputs: the workflow clustering factor, and the
        per-cluster stream threshold (defaults to
        ``max_streams // cluster_count``).
    order_by:
        ``"urls"`` — sort advice by source/destination URL (Table I);
        ``"priority"`` — sort by structure-based priority, then URLs.
    completed_tid_retention:
        How many completed/failed transfer ids the service remembers for
        :meth:`PolicyService.transfer_state` queries.  Bounded so a
        long-lived service does not grow without limit; the oldest ids
        are forgotten first (their state reads ``"unknown"``).
    lease_seconds:
        When set, every granted transfer or cleanup carries a lease
        deadline that many seconds in the future.  An ``in_progress``
        fact whose lease expires is reaped — marked failed, its stream
        allocations released on both the host-pair and cluster ledgers —
        so a crashed transfer tool can never wedge other workflows.
        ``None`` (default) disables leasing.
    lease_sweep_interval:
        Minimum seconds between automatic lease sweeps piggy-backed on
        service calls (defaults to ``lease_seconds / 4``).  Explicit
        :meth:`PolicyService.reap_expired` calls ignore the throttle.
    adaptive / adaptive_settings:
        Enable runtime threshold adaptation from recent transfer
        performance (:mod:`repro.policy.adaptive`); greedy policy only.
    catalog:
        A :class:`~repro.datacatalog.model.CatalogConfig` enabling the
        durable staged-data catalog: replica records and site budgets
        enter policy memory (journaled like every other fact), the
        eviction rule pack loads, and cleanup advice becomes
        capacity-aware (see ``docs/catalog.md``).  ``None`` (default)
        keeps the paper's original unconditional-cleanup behaviour.
    decision_log / decision_log_cap:
        Decision provenance: with ``decision_log`` on (the default) the
        service records a causal "why" record for every advice it emits
        (:mod:`repro.policy.provenance`), bounded to the most recent
        ``decision_log_cap`` decisions, queryable via
        :meth:`PolicyService.explain`.  Turn it off for benchmark runs
        that must pay zero provenance overhead.  Neither knob is part of
        the config fingerprint — provenance observes decisions, it never
        changes them.
    """

    policy: str = "greedy"
    default_streams: int = 4
    max_streams: int = 50
    pair_thresholds: dict = field(default_factory=dict)
    cluster_count: Optional[int] = None
    cluster_threshold: Optional[int] = None
    order_by: str = "urls"
    adaptive: bool = False
    adaptive_settings: Optional[object] = None
    access_control: bool = False
    completed_tid_retention: int = 10_000
    lease_seconds: Optional[float] = None
    lease_sweep_interval: Optional[float] = None
    decision_log: bool = True
    decision_log_cap: int = 4096
    catalog: Optional[CatalogConfig] = None

    def __post_init__(self) -> None:
        if self.policy not in ("greedy", "balanced", "fifo"):
            raise ValueError(f"unknown policy {self.policy!r}")
        if self.default_streams < 1:
            raise ValueError("default_streams must be >= 1")
        if self.max_streams < 1:
            raise ValueError("max_streams must be >= 1")
        if self.order_by not in ("urls", "priority"):
            raise ValueError(f"unknown order_by {self.order_by!r}")
        if self.policy == "balanced":
            if not self.cluster_count or self.cluster_count < 1:
                raise ValueError("balanced policy requires cluster_count >= 1")
            if self.cluster_threshold is not None and self.cluster_threshold < 1:
                raise ValueError("cluster_threshold must be >= 1")
        if self.adaptive and self.policy != "greedy":
            raise ValueError("adaptive thresholds require the greedy policy")
        if self.completed_tid_retention < 0:
            raise ValueError("completed_tid_retention must be >= 0")
        if self.lease_seconds is not None and self.lease_seconds <= 0:
            raise ValueError("lease_seconds must be positive (or None)")
        if self.lease_sweep_interval is not None:
            if self.lease_seconds is None:
                raise ValueError("lease_sweep_interval requires lease_seconds")
            if self.lease_sweep_interval < 0:
                raise ValueError("lease_sweep_interval must be >= 0")
        if self.decision_log_cap < 1:
            raise ValueError("decision_log_cap must be >= 1")
        if self.catalog is not None and not isinstance(self.catalog, CatalogConfig):
            raise ValueError("catalog must be a CatalogConfig (or None)")

    def sweep_interval(self) -> float:
        """Throttle between automatic lease sweeps (0 when leasing is off)."""
        if self.lease_seconds is None:
            return 0.0
        if self.lease_sweep_interval is not None:
            return self.lease_sweep_interval
        return self.lease_seconds / 4.0

    def threshold_for(self, src_host: str, dst_host: str) -> int:
        """Stream threshold between a host pair (with per-pair override)."""
        return int(self.pair_thresholds.get((src_host, dst_host), self.max_streams))

    def per_cluster_threshold(self) -> int:
        """Balanced policy: threshold available to each cluster."""
        if self.cluster_threshold is not None:
            return self.cluster_threshold
        assert self.cluster_count
        return max(1, self.max_streams // self.cluster_count)


# --------------------------------------------------------------------------
# Facts
# --------------------------------------------------------------------------
class TransferFact(Fact):
    """A transfer request under policy management.

    Status machine: ``submitted`` -> ``new`` -> (``in_progress`` |
    ``skip_duplicate`` | ``skip_staged`` | ``wait``); in-progress facts are
    retracted when the client reports ``done``/``failed``.
    """

    def __init__(
        self,
        tid: int,
        workflow: str,
        job: str,
        lfn: str,
        src_url: str,
        dst_url: str,
        nbytes: float,
        requested_streams: Optional[int] = None,
        priority: int = 0,
        cluster: Optional[str] = None,
        batch: int = 0,
    ):
        self.tid = tid
        self.workflow = workflow
        self.job = job
        self.lfn = lfn
        self.src_url = src_url
        self.dst_url = dst_url
        self.src_host = parse_url(src_url)[0]
        self.dst_host = parse_url(dst_url)[0]
        self.nbytes = float(nbytes)
        self.requested_streams = requested_streams
        self.allocated_streams: Optional[int] = None
        self.group_id: Optional[int] = None
        self.priority = priority
        self.cluster = cluster
        self.batch = batch
        self.status = "submitted"
        self.reason = ""
        self.wait_for: Optional[int] = None
        self.quota_charged = False
        #: owning tenant (stamped by the fair-share pack from the
        #: workflow->tenant binding; None outside multi-tenant deployments)
        self.tenant: Optional[str] = None
        #: streams currently charged against the tenant's aggregate budget
        self.tenant_streams_reserved = 0
        #: latch: the tenant ledgers were settled for this fact's outcome
        self.tenant_settled = False
        #: absolute clock time after which an in_progress grant may be
        #: reaped (None when the service runs without leases)
        self.lease_deadline: Optional[float] = None


class StagedFileFact(Fact):
    """The paper's *resource*: tracks a staged file and its users.

    ``users`` is the set of workflow ids sharing the file; cleanup requests
    detach their workflow, and the file may only be deleted once no users
    remain.
    """

    def __init__(self, lfn: str, dst_url: str, owner_tid: int, workflow: str):
        self.lfn = lfn
        self.dst_url = dst_url
        self.owner_tid = owner_tid
        self.status = "staging"  # -> "staged"
        self.users: set[str] = {workflow}


class HostPairFact(Fact):
    """Per (source host, destination host) state: group id + allocation."""

    def __init__(self, src_host: str, dst_host: str, group_id: int):
        self.src_host = src_host
        self.dst_host = dst_host
        self.group_id = group_id
        self.allocated = 0
        self.threshold: Optional[int] = None


class ClusterAllocationFact(Fact):
    """Balanced policy: per (host pair, cluster) stream allocation."""

    def __init__(self, src_host: str, dst_host: str, cluster: str):
        self.src_host = src_host
        self.dst_host = dst_host
        self.cluster = cluster
        self.allocated = 0


class CleanupFact(Fact):
    """A cleanup (file deletion) request under policy management."""

    def __init__(self, cid: int, workflow: str, job: str, lfn: str, url: str, batch: int = 0):
        self.cid = cid
        self.workflow = workflow
        self.job = job
        self.lfn = lfn
        self.url = url
        self.batch = batch
        self.status = "submitted"  # -> new -> (approved | skip_in_use | skip_duplicate)
        self.reason = ""
        self.lease_deadline: Optional[float] = None


class LeaseSweepFact(Fact):
    """A transient reaper tick: rules expire leases older than ``now``.

    Inserted by :meth:`PolicyService.reap_expired`, matched by the lease
    rules in :mod:`repro.policy.rules_common`, and retracted by the
    lowest-salience sweep-retirement rule before the session returns.
    Inserting a fact (rather than reading the clock from globals) keeps
    the incremental agenda sound: time-based expiry becomes a working
    memory change the change log can see.
    """

    def __init__(self, now: float):
        self.now = float(now)


# --------------------------------------------------------------------------
# Advice DTOs
# --------------------------------------------------------------------------
@dataclass
class TransferAdvice:
    """The service's verdict on one requested transfer.

    ``action`` is ``"transfer"`` (execute with ``streams`` in group
    ``group_id``), ``"skip"`` (duplicate/already staged — do nothing), or
    ``"wait"`` (another workflow is staging the same file; wait for
    transfer id ``wait_for``).
    """

    tid: int
    lfn: str
    src_url: str
    dst_url: str
    nbytes: float
    action: str
    streams: int = 1
    group_id: int = 0
    priority: int = 0
    reason: str = ""
    wait_for: Optional[int] = None
    #: clock time by which the grant must be completed before the service
    #: may reap it (None when the service runs without leases)
    lease_deadline: Optional[float] = None

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, doc: dict) -> "TransferAdvice":
        return cls(**doc)


@dataclass
class CleanupAdvice:
    """The service's verdict on one cleanup request."""

    cid: int
    lfn: str
    url: str
    action: str  # "delete" | "skip"
    reason: str = ""
    lease_deadline: Optional[float] = None

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, doc: dict) -> "CleanupAdvice":
        return cls(**doc)
