"""Asyncio REST frontend of the Policy Service.

Same HTTP surface as :mod:`repro.policy.rest` (one route table, same
request-id / access-log / tracing / drain semantics — see that module's
docs for the endpoint list), but served by a single-threaded
``asyncio.start_server`` loop instead of a thread per connection:

* **Keep-alive + pipelining** — a client may write many requests
  back-to-back on one connection without waiting for responses; the
  server parses them sequentially and writes the responses in order.
  A workflow manager submitting a burst of advice batches pays one
  round-trip for the whole burst instead of one per call.
* **No handler threads** — requests are serialized *by the event loop*
  on their way into the single-threaded rule engine, so the per-request
  lock handoff and thread wake-up of the threaded frontend disappear
  from the hot path (see ``benchmarks/bench_rules.py`` scenario
  ``rest_concurrency``).

The blocking service call runs on the loop thread by design: policy
evaluation is the work the server exists to do, and interleaving it with
request parsing would only add queueing.  The loop runs in a background
thread so ``start()`` / ``stop()`` look exactly like
:class:`~repro.policy.rest.PolicyRestServer`'s.

Error mapping is identical to the threaded frontend: malformed payloads
400, unknown paths 404, stalled body reads 408 (``read_timeout``),
oversized bodies 413 refused before the body is read, internal bugs 500,
draining 503 — all with the request id echoed in header and body, and
the connection closed afterwards.  Connections that sit idle (or drip
header bytes) past ``idle_timeout`` are closed without a response —
the slow-loris defence.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Optional
from urllib.parse import unquote

from repro.policy.controller import PolicyController, PolicyRequestError
from repro.policy.rest import (
    DEFAULT_MAX_REQUEST_BYTES,
    _RequestTooLarge,
    _ServerState,
)
from repro.policy.service import PolicyService

__all__ = ["AsyncPolicyRestServer"]

#: request line + headers must fit in this many bytes
_MAX_HEAD_BYTES = 16 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    408: "Request Timeout",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _BadRequestFraming(Exception):
    """Unparseable request head — the connection cannot continue."""


class _BodyReadTimeout(Exception):
    """The client stalled mid-body past ``read_timeout`` (slow-loris)."""


#: POST path -> controller method name, resolved per request so tests
#: (and operators) may swap controller methods on a live server.
_POST_ROUTES = {
    "/policy/transfers": "submit_transfers",
    "/policy/transfers/complete": "complete_transfers",
    "/policy/staging": "staging_state",
    "/policy/cleanups": "submit_cleanups",
    "/policy/cleanups/complete": "complete_cleanups",
    "/policy/staged/reconcile": "reconcile_staged",
    "/policy/priorities": "register_priorities",
    "/policy/workflows/unregister": "unregister_workflow",
    "/policy/denials": "deny_host",
    "/policy/denials/remove": "allow_host",
    "/policy/quotas": "set_quota",
    "/policy/tenants": "register_tenant",
    "/policy/tenants/remove": "unregister_tenant",
    "/policy/tenants/bind": "bind_workflow",
    "/policy/catalog/sites": "set_site_capacity",
    "/policy/catalog/pins": "catalog_pin",
}


class _Head:
    """One parsed request head; the body (if any) is still on the wire."""

    __slots__ = ("method", "path", "headers")

    def __init__(self, method: str, path: str, headers: dict):
        self.method = method
        self.path = path
        self.headers = headers


class AsyncPolicyRestServer:
    """Asyncio HTTP frontend around a :class:`PolicyService`.

    Drop-in alternative to :class:`~repro.policy.rest.PolicyRestServer`::

        server = AsyncPolicyRestServer(service)   # port 0 = free port
        server.start()
        ... HTTPPolicyClient(server.url) ...
        drained = server.stop()

    ``stop()`` first refuses new requests with 503, waits up to
    ``drain_timeout`` seconds for in-flight ones, then closes the
    listening socket and the loop; returns whether the drain completed.
    """

    def __init__(
        self,
        service: PolicyService,
        host: str = "127.0.0.1",
        port: int = 0,
        max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
        drain_timeout: float = 5.0,
        idle_timeout: Optional[float] = 60.0,
        read_timeout: Optional[float] = 10.0,
        tracer=None,
    ):
        if max_request_bytes < 1:
            raise ValueError("max_request_bytes must be >= 1")
        if drain_timeout < 0:
            raise ValueError("drain_timeout must be >= 0")
        if idle_timeout is not None and idle_timeout <= 0:
            raise ValueError("idle_timeout must be > 0 (or None to disable)")
        if read_timeout is not None and read_timeout <= 0:
            raise ValueError("read_timeout must be > 0 (or None to disable)")
        self.service = service
        self.controller = PolicyController(service)
        self.drain_timeout = drain_timeout
        #: seconds a connection may sit without *starting* a request
        #: before the server closes it (slow-loris hardening)
        self.idle_timeout = idle_timeout
        #: seconds a client gets to deliver a request body it declared;
        #: a stall answers 408 and closes the connection
        self.read_timeout = read_timeout
        self._host = host
        self._port = port
        # Serializes service access against out-of-process users of the
        # same service (e.g. a threaded frontend sharing it); within this
        # server the single loop thread already serializes handlers.
        self._service_lock = threading.Lock()
        self._state = _ServerState(
            max_request_bytes, tracer=tracer if tracer is not None else service.tracer
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server = None
        self._thread: Optional[threading.Thread] = None
        self._address: Optional[tuple] = None

    # ------------------------------------------------------------ lifecycle
    @property
    def url(self) -> str:
        if self._address is None:
            raise RuntimeError("server not started")
        host, port = self._address[:2]
        return f"http://{host}:{port}"

    @property
    def access_log(self) -> list[dict]:
        """One entry per handled request (request id, host, method, path,
        status, wall-clock latency), oldest first, bounded."""
        return list(self._state.access_log)

    def start(self) -> "AsyncPolicyRestServer":
        if self._thread is not None:
            raise RuntimeError("server already started")
        started = threading.Event()
        failure: list[BaseException] = []

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                self._server = loop.run_until_complete(
                    asyncio.start_server(self._serve_connection, self._host, self._port)
                )
                self._address = self._server.sockets[0].getsockname()
            except BaseException as exc:  # surface bind errors to start()
                failure.append(exc)
                started.set()
                return
            started.set()
            try:
                loop.run_forever()
            finally:
                # Cancellation of the connection tasks completes here.
                pending = asyncio.all_tasks(loop)
                if pending:
                    loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True)
                    )
                loop.run_until_complete(loop.shutdown_asyncgens())
                loop.close()

        self._thread = threading.Thread(target=run, daemon=True)
        self._thread.start()
        started.wait()
        if failure:
            self._thread.join(timeout=5)
            self._thread = None
            raise failure[0]
        return self

    def stop(self) -> bool:
        if self._thread is None:
            return True
        self._state.begin_stop()
        drained = self._state.drain(self.drain_timeout)
        loop = self._loop

        def shutdown() -> None:
            if self._server is not None:
                self._server.close()
            for task in asyncio.all_tasks(loop):
                task.cancel()
            loop.call_soon(loop.stop)

        loop.call_soon_threadsafe(shutdown)
        # A hung handler blocks the loop thread past the drain window;
        # don't make a failed drain also stall the caller.
        self._thread.join(timeout=5 if drained else 0.5)
        self._thread = None
        self._loop = None
        self._server = None
        return drained

    def __enter__(self) -> "AsyncPolicyRestServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------ connection
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername") or ("?",)
        host = peer[0]
        try:
            while True:
                try:
                    # One budget covers waiting for a request *and* the
                    # trickle-fed head itself: a slow-loris client that
                    # drips header bytes never escapes the clock.
                    head = await asyncio.wait_for(
                        self._read_head(reader), self.idle_timeout
                    )
                except asyncio.TimeoutError:
                    break  # idle or stalled-in-head connection: just close
                if head is None:
                    break  # clean EOF between requests
                keep_alive = await self._handle_request(head, reader, host, writer)
                await writer.drain()
                if not keep_alive:
                    break
        except (
            _BadRequestFraming,
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.CancelledError,
        ):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    @staticmethod
    async def _read_head(reader: asyncio.StreamReader) -> Optional[_Head]:
        """Parse one request line + headers; leaves the body unread."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None  # clean close between pipelined requests
            raise _BadRequestFraming() from exc
        except asyncio.LimitOverrunError as exc:
            raise _BadRequestFraming() from exc
        if len(head) > _MAX_HEAD_BYTES:
            raise _BadRequestFraming()
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3:
            raise _BadRequestFraming()
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise _BadRequestFraming()
            headers[name.strip().lower()] = value.strip()
        return _Head(parts[0], parts[1], headers)

    # -------------------------------------------------------------- handling
    async def _handle_request(
        self,
        head: _Head,
        reader: asyncio.StreamReader,
        host: str,
        writer: asyncio.StreamWriter,
    ) -> bool:
        """Handle one request; returns whether to keep the connection."""
        state = self._state
        rid = head.headers.get("x-repro-request-id") or state.next_request_id()
        t0 = time.perf_counter()
        tracer = state.tracer
        span = None
        if tracer.enabled:
            span = tracer.begin(
                "rest", f"{head.method} {head.path}", track="rest",
                request_id=rid, host=host,
            )
        status = 0
        keep_alive = True
        finished = False

        def finish(code: int) -> None:
            nonlocal finished
            if finished:
                return
            finished = True
            state.log_request({
                "request_id": rid,
                "host": host,
                "method": head.method,
                "path": head.path,
                "status": code,
                "latency_s": time.perf_counter() - t0,
            })
            tracer.end(span, status=code)

        def send(code: int, body: bytes, content_type: str) -> None:
            nonlocal status
            status = code
            # Finalize the access-log entry before any response byte goes
            # out: a client that has observed the response must find its
            # entry in the log (same contract as the threaded frontend).
            finish(code)
            resp = (
                f"HTTP/1.1 {code} {_REASONS.get(code, 'OK')}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"X-Repro-Request-Id: {rid}\r\n"
                f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
                "\r\n"
            )
            writer.write(resp.encode("latin-1") + body)

        def reply(code: int, doc: dict) -> None:
            send(code, json.dumps(doc).encode(), "application/json")

        if not state.enter():
            keep_alive = False
            reply(503, {"error": "server is shutting down", "request_id": rid})
            return keep_alive
        try:
            if head.method == "GET":
                # GET ignores its body, but a well-framed one must be
                # drained to keep the connection reusable; when the
                # framing cannot be trusted, answer and then close.
                framed = await self._discard_get_body(head, reader)
                if not framed:
                    keep_alive = False
                body = b""
            else:
                body = await self._read_body(head, reader)
            self._dispatch(head, body, rid, reply, send)
        except _RequestTooLarge as exc:
            # The oversized body was never read — this connection cannot
            # be reused.
            keep_alive = False
            reply(413, {"error": str(exc), "request_id": rid})
        except _BodyReadTimeout:
            # The client declared a body and then stalled; the wire still
            # holds unread bytes, so answer and drop the connection.
            keep_alive = False
            reply(408, {
                "error": "timed out reading request body", "request_id": rid,
            })
        except PolicyRequestError as exc:
            # The body may be unread (bad framing) — do not reuse the
            # connection for a follow-up request.
            keep_alive = False
            reply(400, {"error": str(exc), "request_id": rid})
        except asyncio.IncompleteReadError:
            raise  # connection died mid-body; nothing to answer
        except Exception as exc:  # don't drop the connection on a bug
            keep_alive = False
            reply(500, {"error": f"internal error: {exc}", "request_id": rid})
        finally:
            state.leave()
            finish(status)  # backstop if no reply was sent
        return keep_alive

    async def _read_body(self, head: _Head, reader: asyncio.StreamReader) -> bytes:
        """Read the request body, refusing oversized ones *before* the
        read: the declared size alone disqualifies the request, so the
        body bytes never enter memory."""
        length_text = head.headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError as exc:
            raise PolicyRequestError(
                "Content-Length header must be an integer"
            ) from exc
        if length < 0:
            raise PolicyRequestError("Content-Length header must be >= 0")
        if length > self._state.max_request_bytes:
            raise _RequestTooLarge(
                f"request body of {length} bytes exceeds the "
                f"{self._state.max_request_bytes}-byte limit"
            )
        if not length:
            return b""
        try:
            return await asyncio.wait_for(
                reader.readexactly(length), self.read_timeout
            )
        except asyncio.TimeoutError as exc:
            raise _BodyReadTimeout() from exc

    async def _discard_get_body(
        self, head: _Head, reader: asyncio.StreamReader
    ) -> bool:
        """Drain an ignored GET body; returns whether framing survives."""
        try:
            length = int(head.headers.get("content-length", "0"))
        except ValueError:
            return False
        if length < 0:
            return False
        if length > self._state.max_request_bytes:
            return False  # refuse to buffer it; close after responding
        if length:
            try:
                await asyncio.wait_for(
                    reader.readexactly(length), self.read_timeout
                )
            except asyncio.TimeoutError:
                return False  # stalled GET body: answer, then close
        return True

    def _dispatch(self, head: _Head, body: bytes, rid: str, reply, send) -> None:
        controller = self.controller
        path = head.path
        if head.method == "GET":
            with self._service_lock:
                if path == "/policy/status":
                    reply(200, controller.status())
                elif path == "/policy/metrics":
                    send(
                        200, controller.metrics_text().encode(),
                        "text/plain; version=0.0.4; charset=utf-8",
                    )
                elif path == "/policy/tenants":
                    reply(200, controller.tenants())
                elif path == "/policy/catalog":
                    reply(200, controller.catalog())
                elif path.startswith("/policy/catalog/replicas/"):
                    lfn = unquote(path.rsplit("/", 1)[-1])
                    reply(200, controller.catalog_replicas(lfn))
                elif path.startswith("/policy/transfers/"):
                    tid_text = path.rsplit("/", 1)[-1]
                    if not tid_text.isdigit():
                        raise PolicyRequestError("transfer id must be an integer")
                    reply(200, controller.transfer_state(int(tid_text)))
                elif path.startswith("/policy/explain/"):
                    tid_text = path.rsplit("/", 1)[-1]
                    if not tid_text.isdigit():
                        raise PolicyRequestError("transfer id must be an integer")
                    record = controller.explain(int(tid_text))
                    if record is None:
                        reply(404, {
                            "error": f"no decision record for transfer {tid_text}",
                            "request_id": rid,
                        })
                    else:
                        reply(200, record)
                else:
                    reply(404, {
                        "error": f"no such endpoint {path!r}", "request_id": rid,
                    })
            return
        if head.method == "POST":
            name = _POST_ROUTES.get(path)
            handler = getattr(controller, name) if name else None
            if handler is None:
                reply(404, {
                    "error": f"no such endpoint {path!r}", "request_id": rid,
                })
                return
            try:
                doc = json.loads(body or b"{}")
            except json.JSONDecodeError as exc:
                raise PolicyRequestError(f"invalid JSON body: {exc}") from exc
            if not isinstance(doc, dict):
                raise PolicyRequestError("request body must be a JSON object")
            with self._service_lock:
                reply(200, handler(doc))
            return
        reply(404, {
            "error": f"method {head.method} not supported", "request_id": rid,
        })
