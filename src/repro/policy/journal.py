"""Durable Policy Memory: write-ahead journal + snapshots.

The paper's Policy Service is a long-lived daemon whose *persistent*
policy memory is what lets concurrent workflows share staged files
safely.  This module makes that memory survive a crash:

* every working-memory mutation (insert / update / retract) performed by
  a service call is appended to a JSONL **journal** as a full-state fact
  record, buffered per call and flushed together with a ``commit`` record
  carrying the service counters — so a torn write can only ever lose the
  *uncommitted tail*, never corrupt acknowledged state;
* every ``snapshot_interval`` commits the whole memory is dumped to a
  **snapshot** file (atomic tmp-file + rename) and the journal is
  truncated, bounding replay time on restart;
* :meth:`PolicyService.recover` loads the snapshot, replays the committed
  journal suffix, restores the id counters and the done/failed retention
  sets, and resumes journaling — producing advice byte-identical to a
  service that never crashed.

Facts are serialized generically from their ``__dict__`` (sets become
sorted lists) and revived without running ``__init__``, so every fact
type round-trips exactly, including attributes added after construction.
Fact handles (fids) are preserved *relatively*: facts re-enter memory in
fid order, which keeps the rule engine's FIFO activation ordering — the
property the byte-identical-advice guarantee rests on.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Optional

from repro.rules import Fact

from repro.policy.model import (
    CleanupFact,
    ClusterAllocationFact,
    HostPairFact,
    LeaseSweepFact,
    StagedFileFact,
    TransferFact,
)
from repro.policy.rules_access import HostDenialFact, WorkflowQuotaFact
from repro.policy.rules_fairshare import TenantFact, TenantWorkflowFact
from repro.policy.rules_priority import JobPriorityFact
from repro.datacatalog.model import (
    EvictionSweepFact,
    ReplicaRecordFact,
    SiteCapacityFact,
)

__all__ = ["PolicyJournal", "JournalError", "RecoveredState"]

#: fact types the journal knows how to revive (name -> class)
FACT_TYPES: dict[str, type] = {
    cls.__name__: cls
    for cls in (
        TransferFact,
        StagedFileFact,
        HostPairFact,
        ClusterAllocationFact,
        CleanupFact,
        LeaseSweepFact,
        HostDenialFact,
        WorkflowQuotaFact,
        JobPriorityFact,
        TenantFact,
        TenantWorkflowFact,
        ReplicaRecordFact,
        SiteCapacityFact,
        EvictionSweepFact,
    )
}

_SNAPSHOT_VERSION = 1


class JournalError(RuntimeError):
    """Unusable journal state (type mismatch, incompatible config...)."""


# --------------------------------------------------------------------------
# Journal-line integrity
# --------------------------------------------------------------------------
def _sealed_line(record: dict) -> str:
    """Serialize ``record`` with a CRC32 seal over its canonical form.

    A torn write usually truncates a line (caught by the JSON parser), but
    a corrupted sector can also flip bits *inside* a line that still parses
    — the seal lets :meth:`PolicyJournal.load` reject those too instead of
    replaying silently wrong state.
    """
    payload = json.dumps(record, sort_keys=True)
    sealed = dict(record)
    sealed["ck"] = zlib.crc32(payload.encode("utf-8"))
    return json.dumps(sealed, sort_keys=True)


def _open_line(line: str) -> Optional[dict]:
    """Parse + verify one sealed journal line; None when unusable.

    Any defect — invalid JSON, a non-object record, a missing or wrong
    seal — marks the line (and therefore everything after it) as a torn
    tail to be discarded.
    """
    try:
        record = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(record, dict):
        return None
    seal = record.pop("ck", None)
    payload = json.dumps(record, sort_keys=True)
    if seal != zlib.crc32(payload.encode("utf-8")):
        return None
    return record


# --------------------------------------------------------------------------
# Fact (de)serialization
# --------------------------------------------------------------------------
def _encode_value(value):
    if isinstance(value, set):
        return {"__set__": sorted(value)}
    return value


def _decode_value(value):
    if isinstance(value, dict) and "__set__" in value:
        return set(value["__set__"])
    return value


def fact_to_doc(fact: Fact) -> dict:
    """JSON-able full-state record of a fact."""
    name = type(fact).__name__
    if name not in FACT_TYPES:
        raise JournalError(f"cannot journal unknown fact type {name!r}")
    return {
        "type": name,
        "state": {k: _encode_value(v) for k, v in fact.__dict__.items()},
    }


def fact_from_doc(doc: dict) -> Fact:
    """Revive a fact from :func:`fact_to_doc` output (skips __init__)."""
    cls = FACT_TYPES.get(doc.get("type"))
    if cls is None:
        raise JournalError(f"journal names unknown fact type {doc.get('type')!r}")
    fact = cls.__new__(cls)
    fact.__dict__.update({k: _decode_value(v) for k, v in doc["state"].items()})
    return fact


# --------------------------------------------------------------------------
# Recovered state
# --------------------------------------------------------------------------
@dataclass
class RecoveredState:
    """What :meth:`PolicyJournal.load` reconstructs for the service."""

    #: live facts keyed by their original fid
    facts: dict[int, Fact] = field(default_factory=dict)
    counters: dict[str, int] = field(
        default_factory=lambda: {"tid": 0, "cid": 0, "batch": 0, "group": 1}
    )
    done_tids: list[int] = field(default_factory=list)
    failed_tids: list[int] = field(default_factory=list)
    #: decision-provenance records in their original emission order
    decisions: list[dict] = field(default_factory=list)
    fingerprint: Optional[dict] = None
    #: committed transactions replayed from the journal
    replayed: int = 0
    #: trailing uncommitted/torn records that were discarded
    discarded: int = 0

    def facts_in_fid_order(self) -> list[tuple[int, Fact]]:
        return sorted(self.facts.items())


class PolicyJournal:
    """Append-only JSONL journal + periodic snapshots under one directory.

    Parameters
    ----------
    path:
        Directory holding ``journal.jsonl`` and ``snapshot.json``
        (created if missing).
    snapshot_interval:
        Commits between automatic snapshots (journal truncation).
    fsync:
        Force an ``os.fsync`` after every commit — real crash-durability
        at real disk cost; off by default for simulations and tests.
    """

    def __init__(self, path, snapshot_interval: int = 1000, fsync: bool = False):
        if snapshot_interval < 1:
            raise ValueError("snapshot_interval must be >= 1")
        self.dir = Path(path)
        self.dir.mkdir(parents=True, exist_ok=True)
        self.journal_path = self.dir / "journal.jsonl"
        self.snapshot_path = self.dir / "snapshot.json"
        self.snapshot_interval = int(snapshot_interval)
        self.fsync = bool(fsync)
        self._file: Optional[IO[str]] = None
        self._pending: list[str] = []
        self._commits_since_snapshot = 0
        self.commits = 0
        self.snapshots = 0

    # ------------------------------------------------------------------ state
    def has_state(self) -> bool:
        """True when the directory already holds journal/snapshot data."""
        if self.snapshot_path.exists():
            return True
        try:
            return self.journal_path.stat().st_size > 0
        except OSError:
            return False

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def _handle(self) -> IO[str]:
        if self._file is None:
            self._file = open(self.journal_path, "a", encoding="utf-8")
        return self._file

    # ------------------------------------------------------------------ write
    def record_mutation(self, fact: Fact, fid: int, op: str) -> None:
        """Buffer one working-memory mutation (flushed at commit)."""
        if op == "r":
            self._pending.append(_sealed_line({"op": "r", "fid": fid}))
        else:
            self._pending.append(
                _sealed_line({"op": op, "fid": fid, "fact": fact_to_doc(fact)})
            )

    def record_decision(self, record: dict) -> None:
        """Buffer one decision-provenance record (flushed at commit).

        Decision records ride the same transaction as the mutations that
        produced them, so recovery replays exactly the decisions whose
        advice the client could have observed.
        """
        self._pending.append(_sealed_line({"op": "d", "record": record}))

    def commit(
        self,
        counters: dict[str, int],
        done: list[int] = (),
        failed: list[int] = (),
    ) -> None:
        """Flush the buffered transaction with its commit record.

        An empty transaction (no mutations, no retention deltas) is
        skipped entirely unless the counters advanced — queries stay free.
        """
        record: dict = {"op": "commit", "counters": dict(counters)}
        if done:
            record["done"] = list(done)
        if failed:
            record["failed"] = list(failed)
        lines = self._pending
        self._pending = []
        lines.append(_sealed_line(record))
        handle = self._handle()
        handle.write("\n".join(lines) + "\n")
        handle.flush()
        if self.fsync:
            os.fsync(handle.fileno())
        self.commits += 1
        self._commits_since_snapshot += 1

    def abort(self) -> None:
        """Drop buffered mutations of a failed call (nothing was written)."""
        self._pending.clear()

    @property
    def wants_snapshot(self) -> bool:
        return self._commits_since_snapshot >= self.snapshot_interval

    def write_snapshot(self, service) -> None:
        """Dump the service's full durable state; truncate the journal.

        The snapshot lands via tmp-file + rename so a crash mid-dump
        leaves the previous snapshot/journal pair intact.
        """
        facts = []
        memory = service.memory
        for fact in memory:
            facts.append({"fid": memory.fid_of(fact), **fact_to_doc(fact)})
        facts.sort(key=lambda doc: doc["fid"])
        doc = {
            "version": _SNAPSHOT_VERSION,
            "fingerprint": service.config_fingerprint(),
            "counters": service.counters(),
            "done": service._done_tids.ids(),
            "failed": service._failed_tids.ids(),
            "facts": facts,
        }
        # Optional key (read back via .get): snapshots from services
        # without a decision log stay loadable and vice versa.
        decisions = getattr(service, "decision_records", None)
        if decisions is not None:
            doc["decisions"] = decisions()
        tmp = self.snapshot_path.with_suffix(".json.tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(doc, handle)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        os.replace(tmp, self.snapshot_path)
        # Truncate: everything up to now lives in the snapshot.
        self.close()
        self._file = open(self.journal_path, "w", encoding="utf-8")
        self._commits_since_snapshot = 0
        self.snapshots += 1

    # ------------------------------------------------------------------ read
    def load(self) -> RecoveredState:
        """Snapshot + committed journal suffix -> :class:`RecoveredState`.

        Only complete transactions (terminated by a ``commit`` record)
        are applied; a torn or uncommitted tail is counted in
        ``discarded`` and ignored — the client never got that call's
        response, so it will retry.  "Torn" covers every way a crash can
        mangle the file end: truncated lines, bit flips that break the
        JSON or the per-line CRC seal, structurally valid records whose
        facts cannot be revived.  Replay always stops cleanly at the last
        intact committed transaction; it never raises on tail damage.
        """
        state = RecoveredState()
        if self.snapshot_path.exists():
            with open(self.snapshot_path, encoding="utf-8") as handle:
                snap = json.load(handle)
            if snap.get("version") != _SNAPSHOT_VERSION:
                raise JournalError(
                    f"unsupported snapshot version {snap.get('version')!r}"
                )
            state.fingerprint = snap.get("fingerprint")
            state.counters.update(snap.get("counters", {}))
            state.done_tids = list(snap.get("done", []))
            state.failed_tids = list(snap.get("failed", []))
            state.decisions = list(snap.get("decisions", []))
            for doc in snap.get("facts", []):
                state.facts[int(doc["fid"])] = fact_from_doc(doc)

        if not self.journal_path.exists():
            return state

        # Binary read + per-line decode: a torn tail can hold bytes that
        # are not valid UTF-8 at all, which must read as "torn", not as a
        # UnicodeDecodeError out of recover().
        raw_lines = self.journal_path.read_bytes().splitlines()
        lines = []
        for raw in raw_lines:
            try:
                text = raw.decode("utf-8").strip()
            except UnicodeDecodeError:
                text = "\x00torn"  # cannot be a sealed record; stops replay
            if text:
                lines.append(text)

        buffered: list[dict] = []
        torn_at: Optional[int] = None
        for lineno, line in enumerate(lines):
            record = _open_line(line)
            if record is None:
                torn_at = lineno  # torn write: discard from here on
                break
            if record.get("op") != "commit":
                buffered.append(record)
                continue
            try:
                # Stage the whole transaction before touching ``state`` so
                # a record that decodes but cannot be applied (unknown
                # fact type, malformed fid) discards the transaction, not
                # half of it.
                revived: list[tuple[int, Optional[Fact]]] = []
                decided: list[dict] = []
                for mutation in buffered:
                    if mutation["op"] == "d":
                        # decision records carry no fid — branch first
                        decided.append(dict(mutation["record"]))
                        continue
                    fid = int(mutation["fid"])
                    if mutation["op"] == "r":
                        revived.append((fid, None))
                    elif mutation["op"] in ("i", "u"):
                        # both ops carry the full fact state
                        revived.append((fid, fact_from_doc(mutation["fact"])))
                    else:
                        raise JournalError(
                            f"unknown journal op {mutation['op']!r}"
                        )
                counters = {
                    key: int(value)
                    for key, value in record.get("counters", {}).items()
                }
                done = [int(tid) for tid in record.get("done", [])]
                failed = [int(tid) for tid in record.get("failed", [])]
            except (JournalError, KeyError, TypeError, ValueError):
                torn_at = lineno
                break
            for fid, fact in revived:
                if fact is None:
                    state.facts.pop(fid, None)
                else:
                    state.facts[fid] = fact
            buffered = []
            state.counters.update(counters)
            state.done_tids.extend(done)
            state.failed_tids.extend(failed)
            state.decisions.extend(decided)
            state.replayed += 1
        if torn_at is not None:
            state.discarded = len(buffered) + (len(lines) - torn_at)
        else:
            state.discarded = len(buffered)
        return state
