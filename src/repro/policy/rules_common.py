"""Table I — policy rules that apply to all transfers.

Each rule is named after its row in the paper's Table I.  The final row
("Sort the list of transfers by the source and destination URLs") is an
ordering concern of the response and is applied by the service when it
assembles advice (see :meth:`PolicyService.submit_transfers`).

Patterns declare ``keys`` on the join attributes the guards equate —
``(lfn, dst_url)`` for dedup/staged-file joins, ``(src_host, dst_host)``
for host-pair joins — so candidate facts come from the working memory's
hash indexes instead of full type scans; the guards remain authoritative.
Rule actions use :meth:`WorkingMemory.lookup` for the same reason.

Salience values come from the named tiers in :mod:`repro.policy.salience`,
which asserts the cross-file ordering invariants (lease expiry before
completion, completion before acknowledgement, de-duplication before
resource creation, ...) at import time; the rule-set linter
(``python -m repro lint``) re-checks them and flags unregistered values.
"""

from __future__ import annotations

from repro.rules import Absent, Pattern, Rule

from repro.policy import salience
from repro.policy.model import (
    CleanupFact,
    ClusterAllocationFact,
    HostPairFact,
    LeaseSweepFact,
    StagedFileFact,
    TransferFact,
)

__all__ = ["common_rules"]


# -- index key helpers (keys must be implied by the guards they ride with) --
def _t_file_keys():
    return {"lfn": lambda b: b["t"].lfn, "dst_url": lambda b: b["t"].dst_url}


def _t_pair_keys():
    return {
        "src_host": lambda b: b["t"].src_host,
        "dst_host": lambda b: b["t"].dst_host,
    }


def _c_url_keys():
    return {"dst_url": lambda b: b["c"].url}


# -- actions ----------------------------------------------------------------
def _ack_transfer(ctx):
    ctx.update(ctx.t, status="new")


def _skip_batch_duplicate(ctx):
    ctx.update(ctx.dup, status="skip_duplicate",
               reason=f"duplicate of transfer {ctx.t.tid} in this request")


def _skip_already_staged(ctx):
    ctx.update(ctx.t, status="skip_staged",
               reason=f"file already staged at {ctx.r.dst_url}")
    if ctx.t.workflow not in ctx.r.users:
        ctx.update(ctx.r, users=ctx.r.users | {ctx.t.workflow})


def _wait_for_in_flight(ctx):
    ctx.update(ctx.t, status="wait", wait_for=ctx.other.tid,
               reason=f"file being staged by transfer {ctx.other.tid}")
    if ctx.t.workflow not in ctx.r.users:
        ctx.update(ctx.r, users=ctx.r.users | {ctx.t.workflow})


def _create_resource(ctx):
    ctx.insert(StagedFileFact(ctx.t.lfn, ctx.t.dst_url, ctx.t.tid, ctx.t.workflow))


def _associate_resource(ctx):
    ctx.update(ctx.r, users=ctx.r.users | {ctx.t.workflow})


def _create_host_pair(ctx):
    next_gid = ctx.globals["group_counter"]
    ctx.globals["group_counter"] = next_gid + 1
    ctx.insert(HostPairFact(ctx.t.src_host, ctx.t.dst_host, next_gid))


def _assign_group(ctx):
    ctx.update(ctx.t, group_id=ctx.pair.group_id)


def _assign_default_streams(ctx):
    ctx.update(ctx.t, requested_streams=ctx.globals["config"].default_streams)


def _ensure_min_stream(ctx):
    ctx.update(ctx.t, requested_streams=1)


def _release(ctx, t):
    """Free the streams a finished transfer held ('Record ... against the
    defined threshold' is undone on completion)."""
    if t.allocated_streams:
        memory = ctx._session.memory
        for pair in memory.lookup(
            HostPairFact, src_host=t.src_host, dst_host=t.dst_host
        ):
            ctx.update(pair, allocated=max(0, pair.allocated - t.allocated_streams))
        for cluster in memory.lookup(
            ClusterAllocationFact,
            src_host=t.src_host,
            dst_host=t.dst_host,
            cluster=t.cluster,
        ):
            ctx.update(
                cluster, allocated=max(0, cluster.allocated - t.allocated_streams)
            )


def _remove_completed(ctx):
    t = ctx.t
    _release(ctx, t)
    for r in ctx._session.memory.lookup(StagedFileFact, lfn=t.lfn, dst_url=t.dst_url):
        if r.status == "staging":
            ctx.update(r, status="staged")
    ctx.retract(t)


def _remove_failed(ctx):
    t = ctx.t
    _release(ctx, t)
    for r in ctx._session.memory.lookup(StagedFileFact, lfn=t.lfn, dst_url=t.dst_url):
        if r.status == "staging" and r.owner_tid == t.tid:
            ctx.retract(r)  # the file never arrived; allow restaging
    ctx.retract(t)


# -- lease actions -------------------------------------------------------------
def _expire_transfer_lease(ctx):
    """An in_progress transfer outlived its lease: its tool is presumed
    dead.  Marking it failed lets the Table I failure rule release both
    the host-pair and cluster stream ledgers and drop the staging
    resource it owned, unwedging any workflow waiting on the file."""
    ctx.globals.setdefault("lease_reaped_transfers", []).append(ctx.t.tid)
    ctx.update(ctx.t, status="failed",
               reason=f"lease expired at t={ctx.sweep.now:g}")


def _expire_cleanup_lease(ctx):
    ctx.globals.setdefault("lease_reaped_cleanups", []).append(ctx.c.cid)
    ctx.retract(ctx.c)


def _retire_sweep(ctx):
    ctx.retract(ctx.sweep)


# -- cleanup actions -----------------------------------------------------------
def _ack_cleanup(ctx):
    ctx.update(ctx.c, status="new")


def _skip_duplicate_cleanup(ctx):
    ctx.update(ctx.c, status="skip_duplicate",
               reason=f"cleanup {ctx.other.cid} already handling {ctx.c.url}")


def _detach_from_resource(ctx):
    ctx.update(ctx.r, users=ctx.r.users - {ctx.c.workflow})
    ctx.update(ctx.c, status="detached")


def _skip_cleanup_in_use(ctx):
    ctx.update(ctx.c, status="skip_in_use",
               reason=f"staged file in use by {sorted(ctx.r.users)}")


def _approve_cleanup(ctx):
    ctx.update(ctx.c, status="approved")


def common_rules() -> list[Rule]:
    """The Table I rule pack (names follow the paper's rows)."""
    return [
        # -- lease expiry: reaper sweeps run before anything else ----------
        Rule(
            "Expire a transfer whose lease deadline has passed",
            salience=salience.LEASE_EXPIRY,
            when=[
                Pattern(LeaseSweepFact, "sweep"),
                Pattern(
                    TransferFact,
                    "t",
                    where=lambda t, b: t.status == "in_progress"
                    and t.lease_deadline is not None
                    and t.lease_deadline <= b["sweep"].now,
                    keys={"status": lambda b: "in_progress"},
                ),
            ],
            then=_expire_transfer_lease,
        ),
        Rule(
            "Expire a cleanup whose lease deadline has passed",
            salience=salience.LEASE_EXPIRY,
            when=[
                Pattern(LeaseSweepFact, "sweep"),
                Pattern(
                    CleanupFact,
                    "c",
                    where=lambda c, b: c.status == "in_progress"
                    and c.lease_deadline is not None
                    and c.lease_deadline <= b["sweep"].now,
                    keys={"status": lambda b: "in_progress"},
                ),
            ],
            then=_expire_cleanup_lease,
        ),
        Rule(
            "Retire a completed lease sweep",
            salience=salience.SWEEP_RETIRE,
            when=[Pattern(LeaseSweepFact, "sweep")],
            then=_retire_sweep,
        ),
        # -- completion first: free streams before allocating new ones -----
        Rule(
            "Remove a transfer that has completed",
            salience=salience.COMPLETION,
            when=[
                Pattern(
                    TransferFact,
                    "t",
                    where=lambda t, b: t.status == "done",
                    keys={"status": lambda b: "done"},
                )
            ],
            then=_remove_completed,
        ),
        Rule(
            "Remove a transfer that has failed",
            salience=salience.COMPLETION,
            when=[
                Pattern(
                    TransferFact,
                    "t",
                    where=lambda t, b: t.status == "failed",
                    keys={"status": lambda b: "failed"},
                )
            ],
            then=_remove_failed,
        ),
        # -- insertion acknowledgement --------------------------------------
        Rule(
            "Insert new transfers into policy memory",
            salience=salience.ACK,
            when=[
                Pattern(
                    TransferFact,
                    "t",
                    where=lambda t, b: t.status == "submitted",
                    keys={"status": lambda b: "submitted"},
                )
            ],
            then=_ack_transfer,
        ),
        # -- de-duplication ---------------------------------------------------
        Rule(
            "Remove duplicate transfers from the transfer list",
            salience=salience.DEDUP_BATCH,
            when=[
                Pattern(
                    TransferFact,
                    "t",
                    where=lambda t, b: t.status == "new",
                    keys={"status": lambda b: "new"},
                ),
                Pattern(
                    TransferFact,
                    "dup",
                    where=lambda d, b: d.status == "new"
                    and d.tid > b["t"].tid
                    and d.lfn == b["t"].lfn
                    and d.dst_url == b["t"].dst_url,
                    keys=_t_file_keys(),
                ),
            ],
            then=_skip_batch_duplicate,
        ),
        Rule(
            "Remove transfers whose file is already staged",
            salience=salience.DEDUP_STAGED,
            when=[
                Pattern(
                    TransferFact,
                    "t",
                    where=lambda t, b: t.status == "new",
                    keys={"status": lambda b: "new"},
                ),
                Pattern(
                    StagedFileFact,
                    "r",
                    where=lambda r, b: r.status == "staged"
                    and r.lfn == b["t"].lfn
                    and r.dst_url == b["t"].dst_url,
                    keys=_t_file_keys(),
                ),
            ],
            then=_skip_already_staged,
        ),
        Rule(
            "Remove transfers from the transfer list that are already in progress",
            salience=salience.DEDUP_IN_FLIGHT,
            when=[
                Pattern(
                    TransferFact,
                    "t",
                    where=lambda t, b: t.status == "new",
                    keys={"status": lambda b: "new"},
                ),
                Pattern(
                    TransferFact,
                    "other",
                    where=lambda o, b: o.status == "in_progress"
                    and o.lfn == b["t"].lfn
                    and o.dst_url == b["t"].dst_url,
                    keys=_t_file_keys(),
                ),
                Pattern(
                    StagedFileFact,
                    "r",
                    where=lambda r, b: r.lfn == b["t"].lfn
                    and r.dst_url == b["t"].dst_url,
                    keys=_t_file_keys(),
                ),
            ],
            then=_wait_for_in_flight,
        ),
        # -- staged-file resources ---------------------------------------------
        Rule(
            "Create a resource for a new transfer to track the resulting staged file",
            salience=salience.RESOURCE_CREATE,
            when=[
                Pattern(
                    TransferFact,
                    "t",
                    where=lambda t, b: t.status == "new",
                    keys={"status": lambda b: "new"},
                ),
                Absent(
                    StagedFileFact,
                    where=lambda r, b: r.lfn == b["t"].lfn
                    and r.dst_url == b["t"].dst_url,
                    keys=_t_file_keys(),
                    reads=("lfn", "dst_url"),
                ),
            ],
            then=_create_resource,
        ),
        Rule(
            "Associate a transfer with a resource to track the number of "
            "workflows using the staged file",
            salience=salience.RESOURCE_ASSOCIATE,
            when=[
                Pattern(
                    TransferFact,
                    "t",
                    where=lambda t, b: t.status == "new",
                    keys={"status": lambda b: "new"},
                ),
                Pattern(
                    StagedFileFact,
                    "r",
                    where=lambda r, b: r.lfn == b["t"].lfn
                    and r.dst_url == b["t"].dst_url
                    and b["t"].workflow not in r.users,
                    keys=_t_file_keys(),
                ),
            ],
            then=_associate_resource,
        ),
        # -- grouping -------------------------------------------------------------
        Rule(
            "Generate a unique group ID for a source and destination host pair",
            salience=salience.GROUP_CREATE,
            when=[
                Pattern(
                    TransferFact,
                    "t",
                    where=lambda t, b: t.status == "new",
                    keys={"status": lambda b: "new"},
                ),
                Absent(
                    HostPairFact,
                    where=lambda p, b: p.src_host == b["t"].src_host
                    and p.dst_host == b["t"].dst_host,
                    keys=_t_pair_keys(),
                    # The allocation counter churns on every firing; only
                    # the (immutable) host endpoints decide this gate.
                    reads=("src_host", "dst_host"),
                ),
            ],
            then=_create_host_pair,
        ),
        Rule(
            "Assign the group ID to a transfer based on its source and "
            "destination host pair",
            salience=salience.GROUP_ASSIGN,
            when=[
                Pattern(
                    TransferFact,
                    "t",
                    where=lambda t, b: t.status == "new" and t.group_id is None,
                    keys={"status": lambda b: "new"},
                ),
                Pattern(
                    HostPairFact,
                    "pair",
                    where=lambda p, b: p.src_host == b["t"].src_host
                    and p.dst_host == b["t"].dst_host,
                    keys=_t_pair_keys(),
                ),
            ],
            then=_assign_group,
        ),
        # -- stream defaults ----------------------------------------------------------
        Rule(
            "Assign a default level of parallel streams to a transfer",
            salience=salience.STREAMS_DEFAULT,
            when=[
                Pattern(
                    TransferFact,
                    "t",
                    where=lambda t, b: t.status == "new"
                    and t.requested_streams is None,
                    keys={"status": lambda b: "new"},
                )
            ],
            then=_assign_default_streams,
        ),
        Rule(
            "Ensure each transfer has at least one parallel stream assigned",
            salience=salience.STREAMS_MINIMUM,
            when=[
                Pattern(
                    TransferFact,
                    "t",
                    where=lambda t, b: t.status == "new"
                    and t.requested_streams is not None
                    and t.requested_streams < 1,
                    keys={"status": lambda b: "new"},
                )
            ],
            then=_ensure_min_stream,
        ),
        # -- cleanups ---------------------------------------------------------------
        Rule(
            "Insert new cleanups into policy memory",
            salience=salience.ACK,
            when=[
                Pattern(
                    CleanupFact,
                    "c",
                    where=lambda c, b: c.status == "submitted",
                    keys={"status": lambda b: "submitted"},
                )
            ],
            then=_ack_cleanup,
        ),
        Rule(
            "Remove duplicate cleanup requests that are in progress or completed",
            salience=salience.DEDUP_BATCH,
            when=[
                Pattern(
                    CleanupFact,
                    "c",
                    where=lambda c, b: c.status == "new",
                    keys={"status": lambda b: "new"},
                ),
                Pattern(
                    CleanupFact,
                    "other",
                    where=lambda o, b: o.cid != b["c"].cid
                    and o.url == b["c"].url
                    and o.status in ("approved", "in_progress"),
                    keys={"url": lambda b: b["c"].url},
                ),
            ],
            then=_skip_duplicate_cleanup,
        ),
        Rule(
            "Detach a transfer from the resource when it requests to cleanup "
            "the resource's staged file",
            salience=salience.CLEANUP_DETACH,
            when=[
                Pattern(
                    CleanupFact,
                    "c",
                    where=lambda c, b: c.status == "new",
                    keys={"status": lambda b: "new"},
                ),
                Pattern(
                    StagedFileFact,
                    "r",
                    where=lambda r, b: r.dst_url == b["c"].url
                    and b["c"].workflow in r.users,
                    keys=_c_url_keys(),
                ),
            ],
            then=_detach_from_resource,
        ),
        Rule(
            "Remove cleanups from the cleanup list that specify resources that "
            "have other transfers using the staged files",
            salience=salience.CLEANUP_SKIP_IN_USE,
            when=[
                Pattern(
                    CleanupFact,
                    "c",
                    where=lambda c, b: c.status in ("new", "detached"),
                ),
                Pattern(
                    StagedFileFact,
                    "r",
                    where=lambda r, b: r.dst_url == b["c"].url and len(r.users) > 0,
                    keys=_c_url_keys(),
                ),
            ],
            then=_skip_cleanup_in_use,
        ),
        Rule(
            "Insert new cleanups into policy memory for resources that no "
            "longer have transfers using their staged files",
            salience=salience.CLEANUP_APPROVE,
            when=[
                Pattern(
                    CleanupFact,
                    "c",
                    where=lambda c, b: c.status in ("new", "detached"),
                ),
                Absent(
                    StagedFileFact,
                    where=lambda r, b: r.dst_url == b["c"].url and len(r.users) > 0,
                    keys=_c_url_keys(),
                    reads=("dst_url", "users"),
                ),
            ],
            then=_approve_cleanup,
        ),
    ]
